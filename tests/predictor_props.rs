//! Property-based tests for the duration predictors.

use proptest::prelude::*;
use tacker_kernel::SimTime;
use tacker_predictor::{FusedPairModel, KernelDurationModel, LinReg, MultiLinReg, Stage};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Least squares recovers an arbitrary noiseless line.
    #[test]
    fn linreg_recovers_lines(
        slope in -1e3f64..1e3,
        intercept in -1e6f64..1e6,
        xs in proptest::collection::vec(-1e3f64..1e3, 3..20),
    ) {
        // Need at least two distinct x values.
        prop_assume!(xs.iter().any(|&x| (x - xs[0]).abs() > 1e-6));
        let samples: Vec<(f64, f64)> = xs.iter().map(|&x| (x, slope * x + intercept)).collect();
        let lr = LinReg::fit(&samples).expect("fit");
        prop_assert!((lr.slope() - slope).abs() < 1e-6 * (1.0 + slope.abs()));
        prop_assert!(lr.r2(&samples) > 1.0 - 1e-9);
    }

    /// Multi-feature least squares recovers an arbitrary noiseless plane.
    #[test]
    fn multilinreg_recovers_planes(
        w0 in -1e4f64..1e4,
        w1 in -1e2f64..1e2,
        w2 in -1e2f64..1e2,
        seed in 0u64..1000,
    ) {
        let rows: Vec<Vec<f64>> = (0..16)
            .map(|i| {
                let a = ((i * 7 + seed as usize) % 13) as f64;
                let b = ((i * 11 + 3) % 17) as f64;
                vec![a, b]
            })
            .collect();
        let ys: Vec<f64> = rows.iter().map(|r| w0 + w1 * r[0] + w2 * r[1]).collect();
        let m = MultiLinReg::fit(&rows, &ys).expect("fit");
        for (r, y) in rows.iter().zip(&ys) {
            prop_assert!((m.predict(r) - y).abs() < 1e-3 * (1.0 + y.abs()));
        }
    }

    /// The two-stage model's normalized prediction is monotone
    /// non-decreasing in the load ratio when fit to monotone convex data.
    #[test]
    fn two_stage_is_monotone_on_convex_data(
        low_slope in 0.0f64..0.4,
        knee in 0.5f64..1.5,
        base in 0.9f64..1.2,
    ) {
        let truth = |r: f64| if r < knee { base + low_slope * r } else {
            base + low_slope * knee + (r - knee)
        };
        let samples: Vec<(f64, f64)> = (1..=20).map(|i| {
            let r = i as f64 * 0.1;
            (r, truth(r))
        }).collect();
        let m = FusedPairModel::fit("p", &samples).expect("fit");
        let mut prev = 0.0f64;
        let mut r = 0.05f64;
        while r < 2.0 {
            let v = m.predict_norm(r);
            prop_assert!(v >= prev - 1e-6, "non-monotone at {r}: {v} < {prev}");
            prev = v;
            r += 0.05;
        }
        // Stage classification is consistent with the inflection.
        let infl = m.opportune_load_ratio();
        prop_assert_eq!(m.stage(infl - 0.01), Stage::BeforeInflection);
        prop_assert_eq!(m.stage(infl + 0.01), Stage::AfterInflection);
    }

    /// Duration predictions never go negative and observe() never panics.
    #[test]
    fn kernel_model_is_total(
        blocks in proptest::collection::vec(1u64..100_000, 4..12),
        slope_ns in 1u64..10_000,
        query in 0u64..1_000_000,
    ) {
        prop_assume!(blocks.iter().any(|&b| b != blocks[0]));
        let profile: Vec<(u64, SimTime)> = blocks
            .iter()
            .map(|&b| (b, SimTime::from_nanos(slope_ns * b)))
            .collect();
        let mut m = KernelDurationModel::fit_blocks("k", &profile).expect("fit");
        let _ = m.predict(query as f64);
        let _ = m.observe(query as f64, SimTime::from_nanos(slope_ns * query));
        let p = m.predict(query as f64);
        prop_assert!(p.as_nanos() as f64 <= 2.0 * (slope_ns * query.max(1)) as f64 + 1e6);
    }

    /// Fused prediction scales linearly with X_tc at fixed ratio
    /// (the paper's second observation, §VI-A).
    #[test]
    fn fused_prediction_linear_in_x_tc(
        x_tc_us in 10u64..10_000,
        ratio_pct in 10u64..190,
    ) {
        let samples: Vec<(f64, f64)> = [0.1, 0.2, 0.7, 1.0, 1.3, 1.8, 1.9]
            .iter()
            .map(|&r| (r, if r < 1.0 { 1.0 + 0.2 * r } else { 1.2 + (r - 1.0) }))
            .collect();
        let m = FusedPairModel::fit("p", &samples).expect("fit");
        let x_tc = SimTime::from_micros(x_tc_us);
        let x_cd = x_tc.mul_f64(ratio_pct as f64 / 100.0);
        let d1 = m.predict(x_tc, x_cd);
        let d2 = m.predict(x_tc * 2, x_cd * 2);
        let ratio = d2.as_nanos() as f64 / d1.as_nanos().max(1) as f64;
        prop_assert!((ratio - 2.0).abs() < 0.01, "scaling ratio {ratio}");
    }
}
