//! Content-derived kernel identity: the same structural definition must
//! fingerprint identically across independent builds (and therefore across
//! runs and processes), and fused launches must replay from the device
//! cache on a repeated sweep instead of re-simulating.

use std::sync::Arc;

use proptest::prelude::*;
use tacker::prelude::*;
use tacker::KernelProfiler;
use tacker_kernel::ast::{Expr, Stmt};
use tacker_kernel::{Dim3, KernelDef, KernelKind, ResourceUsage};
use tacker_sim::{Device, GpuSpec};
use tacker_workloads::parboil::Benchmark;
use tacker_workloads::{BeApp, Intensity, LcService, WorkloadKernel};

fn tc_kernel() -> WorkloadKernel {
    let def = tacker_workloads::dnn::compile::shared_gemm();
    tacker_workloads::gemm::gemm_workload(
        &def,
        tacker_workloads::gemm::GemmShape::new(2048, 2048, 1024),
    )
}

/// Two independent `FusionLibrary` builds (fresh devices, fresh profilers)
/// of the same (TC, CD) pair must produce fused kernels with the same
/// `KernelId` and the same launch fingerprint — the property that lets a
/// later run (or another process) hit the execution cache entries a
/// previous run populated.
#[test]
fn fused_defs_fingerprint_identically_across_library_builds() {
    let build = || {
        let device = Arc::new(Device::new(GpuSpec::rtx2080ti()));
        let profiler = Arc::new(KernelProfiler::new(device));
        let lib = FusionLibrary::new(profiler);
        let tc = tc_kernel();
        let cd = Benchmark::Cutcp.task()[0].clone();
        let entry = lib.prepare(&tc, &cd).unwrap().expect("pair fuses");
        let e = entry.lock().unwrap();
        let launch = e.fused.launch(tc.grid, cd.grid, &tc.bindings, &cd.bindings);
        (e.fused.def().id(), e.fused.config(), launch.fingerprint())
    };
    let (id_a, cfg_a, fp_a) = build();
    let (id_b, cfg_b, fp_b) = build();
    assert_eq!(cfg_a, cfg_b, "offline selection must be deterministic");
    assert_eq!(id_a, id_b, "fused KernelId must be content-derived");
    assert_eq!(fp_a, fp_b, "fused launch fingerprint must be stable");
}

/// A repeated identical sweep on a shared device replays *fused* launches
/// from the cache: the second run must report fused cache hits and add no
/// new misses.
#[test]
fn second_sweep_run_hits_fused_cache() {
    let gemm = tacker_workloads::dnn::compile::shared_gemm();
    let mut kernels = Vec::new();
    for _ in 0..2 {
        kernels.push(tacker_workloads::gemm::gemm_workload(
            &gemm,
            tacker_workloads::gemm::GemmShape::new(2048, 1024, 512),
        ));
    }
    let lcs = vec![LcService::new("svc", 8, kernels)];
    let bes = vec![BeApp::new(
        "cutcp",
        Intensity::Compute,
        Benchmark::Cutcp.task(),
    )];
    let config = ExperimentConfig::default().with_queries(12).with_seed(3);
    let device = Arc::new(Device::new(GpuSpec::rtx2080ti()));

    let cold = run_pair_sweep(&device, &lcs, &bes, &[Policy::Tacker], &config, 1).unwrap();
    assert!(
        cold.iter().any(|c| c.report.fused_launches > 0),
        "scenario must exercise fusion for this test to be meaningful"
    );
    let (fused_hits_cold, fused_misses_cold) = device.fused_cache_stats();
    assert!(fused_misses_cold > 0, "cold run must simulate fused plans");

    let warm = run_pair_sweep(&device, &lcs, &bes, &[Policy::Tacker], &config, 1).unwrap();
    let (fused_hits_warm, fused_misses_warm) = device.fused_cache_stats();
    assert!(
        fused_hits_warm > fused_hits_cold,
        "second sweep reported no fused cache hits"
    );
    assert_eq!(
        fused_misses_warm, fused_misses_cold,
        "second identical sweep re-simulated fused launches"
    );
    for (c, w) in cold.iter().zip(&warm) {
        assert_eq!(c.report.query_latencies(), w.report.query_latencies());
    }
}

fn gen_kernel(name: &str, warps: u32, iters: u64, ops: u64, smem_kb: u64, regs: u32) -> KernelDef {
    KernelDef::builder(name, KernelKind::Cuda)
        .block_dim(Dim3::x(warps * 32))
        .resources(ResourceUsage::new(regs, smem_kb * 1024))
        .param("n")
        .body(vec![
            Stmt::loop_over(
                "i",
                Expr::lit(iters),
                vec![
                    Stmt::global_load("x", Expr::lit(16), 0.5),
                    Stmt::sync_threads(),
                    Stmt::compute_cd(Expr::lit(ops), "fma"),
                ],
            ),
            Stmt::global_store("y", Expr::lit(8), 0.0),
        ])
        .build()
        .expect("generated kernel is valid")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Structurally-equal definitions share a fingerprint; perturbing any
    /// single content field (name, block shape, loop count, op count,
    /// shared memory, registers) changes it.
    #[test]
    fn content_equal_defs_fingerprint_equal_and_perturbations_differ(
        warps in 1u32..=8,
        iters in 1u64..=32,
        ops in 1u64..=512,
        smem_kb in 0u64..=16,
        regs in 16u32..=64,
    ) {
        let a = gen_kernel("gen", warps, iters, ops, smem_kb, regs);
        let b = gen_kernel("gen", warps, iters, ops, smem_kb, regs);
        prop_assert_eq!(a.id(), b.id());

        let perturbed = [
            gen_kernel("gen2", warps, iters, ops, smem_kb, regs),
            gen_kernel("gen", warps + 1, iters, ops, smem_kb, regs),
            gen_kernel("gen", warps, iters + 1, ops, smem_kb, regs),
            gen_kernel("gen", warps, iters, ops + 1, smem_kb, regs),
            gen_kernel("gen", warps, iters, ops, smem_kb + 1, regs),
            gen_kernel("gen", warps, iters, ops, smem_kb, regs + 1),
        ];
        for p in perturbed {
            prop_assert!(a.id() != p.id(), "perturbed def {} aliased {}", p.name(), a.name());
        }
    }
}
