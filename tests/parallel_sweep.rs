//! Integration tests for the parallel sweep layer: a grid executed at
//! `--jobs 4` must be bit-identical to the same grid at `--jobs 1`, and
//! the shared device cache must survive concurrent access unchanged.

use std::sync::Arc;

use tacker::prelude::*;
use tacker::sweep::cell_seed;
use tacker_sim::{Device, GpuSpec};
use tacker_workloads::parboil::Benchmark;
use tacker_workloads::{BeApp, Intensity, LcService};

/// Small synthetic LC services so the grid stays fast; the sweep code
/// paths (calibration, library preparation, fused scheduling) are the same
/// ones the paper-scale services exercise.
fn tiny_lc(name: &str, m: u64, elems: u64) -> LcService {
    let gemm = tacker_workloads::dnn::compile::shared_gemm();
    let mut kernels = Vec::new();
    for _ in 0..2 {
        kernels.push(tacker_workloads::gemm::gemm_workload(
            &gemm,
            tacker_workloads::gemm::GemmShape::new(m, 1024, 512),
        ));
        kernels.push(tacker_workloads::dnn::elementwise::elementwise_workload(
            &tacker_workloads::dnn::elementwise::relu(),
            elems,
        ));
    }
    LcService::new(name, 8, kernels)
}

fn grid() -> (Vec<LcService>, Vec<BeApp>) {
    let lcs = vec![
        tiny_lc("svc-a", 2048, 4_000_000),
        tiny_lc("svc-b", 1024, 2_000_000),
    ];
    let bes = vec![
        BeApp::new("cutcp", Intensity::Compute, Benchmark::Cutcp.task()),
        BeApp::new("fft", Intensity::Compute, Benchmark::Fft.task()),
        BeApp::new("spmv", Intensity::Memory, Benchmark::Spmv.task()),
    ];
    (lcs, bes)
}

/// The satellite determinism requirement: a 2×3 pair sweep at jobs=4
/// produces `RunReport`s (latencies, fused launches, BE work) identical to
/// jobs=1, on separate devices.
#[test]
fn two_by_three_sweep_is_identical_at_jobs_1_and_4() {
    let config = ExperimentConfig::default().with_queries(25).with_seed(7);
    let (lcs, bes) = grid();
    let policies = [Policy::Baymax, Policy::Tacker];

    let serial_device = Arc::new(Device::new(GpuSpec::rtx2080ti()));
    let serial = run_pair_sweep(&serial_device, &lcs, &bes, &policies, &config, 1).unwrap();
    let parallel_device = Arc::new(Device::new(GpuSpec::rtx2080ti()));
    let parallel = run_pair_sweep(&parallel_device, &lcs, &bes, &policies, &config, 4).unwrap();

    assert_eq!(serial.len(), 2 * 3 * 2);
    assert_eq!(serial.len(), parallel.len());
    for (s, p) in serial.iter().zip(&parallel) {
        assert_eq!(
            (s.lc.as_str(), s.be.as_str(), s.policy),
            (p.lc.as_str(), p.be.as_str(), p.policy)
        );
        let tag = format!("{}+{} {:?}", s.lc, s.be, s.policy);
        assert_eq!(
            s.report.query_latencies(),
            p.report.query_latencies(),
            "{tag}"
        );
        assert_eq!(s.report.fused_launches, p.report.fused_launches, "{tag}");
        assert_eq!(s.report.be_work, p.report.be_work, "{tag}");
        assert_eq!(s.report.be_kernels, p.report.be_kernels, "{tag}");
        assert_eq!(
            s.report.qos_violations(),
            p.report.qos_violations(),
            "{tag}"
        );
        assert_eq!(s.report.wall, p.report.wall, "{tag}");
    }
}

/// Sharing one device between a serial and a parallel sweep must not
/// change results either: memoization is exact, so warm caches only make
/// runs faster, never different.
#[test]
fn shared_device_cache_does_not_change_results() {
    let config = ExperimentConfig::default().with_queries(15).with_seed(11);
    let (lcs, bes) = grid();
    let device = Arc::new(Device::new(GpuSpec::rtx2080ti()));
    let cold = run_pair_sweep(&device, &lcs, &bes, &[Policy::Tacker], &config, 4).unwrap();
    let (_, misses_cold) = device.cache_stats();
    let (fused_hits_cold, _) = device.fused_cache_stats();
    let warm = run_pair_sweep(&device, &lcs, &bes, &[Policy::Tacker], &config, 2).unwrap();
    let (_, misses_warm) = device.cache_stats();
    let (fused_hits_warm, _) = device.fused_cache_stats();
    // Kernel ids are content-derived, so a rebuilt fusion library yields
    // the same fused KernelId and launch fingerprint as the first run.
    // Every launch — plain and fused alike — replays from the cache: the
    // warm sweep must add zero misses and report fused hits.
    let added = misses_warm - misses_cold;
    assert_eq!(
        added, 0,
        "warm sweep re-simulated launches: {added} new misses vs {misses_cold} cold"
    );
    assert!(
        fused_hits_warm > fused_hits_cold,
        "warm sweep reported no fused cache hits"
    );
    for (c, w) in cold.iter().zip(&warm) {
        assert_eq!(c.report.query_latencies(), w.report.query_latencies());
        assert_eq!(c.report.be_work, w.report.be_work);
    }
}

/// Per-cell seeds depend only on coordinates, not worker identity or
/// execution order — the sweeps above rely on this.
#[test]
fn cell_seeds_are_order_independent() {
    let config = ExperimentConfig::default();
    let forward = [
        cell_seed(&config, "a", "x", Policy::Tacker),
        cell_seed(&config, "a", "y", Policy::Tacker),
        cell_seed(&config, "b", "x", Policy::Tacker),
    ];
    let reverse = [
        cell_seed(&config, "b", "x", Policy::Tacker),
        cell_seed(&config, "a", "y", Policy::Tacker),
        cell_seed(&config, "a", "x", Policy::Tacker),
    ];
    assert_eq!(forward[0], reverse[2]);
    assert_eq!(forward[1], reverse[1]);
    assert_eq!(forward[2], reverse[0]);
    assert_ne!(forward[0], forward[1]);
    assert_ne!(forward[0], forward[2]);
}
