//! Pins the workspace's public re-export surface.
//!
//! The consolidated API (one builder idiom, one prelude) is a contract:
//! this test extracts every `pub use` statement from each crate's
//! `lib.rs` and compares the normalized list against
//! `tests/api_surface.snapshot`. An export added, removed, or renamed
//! without updating the snapshot fails CI — surface changes must be
//! deliberate and reviewed next to the snapshot diff.
//!
//! To update after an intentional change:
//!
//! ```sh
//! UPDATE_API_SURFACE=1 cargo test --test api_surface
//! ```

use std::fmt::Write as _;
use std::path::Path;

/// Crates whose `lib.rs` re-exports form the public surface
/// (`tacker-cli` is a pure binary — no library surface to pin).
const CRATES: &[&str] = &[
    "bench",
    "core",
    "fuser",
    "kernel",
    "par",
    "predictor",
    "sim",
    "trace",
    "workloads",
];

/// Extracts every `pub use …;` statement (possibly spanning lines) from
/// Rust source, normalized to single-space separation.
fn pub_uses(source: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut current: Option<String> = None;
    for raw in source.lines() {
        let line = raw.trim();
        if current.is_none() && (line.starts_with("pub use ") || line == "pub use") {
            current = Some(String::new());
        }
        if let Some(stmt) = current.as_mut() {
            if !stmt.is_empty() {
                stmt.push(' ');
            }
            stmt.push_str(line);
            if line.ends_with(';') {
                out.push(current.take().expect("statement in progress"));
            }
        }
    }
    out
}

/// One sorted, labelled block per crate: the normalized surface text.
fn surface() -> String {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut text = String::new();
    for krate in CRATES {
        let lib = root.join("crates").join(krate).join("src/lib.rs");
        let source =
            std::fs::read_to_string(&lib).unwrap_or_else(|e| panic!("read {}: {e}", lib.display()));
        let mut uses = pub_uses(&source);
        uses.sort();
        writeln!(text, "# tacker-{krate}").expect("write to string");
        for stmt in uses {
            writeln!(text, "{stmt}").expect("write to string");
        }
        text.push('\n');
    }
    text
}

#[test]
fn exports_match_snapshot() {
    let snapshot_path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/api_surface.snapshot");
    let current = surface();
    if std::env::var_os("UPDATE_API_SURFACE").is_some() {
        std::fs::write(&snapshot_path, &current).expect("write snapshot");
        return;
    }
    let pinned = std::fs::read_to_string(&snapshot_path)
        .expect("tests/api_surface.snapshot missing — run with UPDATE_API_SURFACE=1 to create");
    assert_eq!(
        current, pinned,
        "public re-export surface drifted from tests/api_surface.snapshot; \
         if the change is intentional, regenerate with \
         `UPDATE_API_SURFACE=1 cargo test --test api_surface` and review the diff"
    );
}
