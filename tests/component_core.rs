//! Golden pin of the component-core engine against the pre-refactor
//! event-by-event engine, plus properties of the `tacker_sim::core`
//! simulation kernel itself.
//!
//! The golden constants below were captured from the engine *before* it
//! was rewritten onto the component/event-handler kernel, on a mixed
//! plan exercising every behaviour class at once: Tensor and CUDA
//! compute, a partial-arrival barrier, a global access with a DRAM
//! stage, and PTB-style iteration (fewer issued blocks than original
//! blocks, so warps loop). Any drift in the trace stream or the
//! `KernelRun` under the component engine is a determinism regression.

use std::cell::RefCell;
use std::rc::Rc;

use proptest::prelude::*;
use tacker_kernel::ast::{ComputeUnit, MemDir, MemSpace};
use tacker_kernel::{BlockProgram, Op, ResourceUsage, WarpProgram, WarpRole};
use tacker_sim::core::{
    route_payload, Event, EventHandler, Router, Schedule, Simulation, SimulationContext,
    ROUTE_PAYLOAD_MASK,
};
use tacker_sim::queue::{HeapQueue, SimQueue};
use tacker_sim::{
    simulate_traced, simulate_with_options, EngineOptions, ExecutablePlan, GpuSpec, QueueKind,
};
use tacker_trace::{NoopSink, RingSink};

/// The pinned plan: a fused-style block with a TC role (compute →
/// barrier → global access with 50% locality) and a CD role, issued as
/// one persistent 136-block wave over larger original grids, so every
/// warp iterates PTB-style.
fn mixed_ptb_plan() -> ExecutablePlan {
    let tc = WarpRole {
        name: "tc".into(),
        warps: 2,
        program: WarpProgram::new(vec![
            Op::Compute {
                unit: ComputeUnit::Tensor,
                ops: 8_192,
            },
            Op::Barrier { id: 1 },
            Op::Memory {
                dir: MemDir::Read,
                space: MemSpace::Global,
                bytes: 4 * 1024,
                locality: 0.5,
            },
        ]),
        original_blocks: 200,
    };
    let cd = WarpRole {
        name: "cd".into(),
        warps: 3,
        program: WarpProgram::new(vec![Op::Compute {
            unit: ComputeUnit::Cuda,
            ops: 2_048,
        }]),
        original_blocks: 137,
    };
    let block = BlockProgram::new(vec![tc, cd]);
    let threads = block.threads();
    ExecutablePlan::assemble(
        "golden_mixed_ptb",
        true,
        block,
        136,
        ResourceUsage::new(32, 0),
        threads,
        None,
    )
}

fn fnv1a(hash: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *hash ^= u64::from(b);
        *hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
}

/// Golden values captured from the pre-refactor engine (see module doc).
const GOLDEN_TRACE_FNV: u64 = 9_119_947_320_825_117_019;
const GOLDEN_TRACE_LEN: usize = 20;
const GOLDEN_CYCLES: u64 = 6_643;
const GOLDEN_EVENTS: u64 = 43;
const GOLDEN_DRAM_BYTES_BITS: u64 = 4_667_981_013_769_519_104;
const GOLDEN_TC_BUSY: u64 = 192;
const GOLDEN_CD_BUSY: u64 = 576;

#[test]
fn golden_trace_and_run_match_pre_refactor_engine() {
    let spec = GpuSpec::rtx2080ti();
    let plan = mixed_ptb_plan();
    let sink = RingSink::unbounded();
    let run = simulate_traced(&spec, &plan, 68, &sink).expect("golden plan simulates");
    let events = sink.events();
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for ev in &events {
        fnv1a(&mut hash, format!("{ev:?}").as_bytes());
    }
    assert_eq!(
        (hash, events.len()),
        (GOLDEN_TRACE_FNV, GOLDEN_TRACE_LEN),
        "RingSink event stream drifted from the pre-refactor engine"
    );
    assert_eq!(
        (
            run.cycles.get(),
            run.events,
            run.dram_bytes.to_bits(),
            run.activity.tc_busy.get(),
            run.activity.cd_busy.get(),
        ),
        (
            GOLDEN_CYCLES,
            GOLDEN_EVENTS,
            GOLDEN_DRAM_BYTES_BITS,
            GOLDEN_TC_BUSY,
            GOLDEN_CD_BUSY,
        )
    );
    // Traced runs force macro-stepping off: one pop per micro-event.
    assert_eq!(run.pops, run.events);

    // Every untraced configuration reproduces the same KernelRun.
    for (queue, macro_step) in [
        (QueueKind::Heap, false),
        (QueueKind::Heap, true),
        (QueueKind::Calendar, false),
        (QueueKind::Calendar, true),
    ] {
        let opts = EngineOptions::default()
            .with_queue(queue)
            .with_macro_step(macro_step);
        let r = simulate_with_options(&spec, &plan, 68, &NoopSink, opts).unwrap();
        assert_eq!(r.cycles.get(), GOLDEN_CYCLES, "{opts:?}");
        assert_eq!(r.events, GOLDEN_EVENTS, "{opts:?}");
        assert_eq!(r.dram_bytes.to_bits(), GOLDEN_DRAM_BYTES_BITS, "{opts:?}");
    }
}

/// A component that appends every delivered event to a log shared by all
/// probes, tagged with the probe's *logical* identity — so the global
/// interleaving across components is observable.
struct Probe {
    tag: u8,
    log: Rc<RefCell<Vec<(u8, u64, u32)>>>,
}

impl<Q: SimQueue> EventHandler<Q> for Probe {
    fn on_event(&mut self, event: Event, _ctx: &mut SimulationContext<'_, Q>) {
        self.log
            .borrow_mut()
            .push((self.tag, event.time.to_bits(), event.payload));
    }
}

const PROBES: usize = 4;

/// Runs `events` (time, logical component tag, payload) through a
/// [`Router`] whose probes were registered in `order`, returning the
/// globally observed `(tag, time, payload)` delivery sequence.
fn observed_sequence(order: &[usize], events: &[(u32, usize, u32)]) -> Vec<(u8, u64, u32)> {
    let log = Rc::new(RefCell::new(Vec::new()));
    let mut probes: Vec<Probe> = order
        .iter()
        .map(|&tag| Probe {
            tag: tag as u8,
            log: Rc::clone(&log),
        })
        .collect();
    let mut router = Router::new();
    let mut address = [None; PROBES];
    for probe in &mut probes {
        let tag = probe.tag as usize;
        address[tag] = Some(router.add(&format!("probe-{tag}"), probe));
    }
    let mut sim = Simulation::new(HeapQueue::new());
    for &(time, tag, payload) in events {
        sim.schedule(
            f64::from(time),
            route_payload(address[tag].expect("every tag registered"), payload),
        );
    }
    sim.run(&mut router);
    drop(router);
    drop(probes);
    Rc::try_unwrap(log).expect("probes dropped").into_inner()
}

/// The `n`-th (Lehmer-coded) permutation of `0..PROBES`.
fn nth_permutation(mut n: usize) -> Vec<usize> {
    let mut pool: Vec<usize> = (0..PROBES).collect();
    let mut order = Vec::with_capacity(PROBES);
    for k in (1..=PROBES).rev() {
        order.push(pool.remove(n % k));
        n /= k;
    }
    order
}

proptest! {
    /// Registration order on the [`Router`] names destinations, nothing
    /// more: the same schedule calls produce the identical global
    /// delivery sequence — same components, same times, same payloads,
    /// same interleaving — under any permutation of `Router::add` calls.
    #[test]
    fn router_delivery_is_independent_of_registration_order(
        events in prop::collection::vec(
            (0u32..64, 0usize..PROBES, 0u32..=ROUTE_PAYLOAD_MASK),
            1..64,
        ),
        perm in 0usize..24,
    ) {
        let order = nth_permutation(perm);
        let baseline = observed_sequence(&(0..PROBES).collect::<Vec<_>>(), &events);
        let permuted = observed_sequence(&order, &events);
        prop_assert_eq!(baseline, permuted, "registration order {:?} changed delivery", order);
    }
}
