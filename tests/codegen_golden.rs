//! Golden tests for the CUDA source renderer: the structural features of
//! the paper's listings (Figs. 5, 7, 9) must appear verbatim in rendered
//! output, and rendering must be deterministic.

use tacker_fuser::{fuse_flexible, to_ptb, FusionConfig};
use tacker_kernel::{source, SmCapacity};
use tacker_workloads::parboil::Benchmark;

#[test]
fn ptb_render_matches_fig7_shape() {
    let cd = Benchmark::Sgemm.kernel();
    let ptb = to_ptb(&cd).expect("ptb");
    let src = source::render(&ptb);
    // Fig. 7's loop header, verbatim structure.
    assert!(src.contains(
        "for (int block_pos = blockIdx.x; block_pos < original_block_num; block_pos += issued_block_num) {"
    ));
    // The grid became a parameter of the signature.
    assert!(src.contains("int original_block_num"));
    assert!(src.contains("int issued_block_num"));
    // Original body is still inside.
    assert!(src.contains("__syncthreads();"));
}

#[test]
fn fused_render_matches_fig5_and_fig9_shape() {
    let tc = tacker_workloads::gemm::gemm_kernel();
    let cd = Benchmark::Fft.kernel();
    let fused = fuse_flexible(
        &tc,
        &cd,
        FusionConfig {
            tc_blocks: 1,
            cd_blocks: 2,
        },
        &SmCapacity::TURING,
    )
    .expect("fuses");
    let src = source::render(fused.def());

    // Fig. 5: thread-range guards with the thread-step remap for the
    // second and later branches.
    assert!(src.contains("if (threadIdx.x < 256) {"));
    assert!(src.contains("else if (threadIdx.x < 512) {"));
    assert!(src.contains("else if (threadIdx.x < 768) {"));
    assert!(src.contains("int thread_id = threadIdx.x - 256; // thread step"));

    // Fig. 9: branch-private bar.sync with per-branch ids and thread
    // counts; no block-wide __syncthreads() anywhere.
    assert!(src.contains("asm volatile(\"bar.sync 1, 256;\");"));
    assert!(src.contains("asm volatile(\"bar.sync 2, 256;\");"));
    assert!(src.contains("asm volatile(\"bar.sync 3, 256;\");"));
    assert!(!src.contains("__syncthreads"));

    // Each branch runs its own PTB loop over its own grid parameter.
    assert!(src.contains("block_pos < ((tc_original_block_num + 0) / 1)"));
    assert!(src.contains("block_pos < ((cd_original_block_num + 1) / 2)"));
    assert!(src.contains("block_pos < ((cd_original_block_num + 0) / 2)"));

    // Deterministic rendering.
    assert_eq!(src, source::render(fused.def()));
}

#[test]
fn every_parboil_kernel_renders_nonempty_cuda() {
    for b in Benchmark::ALL {
        let src = source::render(&b.kernel());
        assert!(
            src.contains("__global__ void"),
            "{} missing kernel signature",
            b.name()
        );
        assert!(src.lines().count() > 5, "{} suspiciously short", b.name());
    }
}
