//! Property-based tests for the discrete-event GPU engine: monotonicity,
//! determinism and conservation invariants.

use proptest::prelude::*;
use tacker_kernel::ast::{ComputeUnit, MemDir, MemSpace};
use tacker_kernel::{BlockProgram, Op, ResourceUsage, WarpProgram, WarpRole};
use tacker_sim::{simulate, ExecutablePlan, GpuSpec};

fn plan(
    unit: ComputeUnit,
    warps: u32,
    ops: u64,
    bytes: u64,
    locality: f64,
    originals: u64,
) -> ExecutablePlan {
    let mut body = vec![Op::Compute { unit, ops }];
    if bytes > 0 {
        body.push(Op::Memory {
            dir: MemDir::Read,
            space: MemSpace::Global,
            bytes,
            locality,
        });
    }
    let block = BlockProgram::new(vec![WarpRole {
        name: "w".into(),
        warps,
        program: WarpProgram::new(body),
        original_blocks: originals,
    }]);
    let threads = block.threads();
    ExecutablePlan::assemble(
        "prop",
        false,
        block,
        originals.min(68 * 4),
        ResourceUsage::new(32, 0),
        threads,
        None,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// More compute work never finishes earlier.
    #[test]
    fn duration_monotone_in_work(
        warps in 1u32..8,
        ops in 1_000u64..200_000,
        originals in 1u64..500,
    ) {
        let spec = GpuSpec::rtx2080ti();
        let a = simulate(&spec, &plan(ComputeUnit::Cuda, warps, ops, 0, 0.0, originals))
            .expect("sim a");
        let b = simulate(&spec, &plan(ComputeUnit::Cuda, warps, ops * 2, 0, 0.0, originals))
            .expect("sim b");
        prop_assert!(b.cycles >= a.cycles);
    }

    /// Better cache locality never slows a kernel down, and strictly
    /// reduces DRAM traffic.
    #[test]
    fn locality_monotone(
        warps in 1u32..8,
        bytes in 1_024u64..65_536,
        lo in 0.0f64..0.5,
        hi_delta in 0.1f64..0.5,
    ) {
        let spec = GpuSpec::rtx2080ti();
        let cold = simulate(&spec, &plan(ComputeUnit::Cuda, warps, 100, bytes, lo, 68))
            .expect("cold");
        let warm = simulate(
            &spec,
            &plan(ComputeUnit::Cuda, warps, 100, bytes, lo + hi_delta, 68),
        )
        .expect("warm");
        prop_assert!(warm.cycles <= cold.cycles);
        prop_assert!(warm.dram_bytes < cold.dram_bytes + 1.0);
    }

    /// Simulation is deterministic.
    #[test]
    fn simulation_is_deterministic(
        warps in 1u32..8,
        ops in 1_000u64..100_000,
        bytes in 0u64..16_384,
        originals in 1u64..300,
    ) {
        let spec = GpuSpec::rtx2080ti();
        let p = plan(ComputeUnit::Tensor, warps, ops, bytes, 0.5, originals);
        let a = simulate(&spec, &p).expect("a");
        let b = simulate(&spec, &p).expect("b");
        prop_assert_eq!(a, b);
    }

    /// Pipeline busy time equals the work divided by the pipeline rate
    /// (compute is conserved: no work lost or duplicated).
    #[test]
    fn compute_work_is_conserved(
        warps in 1u32..8,
        ops in 1_000u64..100_000,
        originals in 1u64..200,
    ) {
        let spec = GpuSpec::rtx2080ti();
        let p = plan(ComputeUnit::Tensor, warps, ops, 0, 0.0, originals);
        let run = simulate(&spec, &p).expect("sim");
        // Representative SM executes its share of blocks; every executed
        // warp-op occupies the pipeline for ops / rate cycles.
        let blocks_on_sm: u64 = (0..p.issued_blocks).step_by(68).map(|b| {
            // iterations of the role on this block
            let issued = p.issued_blocks;
            if b >= originals { 0 } else { (originals - b - 1) / issued + 1 }
        }).sum();
        let expected = blocks_on_sm as f64 * warps as f64 * ops as f64 / spec.tc_ops_per_cycle;
        let busy = run.activity.tc_busy.get() as f64;
        prop_assert!((busy - expected).abs() <= expected * 0.01 + 2.0,
            "busy {busy} vs expected {expected}");
    }

    /// Two independent roles never run longer than the same roles
    /// serialized into one (overlap can only help).
    #[test]
    fn heterogeneous_roles_overlap(
        tc_ops in 10_000u64..200_000,
        cd_ops in 1_000u64..20_000,
    ) {
        let spec = GpuSpec::rtx2080ti();
        let fused_block = BlockProgram::new(vec![
            WarpRole {
                name: "tc".into(),
                warps: 4,
                program: WarpProgram::new(vec![Op::Compute { unit: ComputeUnit::Tensor, ops: tc_ops }]),
                original_blocks: 68,
            },
            WarpRole {
                name: "cd".into(),
                warps: 4,
                program: WarpProgram::new(vec![Op::Compute { unit: ComputeUnit::Cuda, ops: cd_ops }]),
                original_blocks: 68,
            },
        ]);
        let threads = fused_block.threads();
        let fused = ExecutablePlan::assemble(
            "fused",
            false,
            fused_block,
            68,
            ResourceUsage::new(32, 0),
            threads,
            None,
        );
        let f = simulate(&spec, &fused).expect("fused");
        let a = simulate(&spec, &plan(ComputeUnit::Tensor, 4, tc_ops, 0, 0.0, 68)).expect("a");
        let b = simulate(&spec, &plan(ComputeUnit::Cuda, 4, cd_ops, 0, 0.0, 68)).expect("b");
        // Allow a small scheduling-overhead margin.
        let serial = a.cycles.get() + b.cycles.get();
        prop_assert!(f.cycles.get() <= serial, "fused {} vs serial {serial}", f.cycles);
    }
}

#[test]
fn memoization_returns_identical_results() {
    use std::sync::Arc;
    use tacker_kernel::{Bindings, KernelLaunch};
    let device = tacker_sim::Device::new(GpuSpec::rtx2080ti());
    let def = tacker_workloads::parboil::Benchmark::Fft.shared_kernel();
    let mut b = Bindings::new();
    b.insert("iters".into(), 5);
    let launch = KernelLaunch::new(Arc::clone(&def), 272, b);
    let a = device.run_launch(&launch).expect("first");
    let c = device.run_launch(&launch).expect("second");
    assert_eq!(a, c);
    assert_eq!(device.cache_stats().0, 1);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The device's shared result handles never alias mutably: every
    /// cache hit is the same allocation, and deriving a perturbed copy
    /// (`scale_run`) leaves the cached run untouched.
    #[test]
    fn shared_runs_are_immutable_under_perturbation(
        blocks in 1u64..512,
        iters in 1u64..8,
        factor in 1.01f64..4.0,
    ) {
        use std::sync::Arc;
        use tacker_kernel::{Bindings, KernelLaunch};
        let device = tacker_sim::Device::new(GpuSpec::rtx2080ti());
        let def = tacker_workloads::parboil::Benchmark::Fft.shared_kernel();
        let mut b = Bindings::new();
        b.insert("iters".into(), iters);
        let launch = KernelLaunch::new(Arc::clone(&def), blocks, b);
        let first = device.run_launch(&launch).expect("first");
        let hit = device.run_launch(&launch).expect("hit");
        prop_assert!(Arc::ptr_eq(&first, &hit), "hit must share the cached allocation");
        let before = (*first).clone();
        let scaled = tacker_sim::scale_run(&hit, factor);
        // The stretch produced a fresh owned value; the shared run is
        // bit-for-bit what it was, and later hits still alias it.
        prop_assert_eq!(&*first, &before);
        prop_assert!(scaled.duration >= before.duration);
        let again = device.run_launch(&launch).expect("again");
        prop_assert!(Arc::ptr_eq(&first, &again));
    }

    /// Every engine-produced run carries a summary that agrees with its
    /// base fields: utilizations in [0, 1], duration/cycles/events
    /// mirrored, span counts matching the interval lists.
    #[test]
    fn run_summaries_agree_with_base_fields(
        warps in 1u32..8,
        ops in 1_000u64..200_000,
        bytes in 0u64..65_536,
        originals in 1u64..500,
    ) {
        let spec = GpuSpec::rtx2080ti();
        let run = simulate(&spec, &plan(ComputeUnit::Cuda, warps, ops, bytes, 0.3, originals))
            .expect("sim");
        prop_assert_eq!(run.summary, tacker_sim::RunSummary::of(&run));
        prop_assert_eq!(run.summary.duration, run.duration);
        prop_assert_eq!(run.summary.cycles, run.cycles);
        prop_assert_eq!(run.summary.events, run.events);
        prop_assert_eq!(run.summary.tc_spans as usize, run.tc_intervals.len());
        prop_assert_eq!(run.summary.cd_spans as usize, run.cd_intervals.len());
        prop_assert!((0.0..=1.0).contains(&run.summary.tc_util));
        prop_assert!((0.0..=1.0).contains(&run.summary.cd_util));
        let (tc, cd) = run.pipe_utilizations();
        prop_assert!((tc - run.activity.tc_utilization(run.cycles)).abs() < 1e-12);
        prop_assert!((cd - run.activity.cd_utilization(run.cycles)).abs() < 1e-12);
    }
}
