//! Property tests for the occupancy calculator: monotonicity and
//! consistency of `SmCapacity::blocks_per_sm`.

use proptest::prelude::*;
use tacker_kernel::{ResourceUsage, SmCapacity};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Using more of any resource never increases occupancy.
    #[test]
    fn occupancy_is_antitone_in_resource_usage(
        regs in 1u32..256,
        smem_kb in 0u64..96,
        threads in prop::sample::select(vec![32u32, 64, 128, 256, 512, 1024]),
        extra_regs in 0u32..64,
        extra_smem in 0u64..16,
    ) {
        for sm in [SmCapacity::TURING, SmCapacity::VOLTA] {
            let base = ResourceUsage::new(regs, smem_kb * 1024);
            let more = ResourceUsage::new(regs + extra_regs, (smem_kb + extra_smem) * 1024);
            prop_assert!(sm.blocks_per_sm(&more, threads) <= sm.blocks_per_sm(&base, threads));
        }
    }

    /// Occupancy never violates any individual limit.
    #[test]
    fn occupancy_respects_every_limit(
        regs in 1u32..256,
        smem_kb in 0u64..128,
        threads in prop::sample::select(vec![32u32, 64, 128, 256, 512, 1024]),
        barriers in 1u32..20,
    ) {
        let sm = SmCapacity::TURING;
        let usage = ResourceUsage::new(regs, smem_kb * 1024).with_barriers(barriers);
        let n = sm.blocks_per_sm(&usage, threads) as u64;
        prop_assert!(n * threads as u64 <= sm.max_threads as u64);
        prop_assert!(n <= sm.max_blocks as u64);
        prop_assert!(n * usage.registers_per_block(threads) <= sm.registers);
        prop_assert!(n * usage.shared_mem_bytes <= sm.shared_mem_bytes);
        prop_assert!(n * barriers as u64 <= sm.max_barriers as u64);
        // `fits` agrees with a nonzero occupancy.
        prop_assert_eq!(sm.fits(&usage, threads), n > 0);
    }

    /// Volta admits at least what Turing admits for any block shape that
    /// fits in 64 KB (more threads, blocks and shared memory per SM).
    #[test]
    fn volta_dominates_turing(
        regs in 1u32..128,
        smem_kb in 0u64..64,
        threads in prop::sample::select(vec![32u32, 64, 128, 256, 512, 1024]),
    ) {
        let usage = ResourceUsage::new(regs, smem_kb * 1024);
        prop_assert!(
            SmCapacity::VOLTA.blocks_per_sm(&usage, threads)
                >= SmCapacity::TURING.blocks_per_sm(&usage, threads)
        );
    }

    /// Fusing two kernels' resources is commutative in shared memory and
    /// register terms.
    #[test]
    fn resource_fusion_is_commutative(
        r1 in 1u32..256, s1 in 0u64..64, r2 in 1u32..256, s2 in 0u64..64,
    ) {
        let a = ResourceUsage::new(r1, s1 * 1024);
        let b = ResourceUsage::new(r2, s2 * 1024);
        prop_assert_eq!(a.fuse_with(&b), b.fuse_with(&a));
    }
}
