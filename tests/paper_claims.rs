//! Integration tests asserting the paper's headline claims end-to-end,
//! at test-friendly scales.

use std::sync::Arc;

use tacker::prelude::*;
use tacker_fuser::{fuse_flexible, FuseError, FusionConfig};
use tacker_kernel::ast::{Expr, Stmt};
use tacker_kernel::{Bindings, Dim3, KernelDef, KernelKind, ResourceUsage, SimTime};
use tacker_sim::{Device, ExecutablePlan, GpuSpec, SimError};
use tacker_workloads::gemm::{gemm_workload, GemmShape};
use tacker_workloads::microbench::{kc, kt, micro_launch};
use tacker_workloads::parboil::Benchmark;
use tacker_workloads::{BeApp, Intensity, LcService};

fn device() -> Arc<Device> {
    Arc::new(Device::new(GpuSpec::rtx2080ti()))
}

/// A small LC service built from real workload kernels, sized for fast
/// debug-mode tests.
fn small_lc() -> LcService {
    let gemm = tacker_workloads::dnn::compile::shared_gemm();
    let mut kernels = Vec::new();
    for _ in 0..3 {
        kernels.push(gemm_workload(&gemm, GemmShape::new(2048, 1024, 512)));
        kernels.push(tacker_workloads::dnn::elementwise::elementwise_workload(
            &tacker_workloads::dnn::elementwise::relu(),
            4_000_000,
        ));
    }
    LcService::new("small", 8, kernels)
}

/// Table I: fusing the Tensor and CUDA microkernels overlaps perfectly;
/// same-pipeline pairs serialize.
#[test]
fn table1_micro_fusion_overlaps() {
    let dev = device();
    let spec = dev.spec().clone();
    let kt_def = Arc::new(kt());
    let kc_def = Arc::new(kc());
    let iters = 64;
    let t_kt = dev
        .run_launch(&micro_launch(&kt_def, 2, iters).launch())
        .expect("kt")
        .duration;
    let t_kc = dev
        .run_launch(&micro_launch(&kc_def, 2, iters).launch())
        .expect("kc")
        .duration;
    // Solo durations tuned equal by construction.
    assert!(
        (t_kc.ratio(t_kt) - 1.0).abs() < 0.1,
        "kt {t_kt} vs kc {t_kc}"
    );

    let fused =
        fuse_flexible(&kt_def, &kc_def, FusionConfig::ONE_TO_ONE, &spec.sm).expect("bench-a fuses");
    let wk_t = micro_launch(&kt_def, 2, iters);
    let wk_c = micro_launch(&kc_def, 2, iters);
    let launch = fused.launch(wk_t.grid, wk_c.grid, &wk_t.bindings, &wk_c.bindings);
    let plan = ExecutablePlan::from_launch(&spec, &launch).expect("plan");
    let t_a = dev.run_plan(&plan).expect("bench-a").duration;
    let norm = t_a.ratio(t_kt);
    assert!(norm < 1.3, "Bench-A should be ≈1.0×, got {norm:.2}");

    // Bench-B/C: twice the same-pipeline work takes ≈2×.
    let t_b = dev
        .run_launch(&micro_launch(&kt_def, 4, iters).launch())
        .expect("kt x2")
        .duration;
    assert!(
        (t_b.ratio(t_kt) - 2.0).abs() < 0.3,
        "Bench-B {:.2}",
        t_b.ratio(t_kt)
    );
}

/// §V-D: a fused kernel that keeps a block-wide `__syncthreads()` in one
/// branch deadlocks; the fuser's `bar.sync` rewrite avoids it.
#[test]
fn unrewritten_sync_threads_deadlocks() {
    let spec = GpuSpec::rtx2080ti();
    // Hand-build what a naive fuser would produce: two thread ranges where
    // one branch uses a block-wide barrier.
    let bad = KernelDef::builder("naive_fused", KernelKind::Fused)
        .block_dim(Dim3::x(128))
        .resources(ResourceUsage::new(32, 0))
        .body(vec![
            Stmt::ThreadRange {
                lo: 0,
                hi: 64,
                body: vec![
                    Stmt::compute_tc(Expr::lit(64), "mma"),
                    Stmt::sync_threads(), // block-wide: branch B never arrives
                    Stmt::compute_tc(Expr::lit(64), "mma"),
                ],
            },
            Stmt::ThreadRange {
                lo: 64,
                hi: 128,
                body: vec![Stmt::compute_cd(Expr::lit(64), "fma")],
            },
        ])
        .build()
        .expect("builds");
    let launch = tacker_kernel::KernelLaunch::new(Arc::new(bad), 68, Bindings::new());
    let plan = ExecutablePlan::from_launch(&spec, &launch).expect("plan");
    let err = tacker_sim::simulate(&spec, &plan).expect_err("must deadlock");
    assert!(matches!(err, SimError::Deadlock { .. }), "got {err}");

    // The real fuser's output runs fine on the same structure.
    let tc = KernelDef::builder("tc", KernelKind::Tensor)
        .block_dim(Dim3::x(64))
        .resources(ResourceUsage::new(32, 0))
        .body(vec![
            Stmt::compute_tc(Expr::lit(64), "mma"),
            Stmt::sync_threads(),
            Stmt::compute_tc(Expr::lit(64), "mma"),
        ])
        .build()
        .expect("tc");
    let cd = KernelDef::builder("cd", KernelKind::Cuda)
        .block_dim(Dim3::x(64))
        .resources(ResourceUsage::new(32, 0))
        .body(vec![Stmt::compute_cd(Expr::lit(64), "fma")])
        .build()
        .expect("cd");
    let fused = fuse_flexible(&tc, &cd, FusionConfig::ONE_TO_ONE, &spec.sm).expect("fuses");
    let launch = fused.launch(68, 68, &Bindings::new(), &Bindings::new());
    let plan = ExecutablePlan::from_launch(&spec, &launch).expect("plan");
    assert!(tacker_sim::simulate(&spec, &plan).is_ok());
}

/// §VIII-H: black-box cuDNN kernels cannot be fused or PTB-transformed.
#[test]
fn cudnn_kernels_are_opaque() {
    let sm = tacker_kernel::SmCapacity::TURING;
    let cudnn =
        tacker_workloads::dnn::cudnn::conv_workload(GemmShape::new(8192, 256, 1024), 3, &sm);
    assert!(cudnn.def.is_opaque());
    let cd = Benchmark::Fft.shared_kernel();
    assert!(matches!(
        fuse_flexible(&cudnn.def, &cd, FusionConfig::ONE_TO_ONE, &sm),
        Err(FuseError::OpaqueSource { .. })
    ));
    assert!(matches!(
        tacker_fuser::to_ptb(&cudnn.def),
        Err(FuseError::OpaqueSource { .. })
    ));
}

/// The headline: Tacker meets QoS and improves BE throughput over Baymax,
/// and the false-high-utilization signature separates the two schedulers.
#[test]
fn tacker_beats_baymax_with_qos() {
    let dev = device();
    let lc = small_lc();
    let be = vec![BeApp::new(
        "cutcp",
        Intensity::Compute,
        Benchmark::Cutcp.task(),
    )];
    let config = ExperimentConfig::default()
        .with_queries(40)
        .with_seed(11)
        .with_timeline();

    let run = |policy| {
        tacker::ColocationRun::new(&dev, &config, std::slice::from_ref(&lc), &be)
            .expect("run")
            .policy(policy)
            .run()
            .expect("run")
    };
    let baymax = run(Policy::Baymax);
    let tacker = run(Policy::Tacker);

    assert!(
        tacker.qos_met(),
        "QoS violations: {}",
        tacker.qos_violations()
    );
    assert!(baymax.qos_met());
    assert!(
        tacker.be_work_rate() > baymax.be_work_rate(),
        "tacker {} vs baymax {}",
        tacker.be_work_rate(),
        baymax.be_work_rate()
    );
    assert!(tacker.fused_launches > 0);

    // Fig. 1 vs Fig. 15: Baymax never has both core types active; Tacker
    // does.
    let b_tl = baymax.timeline.expect("timeline");
    let t_tl = tacker.timeline.expect("timeline");
    assert_eq!(b_tl.both_active_time(), SimTime::ZERO);
    assert!(t_tl.both_active_time() > SimTime::ZERO);
}

/// Determinism: identical configuration reproduces identical results.
#[test]
fn colocation_runs_are_reproducible() {
    let dev = device();
    let lc = small_lc();
    let be = vec![BeApp::new("fft", Intensity::Compute, Benchmark::Fft.task())];
    let config = ExperimentConfig::default().with_queries(25).with_seed(3);
    let run = || {
        tacker::ColocationRun::new(&dev, &config, std::slice::from_ref(&lc), &be)
            .expect("run")
            .policy(Policy::Tacker)
            .run()
            .expect("run")
    };
    let a = run();
    let b = run();
    assert_eq!(a.query_latencies(), b.query_latencies());
    assert_eq!(a.fused_launches, b.fused_launches);
    assert_eq!(a.be_work, b.be_work);
}

/// The V100's larger shared memory admits fused blocks Turing rejects
/// (§VIII-F's mechanism).
#[test]
fn v100_admits_bigger_fused_blocks() {
    let tc = KernelDef::builder("t", KernelKind::Tensor)
        .block_dim(Dim3::x(256))
        .resources(ResourceUsage::new(48, 40 * 1024))
        .body(vec![Stmt::compute_tc(Expr::lit(64), "mma")])
        .build()
        .expect("tc");
    let cd = KernelDef::builder("c", KernelKind::Cuda)
        .block_dim(Dim3::x(256))
        .resources(ResourceUsage::new(32, 40 * 1024))
        .body(vec![Stmt::compute_cd(Expr::lit(64), "fma")])
        .build()
        .expect("cd");
    let turing = fuse_flexible(&tc, &cd, FusionConfig::ONE_TO_ONE, &GpuSpec::rtx2080ti().sm);
    let volta = fuse_flexible(&tc, &cd, FusionConfig::ONE_TO_ONE, &GpuSpec::v100().sm);
    assert!(turing.is_err());
    assert!(volta.is_ok());
}
