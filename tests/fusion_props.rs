//! Property-based tests for the kernel fuser: structural invariants that
//! must hold for *any* kernel pair and fusion configuration.

use proptest::prelude::*;
use tacker_fuser::{enumerate_configs, fuse_flexible, to_ptb, FusionConfig, PackPriority};
use tacker_kernel::ast::{Expr, Stmt};
use tacker_kernel::{
    lower_block, Bindings, ComputeUnit, Dim3, KernelDef, KernelKind, ResourceUsage, SmCapacity,
};

/// A generated CUDA-Core kernel: warp-aligned block, loop with sync and
/// compute/memory work.
fn arb_cd_kernel() -> impl Strategy<Value = KernelDef> {
    (1u32..=8, 1u64..=32, 1u64..=512, 0u64..=16).prop_map(|(warps, iters, ops, smem_kb)| {
        KernelDef::builder("gen_cd", KernelKind::Cuda)
            .block_dim(Dim3::x(warps * 32))
            .resources(ResourceUsage::new(32, smem_kb * 1024))
            .param("iters")
            .body(vec![
                Stmt::loop_over(
                    "i",
                    Expr::lit(iters),
                    vec![
                        Stmt::global_load("x", Expr::lit(16), 0.5),
                        Stmt::sync_threads(),
                        Stmt::compute_cd(Expr::lit(ops), "fma"),
                    ],
                ),
                Stmt::global_store("y", Expr::lit(8), 0.0),
            ])
            .build()
            .expect("generated kernel is valid")
    })
}

fn arb_tc_kernel() -> impl Strategy<Value = KernelDef> {
    (1u32..=8, 1u64..=32, 1u64..=2048, 0u64..=24).prop_map(|(warps, iters, ops, smem_kb)| {
        KernelDef::builder("gen_tc", KernelKind::Tensor)
            .block_dim(Dim3::x(warps * 32))
            .resources(ResourceUsage::new(48, smem_kb * 1024))
            .body(vec![Stmt::loop_over(
                "k",
                Expr::lit(iters),
                vec![
                    Stmt::global_load("ab", Expr::lit(32), 0.8),
                    Stmt::sync_threads(),
                    Stmt::compute_tc(Expr::lit(ops), "mma"),
                ],
            )])
            .build()
            .expect("generated kernel is valid")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The PTB transform preserves per-block work exactly.
    #[test]
    fn ptb_preserves_work(cd in arb_cd_kernel(), grid in 1u64..10_000) {
        let ptb = to_ptb(&cd).expect("ptb transform");
        let mut b = Bindings::new();
        b.insert("iters".into(), 4);
        let orig = lower_block(&cd, grid, &b).expect("lower original");
        b.insert("original_block_num".into(), grid);
        let p = lower_block(&ptb, 68, &b).expect("lower ptb");
        prop_assert_eq!(p.roles[0].original_blocks, grid);
        prop_assert_eq!(
            p.roles[0].program.total_compute(ComputeUnit::Cuda),
            orig.roles[0].program.total_compute(ComputeUnit::Cuda)
        );
        prop_assert_eq!(
            p.roles[0].program.total_global_bytes(),
            orig.roles[0].program.total_global_bytes()
        );
    }

    /// Fused kernels split each component's grid exactly across its copies,
    /// for any grid sizes.
    #[test]
    fn fusion_splits_work_exactly(
        tc in arb_tc_kernel(),
        cd in arb_cd_kernel(),
        tc_grid in 1u64..5_000,
        cd_grid in 1u64..5_000,
    ) {
        let sm = SmCapacity::TURING;
        let configs = enumerate_configs(&tc, &cd, &sm, PackPriority::TensorFirst);
        for cfg in configs.into_iter().take(4) {
            let fused = fuse_flexible(&tc, &cd, cfg, &sm).expect("enumerated configs fuse");
            let mut tcb = Bindings::new();
            tcb.insert("iters".into(), 2);
            let launch = fused.launch(tc_grid, cd_grid, &Bindings::new(), &tcb);
            let bp = lower_block(fused.def(), launch.grid_blocks, &launch.bindings)
                .expect("fused lowers");
            let tc_sum: u64 = bp.roles[..cfg.tc_blocks as usize]
                .iter()
                .map(|r| r.original_blocks)
                .sum();
            let cd_sum: u64 = bp.roles[cfg.tc_blocks as usize..]
                .iter()
                .map(|r| r.original_blocks)
                .sum();
            prop_assert_eq!(tc_sum, tc_grid, "config {}", cfg);
            prop_assert_eq!(cd_sum, cd_grid, "config {}", cfg);
        }
    }

    /// No `__syncthreads()` survives fusion, barrier ids never collide
    /// across branches, and the fused resource accounting is sum/max.
    #[test]
    fn fusion_rewrites_barriers_and_sums_resources(
        tc in arb_tc_kernel(),
        cd in arb_cd_kernel(),
    ) {
        let sm = SmCapacity::TURING;
        for cfg in enumerate_configs(&tc, &cd, &sm, PackPriority::TensorFirst).into_iter().take(4) {
            let fused = fuse_flexible(&tc, &cd, cfg, &sm).expect("fuses");
            let def = fused.def();
            prop_assert!(!def.body().iter().any(Stmt::contains_sync_threads));
            // Barrier expectations: lower and check each barrier's expected
            // warps equals exactly one branch's warp count.
            let launch = fused.launch(100, 100, &Bindings::new(), &{
                let mut b = Bindings::new();
                b.insert("iters".into(), 2);
                b
            });
            let bp = lower_block(def, launch.grid_blocks, &launch.bindings).expect("lowers");
            for spec in &bp.barriers {
                let owners: Vec<_> = bp
                    .roles
                    .iter()
                    .filter(|r| r.program.barrier_ids().contains(&spec.id))
                    .collect();
                prop_assert_eq!(owners.len(), 1, "barrier {} shared across branches", spec.id);
                prop_assert_eq!(owners[0].warps, spec.expected_warps);
            }
            // Resources.
            prop_assert_eq!(
                def.resources().shared_mem_bytes,
                tc.resources().shared_mem_bytes * cfg.tc_blocks as u64
                    + cd.resources().shared_mem_bytes * cfg.cd_blocks as u64
            );
            prop_assert_eq!(
                def.resources().registers_per_thread,
                tc.resources()
                    .registers_per_thread
                    .max(cd.resources().registers_per_thread)
            );
            // Block fits the 1024-thread limit.
            prop_assert!(def.block_dim().total() <= 1024);
        }
    }

    /// Enumerated configurations are exactly the feasible ones: every one
    /// fuses successfully and fits on the SM.
    #[test]
    fn enumerated_configs_are_feasible(tc in arb_tc_kernel(), cd in arb_cd_kernel()) {
        let sm = SmCapacity::TURING;
        for cfg in enumerate_configs(&tc, &cd, &sm, PackPriority::TensorFirst) {
            let fused = fuse_flexible(&tc, &cd, cfg, &sm);
            prop_assert!(fused.is_ok(), "config {} failed: {:?}", cfg, fused.err());
            let fused = fused.expect("checked");
            prop_assert!(sm.fits(fused.def().resources(), fused.def().block_dim().total() as u32));
        }
    }

    /// The 1:1 configuration is feasible whenever *any* configuration is.
    #[test]
    fn one_to_one_is_minimal(tc in arb_tc_kernel(), cd in arb_cd_kernel()) {
        let sm = SmCapacity::TURING;
        let configs = enumerate_configs(&tc, &cd, &sm, PackPriority::TensorFirst);
        if !configs.is_empty()
            && tc.block_dim().total() + cd.block_dim().total() <= 1024
        {
            prop_assert!(configs.contains(&FusionConfig::ONE_TO_ONE));
        }
    }
}
