//! Property tests for the co-location server: the QoS invariant must hold
//! across arrival seeds, loads and policies.

use std::sync::Arc;

use proptest::prelude::*;
use tacker::prelude::*;
use tacker_sim::{Device, GpuSpec};
use tacker_workloads::gemm::{gemm_workload, GemmShape};
use tacker_workloads::parboil::Benchmark;
use tacker_workloads::{BeApp, Intensity, LcService};

fn lc_service(gemm_m: u64) -> LcService {
    let gemm = tacker_workloads::dnn::compile::shared_gemm();
    LcService::new(
        format!("svc-{gemm_m}"),
        8,
        vec![
            gemm_workload(&gemm, GemmShape::new(gemm_m, 1024, 512)),
            tacker_workloads::dnn::elementwise::elementwise_workload(
                &tacker_workloads::dnn::elementwise::relu(),
                2_000_000,
            ),
            gemm_workload(&gemm, GemmShape::new(gemm_m / 2, 1024, 512)),
        ],
    )
}

proptest! {
    // Each case runs four co-location simulations; keep the count small.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Whatever the arrival seed, the service scale, the BE partner and
    /// the policy: the 99th-percentile latency stays at or under the QoS
    /// target and Tacker never does *worse* than Baymax on BE throughput
    /// beyond noise.
    #[test]
    fn qos_holds_across_seeds_and_scales(
        seed in 0u64..1000,
        gemm_m in 1024u64..4096,
        be_pick in 0usize..4,
    ) {
        let device = Arc::new(Device::new(GpuSpec::rtx2080ti()));
        let lc = lc_service(gemm_m);
        let bench = [Benchmark::Mriq, Benchmark::Fft, Benchmark::Cutcp, Benchmark::Lbm][be_pick];
        let be = vec![BeApp::new(bench.name(), Intensity::Compute, bench.task())];
        let config = ExperimentConfig::default().with_queries(15).with_seed(seed);

        let run = |policy| {
            ColocationRun::new(&device, &config, std::slice::from_ref(&lc), &be)
                .expect("run builds")
                .policy(policy)
                .run()
                .expect("run completes")
        };
        let baymax = run(Policy::Baymax);
        let tacker = run(Policy::Tacker);

        let baymax_p99 = baymax.p99_latency().expect("baymax queries completed");
        let tacker_p99 = tacker.p99_latency().expect("tacker queries completed");
        prop_assert!(
            baymax_p99 <= config.qos_target,
            "baymax p99 {baymax_p99} exceeds QoS (seed {seed})"
        );
        prop_assert!(
            tacker_p99 <= config.qos_target,
            "tacker p99 {tacker_p99} exceeds QoS (seed {seed})"
        );
        // Tacker's throughput is never meaningfully below Baymax's.
        prop_assert!(
            tacker.be_work_rate() >= baymax.be_work_rate() * 0.97,
            "tacker {} < baymax {}",
            tacker.be_work_rate(),
            baymax.be_work_rate()
        );
        // Latency vectors are complete and non-negative by construction.
        prop_assert_eq!(tacker.query_count(), config.queries);
    }
}
