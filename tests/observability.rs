//! Integration tests for the tracing/metrics layer: histogram quantile
//! accuracy against the exact nearest-rank definition, golden output of
//! the Chrome trace exporter, and an end-to-end traced co-location run.

use std::sync::Arc;

use proptest::prelude::*;
use tacker::prelude::*;
use tacker_kernel::SimTime;
use tacker_sim::{Device, GpuSpec};
use tacker_trace::{chrome_trace, DecisionKind, Histogram, RingSink, TraceEvent, TraceSink};

// ---------------------------------------------------------------------------
// Histogram vs. exact nearest-rank percentile
// ---------------------------------------------------------------------------

/// The exact nearest-rank quantile: the `⌈p·n⌉`-th smallest sample.
fn exact_nearest_rank(samples: &[f64], p: f64) -> f64 {
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let rank = ((p * sorted.len() as f64).ceil() as usize).max(1);
    sorted[rank - 1]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// For samples above the histogram's unit bucket, every streaming
    /// quantile stays within one bucket's relative error
    /// ([`Histogram::RELATIVE_ERROR`]) of the exact nearest-rank value.
    #[test]
    fn histogram_percentile_matches_exact_within_bucket_error(
        samples in proptest::collection::vec(1.0f64..1.0e7, 1..400),
        p_mil in 1u32..1000,
    ) {
        let p = f64::from(p_mil) / 1000.0;
        let h = Histogram::new();
        for s in &samples {
            h.observe(*s);
        }
        let exact = exact_nearest_rank(&samples, p);
        let approx = h.percentile(p);
        let rel = (approx - exact).abs() / exact;
        prop_assert!(
            rel <= Histogram::RELATIVE_ERROR + 1e-9,
            "p={p}: approx {approx} vs exact {exact} (rel {rel})"
        );
    }
}

// ---------------------------------------------------------------------------
// Chrome exporter golden test
// ---------------------------------------------------------------------------

/// A minimal JSON well-formedness checker (no serde in the workspace):
/// consumes one value and returns the rest of the input.
fn skip_json_value(s: &str) -> Result<&str, String> {
    let s = s.trim_start();
    let mut chars = s.char_indices();
    match chars.next().map(|(_, c)| c) {
        Some('{') => {
            let mut rest = s[1..].trim_start();
            if let Some(r) = rest.strip_prefix('}') {
                return Ok(r);
            }
            loop {
                rest = skip_json_value(rest)?; // key
                rest = rest.trim_start().strip_prefix(':').ok_or("expected ':'")?;
                rest = skip_json_value(rest)?; // value
                rest = rest.trim_start();
                if let Some(r) = rest.strip_prefix(',') {
                    rest = r;
                } else {
                    return rest
                        .strip_prefix('}')
                        .ok_or("expected '}'".into())
                        .map_err(|e: String| e);
                }
            }
        }
        Some('[') => {
            let mut rest = s[1..].trim_start();
            if let Some(r) = rest.strip_prefix(']') {
                return Ok(r);
            }
            loop {
                rest = skip_json_value(rest)?;
                rest = rest.trim_start();
                if let Some(r) = rest.strip_prefix(',') {
                    rest = r;
                } else {
                    return rest
                        .strip_prefix(']')
                        .ok_or("expected ']'".into())
                        .map_err(|e: String| e);
                }
            }
        }
        Some('"') => {
            let mut escaped = false;
            for (i, c) in chars {
                if escaped {
                    escaped = false;
                } else if c == '\\' {
                    escaped = true;
                } else if c == '"' {
                    return Ok(&s[i + 1..]);
                }
            }
            Err("unterminated string".into())
        }
        Some(c) if c == '-' || c.is_ascii_digit() => {
            let end = s
                .find(|c: char| !(c.is_ascii_digit() || "+-.eE".contains(c)))
                .unwrap_or(s.len());
            Ok(&s[end..])
        }
        _ => ["true", "false", "null"]
            .iter()
            .find_map(|lit| s.strip_prefix(lit))
            .ok_or_else(|| format!("unexpected token at {:?}", &s[..s.len().min(20)])),
    }
}

fn assert_valid_json(doc: &str) {
    let rest = skip_json_value(doc).expect("well-formed JSON");
    assert!(rest.trim().is_empty(), "trailing garbage: {rest:?}");
}

fn golden_events() -> Vec<TraceEvent> {
    vec![
        TraceEvent::Decision {
            at: SimTime::from_micros(5),
            kind: DecisionKind::Fuse,
            kernel: "fused_gemm_mriq".into(),
            headroom: SimTime::from_micros(100),
            reorder_headroom: SimTime::from_micros(60),
            predicted: SimTime::from_micros(40),
            x_tc: Some(SimTime::from_micros(30)),
            x_cd: Some(SimTime::from_micros(25)),
            t_lc: Some(SimTime::from_micros(30)),
            t_gain: Some(SimTime::from_micros(15)),
        },
        TraceEvent::KernelRetired {
            kernel: "fused_gemm_mriq".into(),
            label: "FUSED".into(),
            start: SimTime::from_micros(5),
            end: SimTime::from_micros(47),
            tc_util: 0.70,
            cd_util: 0.55,
            predicted: SimTime::from_micros(40),
            actual: SimTime::from_micros(42),
        },
        TraceEvent::QueryCompleted {
            service: "Resnet50".into(),
            arrival: SimTime::from_micros(1),
            latency: SimTime::from_micros(50),
            violated: false,
        },
    ]
}

/// The exporter's byte-exact output for a fixed event stream: field order,
/// metadata header, track assignment and the decision/retirement join are
/// all pinned.
#[test]
fn chrome_export_is_golden() {
    let golden = concat!(
        "{\"traceEvents\":[",
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"args\":{\"name\":\"Tacker device\"}},",
        "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":1,\"args\":{\"name\":\"Tensor Cores\"}},",
        "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":2,\"args\":{\"name\":\"CUDA Cores\"}},",
        "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":3,\"args\":{\"name\":\"Scheduler\"}},",
        "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":4,\"args\":{\"name\":\"LC Queries\"}},",
        "{\"name\":\"decide:fuse\",\"cat\":\"scheduler\",\"ph\":\"i\",\"ts\":5.000,\"pid\":1,\"tid\":3,\"s\":\"t\",\"args\":{\"kind\":\"fuse\",\"kernel\":\"fused_gemm_mriq\",\"headroom_us\":100.000,\"predicted_us\":40.000,\"actual_us\":42.000,\"t_gain_us\":15.000}},",
        "{\"name\":\"fused_gemm_mriq\",\"cat\":\"kernel\",\"ph\":\"X\",\"ts\":5.000,\"dur\":42.000,\"pid\":1,\"tid\":1,\"args\":{\"label\":\"FUSED\",\"tc_util\":0.700,\"cd_util\":0.550,\"predicted_us\":40.000,\"actual_us\":42.000}},",
        "{\"name\":\"fused_gemm_mriq\",\"cat\":\"kernel\",\"ph\":\"X\",\"ts\":5.000,\"dur\":42.000,\"pid\":1,\"tid\":2,\"args\":{\"label\":\"FUSED\",\"tc_util\":0.700,\"cd_util\":0.550,\"predicted_us\":40.000,\"actual_us\":42.000}},",
        "{\"name\":\"pipeline_utilization\",\"cat\":\"utilization\",\"ph\":\"C\",\"ts\":47.000,\"pid\":1,\"tid\":0,\"args\":{\"tensor\":0.700,\"cuda\":0.550}},",
        "{\"name\":\"query:Resnet50\",\"cat\":\"qos\",\"ph\":\"i\",\"ts\":51.000,\"pid\":1,\"tid\":4,\"s\":\"t\",\"args\":{\"latency_us\":50.000,\"violated\":false}}",
        "],\"displayTimeUnit\":\"ms\"}"
    );
    let json = chrome_trace(&golden_events());
    assert_eq!(json, golden);
    assert_valid_json(&json);
}

/// `ts` values of the exported timeline events are non-decreasing.
#[test]
fn chrome_export_timestamps_are_monotone() {
    let json = chrome_trace(&golden_events());
    let ts: Vec<f64> = json
        .match_indices("\"ts\":")
        .map(|(i, _)| {
            let rest = &json[i + 5..];
            let end = rest.find(',').unwrap();
            rest[..end].parse().unwrap()
        })
        .collect();
    assert!(!ts.is_empty());
    assert!(ts.windows(2).all(|w| w[0] <= w[1]), "{ts:?}");
}

/// JSON-lines serialization of every event variant is itself valid JSON.
#[test]
fn event_json_lines_are_valid_json() {
    for ev in golden_events() {
        assert_valid_json(&ev.to_json());
    }
}

// ---------------------------------------------------------------------------
// End-to-end traced co-location
// ---------------------------------------------------------------------------

/// A traced run records scheduler decisions and kernel retirements, and
/// the Chrome export carries a decision instant joining predicted and
/// actual durations — the acceptance shape for `--trace`.
#[test]
fn traced_colocation_exports_decisions_with_predicted_vs_actual() {
    let device = Arc::new(Device::new(GpuSpec::rtx2080ti()));
    let lc = tacker_workloads::lc_service("Resnet50", &device).expect("service");
    let be = tacker_workloads::be_app("sgemm").expect("app");
    let config = ExperimentConfig::default().with_queries(8);
    let ring = Arc::new(RingSink::unbounded());
    let report = tacker::ColocationRun::new(&device, &config, std::slice::from_ref(&lc), &[be])
        .expect("traced run")
        .policy(Policy::Tacker)
        .traced(ring.clone() as Arc<dyn TraceSink>)
        .run()
        .expect("traced run");

    let events = ring.events();
    let decisions = events
        .iter()
        .filter(|e| matches!(e, TraceEvent::Decision { .. }))
        .count();
    let retired = events
        .iter()
        .filter(|e| matches!(e, TraceEvent::KernelRetired { .. }))
        .count();
    assert!(decisions > 0, "no decisions traced");
    assert!(retired > 0, "no retirements traced");
    assert!(events
        .iter()
        .any(|e| matches!(e, TraceEvent::QueryCompleted { .. })));

    // The registry mirrors the stream: one decision counter tick per
    // decision event, and the latency histogram holds every query.
    assert_eq!(report.metrics.counter("decisions").get(), decisions as u64);
    assert_eq!(
        report.latency_histogram.count(),
        report.query_count() as u64
    );

    let json = chrome_trace(&events);
    assert_valid_json(&json);
    assert!(
        json.contains("\"cat\":\"scheduler\""),
        "no scheduler instants"
    );
    assert!(json.contains("\"ph\":\"X\""), "no kernel slices");
    // At least one decision instant joined to its retirement.
    let joined = json
        .split("\"cat\":\"scheduler\"")
        .skip(1)
        .filter(|chunk| {
            let args = &chunk[..chunk.find('}').map(|i| i + 1).unwrap_or(chunk.len())];
            args.contains("predicted_us") && args.contains("actual_us")
        })
        .count();
    assert!(joined > 0, "no decision carries predicted vs actual");
}
