//! Property tests for fleet-scale serving: a fleet of one node with zero
//! dispatch latency is the single-device serving runtime, bit for bit —
//! the dispatcher routes every query to the only device and replays the
//! very arrival streams the single-device run generates.

use std::sync::Arc;

use proptest::prelude::*;
use tacker::fleet::{DispatchPolicy, FleetNode, FleetRun};
use tacker::prelude::*;
use tacker_sim::{Device, GpuSpec};
use tacker_workloads::gemm::{gemm_workload, GemmShape};
use tacker_workloads::parboil::Benchmark;
use tacker_workloads::{BeApp, Intensity, LcService};

fn lc_service(gemm_m: u64) -> LcService {
    let gemm = tacker_workloads::dnn::compile::shared_gemm();
    LcService::new(
        format!("svc-{gemm_m}"),
        8,
        vec![
            gemm_workload(&gemm, GemmShape::new(gemm_m, 1024, 512)),
            tacker_workloads::dnn::elementwise::elementwise_workload(
                &tacker_workloads::dnn::elementwise::relu(),
                2_000_000,
            ),
            gemm_workload(&gemm, GemmShape::new(gemm_m / 2, 1024, 512)),
        ],
    )
}

fn be_pick(i: usize) -> BeApp {
    let bench = [
        Benchmark::Mriq,
        Benchmark::Fft,
        Benchmark::Cutcp,
        Benchmark::Lbm,
    ][i];
    BeApp::new(bench.name(), Intensity::Compute, bench.task())
}

fn gpu_pick(i: usize) -> GpuSpec {
    if i == 0 {
        GpuSpec::rtx2080ti()
    } else {
        GpuSpec::v100()
    }
}

proptest! {
    // Each case runs several full serving simulations; keep it small.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Acceptance gate: across random fault-free scenarios (seed, GEMM
    /// shape, GPU profile, co-located BE or dedicated node, dispatch
    /// policy), the single node's report inside a fleet-of-1
    /// `FleetReport` is bit-identical to the `ColocationRun` report, and
    /// the fleet aggregates are the single-device aggregates.
    #[test]
    fn fleet_of_one_is_the_single_device_runtime(
        seed in 0u64..1000,
        gemm_m in 1024u64..4096,
        gpu in 0usize..2,
        pick in 0usize..5,
        policy_ix in 0usize..4,
    ) {
        let spec = gpu_pick(gpu);
        let lc = lc_service(gemm_m);
        // pick == 4 means a dedicated LC node with no resident BE work.
        let be: Vec<BeApp> = if pick < 4 { vec![be_pick(pick)] } else { Vec::new() };
        let config = ExperimentConfig::default().with_queries(12).with_seed(seed);

        let device = Arc::new(Device::new(spec.clone()));
        let solo = ColocationRun::new(&device, &config, std::slice::from_ref(&lc), &be)
            .expect("solo").run().expect("solo");

        let mut node = FleetNode::new("gpu-0", spec);
        for app in &be {
            node = node.with_be(app.clone());
        }
        let fleet = FleetRun::new(vec![node], &config, std::slice::from_ref(&lc))
            .expect("fleet")
            .dispatch_policy(DispatchPolicy::ALL[policy_ix])
            .run()
            .expect("fleet");

        prop_assert_eq!(fleet.devices.len(), 1);
        prop_assert_eq!(fleet.devices[0].queries, solo.query_count());
        let dev = fleet.devices[0].report.as_ref().expect("device ran");
        prop_assert_eq!(dev.query_latencies(), solo.query_latencies());
        prop_assert_eq!(dev.qos_violations(), solo.qos_violations());
        prop_assert_eq!(dev.qos_met(), solo.qos_met());
        prop_assert_eq!(dev.wall, solo.wall);
        prop_assert_eq!(dev.busy, solo.busy);
        prop_assert_eq!(dev.fused_launches, solo.fused_launches);
        prop_assert_eq!(dev.reordered_launches, solo.reordered_launches);
        prop_assert_eq!(dev.be_kernels, solo.be_kernels);
        prop_assert_eq!(dev.be_work, solo.be_work);
        prop_assert_eq!(&dev.violation_log, &solo.violation_log);
        // Fleet aggregates collapse to the single device's numbers.
        prop_assert_eq!(fleet.query_count(), solo.query_count());
        prop_assert_eq!(fleet.qos_violations(), solo.qos_violations());
        prop_assert_eq!(fleet.mean_latency(), solo.mean_latency());
        prop_assert_eq!(fleet.p99_latency(), solo.p99_latency());
        prop_assert_eq!(fleet.wall, solo.wall);
    }

    /// Fleet determinism: the same configuration produces the same
    /// routing and the same merged report at any worker count — routing
    /// is serial by construction, and the per-device engines are pure.
    #[test]
    fn fleet_reports_are_jobs_invariant(
        seed in 0u64..1000,
        gemm_m in 1024u64..4096,
        policy_ix in 0usize..4,
        devices in 2usize..4,
    ) {
        let lc = lc_service(gemm_m);
        let nodes = || -> Vec<FleetNode> {
            (0..devices)
                .map(|i| FleetNode::new(format!("gpu-{i}"), gpu_pick(i % 2)))
                .collect()
        };
        let run_at = |jobs: usize| {
            let config = ExperimentConfig::default()
                .with_queries(12)
                .with_seed(seed)
                .with_jobs(jobs);
            FleetRun::new(nodes(), &config, std::slice::from_ref(&lc))
                .expect("fleet")
                .dispatch_policy(DispatchPolicy::ALL[policy_ix])
                .run()
                .expect("fleet")
        };
        let serial = run_at(1);
        let parallel = run_at(0);
        prop_assert_eq!(serial.query_count(), parallel.query_count());
        prop_assert_eq!(serial.qos_violations(), parallel.qos_violations());
        prop_assert_eq!(serial.mean_latency(), parallel.mean_latency());
        prop_assert_eq!(serial.p99_latency(), parallel.p99_latency());
        prop_assert_eq!(serial.wall, parallel.wall);
        prop_assert_eq!(serial.outstanding_max, parallel.outstanding_max);
        for (a, b) in serial.devices.iter().zip(&parallel.devices) {
            prop_assert_eq!(&a.id, &b.id);
            prop_assert_eq!(a.queries, b.queries);
            prop_assert_eq!(a.max_outstanding, b.max_outstanding);
            match (&a.report, &b.report) {
                (Some(ra), Some(rb)) => {
                    prop_assert_eq!(ra.query_latencies(), rb.query_latencies());
                    prop_assert_eq!(ra.wall, rb.wall);
                    prop_assert_eq!(ra.busy, rb.busy);
                }
                (None, None) => {}
                _ => prop_assert!(false, "device {} ran in one mode only", a.id),
            }
        }
    }
}
