//! Integration tests for the streaming telemetry subsystem: quantile
//! sketch accuracy and merge determinism, `LatencyStats` spill behavior,
//! a byte-exact Prometheus golden file, windowed serve runs whose rows
//! must sum back to the report aggregates, violation attribution, and the
//! telemetry-purity invariant (observers never change scheduling).

use std::sync::Arc;

use proptest::prelude::*;
use tacker::prelude::*;
use tacker::DEFAULT_EXACT_LIMIT;
use tacker_kernel::SimTime;
use tacker_sim::{Device, GpuSpec};
use tacker_trace::{
    nearest_rank, prometheus_text, summarize, timeseries_jsonl, MetricsRegistry, QuantileSketch,
    RingSink, TraceEvent, TraceSink,
};
use tacker_workloads::gemm::{gemm_workload, GemmShape};
use tacker_workloads::parboil::Benchmark;
use tacker_workloads::{BeApp, Intensity, LcService};

// ---------------------------------------------------------------------------
// Quantile sketch: rank-error bound and merge determinism
// ---------------------------------------------------------------------------

/// The exact nearest-rank quantile of integer samples.
fn exact_quantile(samples: &[u64], p: f64) -> u64 {
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    sorted[nearest_rank(sorted.len() as u64, p) as usize - 1]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every sketch quantile stays within the documented relative error
    /// of the exact nearest-rank sample quantile.
    #[test]
    fn sketch_percentile_within_rank_error_bound(
        samples in proptest::collection::vec(1u64..100_000_000_000, 1..400),
        p_mil in 1u32..1000,
    ) {
        let p = f64::from(p_mil) / 1000.0;
        let mut sketch = QuantileSketch::new();
        for s in &samples {
            sketch.observe(*s);
        }
        let exact = exact_quantile(&samples, p);
        let approx = sketch.percentile(p).expect("non-empty");
        let rel = (approx as f64 - exact as f64).abs() / exact as f64;
        prop_assert!(
            rel <= QuantileSketch::RELATIVE_ERROR + 1e-9,
            "p={p}: approx {approx} vs exact {exact} (rel {rel})"
        );
    }

    /// Merging per-stream sketches is bit-identical to observing the
    /// concatenated stream, in any merge order — the property that makes
    /// per-service sketches aggregate exactly into the run-level one.
    #[test]
    fn sketch_merge_is_order_invariant_and_lossless(
        streams in proptest::collection::vec(
            proptest::collection::vec(1u64..10_000_000, 0..120),
            1..5,
        ),
    ) {
        let mut whole = QuantileSketch::new();
        for s in streams.iter().flatten() {
            whole.observe(*s);
        }
        let parts: Vec<QuantileSketch> = streams
            .iter()
            .map(|stream| {
                let mut sk = QuantileSketch::new();
                for s in stream {
                    sk.observe(*s);
                }
                sk
            })
            .collect();
        let mut forward = QuantileSketch::new();
        for p in &parts {
            forward.merge(p);
        }
        let mut backward = QuantileSketch::new();
        for p in parts.iter().rev() {
            backward.merge(p);
        }
        prop_assert!(forward == whole, "forward merge differs from the union stream");
        prop_assert!(backward == whole, "merge order changed the sketch");
    }
}

// ---------------------------------------------------------------------------
// LatencyStats: exact mode, spill, bounded memory
// ---------------------------------------------------------------------------

#[test]
fn latency_stats_spills_to_sketch_at_limit_and_memory_stays_flat() {
    let mut stats = LatencyStats::with_limit(64);
    for i in 1..=64u64 {
        stats.observe(SimTime::from_micros(i * 100));
    }
    assert!(!stats.is_sketch(), "under the limit stays exact");
    assert_eq!(stats.samples().len(), 64);
    let exact_p50 = stats.percentile(50.0).expect("non-empty");
    assert_eq!(
        exact_p50,
        SimTime::from_micros(3200),
        "nearest rank ⌈0.5·64⌉ = 32"
    );

    stats.observe(SimTime::from_micros(6500));
    assert!(stats.is_sketch(), "limit + 1 spills to the sketch");
    assert!(stats.samples().is_empty(), "sketch mode retains no samples");
    assert_eq!(stats.count(), 65, "spill replays every retained sample");

    // After the spill, memory no longer grows with observations.
    let spilled = stats.retained_bytes();
    for i in 0..10_000u64 {
        stats.observe(SimTime::from_micros(100 + i % 6000));
    }
    assert_eq!(stats.retained_bytes(), spilled, "sketch memory is fixed");
    assert!(stats.peak_bytes() >= spilled);
    assert_eq!(stats.count(), 10_065);
}

#[test]
fn latency_stats_sketch_percentile_tracks_exact_within_bound() {
    let mut exact = LatencyStats::exact();
    let mut sketch = LatencyStats::with_limit(0);
    assert_eq!(DEFAULT_EXACT_LIMIT, 4096);
    for i in 0..5000u64 {
        let v = SimTime::from_micros(500 + (i * 7919) % 90_000);
        exact.observe(v);
        sketch.observe(v);
    }
    assert!(!exact.is_sketch());
    assert!(sketch.is_sketch());
    for p in [50.0, 90.0, 99.0, 99.9] {
        let e = exact.percentile(p).expect("non-empty").as_nanos() as f64;
        let s = sketch.percentile(p).expect("non-empty").as_nanos() as f64;
        let rel = (s - e).abs() / e;
        assert!(
            rel <= QuantileSketch::RELATIVE_ERROR + 1e-9,
            "p{p}: sketch {s} vs exact {e} (rel {rel})"
        );
    }
}

// ---------------------------------------------------------------------------
// Prometheus golden file
// ---------------------------------------------------------------------------

/// Byte-exact golden of the Prometheus text exposition: family grouping,
/// `tacker_` namespace, per-service labels, summary quantiles, and the
/// deterministic BTreeMap ordering are all load-bearing for scrapers.
#[test]
fn prometheus_text_matches_golden() {
    let registry = MetricsRegistry::new();
    registry.counter("serve_decisions").add(42);
    registry.counter("qos_violations.Resnet50").add(3);
    registry.gauge("inject_budget_ns").set(1500.5);
    let h = registry.histogram("query_latency_us.Resnet50");
    for v in [100.0, 200.0, 300.0, 400.0] {
        h.observe(v);
    }
    let text = prometheus_text(&registry);
    let golden = "\
# TYPE tacker_qos_violations counter
tacker_qos_violations{service=\"Resnet50\"} 3
# TYPE tacker_serve_decisions counter
tacker_serve_decisions 42
# TYPE tacker_inject_budget_ns gauge
tacker_inject_budget_ns 1500.500000
# TYPE tacker_query_latency_us summary
tacker_query_latency_us{service=\"Resnet50\",quantile=\"0.5\"} 206.143
tacker_query_latency_us{service=\"Resnet50\",quantile=\"0.9\"} 400.000
tacker_query_latency_us{service=\"Resnet50\",quantile=\"0.99\"} 400.000
tacker_query_latency_us{service=\"Resnet50\",quantile=\"0.999\"} 400.000
tacker_query_latency_us_sum{service=\"Resnet50\"} 1000.000
tacker_query_latency_us_count{service=\"Resnet50\"} 4
";
    assert_eq!(
        text, golden,
        "Prometheus exposition drifted from the golden"
    );
    // And the summarizer accepts its own exporter's output.
    summarize(&text).expect("summarize(prometheus) succeeds");
}

// ---------------------------------------------------------------------------
// Windowed serve: rows sum to report aggregates, events reach the sink
// ---------------------------------------------------------------------------

fn drill_lc() -> LcService {
    let gemm = tacker_workloads::dnn::compile::shared_gemm();
    LcService::new(
        "drill",
        8,
        vec![
            gemm_workload(&gemm, GemmShape::new(2048, 1024, 512)),
            tacker_workloads::dnn::elementwise::elementwise_workload(
                &tacker_workloads::dnn::elementwise::relu(),
                2_000_000,
            ),
        ],
    )
}

fn drill_be() -> Vec<BeApp> {
    let bench = Benchmark::Fft;
    vec![BeApp::new(bench.name(), Intensity::Compute, bench.task())]
}

#[test]
fn windowed_serve_rows_sum_to_report_aggregates() {
    let device = Arc::new(Device::new(GpuSpec::rtx2080ti()));
    let lc = drill_lc();
    let be = drill_be();
    let config = ExperimentConfig::default().with_queries(16).with_seed(3);
    let sink: Arc<RingSink> = Arc::new(RingSink::unbounded());
    let report = ColocationRun::new(&device, &config, std::slice::from_ref(&lc), &be)
        .expect("run")
        .policy(Policy::Tacker)
        .arrivals(ArrivalSpec::Poisson)
        .faults(FaultPlan::mispredicting(3.0, 0.4).with_seed(5))
        .windowed(SimTime::from_millis(1))
        .traced(Arc::clone(&sink) as Arc<dyn TraceSink>)
        .run()
        .expect("run");

    assert!(!report.windows.is_empty(), "a windowed run collects rows");
    let arrivals: u64 = report.windows.iter().map(|r| r.arrivals).sum();
    let completions: u64 = report.windows.iter().map(|r| r.completions).sum();
    let violations: u64 = report.windows.iter().map(|r| r.violations).sum();
    let fused: u64 = report.windows.iter().map(|r| r.fused_launches).sum();
    assert_eq!(arrivals, 16, "every admission lands in exactly one window");
    assert_eq!(
        completions, 16,
        "every completion lands in exactly one window"
    );
    assert_eq!(violations, report.qos_violations() as u64);
    assert_eq!(fused, report.fused_launches);
    for row in &report.windows {
        assert!(row.index * row.width().as_nanos() == row.start.as_nanos());
        assert!(
            row.busy <= row.width(),
            "busy time cannot exceed the window"
        );
        assert!(row.sm_utilization() <= 1.0 + 1e-9);
    }
    // Indices strictly increase (gaps where windows were empty are fine).
    for pair in report.windows.windows(2) {
        assert!(pair[0].index < pair[1].index);
    }

    // Every collected row was also emitted as a WindowStats trace event,
    // in the same order.
    let emitted: Vec<_> = sink
        .events()
        .into_iter()
        .filter_map(|e| match e {
            TraceEvent::WindowStats { row } => Some(row),
            _ => None,
        })
        .collect();
    assert_eq!(emitted, report.windows);

    // The JSONL exporter round-trips through the summarizer.
    let jsonl = timeseries_jsonl(&report.windows);
    assert_eq!(jsonl.lines().count(), report.windows.len());
    summarize(&jsonl).expect("summarize(jsonl) succeeds");
    summarize("not-a-metrics-file").expect_err("junk is rejected");
}

#[test]
fn faulted_run_attributes_every_violation() {
    let device = Arc::new(Device::new(GpuSpec::rtx2080ti()));
    // The tiny drill service never violates even under heavy faults; the
    // serve_bench fault-drill workload (Resnet50 + fft) reliably does.
    let lc = tacker_workloads::lc_service("Resnet50", &device).expect("Resnet50");
    let be = drill_be();
    let config = ExperimentConfig::default()
        .with_queries(60)
        .with_seed(11)
        .with_load(0.95);
    let report = ColocationRun::new(&device, &config, std::slice::from_ref(&lc), &be)
        .expect("run")
        .policy(Policy::Tacker)
        .arrivals(ArrivalSpec::Poisson)
        .faults(FaultPlan::mispredicting(1.5, 0.2).with_seed(11))
        .guarded(GuardConfig::default())
        .run()
        .expect("run");

    assert!(
        report.qos_violations() > 0,
        "the drill must actually violate"
    );
    assert_eq!(
        report.violation_log.len(),
        report.qos_violations(),
        "one attribution record per violation"
    );
    for rec in &report.violation_log {
        assert_eq!(rec.service, "Resnet50");
        assert!(rec.latency > rec.target, "recorded latency must breach QoS");
        assert!(rec.guard_level.is_some(), "guarded run records the rung");
        let json = rec.to_json();
        assert!(json.contains("\"service\":\"Resnet50\""), "{json}");
        assert!(json.contains("\"queue_depth\":"), "{json}");
    }
    assert!(
        report.violation_log.iter().any(|r| !r.faults.is_empty()),
        "under this fault plan some violation names the faults in flight"
    );
    // The guard stepped at least once under this fault plan, and each
    // step left an audit record.
    assert!(report.guard_steps > 0);
    assert_eq!(report.guard_log.len(), report.guard_steps as usize);
    for audit in &report.guard_log {
        assert!(audit.from != audit.to, "audit records real transitions");
        assert!(!audit.reason.is_empty());
    }
}

// ---------------------------------------------------------------------------
// Telemetry purity: observers never change scheduling
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// A zero-fault windowed + sketch-limited serve still reproduces the
    /// batch run bit for bit: telemetry options are pure observers.
    #[test]
    fn windowed_zero_fault_serve_is_still_the_batch_run(
        seed in 0u64..500,
        window_us in 1u64..5_000,
    ) {
        let device = Arc::new(Device::new(GpuSpec::rtx2080ti()));
        let lc = drill_lc();
        let be = drill_be();
        let config = ExperimentConfig::default().with_queries(10).with_seed(seed);
        let batch = ColocationRun::new(&device, &config, std::slice::from_ref(&lc), &be)
            .expect("batch").policy(Policy::Tacker).run().expect("batch");
        let serve = ColocationRun::new(&device, &config, std::slice::from_ref(&lc), &be)
            .expect("serve")
            .policy(Policy::Tacker)
            .arrivals(ArrivalSpec::Poisson)
            .faults(FaultPlan::none())
            .windowed(SimTime::from_micros(window_us))
            .run()
            .expect("serve");
        prop_assert_eq!(batch.query_latencies(), serve.query_latencies());
        prop_assert_eq!(batch.wall, serve.wall);
        prop_assert_eq!(batch.fused_launches, serve.fused_launches);
        prop_assert!(!serve.windows.is_empty());

        // Per-service sketches merged together equal the run-level stats
        // sketch — determinism pinned end to end.
        let mut merged = QuantileSketch::new();
        for svc in serve.per_service() {
            merged.merge(&svc.latency.to_sketch());
        }
        prop_assert!(merged == serve.latency.to_sketch());
    }
}
