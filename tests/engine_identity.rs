//! Identity tests for the engine's event core: every (queue kind,
//! macro-stepping) combination must produce **bit-identical** results.
//!
//! Randomly generated plans — mixed TC/CD roles, shared and global
//! memory ops, partial-arrival barriers, PTB-style iteration counts —
//! run through the reference configuration (binary heap, no
//! macro-stepping) and every other combination. The runs must agree on
//! the full `KernelRun` (makespan, busy intervals, per-role finish,
//! DRAM bytes) and on the micro-event count; with macro-stepping off,
//! pop counts must equal event counts. Traced runs must additionally
//! emit identical event streams into a recording sink.

use proptest::prelude::*;
use tacker_kernel::ast::{ComputeUnit, MemDir, MemSpace};
use tacker_kernel::{BlockProgram, Op, ResourceUsage, WarpProgram, WarpRole};
use tacker_sim::{
    simulate_with_options, EngineOptions, ExecutablePlan, GpuSpec, KernelRun, QueueKind, SimError,
};
use tacker_trace::{NoopSink, RingSink};

fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// Builds a random mixed plan from `seed`: 1–3 roles, each with 1–4
/// warps, 1–5 ops drawn from {TC compute, CD compute, shared access,
/// global access, barrier}, and its own PTB original-block count. Each
/// role's barrier (if any) expects exactly that role's warps, so the
/// plan always terminates.
fn random_plan(seed: u64) -> ExecutablePlan {
    let mut s = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    let n_roles = 1 + (xorshift(&mut s) % 3) as usize;
    let mut roles = Vec::new();
    let mut barrier_expect: Vec<(u16, u32)> = Vec::new();
    for ri in 0..n_roles {
        let warps = 1 + (xorshift(&mut s) % 4) as u32;
        let n_ops = 1 + (xorshift(&mut s) % 5) as usize;
        let mut ops = Vec::new();
        for _ in 0..n_ops {
            let op = match xorshift(&mut s) % 5 {
                0 => Op::Compute {
                    unit: ComputeUnit::Tensor,
                    ops: 256 + xorshift(&mut s) % 65_536,
                },
                1 => Op::Compute {
                    unit: ComputeUnit::Cuda,
                    ops: 64 + xorshift(&mut s) % 8_192,
                },
                2 => Op::Memory {
                    dir: MemDir::Read,
                    space: MemSpace::Shared,
                    bytes: 128 + xorshift(&mut s) % 4_096,
                    locality: 0.0,
                },
                3 => Op::Memory {
                    dir: MemDir::Read,
                    space: MemSpace::Global,
                    bytes: 256 + xorshift(&mut s) % 16_384,
                    locality: (xorshift(&mut s) % 5) as f64 * 0.25,
                },
                _ => {
                    let id = ri as u16 + 1;
                    barrier_expect.push((id, warps));
                    Op::Barrier { id }
                }
            };
            ops.push(op);
        }
        roles.push(WarpRole {
            name: format!("r{ri}").into(),
            warps,
            program: WarpProgram::new(ops),
            original_blocks: 1 + xorshift(&mut s) % 300,
        });
    }
    let mut block = BlockProgram::new(roles);
    for (id, expected) in barrier_expect {
        block.set_barrier_expectation(id, expected);
    }
    let threads = block.threads();
    ExecutablePlan::assemble(
        "identity",
        n_roles > 1,
        block,
        1 + xorshift(&mut s) % 200,
        ResourceUsage::new(32, 0),
        threads,
        None,
    )
}

fn all_options() -> [EngineOptions; 4] {
    [
        EngineOptions {
            queue: QueueKind::Heap,
            macro_step: false,
        },
        EngineOptions {
            queue: QueueKind::Heap,
            macro_step: true,
        },
        EngineOptions {
            queue: QueueKind::Calendar,
            macro_step: false,
        },
        EngineOptions {
            queue: QueueKind::Calendar,
            macro_step: true,
        },
    ]
}

/// Zeroes the configuration-dependent accounting (`pops`, `macro_runs`)
/// so behavioural equality can be asserted across configurations.
fn canon(mut run: KernelRun) -> KernelRun {
    run.pops = 0;
    run.macro_runs = 0;
    run
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The full `KernelRun` is identical for every queue/macro
    /// combination, and the micro-event count is invariant.
    #[test]
    fn all_engine_configurations_agree(seed in 0u64..1_000_000) {
        let spec = GpuSpec::rtx2080ti();
        let plan = random_plan(seed);
        let reference = simulate_with_options(
            &spec,
            &plan,
            68,
            &NoopSink,
            EngineOptions { queue: QueueKind::Heap, macro_step: false },
        )
        .expect("reference run");
        prop_assert_eq!(reference.pops, reference.events);
        prop_assert_eq!(reference.macro_runs, 0);
        for opts in all_options() {
            let run = simulate_with_options(&spec, &plan, 68, &NoopSink, opts)
                .expect("variant run");
            prop_assert_eq!(run.events, reference.events, "{:?}", opts);
            if !opts.macro_step {
                prop_assert_eq!(run.pops, run.events, "{:?}", opts);
            }
            prop_assert_eq!(canon(run), canon(reference.clone()), "{:?}", opts);
        }
    }

    /// With a recording sink attached, every configuration emits the
    /// identical trace-event stream (macro-stepping auto-disables, so
    /// per-op events like barrier arrivals fire event-by-event).
    #[test]
    fn trace_streams_are_identical(seed in 0u64..1_000_000) {
        let spec = GpuSpec::rtx2080ti();
        let plan = random_plan(seed);
        let reference_sink = RingSink::unbounded();
        let reference = simulate_with_options(
            &spec,
            &plan,
            68,
            &reference_sink,
            EngineOptions { queue: QueueKind::Heap, macro_step: false },
        )
        .expect("reference run");
        let reference_events = reference_sink.events();
        prop_assert!(!reference_events.is_empty());
        for opts in all_options() {
            let sink = RingSink::unbounded();
            let run = simulate_with_options(&spec, &plan, 68, &sink, opts)
                .expect("variant run");
            // Tracing forces macro-stepping off: accounting matches the
            // reference exactly, not just canonically.
            prop_assert_eq!(run.macro_runs, 0, "{:?}", opts);
            prop_assert_eq!(run.clone(), reference.clone(), "{:?}", opts);
            prop_assert_eq!(sink.events(), reference_events.clone(), "{:?}", opts);
        }
    }
}

/// Deadlocks are reported identically — same error, same pending
/// barrier ids — by every engine configuration.
#[test]
fn deadlock_identity_across_configurations() {
    let spec = GpuSpec::rtx2080ti();
    let mut block = BlockProgram::new(vec![
        WarpRole {
            name: "a".into(),
            warps: 2,
            program: WarpProgram::new(vec![
                Op::Compute {
                    unit: ComputeUnit::Cuda,
                    ops: 64,
                },
                Op::Barrier { id: 3 },
            ]),
            original_blocks: 68,
        },
        WarpRole {
            name: "b".into(),
            warps: 1,
            program: WarpProgram::new(vec![Op::Compute {
                unit: ComputeUnit::Cuda,
                ops: 64,
            }]),
            original_blocks: 68,
        },
    ]);
    // Barrier 3 expects the whole block, but role b never arrives.
    block.set_barrier_expectation(3, 3);
    let threads = block.threads();
    let plan = ExecutablePlan::assemble(
        "deadlock",
        true,
        block,
        68,
        ResourceUsage::new(32, 0),
        threads,
        None,
    );
    for opts in all_options() {
        let err = simulate_with_options(&spec, &plan, 68, &NoopSink, opts).unwrap_err();
        match err {
            SimError::Deadlock {
                ref pending_barriers,
                ..
            } => assert_eq!(pending_barriers, &vec![3], "{opts:?}"),
            other => panic!("expected deadlock, got {other:?} under {opts:?}"),
        }
    }
}
