//! Cross-cutting workload tests: device-specific compilation, layer
//! plumbing, and launch-construction invariants.

use proptest::prelude::*;
use tacker_sim::{Device, GpuSpec};
use tacker_workloads::dnn::compile::{compile, ConvPolicy};
use tacker_workloads::dnn::DnnModel;
use tacker_workloads::gemm::{gemm_workload, GemmShape, SPLIT_K_TARGET_BLOCKS};

/// Compiling for the V100 dispatches to the Volta cuDNN implementations.
#[test]
fn v100_compilation_uses_volta_cudnn_kernels() {
    let device = Device::new(GpuSpec::v100());
    let g = DnnModel::Vgg16.graph(2);
    let c = compile(&g, &device, ConvPolicy::Cudnn);
    assert!(c.kernels.iter().any(|k| k.def.name().starts_with("volta_")));
    assert!(!c
        .kernels
        .iter()
        .any(|k| k.def.name().starts_with("turing_")));

    let device = Device::new(GpuSpec::rtx2080ti());
    let c = compile(&g, &device, ConvPolicy::Cudnn);
    assert!(c
        .kernels
        .iter()
        .any(|k| k.def.name().starts_with("turing_")));
}

/// Pointwise convolutions never emit an im2col kernel — their input
/// already is the GEMM operand.
#[test]
fn pointwise_convs_skip_im2col() {
    let device = Device::new(GpuSpec::rtx2080ti());
    let g = DnnModel::Resnet50.graph(2);
    let c = compile(&g, &device, ConvPolicy::Im2colAll);
    let pointwise = g.convs().filter(|(s, _)| s.is_pointwise()).count();
    let non_pointwise = g.conv_count() - pointwise;
    let im2cols = c
        .kernels
        .iter()
        .filter(|k| k.def.name() == "cudnnIm2col")
        .count();
    assert_eq!(im2cols, non_pointwise);
    assert!(pointwise > 20, "Resnet50 is mostly pointwise convs");
}

/// Every compiled model interleaves Tensor and CUDA kernels — the mix the
/// scheduler feeds on.
#[test]
fn all_models_compile_with_mixed_kernel_kinds() {
    let device = Device::new(GpuSpec::rtx2080ti());
    for m in DnnModel::ALL {
        let g = m.graph(2);
        let c = compile(&g, &device, ConvPolicy::Profitable(0.15));
        let tc = c.kernels.iter().filter(|k| k.is_tensor()).count();
        let cd = c.kernels.iter().filter(|k| k.is_cuda()).count();
        assert!(tc > 0 && cd > 0, "{m}: tc {tc} cd {cd}");
        // Conv reports align with the graph.
        assert_eq!(c.convs.len(), g.conv_count(), "{m}");
    }
}

/// Training tasks scale with the model: DenseNet (120 convs) launches more
/// kernels per iteration than VGG16 (13 convs).
#[test]
fn training_task_size_scales_with_conv_count() {
    use tacker_workloads::dnn::training::training_task;
    let vgg = training_task(DnnModel::Vgg16, 4).len();
    let dense = training_task(DnnModel::Densenet121, 4).len();
    assert!(dense > 2 * vgg, "densenet {dense} vs vgg {vgg}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Split-K launches preserve total GEMM work within ceil-rounding
    /// (never lose work; never more than ~2× inflate a degenerate shape).
    #[test]
    fn split_k_preserves_work(m in 1u64..100_000, n in 1u64..8192, k in 1u64..300_000) {
        let def = tacker_workloads::dnn::compile::shared_gemm();
        let shape = GemmShape::new(m, n, k);
        let wk = gemm_workload(&def, shape);
        let base = shape.grid_blocks().max(1) * shape.k_iters().max(1);
        let launched = wk.grid * wk.bindings.get("k_iters").copied().unwrap_or(1);
        prop_assert!(launched >= base, "lost work: {launched} < {base}");
        prop_assert!(launched <= base * 2, "over-inflated: {launched} > 2×{base}");
        // Wide problems are untouched.
        if shape.grid_blocks() >= SPLIT_K_TARGET_BLOCKS {
            prop_assert_eq!(wk.grid, shape.grid_blocks());
        }
    }

    /// Elementwise launches cover every element exactly once (grid ×
    /// elements-per-block ≥ elems, with less than one block of slack).
    #[test]
    fn elementwise_grids_cover_all_elements(elems in 1u64..1_000_000_000) {
        use tacker_workloads::dnn::elementwise::{elementwise_workload, relu, ELEMS_PER_BLOCK};
        let wk = elementwise_workload(&relu(), elems);
        prop_assert!(wk.grid * ELEMS_PER_BLOCK >= elems);
        prop_assert!((wk.grid - 1) * ELEMS_PER_BLOCK < elems);
    }

    /// Conv shape propagation: output spatial dims shrink monotonically
    /// with stride and the GEMM MAC count matches the closed form.
    #[test]
    fn conv_gemm_macs_match_closed_form(
        c_in in 1u64..512,
        c_out in 1u64..512,
        hw in 7u64..64,
        k in prop::sample::select(vec![1u32, 3, 5, 7]),
        batch in 1u64..8,
    ) {
        use tacker_workloads::dnn::layer::ConvSpec;
        use tacker_workloads::dnn::shapes::TensorShape;
        let pad = (k - 1) / 2;
        let spec = ConvSpec::new(c_out, k, 1, pad);
        let input = TensorShape::new(batch, c_in, hw, hw);
        let out = spec.out_shape(input);
        prop_assert_eq!((out.h, out.w), (hw, hw), "same-padding preserves spatial");
        let g = spec.gemm_shape(input);
        prop_assert_eq!(g.macs(), batch * hw * hw * c_out * c_in * (k as u64).pow(2));
    }
}
