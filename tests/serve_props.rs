//! Property tests for the serving runtime: a zero-fault serve is the
//! batch run — same arrivals, same decisions, same report.

use std::sync::Arc;

use proptest::prelude::*;
use tacker::prelude::*;
use tacker_sim::{Device, GpuSpec};
use tacker_workloads::gemm::{gemm_workload, GemmShape};
use tacker_workloads::parboil::Benchmark;
use tacker_workloads::{BeApp, Intensity, LcService};

fn lc_service(gemm_m: u64) -> LcService {
    let gemm = tacker_workloads::dnn::compile::shared_gemm();
    LcService::new(
        format!("svc-{gemm_m}"),
        8,
        vec![
            gemm_workload(&gemm, GemmShape::new(gemm_m, 1024, 512)),
            tacker_workloads::dnn::elementwise::elementwise_workload(
                &tacker_workloads::dnn::elementwise::relu(),
                2_000_000,
            ),
            gemm_workload(&gemm, GemmShape::new(gemm_m / 2, 1024, 512)),
        ],
    )
}

fn be_pick(i: usize) -> BeApp {
    let bench = [
        Benchmark::Mriq,
        Benchmark::Fft,
        Benchmark::Cutcp,
        Benchmark::Lbm,
    ][i];
    BeApp::new(bench.name(), Intensity::Compute, bench.task())
}

proptest! {
    // Each case runs several full co-location simulations; keep it small.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Serving with explicit zero-fault `ServeOptions` (Poisson arrivals,
    /// empty fault plan, guard armed) reproduces the batch run bit for
    /// bit, and the guard never steps off the fuse level: the batch sweep
    /// and the serving runtime are one engine.
    #[test]
    fn zero_fault_serve_reproduces_batch_verdicts(
        seed in 0u64..1000,
        gemm_m in 1024u64..4096,
        pick in 0usize..4,
        guarded in 0u8..2,
    ) {
        let guarded = guarded == 1;
        let device = Arc::new(Device::new(GpuSpec::rtx2080ti()));
        let lc = lc_service(gemm_m);
        let be = vec![be_pick(pick)];
        let config = ExperimentConfig::default().with_queries(12).with_seed(seed);

        let batch = ColocationRun::new(&device, &config, std::slice::from_ref(&lc), &be)
            .expect("batch").policy(Policy::Tacker).run().expect("batch");
        let mut serve = ColocationRun::new(&device, &config, std::slice::from_ref(&lc), &be)
            .expect("serve")
            .policy(Policy::Tacker)
            .arrivals(ArrivalSpec::Poisson)
            .faults(FaultPlan::none());
        if guarded {
            serve = serve.guarded(GuardConfig::default());
        }
        let serve = serve.run().expect("serve");

        prop_assert_eq!(batch.query_latencies(), serve.query_latencies());
        prop_assert_eq!(batch.qos_violations(), serve.qos_violations());
        prop_assert_eq!(batch.qos_met(), serve.qos_met());
        prop_assert_eq!(batch.fused_launches, serve.fused_launches);
        prop_assert_eq!(batch.be_work, serve.be_work);
        prop_assert_eq!(batch.wall, serve.wall);
        // No faults → exact predictions → the guard never fires.
        prop_assert_eq!(serve.guard_steps, 0);
        prop_assert_eq!(serve.faults_injected, 0);
        if guarded {
            prop_assert_eq!(serve.guard_level, Some(GuardLevel::Fuse));
        }
    }

    /// The steady-state fast path is bit-identical to the full decision
    /// loop across random LC-only scenarios (the configuration in which
    /// it engages): same latencies, same wall clock, same windowed
    /// telemetry, same guard trajectory. Tracing force-disables the
    /// fast path, so the traced event stream is the slow path's by
    /// construction — asserted via the traced run's report numbers.
    #[test]
    fn fast_path_reports_are_bit_identical(
        seed in 0u64..1000,
        gemm_m in 1024u64..4096,
        gap_us in 400u64..2000,
        guarded in 0u8..2,
    ) {
        let guarded = guarded == 1;
        let device = Arc::new(Device::new(GpuSpec::rtx2080ti()));
        let lc = lc_service(gemm_m);
        let config = ExperimentConfig::default().with_queries(14).with_seed(seed);
        let build = |fast: bool, sink: Option<Arc<tacker_trace::RingSink>>| {
            let mut r = ColocationRun::new(&device, &config, std::slice::from_ref(&lc), &[])
                .expect("build")
                .at(tacker_kernel::SimTime::from_micros(gap_us))
                .windowed(tacker_kernel::SimTime::from_millis(1))
                .steady_fast_path(fast);
            if guarded {
                r = r.guarded(GuardConfig::default());
            }
            if let Some(s) = sink {
                r = r.traced(s);
            }
            r.run().expect("run")
        };
        let fast = build(true, None);
        let slow = build(false, None);
        prop_assert_eq!(fast.query_latencies(), slow.query_latencies());
        prop_assert_eq!(fast.qos_violations(), slow.qos_violations());
        prop_assert_eq!(fast.wall, slow.wall);
        prop_assert_eq!(fast.guard_steps, slow.guard_steps);
        prop_assert_eq!(&fast.guard_level, &slow.guard_level);
        prop_assert_eq!(&fast.windows, &slow.windows);
        // A traced run falls back to the slow path but must report the
        // same numbers — the trace stream *is* the slow path's.
        let sink = Arc::new(tacker_trace::RingSink::unbounded());
        let traced = build(true, Some(sink.clone()));
        prop_assert_eq!(traced.query_latencies(), slow.query_latencies());
        prop_assert_eq!(traced.wall, slow.wall);
        prop_assert!(!sink.events().is_empty());
    }
}
