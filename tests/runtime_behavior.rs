//! Integration tests for the runtime pieces: fusion library, manager gain
//! selection, strikes, and the cluster coordinator.

use std::sync::Arc;

use tacker::library::{FusionLibrary, PairEntry};
use tacker::manager::{Decision, KernelManager, Policy};
use tacker::profile::KernelProfiler;
use tacker_kernel::SimTime;
use tacker_sim::{Device, GpuSpec};
use tacker_workloads::gemm::{gemm_workload, GemmShape};
use tacker_workloads::parboil::Benchmark;

fn setup() -> (Arc<Device>, Arc<KernelProfiler>, Arc<FusionLibrary>) {
    let device = Arc::new(Device::new(GpuSpec::rtx2080ti()));
    let profiler = Arc::new(KernelProfiler::new(Arc::clone(&device)));
    let library = Arc::new(FusionLibrary::new(Arc::clone(&profiler)));
    (device, profiler, library)
}

fn tc_kernel() -> tacker_workloads::WorkloadKernel {
    gemm_workload(
        &tacker_workloads::dnn::compile::shared_gemm(),
        GemmShape::new(4096, 2048, 512),
    )
}

/// The manager picks the BE partner with the highest throughput gain
/// (T_gain = T_cd − (T_fuse − T_tc)) when several are ready.
#[test]
fn manager_selects_the_highest_gain_partner() {
    let (_, profiler, library) = setup();
    let manager = KernelManager::new(Arc::clone(&profiler), Arc::clone(&library), Policy::Tacker);
    let lc = tc_kernel();
    // Two compute partners with very different sizes: the longer kernel
    // carries more BE work per fusion, so (at equal extras) it wins.
    let small = Benchmark::Cutcp.task()[0].clone();
    let big = {
        let mut wk = Benchmark::Mriq.task()[0].clone();
        wk.grid *= 2;
        wk
    };
    let hr = SimTime::from_millis(25);
    let decision = manager
        .decide(
            Some(&lc),
            hr,
            hr,
            &[Some(small.clone()), Some(big.clone())],
            false,
        )
        .expect("decide");
    let Decision::RunFused { be_index, .. } = decision else {
        panic!("expected fusion, got {decision:?}");
    };
    // Verify the chosen index really has the larger gain by recomputing.
    let gain = |be: &tacker_workloads::WorkloadKernel| {
        let entry = library.prepare(&lc, be).expect("prepare").expect("entry");
        let x_tc = profiler.predict(&lc).expect("x_tc");
        let x_cd = profiler.predict(be).expect("x_cd");
        let t_fuse = entry.lock().expect("entry").model.predict(x_tc, x_cd);
        x_cd.saturating_sub(t_fuse.saturating_sub(x_tc))
    };
    let gains = [gain(&small), gain(&big)];
    let best = if gains[1] > gains[0] { 1 } else { 0 };
    assert_eq!(be_index, best, "gains {gains:?}");
}

/// Strikes blacklist a pair: after MAX_STRIKES the library entry reports
/// ineligible and the manager stops fusing it.
#[test]
fn strikes_blacklist_pairs() {
    let (_, profiler, library) = setup();
    let lc = tc_kernel();
    let be = Benchmark::Fft.task()[0].clone();
    let entry = library.prepare(&lc, &be).expect("prepare").expect("entry");
    {
        let mut e = entry.lock().expect("entry");
        assert!(e.eligible());
        let x = SimTime::from_micros(100);
        for _ in 0..PairEntry::MAX_STRIKES {
            // Fusion "lost to sequential": actual far above x_tc + x_cd.
            e.observe_outcome(x, x, SimTime::from_micros(1000));
        }
        assert!(!e.eligible());
    }
    let manager = KernelManager::new(Arc::clone(&profiler), Arc::clone(&library), Policy::Tacker);
    let hr = SimTime::from_millis(25);
    let d = manager
        .decide(Some(&lc), hr, hr, &[Some(be)], false)
        .expect("decide");
    assert!(
        !matches!(d, Decision::RunFused { .. }),
        "blacklisted pair must not fuse, got {d:?}"
    );
}

/// Library entries are bucketed by work scale: the same definitions at a
/// very different scale get a separate entry (and model).
#[test]
fn library_buckets_by_scale() {
    let (_, _, library) = setup();
    let be = Benchmark::Cutcp.task()[0].clone();
    let small = gemm_workload(
        &tacker_workloads::dnn::compile::shared_gemm(),
        GemmShape::new(1024, 512, 256),
    );
    let big = gemm_workload(
        &tacker_workloads::dnn::compile::shared_gemm(),
        GemmShape::new(16384, 8192, 2048),
    );
    library.prepare(&small, &be).expect("small");
    library.prepare(&big, &be).expect("big");
    assert!(library.prepared_pairs() >= 2, "distinct scale buckets");
}

/// The full §IV flow: cluster observes a service, crosses the threshold,
/// distributes fused kernels, and a node's library then serves the
/// manager on that node.
#[test]
fn cluster_prepared_pairs_serve_the_node_manager() {
    use tacker::cluster::{ClusterManager, GpuNode};
    use tacker_workloads::{BeApp, Intensity, LcService};

    let mut cluster = ClusterManager::new(2);
    cluster.add_node(GpuNode::new(
        "gpu-0",
        Arc::new(Device::new(GpuSpec::rtx2080ti())),
    ));
    cluster
        .place_be(
            "gpu-0",
            BeApp::new("cutcp", Intensity::Compute, Benchmark::Cutcp.task()),
        )
        .expect("place");

    let lc = LcService::new("svc", 8, vec![tc_kernel()]);
    cluster.observe(&lc);
    assert!(cluster.observe(&lc)); // threshold 2
    let report = cluster.distribute(&lc).expect("distribute");
    assert!(report.fused_pairs > 0);

    // The node's library now answers without re-preparation: the pair is
    // already resident (whether the manager's Equation 8 gate ultimately
    // fuses depends on the instantaneous predictions).
    let node = cluster.node("gpu-0").expect("node");
    let before = node.library().prepared_pairs();
    let be_head = Benchmark::Cutcp.task()[0].clone();
    let entry = node
        .library()
        .prepare(&tc_kernel(), &be_head)
        .expect("prepare")
        .expect("pair was distributed");
    assert!(entry.lock().expect("entry").eligible());
    assert_eq!(
        node.library().prepared_pairs(),
        before,
        "no new preparation"
    );
    let manager = KernelManager::new(
        Arc::clone(node.profiler()),
        Arc::clone(node.library()),
        Policy::Tacker,
    );
    let hr = SimTime::from_millis(25);
    let d = manager
        .decide(Some(&tc_kernel()), hr, hr, &[Some(be_head)], false)
        .expect("decide");
    assert!(
        !matches!(d, Decision::Idle | Decision::RunLc { .. }),
        "with a ready BE partner and wide headroom the manager must use it, got {d:?}"
    );
}

/// The fusion library is usable concurrently: parallel `prepare` calls on
/// the same pair coalesce to one cached entry.
#[test]
fn library_is_thread_safe() {
    let (_, _, library) = setup();
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let library = Arc::clone(&library);
            std::thread::spawn(move || {
                let lc = tc_kernel();
                let be = Benchmark::Cutcp.task()[0].clone();
                library.prepare(&lc, &be).expect("prepare").is_some()
            })
        })
        .collect();
    for h in handles {
        assert!(h.join().expect("join"));
    }
    assert_eq!(library.prepared_pairs(), 1, "one cached entry");
}

/// Runs a short traced co-location and returns the recorded decision
/// stream.
fn traced_decisions(policy: Policy) -> Vec<tacker_trace::TraceEvent> {
    use tacker_trace::TraceSink;
    let device = Arc::new(Device::new(GpuSpec::rtx2080ti()));
    let lc = tacker_workloads::lc_service("Resnet50", &device).expect("service");
    let be = tacker_workloads::be_app("sgemm").expect("app");
    let config = tacker::ExperimentConfig::default().with_queries(8);
    let ring = Arc::new(tacker_trace::RingSink::unbounded());
    tacker::ColocationRun::new(&device, &config, std::slice::from_ref(&lc), &[be])
        .expect("traced run")
        .policy(policy)
        .traced(ring.clone() as Arc<dyn TraceSink>)
        .run()
        .expect("traced run");
    ring.events()
}

/// Baymax is the reorder-only baseline: its decision trace must contain
/// no fusion decisions and no fused retirements.
#[test]
fn baymax_decision_trace_has_no_fusions() {
    use tacker_trace::{DecisionKind, TraceEvent};
    let events = traced_decisions(Policy::Baymax);
    let decisions = events
        .iter()
        .filter(|e| matches!(e, TraceEvent::Decision { .. }))
        .count();
    assert!(decisions > 0, "no decisions traced");
    for ev in &events {
        if let TraceEvent::Decision { kind, .. } = ev {
            assert_ne!(*kind, DecisionKind::Fuse, "Baymax fused: {ev:?}");
        }
        if let TraceEvent::KernelRetired { label, .. } = ev {
            assert_ne!(&**label, "FUSED", "Baymax retired a fused kernel: {ev:?}");
        }
    }
}

/// LC-only runs the service alone: the decision trace must contain no BE
/// launches of any kind (fused, reordered, or free-running).
#[test]
fn lc_only_decision_trace_launches_no_be_work() {
    use tacker_trace::{DecisionKind, TraceEvent};
    let events = traced_decisions(Policy::LcOnly);
    let mut lc_runs = 0;
    for ev in &events {
        if let TraceEvent::Decision { kind, .. } = ev {
            match kind {
                DecisionKind::Fuse | DecisionKind::Reorder | DecisionKind::FreeBe => {
                    panic!("LcOnly launched BE work: {ev:?}")
                }
                DecisionKind::RunLc => lc_runs += 1,
                DecisionKind::Idle => {}
            }
        }
        if let TraceEvent::KernelRetired { label, .. } = ev {
            assert_eq!(&**label, "LC", "non-LC retirement under LcOnly: {ev:?}");
        }
    }
    assert!(lc_runs > 0, "no LC launches traced");
}
