//! Integration tests pinning engine behaviours the scheduler relies on.

use std::sync::Arc;

use tacker_fuser::{fuse_flexible, to_ptb, FusionConfig};
use tacker_kernel::ast::{Expr, Stmt};
use tacker_kernel::{Bindings, Dim3, KernelDef, KernelKind, KernelLaunch, ResourceUsage};
use tacker_sim::{simulate, Device, ExecutablePlan, GpuSpec};
use tacker_workloads::parboil::Benchmark;

fn cd_kernel(iters: u64) -> KernelDef {
    KernelDef::builder("k", KernelKind::Cuda)
        .block_dim(Dim3::x(128))
        .resources(ResourceUsage::new(32, 0))
        .param("iters")
        .body(vec![Stmt::loop_over(
            "i",
            Expr::param("iters"),
            vec![
                Stmt::global_load("x", Expr::lit(16), 0.7),
                Stmt::compute_cd(Expr::lit(128), "fma"),
            ],
        )])
        .build()
        .expect("valid")
        .derive(
            format!("k{iters}"),
            KernelKind::Cuda,
            Dim3::x(128),
            ResourceUsage::new(32, 0),
            vec![Stmt::loop_over(
                "i",
                Expr::lit(iters),
                vec![
                    Stmt::global_load("x", Expr::lit(16), 0.7),
                    Stmt::compute_cd(Expr::lit(128), "fma"),
                ],
            )],
            false,
        )
        .expect("derived")
}

/// The PTB transform changes how blocks are issued but not (materially)
/// how long the kernel takes: the persistent version must be within a few
/// percent of the plain launch.
#[test]
fn ptb_and_plain_launches_have_similar_duration() {
    let spec = GpuSpec::rtx2080ti();
    for grid in [68u64, 500, 2000] {
        let plain = cd_kernel(8);
        let ptb = to_ptb(&plain).expect("ptb");
        let plain_plan = ExecutablePlan::from_launch(
            &spec,
            &KernelLaunch::new(Arc::new(plain), grid, Bindings::new()),
        )
        .expect("plain plan");
        let ptb_plan = ExecutablePlan::from_launch(
            &spec,
            &KernelLaunch::new(Arc::new(ptb), grid, Bindings::new()),
        )
        .expect("ptb plan");
        let a = simulate(&spec, &plain_plan).expect("plain").cycles.get() as f64;
        let b = simulate(&spec, &ptb_plan).expect("ptb").cycles.get() as f64;
        let ratio = b / a;
        assert!(
            (0.8..=1.25).contains(&ratio),
            "grid {grid}: PTB/plain duration ratio {ratio:.3}"
        );
    }
}

/// Fused duration is monotone non-decreasing in the CUDA component's grid
/// (more BE work can never make the fused kernel finish sooner) — the
/// property the two-stage duration model relies on.
#[test]
fn fused_duration_monotone_in_cd_grid() {
    let device = Device::new(GpuSpec::rtx2080ti());
    let spec = device.spec().clone();
    let tc = tacker_workloads::gemm::gemm_kernel();
    let cd = Benchmark::Cutcp.shared_kernel();
    let fused = fuse_flexible(
        &tc,
        &cd,
        FusionConfig {
            tc_blocks: 1,
            cd_blocks: 2,
        },
        &spec.sm,
    )
    .expect("fuses");
    let mut tc_b = Bindings::new();
    tc_b.insert("k_iters".into(), 16);
    let mut cd_b = Bindings::new();
    cd_b.insert("iters".into(), 2);
    let mut prev = 0u64;
    for cd_grid in [64u64, 256, 1024, 4096, 16384] {
        let launch = fused.launch(1024, cd_grid, &tc_b, &cd_b);
        let plan = ExecutablePlan::from_launch(&spec, &launch).expect("plan");
        let run = device.run_plan(&plan).expect("runs");
        assert!(
            run.cycles.get() >= prev,
            "cd_grid {cd_grid}: {} < previous {prev}",
            run.cycles
        );
        prev = run.cycles.get();
    }
}

/// The role-finish times expose the co-run/solo-run phases: with a small
/// CUDA load the CD role finishes first; growing the CD grid pushes its
/// finish time past the TC role's (the Fig. 12 phase flip).
#[test]
fn role_finish_times_flip_with_load_ratio() {
    let device = Device::new(GpuSpec::rtx2080ti());
    let spec = device.spec().clone();
    let tc = tacker_workloads::gemm::gemm_kernel();
    let cd = Benchmark::Cutcp.shared_kernel();
    let fused = fuse_flexible(&tc, &cd, FusionConfig::ONE_TO_ONE, &spec.sm).expect("fuses");
    let mut tc_b = Bindings::new();
    tc_b.insert("k_iters".into(), 16);
    let mut cd_b = Bindings::new();
    cd_b.insert("iters".into(), 2);

    let finish = |cd_grid: u64| {
        let launch = fused.launch(1024, cd_grid, &tc_b, &cd_b);
        let plan = ExecutablePlan::from_launch(&spec, &launch).expect("plan");
        let run = device.run_plan(&plan).expect("runs");
        let tc_fin = run.role_finish[0].1;
        let cd_fin = run.role_finish[1].1;
        (tc_fin, cd_fin)
    };
    let (tc_small, cd_small) = finish(32);
    assert!(cd_small < tc_small, "small CD load should finish first");
    let (tc_big, cd_big) = finish(60_000);
    assert!(cd_big > tc_big, "large CD load should finish last");
}

/// Device executions are usable concurrently from several threads (the
/// cache is internally synchronized).
#[test]
fn device_is_thread_safe() {
    let device = Arc::new(Device::new(GpuSpec::rtx2080ti()));
    let def = Arc::new(cd_kernel(4));
    let handles: Vec<_> = (0..4)
        .map(|i| {
            let device = Arc::clone(&device);
            let def = Arc::clone(&def);
            std::thread::spawn(move || {
                let launch = KernelLaunch::new(def, 100 + i, Bindings::new());
                device.run_launch(&launch).expect("runs").cycles
            })
        })
        .collect();
    let results: Vec<_> = handles
        .into_iter()
        .map(|h| h.join().expect("join"))
        .collect();
    // Larger grids take at least as long.
    for w in results.windows(2) {
        assert!(w[1] >= w[0]);
    }
}

/// Kernel launch overhead is visible: an (almost) empty kernel still costs
/// the fixed launch latency.
#[test]
fn launch_overhead_floors_duration() {
    let spec = GpuSpec::rtx2080ti();
    let def = KernelDef::builder("empty", KernelKind::Cuda)
        .block_dim(Dim3::x(32))
        .resources(ResourceUsage::new(8, 0))
        .body(vec![Stmt::compute_cd(Expr::lit(1), "nop")])
        .build()
        .expect("valid");
    let plan =
        ExecutablePlan::from_launch(&spec, &KernelLaunch::new(Arc::new(def), 1, Bindings::new()))
            .expect("plan");
    let run = simulate(&spec, &plan).expect("runs");
    assert!(run.cycles.get() as f64 >= spec.kernel_launch_overhead);
}
