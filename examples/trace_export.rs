//! Export a co-location run's device timeline as Chrome trace-event JSON
//! (open in chrome://tracing or https://ui.perfetto.dev).
//!
//! ```sh
//! cargo run --release --example trace_export > trace.json
//! ```

use std::error::Error;
use std::sync::Arc;

use tacker::prelude::*;
use tacker_sim::{Device, GpuSpec};

fn main() -> Result<(), Box<dyn Error>> {
    let device = Arc::new(Device::new(GpuSpec::rtx2080ti()));
    let lc = tacker_workloads::lc_service("Resnet50", &device).ok_or("service")?;
    let be = vec![tacker_workloads::be_app("mriq").ok_or("app")?];
    let config = ExperimentConfig::default().with_queries(10).with_timeline();
    let report = ColocationRun::new(&device, &config, std::slice::from_ref(&lc), &be)?
        .policy(Policy::Tacker)
        .run()?;
    let timeline = report.timeline.ok_or("timeline enabled")?;
    eprintln!(
        "exporting {} timeline entries ({} fused launches)…",
        timeline.entries().len(),
        report.fused_launches
    );
    println!("{}", timeline.to_chrome_trace());
    Ok(())
}
