//! Fusion-ratio explorer: enumerate every feasible fusion configuration
//! for a (GEMM, Parboil) pair, measure each on the simulated device, and
//! show the §V-C selection at work.
//!
//! ```sh
//! cargo run --release --example fusion_explorer [parboil-kernel]
//! ```

use std::error::Error;
use std::sync::Arc;

use tacker_fuser::{enumerate_configs, fuse_flexible, PackPriority};
use tacker_sim::{Device, ExecutablePlan, GpuSpec};
use tacker_workloads::gemm::{gemm_workload, GemmShape};
use tacker_workloads::parboil::Benchmark;

fn main() -> Result<(), Box<dyn Error>> {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "cutcp".to_string());
    let bench = Benchmark::ALL
        .into_iter()
        .find(|b| b.name() == name)
        .ok_or_else(|| format!("unknown Parboil kernel `{name}`"))?;

    let device = Arc::new(Device::new(GpuSpec::rtx2080ti()));
    let spec = device.spec().clone();
    let gemm_def = tacker_workloads::dnn::compile::shared_gemm();
    let tc = gemm_workload(&gemm_def, GemmShape::new(4096, 4096, 512));
    let mut cd = bench.task()[0].clone();

    let t_tc = device.run_launch(&tc.launch())?.duration;
    let t_cd_unit = device.run_launch(&cd.launch())?.duration;
    cd.grid = ((cd.grid as f64 * t_tc.ratio(t_cd_unit)).round() as u64).max(1);
    let t_cd = device.run_launch(&cd.launch())?.duration;
    let sequential = t_tc + t_cd;
    println!("GEMM solo {t_tc}, {name} solo {t_cd} → sequential {sequential}\n");
    println!(
        "{:>9} {:>9} {:>12} {:>8} {:>10}",
        "config", "occ", "duration", "TC busy", "vs seq"
    );

    let mut best: Option<(String, tacker_kernel::SimTime)> = None;
    for cfg in enumerate_configs(&tc.def, &cd.def, &spec.sm, PackPriority::TensorFirst) {
        let fused = fuse_flexible(&tc.def, &cd.def, cfg, &spec.sm)?;
        let launch = fused.launch(tc.grid, cd.grid, &tc.bindings, &cd.bindings);
        let plan = ExecutablePlan::from_launch(&spec, &launch)?;
        let run = device.run_plan(&plan)?;
        println!(
            "{:>9} {:>9} {:>12} {:>7.0}% {:>9.0}%",
            cfg.to_string(),
            plan.occupancy(&spec),
            run.duration.to_string(),
            100.0 * run.activity.tc_utilization(run.cycles),
            100.0 * run.duration.ratio(sequential)
        );
        if best.as_ref().is_none_or(|(_, d)| run.duration < *d) {
            best = Some((cfg.to_string(), run.duration));
        }
    }
    let (cfg, d) = best.ok_or("no feasible fusion configuration")?;
    println!();
    if d < sequential {
        println!("selection: fuse at {cfg} ({d} < sequential {sequential})");
    } else {
        println!("selection: run sequentially — no ratio beats {sequential} (§V-C)");
    }
    Ok(())
}
