//! Cluster-level deployment (§IV): the coordinator counts application
//! occurrences, prepares fused kernels once a service crosses the
//! threshold, and distributes them to the GPU nodes hosting the relevant
//! best-effort applications.
//!
//! ```sh
//! cargo run --release --example cluster
//! ```

use std::error::Error;
use std::sync::Arc;

use tacker::cluster::{ClusterManager, GpuNode};
use tacker_sim::{Device, GpuSpec};
use tacker_workloads::parboil::Benchmark;
use tacker_workloads::{BeApp, Intensity};

fn main() -> Result<(), Box<dyn Error>> {
    // A small cluster: two Turing nodes and one Volta node.
    let mut cluster = ClusterManager::new(3); // occurrence threshold
    cluster.add_node(GpuNode::new(
        "turing-0",
        Arc::new(Device::new(GpuSpec::rtx2080ti())),
    ));
    cluster.add_node(GpuNode::new(
        "turing-1",
        Arc::new(Device::new(GpuSpec::rtx2080ti())),
    ));
    cluster.add_node(GpuNode::new(
        "volta-0",
        Arc::new(Device::new(GpuSpec::v100())),
    ));

    // BE applications live on specific nodes.
    cluster.place_be(
        "turing-0",
        BeApp::new("cutcp", Intensity::Compute, Benchmark::Cutcp.task()),
    )?;
    cluster.place_be(
        "volta-0",
        BeApp::new("mriq", Intensity::Compute, Benchmark::Mriq.task()),
    )?;

    // The LC service is deployed repeatedly; fusion preparation only kicks
    // in once it proves long-running (threshold crossings).
    let device = cluster.node("turing-0").expect("node").device().clone();
    let lc = tacker_workloads::lc_service("Densenet", &device).ok_or("service")?;
    for day in 1..=3 {
        let crossed = cluster.observe(&lc);
        println!(
            "deployment {day}: occurrences = {}, threshold crossed = {crossed}",
            cluster.occurrences(lc.name())
        );
    }

    let report = cluster.distribute(&lc)?;
    println!("\ndistribution report:");
    for (node, prepared) in &report.prepared_per_node {
        println!("  {node}: {prepared} pairs prepared");
    }
    println!(
        "  fused pairs: {}, declined (sequential faster): {}",
        report.fused_pairs, report.declined_pairs
    );
    // Nodes without resident BE apps received nothing.
    assert_eq!(
        cluster
            .node("turing-1")
            .expect("node")
            .library()
            .prepared_pairs(),
        0
    );
    println!("\nnode turing-1 hosts no BE apps and received no fused kernels.");
    Ok(())
}
