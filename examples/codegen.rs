//! Source-to-source view: print the CUDA-like source of a kernel, its PTB
//! transform, and the fused Tensor+CUDA kernel the fuser generates
//! (Figs. 5, 7 and 9 of the paper).
//!
//! ```sh
//! cargo run --release --example codegen
//! ```

use std::error::Error;

use tacker_fuser::{fuse_flexible, to_ptb, FusionConfig};
use tacker_kernel::{source, SmCapacity};
use tacker_workloads::parboil::Benchmark;

fn main() -> Result<(), Box<dyn Error>> {
    let cd = Benchmark::Fft.kernel();
    println!("// ===== original CUDA-Core kernel =====");
    println!("{}", source::render(&cd));

    let ptb = to_ptb(&cd)?;
    println!("// ===== PTB transform (Fig. 7) =====");
    println!("{}", source::render(&ptb));

    let tc = tacker_workloads::gemm::gemm_kernel();
    let fused = fuse_flexible(
        &tc,
        &cd,
        FusionConfig {
            tc_blocks: 1,
            cd_blocks: 2,
        },
        &SmCapacity::TURING,
    )?;
    println!("// ===== fused Tensor+CUDA kernel (Figs. 5 & 9) =====");
    println!("{}", source::render(fused.def()));
    Ok(())
}
