//! Quickstart: fuse a Tensor-Core GEMM with a CUDA-Core kernel, predict
//! the fused duration, and verify against the simulated device.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use std::error::Error;
use std::sync::Arc;

use tacker::library::FusionLibrary;
use tacker::profile::KernelProfiler;
use tacker_sim::{Device, ExecutablePlan, GpuSpec};
use tacker_workloads::gemm::{gemm_workload, GemmShape};
use tacker_workloads::parboil::Benchmark;

fn main() -> Result<(), Box<dyn Error>> {
    // 1. A simulated RTX 2080Ti and the offline components.
    let device = Arc::new(Device::new(GpuSpec::rtx2080ti()));
    let profiler = Arc::new(KernelProfiler::new(Arc::clone(&device)));
    let library = FusionLibrary::new(Arc::clone(&profiler));

    // 2. A Tensor-Core kernel (the open wmma GEMM) and a CUDA-Core kernel
    //    (Parboil fft).
    let gemm_def = tacker_workloads::dnn::compile::shared_gemm();
    let tc = gemm_workload(&gemm_def, GemmShape::new(4096, 4096, 512));
    let cd = Benchmark::Fft.task()[0].clone();
    let solo_tc = profiler.measure(&tc)?;
    let solo_cd = profiler.measure(&cd)?;
    println!("solo GEMM: {solo_tc}");
    println!("solo fft:  {solo_cd}");

    // 3. Offline fusion: enumerate ratios, measure candidates, keep the
    //    best, fit the two-stage duration model.
    let entry = library
        .prepare(&tc, &cd)?
        .expect("this pair benefits from fusion");
    let (launch, predicted, config) = {
        let e = entry.lock().expect("entry");
        (
            e.fused.launch(tc.grid, cd.grid, &tc.bindings, &cd.bindings),
            e.model.predict(solo_tc, solo_cd),
            e.fused.config(),
        )
    };
    println!("chosen fusion ratio: {config}");

    // 4. Run the fused kernel and compare with the prediction.
    let plan = ExecutablePlan::from_launch(device.spec(), &launch)?;
    let run = device.run_plan(&plan)?;
    println!("fused predicted: {predicted}");
    println!(
        "fused actual:    {} (TC busy {:.0}%, CD busy {:.0}%)",
        run.duration,
        100.0 * run.activity.tc_utilization(run.cycles),
        100.0 * run.activity.cd_utilization(run.cycles)
    );
    println!(
        "sequential would take {} — fusion saves {:.0}%",
        solo_tc + solo_cd,
        100.0 * (1.0 - run.duration.ratio(solo_tc + solo_cd))
    );
    Ok(())
}
