//! Co-location server demo: Resnet50 queries under QoS with a best-effort
//! application, comparing Baymax (reorder only) against Tacker
//! (fusion + reorder).
//!
//! ```sh
//! cargo run --release --example colocation [be-app]
//! ```

use std::error::Error;
use std::sync::Arc;

use tacker::prelude::*;
use tacker_sim::{Device, GpuSpec};

fn main() -> Result<(), Box<dyn Error>> {
    let be_name = std::env::args().nth(1).unwrap_or_else(|| "fft".to_string());
    let device = Arc::new(Device::new(GpuSpec::rtx2080ti()));
    let lc = tacker_workloads::lc_service("Resnet50", &device).ok_or("unknown LC service")?;
    let be = vec![tacker_workloads::be_app(&be_name)
        .ok_or_else(|| format!("unknown BE app `{be_name}` — try fft, sgemm, cutcp, lbm…"))?];
    let config = ExperimentConfig::default()
        .with_queries(100)
        .with_timeline();

    println!(
        "Resnet50 (QoS {}) co-located with {be_name}:\n",
        config.qos_target
    );
    let mut rates = Vec::new();
    for policy in [Policy::Baymax, Policy::Tacker] {
        let r = ColocationRun::new(&device, &config, std::slice::from_ref(&lc), &be)?
            .policy(policy)
            .run()?;
        println!("== {policy:?} ==");
        println!(
            "  mean latency {:.2} ms, p99 {:.2} ms, QoS {}",
            r.mean_latency().ok_or("queries completed")?.as_millis_f64(),
            r.p99_latency().ok_or("queries completed")?.as_millis_f64(),
            if r.qos_met() { "met" } else { "violated" }
        );
        println!(
            "  BE work rate {:.3} (fused {} / reordered {} launches)",
            r.be_work_rate(),
            r.fused_launches,
            r.reordered_launches
        );
        if let Some(tl) = &r.timeline {
            println!("  TC/CD activity (first part of the run):");
            for line in tl.render_ascii(96).lines() {
                println!("    {line}");
            }
            println!(
                "  both core types simultaneously active: {}",
                tl.both_active_time()
            );
        }
        rates.push(r.be_work_rate());
        println!();
    }
    println!(
        "Tacker improves BE throughput by {:.1}% over Baymax while meeting QoS.",
        100.0 * (rates[1] / rates[0] - 1.0)
    );
    Ok(())
}
