/root/repo/target/release/deps/tacker_bench-20ffc4ade58c432c.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libtacker_bench-20ffc4ade58c432c.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libtacker_bench-20ffc4ade58c432c.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
