/root/repo/target/release/deps/tacker_sim-1aec4cdf75868869.d: crates/sim/src/lib.rs crates/sim/src/concurrent.rs crates/sim/src/device.rs crates/sim/src/engine.rs crates/sim/src/error.rs crates/sim/src/plan.rs crates/sim/src/power.rs crates/sim/src/result.rs crates/sim/src/spec.rs crates/sim/src/timeline.rs

/root/repo/target/release/deps/libtacker_sim-1aec4cdf75868869.rlib: crates/sim/src/lib.rs crates/sim/src/concurrent.rs crates/sim/src/device.rs crates/sim/src/engine.rs crates/sim/src/error.rs crates/sim/src/plan.rs crates/sim/src/power.rs crates/sim/src/result.rs crates/sim/src/spec.rs crates/sim/src/timeline.rs

/root/repo/target/release/deps/libtacker_sim-1aec4cdf75868869.rmeta: crates/sim/src/lib.rs crates/sim/src/concurrent.rs crates/sim/src/device.rs crates/sim/src/engine.rs crates/sim/src/error.rs crates/sim/src/plan.rs crates/sim/src/power.rs crates/sim/src/result.rs crates/sim/src/spec.rs crates/sim/src/timeline.rs

crates/sim/src/lib.rs:
crates/sim/src/concurrent.rs:
crates/sim/src/device.rs:
crates/sim/src/engine.rs:
crates/sim/src/error.rs:
crates/sim/src/plan.rs:
crates/sim/src/power.rs:
crates/sim/src/result.rs:
crates/sim/src/spec.rs:
crates/sim/src/timeline.rs:
