/root/repo/target/release/deps/fig20-e8a3b8bd91c65d3c.d: crates/bench/src/bin/fig20.rs

/root/repo/target/release/deps/fig20-e8a3b8bd91c65d3c: crates/bench/src/bin/fig20.rs

crates/bench/src/bin/fig20.rs:
