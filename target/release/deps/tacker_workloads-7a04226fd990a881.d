/root/repo/target/release/deps/tacker_workloads-7a04226fd990a881.d: crates/workloads/src/lib.rs crates/workloads/src/app.rs crates/workloads/src/dnn/mod.rs crates/workloads/src/dnn/compile.rs crates/workloads/src/dnn/cudnn.rs crates/workloads/src/dnn/elementwise.rs crates/workloads/src/dnn/graph.rs crates/workloads/src/dnn/im2col.rs crates/workloads/src/dnn/layer.rs crates/workloads/src/dnn/models/mod.rs crates/workloads/src/dnn/models/densenet.rs crates/workloads/src/dnn/models/inception.rs crates/workloads/src/dnn/models/resnet.rs crates/workloads/src/dnn/models/vgg.rs crates/workloads/src/dnn/shapes.rs crates/workloads/src/dnn/training.rs crates/workloads/src/gemm.rs crates/workloads/src/microbench.rs crates/workloads/src/parboil/mod.rs crates/workloads/src/parboil/bfs.rs crates/workloads/src/parboil/cp.rs crates/workloads/src/parboil/cutcp.rs crates/workloads/src/parboil/fft.rs crates/workloads/src/parboil/histo.rs crates/workloads/src/parboil/lbm.rs crates/workloads/src/parboil/mrif.rs crates/workloads/src/parboil/mriq.rs crates/workloads/src/parboil/regtile.rs crates/workloads/src/parboil/sad.rs crates/workloads/src/parboil/sgemm.rs crates/workloads/src/parboil/spmv.rs crates/workloads/src/parboil/stencil.rs crates/workloads/src/parboil/tpacf.rs crates/workloads/src/registry.rs

/root/repo/target/release/deps/libtacker_workloads-7a04226fd990a881.rlib: crates/workloads/src/lib.rs crates/workloads/src/app.rs crates/workloads/src/dnn/mod.rs crates/workloads/src/dnn/compile.rs crates/workloads/src/dnn/cudnn.rs crates/workloads/src/dnn/elementwise.rs crates/workloads/src/dnn/graph.rs crates/workloads/src/dnn/im2col.rs crates/workloads/src/dnn/layer.rs crates/workloads/src/dnn/models/mod.rs crates/workloads/src/dnn/models/densenet.rs crates/workloads/src/dnn/models/inception.rs crates/workloads/src/dnn/models/resnet.rs crates/workloads/src/dnn/models/vgg.rs crates/workloads/src/dnn/shapes.rs crates/workloads/src/dnn/training.rs crates/workloads/src/gemm.rs crates/workloads/src/microbench.rs crates/workloads/src/parboil/mod.rs crates/workloads/src/parboil/bfs.rs crates/workloads/src/parboil/cp.rs crates/workloads/src/parboil/cutcp.rs crates/workloads/src/parboil/fft.rs crates/workloads/src/parboil/histo.rs crates/workloads/src/parboil/lbm.rs crates/workloads/src/parboil/mrif.rs crates/workloads/src/parboil/mriq.rs crates/workloads/src/parboil/regtile.rs crates/workloads/src/parboil/sad.rs crates/workloads/src/parboil/sgemm.rs crates/workloads/src/parboil/spmv.rs crates/workloads/src/parboil/stencil.rs crates/workloads/src/parboil/tpacf.rs crates/workloads/src/registry.rs

/root/repo/target/release/deps/libtacker_workloads-7a04226fd990a881.rmeta: crates/workloads/src/lib.rs crates/workloads/src/app.rs crates/workloads/src/dnn/mod.rs crates/workloads/src/dnn/compile.rs crates/workloads/src/dnn/cudnn.rs crates/workloads/src/dnn/elementwise.rs crates/workloads/src/dnn/graph.rs crates/workloads/src/dnn/im2col.rs crates/workloads/src/dnn/layer.rs crates/workloads/src/dnn/models/mod.rs crates/workloads/src/dnn/models/densenet.rs crates/workloads/src/dnn/models/inception.rs crates/workloads/src/dnn/models/resnet.rs crates/workloads/src/dnn/models/vgg.rs crates/workloads/src/dnn/shapes.rs crates/workloads/src/dnn/training.rs crates/workloads/src/gemm.rs crates/workloads/src/microbench.rs crates/workloads/src/parboil/mod.rs crates/workloads/src/parboil/bfs.rs crates/workloads/src/parboil/cp.rs crates/workloads/src/parboil/cutcp.rs crates/workloads/src/parboil/fft.rs crates/workloads/src/parboil/histo.rs crates/workloads/src/parboil/lbm.rs crates/workloads/src/parboil/mrif.rs crates/workloads/src/parboil/mriq.rs crates/workloads/src/parboil/regtile.rs crates/workloads/src/parboil/sad.rs crates/workloads/src/parboil/sgemm.rs crates/workloads/src/parboil/spmv.rs crates/workloads/src/parboil/stencil.rs crates/workloads/src/parboil/tpacf.rs crates/workloads/src/registry.rs

crates/workloads/src/lib.rs:
crates/workloads/src/app.rs:
crates/workloads/src/dnn/mod.rs:
crates/workloads/src/dnn/compile.rs:
crates/workloads/src/dnn/cudnn.rs:
crates/workloads/src/dnn/elementwise.rs:
crates/workloads/src/dnn/graph.rs:
crates/workloads/src/dnn/im2col.rs:
crates/workloads/src/dnn/layer.rs:
crates/workloads/src/dnn/models/mod.rs:
crates/workloads/src/dnn/models/densenet.rs:
crates/workloads/src/dnn/models/inception.rs:
crates/workloads/src/dnn/models/resnet.rs:
crates/workloads/src/dnn/models/vgg.rs:
crates/workloads/src/dnn/shapes.rs:
crates/workloads/src/dnn/training.rs:
crates/workloads/src/gemm.rs:
crates/workloads/src/microbench.rs:
crates/workloads/src/parboil/mod.rs:
crates/workloads/src/parboil/bfs.rs:
crates/workloads/src/parboil/cp.rs:
crates/workloads/src/parboil/cutcp.rs:
crates/workloads/src/parboil/fft.rs:
crates/workloads/src/parboil/histo.rs:
crates/workloads/src/parboil/lbm.rs:
crates/workloads/src/parboil/mrif.rs:
crates/workloads/src/parboil/mriq.rs:
crates/workloads/src/parboil/regtile.rs:
crates/workloads/src/parboil/sad.rs:
crates/workloads/src/parboil/sgemm.rs:
crates/workloads/src/parboil/spmv.rs:
crates/workloads/src/parboil/stencil.rs:
crates/workloads/src/parboil/tpacf.rs:
crates/workloads/src/registry.rs:
