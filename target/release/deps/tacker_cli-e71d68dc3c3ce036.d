/root/repo/target/release/deps/tacker_cli-e71d68dc3c3ce036.d: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/release/deps/tacker_cli-e71d68dc3c3ce036: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs

crates/cli/src/main.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
