/root/repo/target/release/deps/tacker-bf67d2a38aaf473e.d: crates/core/src/lib.rs crates/core/src/baselines.rs crates/core/src/cluster.rs crates/core/src/config.rs crates/core/src/error.rs crates/core/src/library.rs crates/core/src/manager.rs crates/core/src/metrics.rs crates/core/src/profile.rs crates/core/src/server.rs

/root/repo/target/release/deps/libtacker-bf67d2a38aaf473e.rlib: crates/core/src/lib.rs crates/core/src/baselines.rs crates/core/src/cluster.rs crates/core/src/config.rs crates/core/src/error.rs crates/core/src/library.rs crates/core/src/manager.rs crates/core/src/metrics.rs crates/core/src/profile.rs crates/core/src/server.rs

/root/repo/target/release/deps/libtacker-bf67d2a38aaf473e.rmeta: crates/core/src/lib.rs crates/core/src/baselines.rs crates/core/src/cluster.rs crates/core/src/config.rs crates/core/src/error.rs crates/core/src/library.rs crates/core/src/manager.rs crates/core/src/metrics.rs crates/core/src/profile.rs crates/core/src/server.rs

crates/core/src/lib.rs:
crates/core/src/baselines.rs:
crates/core/src/cluster.rs:
crates/core/src/config.rs:
crates/core/src/error.rs:
crates/core/src/library.rs:
crates/core/src/manager.rs:
crates/core/src/metrics.rs:
crates/core/src/profile.rs:
crates/core/src/server.rs:
