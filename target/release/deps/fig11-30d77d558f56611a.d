/root/repo/target/release/deps/fig11-30d77d558f56611a.d: crates/bench/src/bin/fig11.rs

/root/repo/target/release/deps/fig11-30d77d558f56611a: crates/bench/src/bin/fig11.rs

crates/bench/src/bin/fig11.rs:
