/root/repo/target/release/deps/tacker_trace-664d3b859acae46b.d: crates/trace/src/lib.rs crates/trace/src/chrome.rs crates/trace/src/event.rs crates/trace/src/metrics.rs crates/trace/src/sink.rs

/root/repo/target/release/deps/libtacker_trace-664d3b859acae46b.rlib: crates/trace/src/lib.rs crates/trace/src/chrome.rs crates/trace/src/event.rs crates/trace/src/metrics.rs crates/trace/src/sink.rs

/root/repo/target/release/deps/libtacker_trace-664d3b859acae46b.rmeta: crates/trace/src/lib.rs crates/trace/src/chrome.rs crates/trace/src/event.rs crates/trace/src/metrics.rs crates/trace/src/sink.rs

crates/trace/src/lib.rs:
crates/trace/src/chrome.rs:
crates/trace/src/event.rs:
crates/trace/src/metrics.rs:
crates/trace/src/sink.rs:
