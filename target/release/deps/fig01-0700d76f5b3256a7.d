/root/repo/target/release/deps/fig01-0700d76f5b3256a7.d: crates/bench/src/bin/fig01.rs

/root/repo/target/release/deps/fig01-0700d76f5b3256a7: crates/bench/src/bin/fig01.rs

crates/bench/src/bin/fig01.rs:
