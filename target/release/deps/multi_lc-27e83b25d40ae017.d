/root/repo/target/release/deps/multi_lc-27e83b25d40ae017.d: crates/bench/src/bin/multi_lc.rs

/root/repo/target/release/deps/multi_lc-27e83b25d40ae017: crates/bench/src/bin/multi_lc.rs

crates/bench/src/bin/multi_lc.rs:
