/root/repo/target/release/deps/table3-d1451a2db2798dac.d: crates/bench/src/bin/table3.rs

/root/repo/target/release/deps/table3-d1451a2db2798dac: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
