/root/repo/target/release/deps/tacker_kernel-072c9717c1e043a3.d: crates/kernel/src/lib.rs crates/kernel/src/ast.rs crates/kernel/src/dims.rs crates/kernel/src/error.rs crates/kernel/src/kernel.rs crates/kernel/src/lower.rs crates/kernel/src/resources.rs crates/kernel/src/segments.rs crates/kernel/src/source.rs crates/kernel/src/time.rs

/root/repo/target/release/deps/libtacker_kernel-072c9717c1e043a3.rlib: crates/kernel/src/lib.rs crates/kernel/src/ast.rs crates/kernel/src/dims.rs crates/kernel/src/error.rs crates/kernel/src/kernel.rs crates/kernel/src/lower.rs crates/kernel/src/resources.rs crates/kernel/src/segments.rs crates/kernel/src/source.rs crates/kernel/src/time.rs

/root/repo/target/release/deps/libtacker_kernel-072c9717c1e043a3.rmeta: crates/kernel/src/lib.rs crates/kernel/src/ast.rs crates/kernel/src/dims.rs crates/kernel/src/error.rs crates/kernel/src/kernel.rs crates/kernel/src/lower.rs crates/kernel/src/resources.rs crates/kernel/src/segments.rs crates/kernel/src/source.rs crates/kernel/src/time.rs

crates/kernel/src/lib.rs:
crates/kernel/src/ast.rs:
crates/kernel/src/dims.rs:
crates/kernel/src/error.rs:
crates/kernel/src/kernel.rs:
crates/kernel/src/lower.rs:
crates/kernel/src/resources.rs:
crates/kernel/src/segments.rs:
crates/kernel/src/source.rs:
crates/kernel/src/time.rs:
