/root/repo/target/release/deps/tacker_repro-faa50a8402d42b49.d: src/lib.rs

/root/repo/target/release/deps/libtacker_repro-faa50a8402d42b49.rlib: src/lib.rs

/root/repo/target/release/deps/libtacker_repro-faa50a8402d42b49.rmeta: src/lib.rs

src/lib.rs:
