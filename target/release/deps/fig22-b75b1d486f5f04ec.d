/root/repo/target/release/deps/fig22-b75b1d486f5f04ec.d: crates/bench/src/bin/fig22.rs

/root/repo/target/release/deps/fig22-b75b1d486f5f04ec: crates/bench/src/bin/fig22.rs

crates/bench/src/bin/fig22.rs:
