/root/repo/target/release/deps/fig19-ee3530acf7b410a2.d: crates/bench/src/bin/fig19.rs

/root/repo/target/release/deps/fig19-ee3530acf7b410a2: crates/bench/src/bin/fig19.rs

crates/bench/src/bin/fig19.rs:
