/root/repo/target/release/deps/overheads-39671647b6538f89.d: crates/bench/src/bin/overheads.rs

/root/repo/target/release/deps/overheads-39671647b6538f89: crates/bench/src/bin/overheads.rs

crates/bench/src/bin/overheads.rs:
