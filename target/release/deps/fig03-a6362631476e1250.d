/root/repo/target/release/deps/fig03-a6362631476e1250.d: crates/bench/src/bin/fig03.rs

/root/repo/target/release/deps/fig03-a6362631476e1250: crates/bench/src/bin/fig03.rs

crates/bench/src/bin/fig03.rs:
