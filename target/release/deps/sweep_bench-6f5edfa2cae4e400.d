/root/repo/target/release/deps/sweep_bench-6f5edfa2cae4e400.d: crates/bench/src/bin/sweep_bench.rs

/root/repo/target/release/deps/sweep_bench-6f5edfa2cae4e400: crates/bench/src/bin/sweep_bench.rs

crates/bench/src/bin/sweep_bench.rs:
