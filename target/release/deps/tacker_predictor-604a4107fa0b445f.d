/root/repo/target/release/deps/tacker_predictor-604a4107fa0b445f.d: crates/predictor/src/lib.rs crates/predictor/src/error.rs crates/predictor/src/fused_model.rs crates/predictor/src/kernel_model.rs crates/predictor/src/linreg.rs

/root/repo/target/release/deps/libtacker_predictor-604a4107fa0b445f.rlib: crates/predictor/src/lib.rs crates/predictor/src/error.rs crates/predictor/src/fused_model.rs crates/predictor/src/kernel_model.rs crates/predictor/src/linreg.rs

/root/repo/target/release/deps/libtacker_predictor-604a4107fa0b445f.rmeta: crates/predictor/src/lib.rs crates/predictor/src/error.rs crates/predictor/src/fused_model.rs crates/predictor/src/kernel_model.rs crates/predictor/src/linreg.rs

crates/predictor/src/lib.rs:
crates/predictor/src/error.rs:
crates/predictor/src/fused_model.rs:
crates/predictor/src/kernel_model.rs:
crates/predictor/src/linreg.rs:
