/root/repo/target/release/deps/ablation-b8ccc6d93034307e.d: crates/bench/src/bin/ablation.rs

/root/repo/target/release/deps/ablation-b8ccc6d93034307e: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
