/root/repo/target/release/deps/tacker_repro-4827ddd55f20161a.d: src/lib.rs

/root/repo/target/release/deps/libtacker_repro-4827ddd55f20161a.rlib: src/lib.rs

/root/repo/target/release/deps/libtacker_repro-4827ddd55f20161a.rmeta: src/lib.rs

src/lib.rs:
