/root/repo/target/release/deps/fig15-b8dda83305ca68dc.d: crates/bench/src/bin/fig15.rs

/root/repo/target/release/deps/fig15-b8dda83305ca68dc: crates/bench/src/bin/fig15.rs

crates/bench/src/bin/fig15.rs:
