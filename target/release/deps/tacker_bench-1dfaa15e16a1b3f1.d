/root/repo/target/release/deps/tacker_bench-1dfaa15e16a1b3f1.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libtacker_bench-1dfaa15e16a1b3f1.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libtacker_bench-1dfaa15e16a1b3f1.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
