/root/repo/target/release/deps/fig14-4b9ee45170cceccf.d: crates/bench/src/bin/fig14.rs

/root/repo/target/release/deps/fig14-4b9ee45170cceccf: crates/bench/src/bin/fig14.rs

crates/bench/src/bin/fig14.rs:
