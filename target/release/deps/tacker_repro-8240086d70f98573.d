/root/repo/target/release/deps/tacker_repro-8240086d70f98573.d: src/lib.rs

/root/repo/target/release/deps/tacker_repro-8240086d70f98573: src/lib.rs

src/lib.rs:
