/root/repo/target/release/deps/tacker_cli-8f6312661b416198.d: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/release/deps/tacker_cli-8f6312661b416198: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs

crates/cli/src/main.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
