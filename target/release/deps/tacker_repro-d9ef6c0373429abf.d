/root/repo/target/release/deps/tacker_repro-d9ef6c0373429abf.d: src/lib.rs

/root/repo/target/release/deps/libtacker_repro-d9ef6c0373429abf.rlib: src/lib.rs

/root/repo/target/release/deps/libtacker_repro-d9ef6c0373429abf.rmeta: src/lib.rs

src/lib.rs:
