/root/repo/target/release/deps/fig10-a5bc7aa9c3f8c552.d: crates/bench/src/bin/fig10.rs

/root/repo/target/release/deps/fig10-a5bc7aa9c3f8c552: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
