/root/repo/target/release/deps/tacker_par-20f7450014d14b08.d: crates/par/src/lib.rs

/root/repo/target/release/deps/libtacker_par-20f7450014d14b08.rlib: crates/par/src/lib.rs

/root/repo/target/release/deps/libtacker_par-20f7450014d14b08.rmeta: crates/par/src/lib.rs

crates/par/src/lib.rs:
