/root/repo/target/release/deps/overhead-dbbbc9c8b47420bb.d: crates/bench/benches/overhead.rs

/root/repo/target/release/deps/overhead-dbbbc9c8b47420bb: crates/bench/benches/overhead.rs

crates/bench/benches/overhead.rs:
