/root/repo/target/release/deps/table2-12f11b9db95abe62.d: crates/bench/src/bin/table2.rs

/root/repo/target/release/deps/table2-12f11b9db95abe62: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
