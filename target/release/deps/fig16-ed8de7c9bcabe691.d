/root/repo/target/release/deps/fig16-ed8de7c9bcabe691.d: crates/bench/src/bin/fig16.rs

/root/repo/target/release/deps/fig16-ed8de7c9bcabe691: crates/bench/src/bin/fig16.rs

crates/bench/src/bin/fig16.rs:
