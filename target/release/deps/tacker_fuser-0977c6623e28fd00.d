/root/repo/target/release/deps/tacker_fuser-0977c6623e28fd00.d: crates/fuser/src/lib.rs crates/fuser/src/barrier.rs crates/fuser/src/direct.rs crates/fuser/src/error.rs crates/fuser/src/flexible.rs crates/fuser/src/ptb.rs crates/fuser/src/rename.rs crates/fuser/src/select.rs

/root/repo/target/release/deps/libtacker_fuser-0977c6623e28fd00.rlib: crates/fuser/src/lib.rs crates/fuser/src/barrier.rs crates/fuser/src/direct.rs crates/fuser/src/error.rs crates/fuser/src/flexible.rs crates/fuser/src/ptb.rs crates/fuser/src/rename.rs crates/fuser/src/select.rs

/root/repo/target/release/deps/libtacker_fuser-0977c6623e28fd00.rmeta: crates/fuser/src/lib.rs crates/fuser/src/barrier.rs crates/fuser/src/direct.rs crates/fuser/src/error.rs crates/fuser/src/flexible.rs crates/fuser/src/ptb.rs crates/fuser/src/rename.rs crates/fuser/src/select.rs

crates/fuser/src/lib.rs:
crates/fuser/src/barrier.rs:
crates/fuser/src/direct.rs:
crates/fuser/src/error.rs:
crates/fuser/src/flexible.rs:
crates/fuser/src/ptb.rs:
crates/fuser/src/rename.rs:
crates/fuser/src/select.rs:
