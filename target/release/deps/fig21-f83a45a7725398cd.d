/root/repo/target/release/deps/fig21-f83a45a7725398cd.d: crates/bench/src/bin/fig21.rs

/root/repo/target/release/deps/fig21-f83a45a7725398cd: crates/bench/src/bin/fig21.rs

crates/bench/src/bin/fig21.rs:
