/root/repo/target/release/deps/fig_batch-fd0a7fbbd37b538d.d: crates/bench/src/bin/fig_batch.rs

/root/repo/target/release/deps/fig_batch-fd0a7fbbd37b538d: crates/bench/src/bin/fig_batch.rs

crates/bench/src/bin/fig_batch.rs:
