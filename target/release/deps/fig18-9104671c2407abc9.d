/root/repo/target/release/deps/fig18-9104671c2407abc9.d: crates/bench/src/bin/fig18.rs

/root/repo/target/release/deps/fig18-9104671c2407abc9: crates/bench/src/bin/fig18.rs

crates/bench/src/bin/fig18.rs:
