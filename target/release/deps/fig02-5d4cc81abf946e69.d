/root/repo/target/release/deps/fig02-5d4cc81abf946e69.d: crates/bench/src/bin/fig02.rs

/root/repo/target/release/deps/fig02-5d4cc81abf946e69: crates/bench/src/bin/fig02.rs

crates/bench/src/bin/fig02.rs:
