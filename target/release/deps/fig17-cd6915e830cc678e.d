/root/repo/target/release/deps/fig17-cd6915e830cc678e.d: crates/bench/src/bin/fig17.rs

/root/repo/target/release/deps/fig17-cd6915e830cc678e: crates/bench/src/bin/fig17.rs

crates/bench/src/bin/fig17.rs:
