/root/repo/target/release/deps/table1-64daec2bebf8c9fa.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-64daec2bebf8c9fa: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
