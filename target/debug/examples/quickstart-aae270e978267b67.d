/root/repo/target/debug/examples/quickstart-aae270e978267b67.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-aae270e978267b67: examples/quickstart.rs

examples/quickstart.rs:
