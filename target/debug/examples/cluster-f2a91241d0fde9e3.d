/root/repo/target/debug/examples/cluster-f2a91241d0fde9e3.d: examples/cluster.rs Cargo.toml

/root/repo/target/debug/examples/libcluster-f2a91241d0fde9e3.rmeta: examples/cluster.rs Cargo.toml

examples/cluster.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
