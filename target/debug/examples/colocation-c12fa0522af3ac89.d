/root/repo/target/debug/examples/colocation-c12fa0522af3ac89.d: examples/colocation.rs

/root/repo/target/debug/examples/colocation-c12fa0522af3ac89: examples/colocation.rs

examples/colocation.rs:
