/root/repo/target/debug/examples/codegen-ad1bcbaba7f192d5.d: examples/codegen.rs

/root/repo/target/debug/examples/codegen-ad1bcbaba7f192d5: examples/codegen.rs

examples/codegen.rs:
