/root/repo/target/debug/examples/codegen-e2c60a9977fbde74.d: examples/codegen.rs Cargo.toml

/root/repo/target/debug/examples/libcodegen-e2c60a9977fbde74.rmeta: examples/codegen.rs Cargo.toml

examples/codegen.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
