/root/repo/target/debug/examples/quickstart-f4e56565aca2b7ad.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-f4e56565aca2b7ad.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
