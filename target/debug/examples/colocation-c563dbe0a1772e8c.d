/root/repo/target/debug/examples/colocation-c563dbe0a1772e8c.d: examples/colocation.rs Cargo.toml

/root/repo/target/debug/examples/libcolocation-c563dbe0a1772e8c.rmeta: examples/colocation.rs Cargo.toml

examples/colocation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
