/root/repo/target/debug/examples/fusion_explorer-375c468a7e8953f2.d: examples/fusion_explorer.rs

/root/repo/target/debug/examples/fusion_explorer-375c468a7e8953f2: examples/fusion_explorer.rs

examples/fusion_explorer.rs:
