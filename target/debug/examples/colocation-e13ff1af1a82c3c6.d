/root/repo/target/debug/examples/colocation-e13ff1af1a82c3c6.d: examples/colocation.rs

/root/repo/target/debug/examples/colocation-e13ff1af1a82c3c6: examples/colocation.rs

examples/colocation.rs:
