/root/repo/target/debug/examples/colocation-b945008e9dcf44e4.d: examples/colocation.rs Cargo.toml

/root/repo/target/debug/examples/libcolocation-b945008e9dcf44e4.rmeta: examples/colocation.rs Cargo.toml

examples/colocation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
