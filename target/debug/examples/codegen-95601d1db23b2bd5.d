/root/repo/target/debug/examples/codegen-95601d1db23b2bd5.d: examples/codegen.rs

/root/repo/target/debug/examples/codegen-95601d1db23b2bd5: examples/codegen.rs

examples/codegen.rs:
