/root/repo/target/debug/examples/quickstart-18122c3333bf3dc0.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-18122c3333bf3dc0: examples/quickstart.rs

examples/quickstart.rs:
