/root/repo/target/debug/examples/codegen-85193c60d3dbb7c8.d: examples/codegen.rs Cargo.toml

/root/repo/target/debug/examples/libcodegen-85193c60d3dbb7c8.rmeta: examples/codegen.rs Cargo.toml

examples/codegen.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
