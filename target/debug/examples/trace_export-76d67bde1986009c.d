/root/repo/target/debug/examples/trace_export-76d67bde1986009c.d: examples/trace_export.rs

/root/repo/target/debug/examples/trace_export-76d67bde1986009c: examples/trace_export.rs

examples/trace_export.rs:
