/root/repo/target/debug/examples/cluster-67e6d174ff4ab804.d: examples/cluster.rs

/root/repo/target/debug/examples/cluster-67e6d174ff4ab804: examples/cluster.rs

examples/cluster.rs:
