/root/repo/target/debug/examples/trace_export-1dfb65bb3cd83267.d: examples/trace_export.rs

/root/repo/target/debug/examples/trace_export-1dfb65bb3cd83267: examples/trace_export.rs

examples/trace_export.rs:
