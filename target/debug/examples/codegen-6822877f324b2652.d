/root/repo/target/debug/examples/codegen-6822877f324b2652.d: examples/codegen.rs

/root/repo/target/debug/examples/codegen-6822877f324b2652: examples/codegen.rs

examples/codegen.rs:
