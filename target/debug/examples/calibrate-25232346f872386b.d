/root/repo/target/debug/examples/calibrate-25232346f872386b.d: crates/workloads/examples/calibrate.rs

/root/repo/target/debug/examples/calibrate-25232346f872386b: crates/workloads/examples/calibrate.rs

crates/workloads/examples/calibrate.rs:
