/root/repo/target/debug/examples/trace_export-d06d0b03f9ea53a0.d: examples/trace_export.rs Cargo.toml

/root/repo/target/debug/examples/libtrace_export-d06d0b03f9ea53a0.rmeta: examples/trace_export.rs Cargo.toml

examples/trace_export.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
