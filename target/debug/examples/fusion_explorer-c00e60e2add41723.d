/root/repo/target/debug/examples/fusion_explorer-c00e60e2add41723.d: examples/fusion_explorer.rs Cargo.toml

/root/repo/target/debug/examples/libfusion_explorer-c00e60e2add41723.rmeta: examples/fusion_explorer.rs Cargo.toml

examples/fusion_explorer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
