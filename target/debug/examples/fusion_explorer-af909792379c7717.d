/root/repo/target/debug/examples/fusion_explorer-af909792379c7717.d: examples/fusion_explorer.rs

/root/repo/target/debug/examples/fusion_explorer-af909792379c7717: examples/fusion_explorer.rs

examples/fusion_explorer.rs:
