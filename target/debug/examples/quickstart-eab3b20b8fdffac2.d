/root/repo/target/debug/examples/quickstart-eab3b20b8fdffac2.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-eab3b20b8fdffac2: examples/quickstart.rs

examples/quickstart.rs:
