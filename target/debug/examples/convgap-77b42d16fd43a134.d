/root/repo/target/debug/examples/convgap-77b42d16fd43a134.d: crates/workloads/examples/convgap.rs

/root/repo/target/debug/examples/convgap-77b42d16fd43a134: crates/workloads/examples/convgap.rs

crates/workloads/examples/convgap.rs:
