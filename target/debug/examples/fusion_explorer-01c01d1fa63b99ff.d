/root/repo/target/debug/examples/fusion_explorer-01c01d1fa63b99ff.d: examples/fusion_explorer.rs

/root/repo/target/debug/examples/fusion_explorer-01c01d1fa63b99ff: examples/fusion_explorer.rs

examples/fusion_explorer.rs:
