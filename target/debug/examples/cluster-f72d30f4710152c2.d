/root/repo/target/debug/examples/cluster-f72d30f4710152c2.d: examples/cluster.rs Cargo.toml

/root/repo/target/debug/examples/libcluster-f72d30f4710152c2.rmeta: examples/cluster.rs Cargo.toml

examples/cluster.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
