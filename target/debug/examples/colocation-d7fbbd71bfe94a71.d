/root/repo/target/debug/examples/colocation-d7fbbd71bfe94a71.d: examples/colocation.rs

/root/repo/target/debug/examples/colocation-d7fbbd71bfe94a71: examples/colocation.rs

examples/colocation.rs:
