/root/repo/target/debug/examples/cluster-e3518780b1f374bc.d: examples/cluster.rs

/root/repo/target/debug/examples/cluster-e3518780b1f374bc: examples/cluster.rs

examples/cluster.rs:
