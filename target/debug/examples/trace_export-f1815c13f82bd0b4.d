/root/repo/target/debug/examples/trace_export-f1815c13f82bd0b4.d: examples/trace_export.rs

/root/repo/target/debug/examples/trace_export-f1815c13f82bd0b4: examples/trace_export.rs

examples/trace_export.rs:
