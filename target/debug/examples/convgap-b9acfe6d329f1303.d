/root/repo/target/debug/examples/convgap-b9acfe6d329f1303.d: crates/workloads/examples/convgap.rs Cargo.toml

/root/repo/target/debug/examples/libconvgap-b9acfe6d329f1303.rmeta: crates/workloads/examples/convgap.rs Cargo.toml

crates/workloads/examples/convgap.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
