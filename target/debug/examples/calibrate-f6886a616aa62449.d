/root/repo/target/debug/examples/calibrate-f6886a616aa62449.d: crates/workloads/examples/calibrate.rs Cargo.toml

/root/repo/target/debug/examples/libcalibrate-f6886a616aa62449.rmeta: crates/workloads/examples/calibrate.rs Cargo.toml

crates/workloads/examples/calibrate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
