/root/repo/target/debug/examples/cluster-1dd150b383b903b9.d: examples/cluster.rs

/root/repo/target/debug/examples/cluster-1dd150b383b903b9: examples/cluster.rs

examples/cluster.rs:
