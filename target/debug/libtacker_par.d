/root/repo/target/debug/libtacker_par.rlib: /root/repo/crates/par/src/lib.rs
