/root/repo/target/debug/deps/fig16-43591534101b972a.d: crates/bench/src/bin/fig16.rs

/root/repo/target/debug/deps/fig16-43591534101b972a: crates/bench/src/bin/fig16.rs

crates/bench/src/bin/fig16.rs:
