/root/repo/target/debug/deps/fig14-c2b3ebfd6b8ba596.d: crates/bench/src/bin/fig14.rs

/root/repo/target/debug/deps/fig14-c2b3ebfd6b8ba596: crates/bench/src/bin/fig14.rs

crates/bench/src/bin/fig14.rs:
