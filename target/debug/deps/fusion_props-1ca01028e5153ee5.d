/root/repo/target/debug/deps/fusion_props-1ca01028e5153ee5.d: tests/fusion_props.rs

/root/repo/target/debug/deps/fusion_props-1ca01028e5153ee5: tests/fusion_props.rs

tests/fusion_props.rs:
