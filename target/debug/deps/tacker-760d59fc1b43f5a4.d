/root/repo/target/debug/deps/tacker-760d59fc1b43f5a4.d: crates/core/src/lib.rs crates/core/src/baselines.rs crates/core/src/cluster.rs crates/core/src/config.rs crates/core/src/error.rs crates/core/src/library.rs crates/core/src/manager.rs crates/core/src/metrics.rs crates/core/src/profile.rs crates/core/src/server.rs crates/core/src/sweep.rs

/root/repo/target/debug/deps/libtacker-760d59fc1b43f5a4.rlib: crates/core/src/lib.rs crates/core/src/baselines.rs crates/core/src/cluster.rs crates/core/src/config.rs crates/core/src/error.rs crates/core/src/library.rs crates/core/src/manager.rs crates/core/src/metrics.rs crates/core/src/profile.rs crates/core/src/server.rs crates/core/src/sweep.rs

/root/repo/target/debug/deps/libtacker-760d59fc1b43f5a4.rmeta: crates/core/src/lib.rs crates/core/src/baselines.rs crates/core/src/cluster.rs crates/core/src/config.rs crates/core/src/error.rs crates/core/src/library.rs crates/core/src/manager.rs crates/core/src/metrics.rs crates/core/src/profile.rs crates/core/src/server.rs crates/core/src/sweep.rs

crates/core/src/lib.rs:
crates/core/src/baselines.rs:
crates/core/src/cluster.rs:
crates/core/src/config.rs:
crates/core/src/error.rs:
crates/core/src/library.rs:
crates/core/src/manager.rs:
crates/core/src/metrics.rs:
crates/core/src/profile.rs:
crates/core/src/server.rs:
crates/core/src/sweep.rs:
