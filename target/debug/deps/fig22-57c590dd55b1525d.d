/root/repo/target/debug/deps/fig22-57c590dd55b1525d.d: crates/bench/src/bin/fig22.rs

/root/repo/target/debug/deps/fig22-57c590dd55b1525d: crates/bench/src/bin/fig22.rs

crates/bench/src/bin/fig22.rs:
