/root/repo/target/debug/deps/predictor-e3328da3d9381bf8.d: crates/bench/benches/predictor.rs Cargo.toml

/root/repo/target/debug/deps/libpredictor-e3328da3d9381bf8.rmeta: crates/bench/benches/predictor.rs Cargo.toml

crates/bench/benches/predictor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
