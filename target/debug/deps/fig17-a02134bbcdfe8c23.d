/root/repo/target/debug/deps/fig17-a02134bbcdfe8c23.d: crates/bench/src/bin/fig17.rs

/root/repo/target/debug/deps/fig17-a02134bbcdfe8c23: crates/bench/src/bin/fig17.rs

crates/bench/src/bin/fig17.rs:
