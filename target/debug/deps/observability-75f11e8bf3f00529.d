/root/repo/target/debug/deps/observability-75f11e8bf3f00529.d: tests/observability.rs

/root/repo/target/debug/deps/observability-75f11e8bf3f00529: tests/observability.rs

tests/observability.rs:
