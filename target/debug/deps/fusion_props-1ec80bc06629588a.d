/root/repo/target/debug/deps/fusion_props-1ec80bc06629588a.d: tests/fusion_props.rs

/root/repo/target/debug/deps/fusion_props-1ec80bc06629588a: tests/fusion_props.rs

tests/fusion_props.rs:
