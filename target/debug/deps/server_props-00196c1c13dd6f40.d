/root/repo/target/debug/deps/server_props-00196c1c13dd6f40.d: tests/server_props.rs

/root/repo/target/debug/deps/server_props-00196c1c13dd6f40: tests/server_props.rs

tests/server_props.rs:
