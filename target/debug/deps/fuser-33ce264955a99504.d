/root/repo/target/debug/deps/fuser-33ce264955a99504.d: crates/bench/benches/fuser.rs

/root/repo/target/debug/deps/fuser-33ce264955a99504: crates/bench/benches/fuser.rs

crates/bench/benches/fuser.rs:
