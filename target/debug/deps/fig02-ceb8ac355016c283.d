/root/repo/target/debug/deps/fig02-ceb8ac355016c283.d: crates/bench/src/bin/fig02.rs

/root/repo/target/debug/deps/fig02-ceb8ac355016c283: crates/bench/src/bin/fig02.rs

crates/bench/src/bin/fig02.rs:
