/root/repo/target/debug/deps/predictor_props-4da525d68423fa8c.d: tests/predictor_props.rs

/root/repo/target/debug/deps/predictor_props-4da525d68423fa8c: tests/predictor_props.rs

tests/predictor_props.rs:
