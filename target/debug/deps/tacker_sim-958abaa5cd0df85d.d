/root/repo/target/debug/deps/tacker_sim-958abaa5cd0df85d.d: crates/sim/src/lib.rs crates/sim/src/concurrent.rs crates/sim/src/device.rs crates/sim/src/engine.rs crates/sim/src/error.rs crates/sim/src/plan.rs crates/sim/src/power.rs crates/sim/src/result.rs crates/sim/src/spec.rs crates/sim/src/timeline.rs

/root/repo/target/debug/deps/libtacker_sim-958abaa5cd0df85d.rlib: crates/sim/src/lib.rs crates/sim/src/concurrent.rs crates/sim/src/device.rs crates/sim/src/engine.rs crates/sim/src/error.rs crates/sim/src/plan.rs crates/sim/src/power.rs crates/sim/src/result.rs crates/sim/src/spec.rs crates/sim/src/timeline.rs

/root/repo/target/debug/deps/libtacker_sim-958abaa5cd0df85d.rmeta: crates/sim/src/lib.rs crates/sim/src/concurrent.rs crates/sim/src/device.rs crates/sim/src/engine.rs crates/sim/src/error.rs crates/sim/src/plan.rs crates/sim/src/power.rs crates/sim/src/result.rs crates/sim/src/spec.rs crates/sim/src/timeline.rs

crates/sim/src/lib.rs:
crates/sim/src/concurrent.rs:
crates/sim/src/device.rs:
crates/sim/src/engine.rs:
crates/sim/src/error.rs:
crates/sim/src/plan.rs:
crates/sim/src/power.rs:
crates/sim/src/result.rs:
crates/sim/src/spec.rs:
crates/sim/src/timeline.rs:
