/root/repo/target/debug/deps/fig15-5413143bc01e69ec.d: crates/bench/src/bin/fig15.rs

/root/repo/target/debug/deps/fig15-5413143bc01e69ec: crates/bench/src/bin/fig15.rs

crates/bench/src/bin/fig15.rs:
