/root/repo/target/debug/deps/tacker_fuser-772d5b0539d644f3.d: crates/fuser/src/lib.rs crates/fuser/src/barrier.rs crates/fuser/src/direct.rs crates/fuser/src/error.rs crates/fuser/src/flexible.rs crates/fuser/src/ptb.rs crates/fuser/src/rename.rs crates/fuser/src/select.rs Cargo.toml

/root/repo/target/debug/deps/libtacker_fuser-772d5b0539d644f3.rmeta: crates/fuser/src/lib.rs crates/fuser/src/barrier.rs crates/fuser/src/direct.rs crates/fuser/src/error.rs crates/fuser/src/flexible.rs crates/fuser/src/ptb.rs crates/fuser/src/rename.rs crates/fuser/src/select.rs Cargo.toml

crates/fuser/src/lib.rs:
crates/fuser/src/barrier.rs:
crates/fuser/src/direct.rs:
crates/fuser/src/error.rs:
crates/fuser/src/flexible.rs:
crates/fuser/src/ptb.rs:
crates/fuser/src/rename.rs:
crates/fuser/src/select.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
