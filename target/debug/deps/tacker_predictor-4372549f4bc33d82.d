/root/repo/target/debug/deps/tacker_predictor-4372549f4bc33d82.d: crates/predictor/src/lib.rs crates/predictor/src/error.rs crates/predictor/src/fused_model.rs crates/predictor/src/kernel_model.rs crates/predictor/src/linreg.rs Cargo.toml

/root/repo/target/debug/deps/libtacker_predictor-4372549f4bc33d82.rmeta: crates/predictor/src/lib.rs crates/predictor/src/error.rs crates/predictor/src/fused_model.rs crates/predictor/src/kernel_model.rs crates/predictor/src/linreg.rs Cargo.toml

crates/predictor/src/lib.rs:
crates/predictor/src/error.rs:
crates/predictor/src/fused_model.rs:
crates/predictor/src/kernel_model.rs:
crates/predictor/src/linreg.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
