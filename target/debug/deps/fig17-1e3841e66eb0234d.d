/root/repo/target/debug/deps/fig17-1e3841e66eb0234d.d: crates/bench/src/bin/fig17.rs

/root/repo/target/debug/deps/fig17-1e3841e66eb0234d: crates/bench/src/bin/fig17.rs

crates/bench/src/bin/fig17.rs:
