/root/repo/target/debug/deps/overhead-5df7b8b083ed78bb.d: crates/bench/benches/overhead.rs

/root/repo/target/debug/deps/overhead-5df7b8b083ed78bb: crates/bench/benches/overhead.rs

crates/bench/benches/overhead.rs:
