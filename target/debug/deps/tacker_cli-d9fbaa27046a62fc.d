/root/repo/target/debug/deps/tacker_cli-d9fbaa27046a62fc.d: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs Cargo.toml

/root/repo/target/debug/deps/libtacker_cli-d9fbaa27046a62fc.rmeta: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs Cargo.toml

crates/cli/src/main.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
