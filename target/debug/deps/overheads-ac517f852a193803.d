/root/repo/target/debug/deps/overheads-ac517f852a193803.d: crates/bench/src/bin/overheads.rs Cargo.toml

/root/repo/target/debug/deps/liboverheads-ac517f852a193803.rmeta: crates/bench/src/bin/overheads.rs Cargo.toml

crates/bench/src/bin/overheads.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
