/root/repo/target/debug/deps/fig02-a532f3bbfe7dc307.d: crates/bench/src/bin/fig02.rs

/root/repo/target/debug/deps/fig02-a532f3bbfe7dc307: crates/bench/src/bin/fig02.rs

crates/bench/src/bin/fig02.rs:
