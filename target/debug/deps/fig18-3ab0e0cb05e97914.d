/root/repo/target/debug/deps/fig18-3ab0e0cb05e97914.d: crates/bench/src/bin/fig18.rs

/root/repo/target/debug/deps/fig18-3ab0e0cb05e97914: crates/bench/src/bin/fig18.rs

crates/bench/src/bin/fig18.rs:
