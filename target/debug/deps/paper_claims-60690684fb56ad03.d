/root/repo/target/debug/deps/paper_claims-60690684fb56ad03.d: tests/paper_claims.rs

/root/repo/target/debug/deps/paper_claims-60690684fb56ad03: tests/paper_claims.rs

tests/paper_claims.rs:
