/root/repo/target/debug/deps/ablation-1ac02f4e8598e503.d: crates/bench/src/bin/ablation.rs

/root/repo/target/debug/deps/ablation-1ac02f4e8598e503: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
