/root/repo/target/debug/deps/codegen_golden-6dc495eaeca0cd93.d: tests/codegen_golden.rs

/root/repo/target/debug/deps/codegen_golden-6dc495eaeca0cd93: tests/codegen_golden.rs

tests/codegen_golden.rs:
