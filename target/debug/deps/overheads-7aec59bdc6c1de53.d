/root/repo/target/debug/deps/overheads-7aec59bdc6c1de53.d: crates/bench/src/bin/overheads.rs Cargo.toml

/root/repo/target/debug/deps/liboverheads-7aec59bdc6c1de53.rmeta: crates/bench/src/bin/overheads.rs Cargo.toml

crates/bench/src/bin/overheads.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
