/root/repo/target/debug/deps/tacker_repro-a262dc2cd097bcba.d: src/lib.rs

/root/repo/target/debug/deps/libtacker_repro-a262dc2cd097bcba.rlib: src/lib.rs

/root/repo/target/debug/deps/libtacker_repro-a262dc2cd097bcba.rmeta: src/lib.rs

src/lib.rs:
