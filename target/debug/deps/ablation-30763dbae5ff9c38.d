/root/repo/target/debug/deps/ablation-30763dbae5ff9c38.d: crates/bench/src/bin/ablation.rs

/root/repo/target/debug/deps/ablation-30763dbae5ff9c38: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
