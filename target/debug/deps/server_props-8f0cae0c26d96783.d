/root/repo/target/debug/deps/server_props-8f0cae0c26d96783.d: tests/server_props.rs

/root/repo/target/debug/deps/server_props-8f0cae0c26d96783: tests/server_props.rs

tests/server_props.rs:
