/root/repo/target/debug/deps/tacker_sim-218ad12ad2647401.d: crates/sim/src/lib.rs crates/sim/src/concurrent.rs crates/sim/src/device.rs crates/sim/src/engine.rs crates/sim/src/error.rs crates/sim/src/plan.rs crates/sim/src/power.rs crates/sim/src/result.rs crates/sim/src/spec.rs crates/sim/src/timeline.rs

/root/repo/target/debug/deps/tacker_sim-218ad12ad2647401: crates/sim/src/lib.rs crates/sim/src/concurrent.rs crates/sim/src/device.rs crates/sim/src/engine.rs crates/sim/src/error.rs crates/sim/src/plan.rs crates/sim/src/power.rs crates/sim/src/result.rs crates/sim/src/spec.rs crates/sim/src/timeline.rs

crates/sim/src/lib.rs:
crates/sim/src/concurrent.rs:
crates/sim/src/device.rs:
crates/sim/src/engine.rs:
crates/sim/src/error.rs:
crates/sim/src/plan.rs:
crates/sim/src/power.rs:
crates/sim/src/result.rs:
crates/sim/src/spec.rs:
crates/sim/src/timeline.rs:
