/root/repo/target/debug/deps/fig19-d08f10649468d811.d: crates/bench/src/bin/fig19.rs

/root/repo/target/debug/deps/fig19-d08f10649468d811: crates/bench/src/bin/fig19.rs

crates/bench/src/bin/fig19.rs:
