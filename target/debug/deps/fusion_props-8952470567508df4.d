/root/repo/target/debug/deps/fusion_props-8952470567508df4.d: tests/fusion_props.rs Cargo.toml

/root/repo/target/debug/deps/libfusion_props-8952470567508df4.rmeta: tests/fusion_props.rs Cargo.toml

tests/fusion_props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
