/root/repo/target/debug/deps/tacker_par-f79b3d58989ab0ce.d: crates/par/src/lib.rs

/root/repo/target/debug/deps/libtacker_par-f79b3d58989ab0ce.rlib: crates/par/src/lib.rs

/root/repo/target/debug/deps/libtacker_par-f79b3d58989ab0ce.rmeta: crates/par/src/lib.rs

crates/par/src/lib.rs:
