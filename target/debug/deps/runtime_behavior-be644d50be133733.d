/root/repo/target/debug/deps/runtime_behavior-be644d50be133733.d: tests/runtime_behavior.rs Cargo.toml

/root/repo/target/debug/deps/libruntime_behavior-be644d50be133733.rmeta: tests/runtime_behavior.rs Cargo.toml

tests/runtime_behavior.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
