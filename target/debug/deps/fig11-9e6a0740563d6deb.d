/root/repo/target/debug/deps/fig11-9e6a0740563d6deb.d: crates/bench/src/bin/fig11.rs

/root/repo/target/debug/deps/fig11-9e6a0740563d6deb: crates/bench/src/bin/fig11.rs

crates/bench/src/bin/fig11.rs:
