/root/repo/target/debug/deps/fig20-84311855ca4ef1a0.d: crates/bench/src/bin/fig20.rs Cargo.toml

/root/repo/target/debug/deps/libfig20-84311855ca4ef1a0.rmeta: crates/bench/src/bin/fig20.rs Cargo.toml

crates/bench/src/bin/fig20.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
