/root/repo/target/debug/deps/fig10-58b6f9de850fbf48.d: crates/bench/src/bin/fig10.rs

/root/repo/target/debug/deps/fig10-58b6f9de850fbf48: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
