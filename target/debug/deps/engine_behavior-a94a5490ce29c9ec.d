/root/repo/target/debug/deps/engine_behavior-a94a5490ce29c9ec.d: tests/engine_behavior.rs Cargo.toml

/root/repo/target/debug/deps/libengine_behavior-a94a5490ce29c9ec.rmeta: tests/engine_behavior.rs Cargo.toml

tests/engine_behavior.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
