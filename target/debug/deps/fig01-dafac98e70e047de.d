/root/repo/target/debug/deps/fig01-dafac98e70e047de.d: crates/bench/src/bin/fig01.rs

/root/repo/target/debug/deps/fig01-dafac98e70e047de: crates/bench/src/bin/fig01.rs

crates/bench/src/bin/fig01.rs:
