/root/repo/target/debug/deps/table3-749406118fc72402.d: crates/bench/src/bin/table3.rs

/root/repo/target/debug/deps/table3-749406118fc72402: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
