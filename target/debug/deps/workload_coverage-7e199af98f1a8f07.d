/root/repo/target/debug/deps/workload_coverage-7e199af98f1a8f07.d: tests/workload_coverage.rs Cargo.toml

/root/repo/target/debug/deps/libworkload_coverage-7e199af98f1a8f07.rmeta: tests/workload_coverage.rs Cargo.toml

tests/workload_coverage.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
