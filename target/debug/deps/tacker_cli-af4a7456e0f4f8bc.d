/root/repo/target/debug/deps/tacker_cli-af4a7456e0f4f8bc.d: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/debug/deps/tacker_cli-af4a7456e0f4f8bc: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs

crates/cli/src/main.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
