/root/repo/target/debug/deps/engine_behavior-eed58f1c08dad37c.d: tests/engine_behavior.rs

/root/repo/target/debug/deps/engine_behavior-eed58f1c08dad37c: tests/engine_behavior.rs

tests/engine_behavior.rs:
