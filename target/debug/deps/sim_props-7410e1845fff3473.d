/root/repo/target/debug/deps/sim_props-7410e1845fff3473.d: tests/sim_props.rs

/root/repo/target/debug/deps/sim_props-7410e1845fff3473: tests/sim_props.rs

tests/sim_props.rs:
