/root/repo/target/debug/deps/fig19-97a34cc9582dc6b5.d: crates/bench/src/bin/fig19.rs Cargo.toml

/root/repo/target/debug/deps/libfig19-97a34cc9582dc6b5.rmeta: crates/bench/src/bin/fig19.rs Cargo.toml

crates/bench/src/bin/fig19.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
