/root/repo/target/debug/deps/engine_behavior-512889a3d3ddfffc.d: tests/engine_behavior.rs

/root/repo/target/debug/deps/engine_behavior-512889a3d3ddfffc: tests/engine_behavior.rs

tests/engine_behavior.rs:
