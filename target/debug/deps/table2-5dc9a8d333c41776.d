/root/repo/target/debug/deps/table2-5dc9a8d333c41776.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-5dc9a8d333c41776: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
