/root/repo/target/debug/deps/fuser-bab86708ada9adf1.d: crates/bench/benches/fuser.rs Cargo.toml

/root/repo/target/debug/deps/libfuser-bab86708ada9adf1.rmeta: crates/bench/benches/fuser.rs Cargo.toml

crates/bench/benches/fuser.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
