/root/repo/target/debug/deps/tacker_predictor-2b436894cd466e43.d: crates/predictor/src/lib.rs crates/predictor/src/error.rs crates/predictor/src/fused_model.rs crates/predictor/src/kernel_model.rs crates/predictor/src/linreg.rs Cargo.toml

/root/repo/target/debug/deps/libtacker_predictor-2b436894cd466e43.rmeta: crates/predictor/src/lib.rs crates/predictor/src/error.rs crates/predictor/src/fused_model.rs crates/predictor/src/kernel_model.rs crates/predictor/src/linreg.rs Cargo.toml

crates/predictor/src/lib.rs:
crates/predictor/src/error.rs:
crates/predictor/src/fused_model.rs:
crates/predictor/src/kernel_model.rs:
crates/predictor/src/linreg.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
