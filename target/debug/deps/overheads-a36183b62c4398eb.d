/root/repo/target/debug/deps/overheads-a36183b62c4398eb.d: crates/bench/src/bin/overheads.rs Cargo.toml

/root/repo/target/debug/deps/liboverheads-a36183b62c4398eb.rmeta: crates/bench/src/bin/overheads.rs Cargo.toml

crates/bench/src/bin/overheads.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
