/root/repo/target/debug/deps/fig01-3d3d1075a7255d52.d: crates/bench/src/bin/fig01.rs Cargo.toml

/root/repo/target/debug/deps/libfig01-3d3d1075a7255d52.rmeta: crates/bench/src/bin/fig01.rs Cargo.toml

crates/bench/src/bin/fig01.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
