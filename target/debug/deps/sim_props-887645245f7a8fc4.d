/root/repo/target/debug/deps/sim_props-887645245f7a8fc4.d: tests/sim_props.rs Cargo.toml

/root/repo/target/debug/deps/libsim_props-887645245f7a8fc4.rmeta: tests/sim_props.rs Cargo.toml

tests/sim_props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
