/root/repo/target/debug/deps/tacker_par-928b7d5f3c576dbb.d: crates/par/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libtacker_par-928b7d5f3c576dbb.rmeta: crates/par/src/lib.rs Cargo.toml

crates/par/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
