/root/repo/target/debug/deps/occupancy_props-c2ff351ac67de828.d: tests/occupancy_props.rs Cargo.toml

/root/repo/target/debug/deps/liboccupancy_props-c2ff351ac67de828.rmeta: tests/occupancy_props.rs Cargo.toml

tests/occupancy_props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
