/root/repo/target/debug/deps/tacker-af2094e8d5ab2124.d: crates/core/src/lib.rs crates/core/src/baselines.rs crates/core/src/cluster.rs crates/core/src/config.rs crates/core/src/error.rs crates/core/src/library.rs crates/core/src/manager.rs crates/core/src/metrics.rs crates/core/src/profile.rs crates/core/src/server.rs

/root/repo/target/debug/deps/libtacker-af2094e8d5ab2124.rlib: crates/core/src/lib.rs crates/core/src/baselines.rs crates/core/src/cluster.rs crates/core/src/config.rs crates/core/src/error.rs crates/core/src/library.rs crates/core/src/manager.rs crates/core/src/metrics.rs crates/core/src/profile.rs crates/core/src/server.rs

/root/repo/target/debug/deps/libtacker-af2094e8d5ab2124.rmeta: crates/core/src/lib.rs crates/core/src/baselines.rs crates/core/src/cluster.rs crates/core/src/config.rs crates/core/src/error.rs crates/core/src/library.rs crates/core/src/manager.rs crates/core/src/metrics.rs crates/core/src/profile.rs crates/core/src/server.rs

crates/core/src/lib.rs:
crates/core/src/baselines.rs:
crates/core/src/cluster.rs:
crates/core/src/config.rs:
crates/core/src/error.rs:
crates/core/src/library.rs:
crates/core/src/manager.rs:
crates/core/src/metrics.rs:
crates/core/src/profile.rs:
crates/core/src/server.rs:
