/root/repo/target/debug/deps/engine-4ab4a1cf781444b7.d: crates/bench/benches/engine.rs

/root/repo/target/debug/deps/engine-4ab4a1cf781444b7: crates/bench/benches/engine.rs

crates/bench/benches/engine.rs:
