/root/repo/target/debug/deps/predictor-a1dd159467a06131.d: crates/bench/benches/predictor.rs Cargo.toml

/root/repo/target/debug/deps/libpredictor-a1dd159467a06131.rmeta: crates/bench/benches/predictor.rs Cargo.toml

crates/bench/benches/predictor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
