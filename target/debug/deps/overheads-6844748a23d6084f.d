/root/repo/target/debug/deps/overheads-6844748a23d6084f.d: crates/bench/src/bin/overheads.rs

/root/repo/target/debug/deps/overheads-6844748a23d6084f: crates/bench/src/bin/overheads.rs

crates/bench/src/bin/overheads.rs:
