/root/repo/target/debug/deps/codegen_golden-dc92e72114e2ac7f.d: tests/codegen_golden.rs

/root/repo/target/debug/deps/codegen_golden-dc92e72114e2ac7f: tests/codegen_golden.rs

tests/codegen_golden.rs:
