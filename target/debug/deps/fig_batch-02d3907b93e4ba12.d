/root/repo/target/debug/deps/fig_batch-02d3907b93e4ba12.d: crates/bench/src/bin/fig_batch.rs

/root/repo/target/debug/deps/fig_batch-02d3907b93e4ba12: crates/bench/src/bin/fig_batch.rs

crates/bench/src/bin/fig_batch.rs:
