/root/repo/target/debug/deps/fusion_props-bfaa086e93b3ca4a.d: tests/fusion_props.rs Cargo.toml

/root/repo/target/debug/deps/libfusion_props-bfaa086e93b3ca4a.rmeta: tests/fusion_props.rs Cargo.toml

tests/fusion_props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
