/root/repo/target/debug/deps/workload_coverage-6fb605dee04ed95a.d: tests/workload_coverage.rs

/root/repo/target/debug/deps/workload_coverage-6fb605dee04ed95a: tests/workload_coverage.rs

tests/workload_coverage.rs:
