/root/repo/target/debug/deps/workload_coverage-c3fe21795889a98a.d: tests/workload_coverage.rs

/root/repo/target/debug/deps/workload_coverage-c3fe21795889a98a: tests/workload_coverage.rs

tests/workload_coverage.rs:
