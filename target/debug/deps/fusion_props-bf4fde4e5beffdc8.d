/root/repo/target/debug/deps/fusion_props-bf4fde4e5beffdc8.d: tests/fusion_props.rs

/root/repo/target/debug/deps/fusion_props-bf4fde4e5beffdc8: tests/fusion_props.rs

tests/fusion_props.rs:
