/root/repo/target/debug/deps/tacker_bench-b5d50462f3703556.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/tacker_bench-b5d50462f3703556: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
