/root/repo/target/debug/deps/ablation-cdb2a135d90253bd.d: crates/bench/src/bin/ablation.rs Cargo.toml

/root/repo/target/debug/deps/libablation-cdb2a135d90253bd.rmeta: crates/bench/src/bin/ablation.rs Cargo.toml

crates/bench/src/bin/ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
