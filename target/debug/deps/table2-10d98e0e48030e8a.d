/root/repo/target/debug/deps/table2-10d98e0e48030e8a.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-10d98e0e48030e8a: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
