/root/repo/target/debug/deps/engine_behavior-6441bd92f545e2c7.d: tests/engine_behavior.rs Cargo.toml

/root/repo/target/debug/deps/libengine_behavior-6441bd92f545e2c7.rmeta: tests/engine_behavior.rs Cargo.toml

tests/engine_behavior.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
