/root/repo/target/debug/deps/end_to_end-7f6d45eefbbc635f.d: crates/fuser/tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-7f6d45eefbbc635f: crates/fuser/tests/end_to_end.rs

crates/fuser/tests/end_to_end.rs:
