/root/repo/target/debug/deps/fig11-0db3c8fd8e409093.d: crates/bench/src/bin/fig11.rs Cargo.toml

/root/repo/target/debug/deps/libfig11-0db3c8fd8e409093.rmeta: crates/bench/src/bin/fig11.rs Cargo.toml

crates/bench/src/bin/fig11.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
