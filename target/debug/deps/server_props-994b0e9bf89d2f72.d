/root/repo/target/debug/deps/server_props-994b0e9bf89d2f72.d: tests/server_props.rs Cargo.toml

/root/repo/target/debug/deps/libserver_props-994b0e9bf89d2f72.rmeta: tests/server_props.rs Cargo.toml

tests/server_props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
