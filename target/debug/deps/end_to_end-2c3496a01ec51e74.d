/root/repo/target/debug/deps/end_to_end-2c3496a01ec51e74.d: crates/fuser/tests/end_to_end.rs Cargo.toml

/root/repo/target/debug/deps/libend_to_end-2c3496a01ec51e74.rmeta: crates/fuser/tests/end_to_end.rs Cargo.toml

crates/fuser/tests/end_to_end.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
