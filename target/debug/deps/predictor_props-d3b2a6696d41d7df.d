/root/repo/target/debug/deps/predictor_props-d3b2a6696d41d7df.d: tests/predictor_props.rs

/root/repo/target/debug/deps/predictor_props-d3b2a6696d41d7df: tests/predictor_props.rs

tests/predictor_props.rs:
