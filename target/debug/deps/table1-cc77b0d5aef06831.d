/root/repo/target/debug/deps/table1-cc77b0d5aef06831.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-cc77b0d5aef06831: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
