/root/repo/target/debug/deps/tacker_predictor-75fd6555f59cd8df.d: crates/predictor/src/lib.rs crates/predictor/src/error.rs crates/predictor/src/fused_model.rs crates/predictor/src/kernel_model.rs crates/predictor/src/linreg.rs

/root/repo/target/debug/deps/libtacker_predictor-75fd6555f59cd8df.rlib: crates/predictor/src/lib.rs crates/predictor/src/error.rs crates/predictor/src/fused_model.rs crates/predictor/src/kernel_model.rs crates/predictor/src/linreg.rs

/root/repo/target/debug/deps/libtacker_predictor-75fd6555f59cd8df.rmeta: crates/predictor/src/lib.rs crates/predictor/src/error.rs crates/predictor/src/fused_model.rs crates/predictor/src/kernel_model.rs crates/predictor/src/linreg.rs

crates/predictor/src/lib.rs:
crates/predictor/src/error.rs:
crates/predictor/src/fused_model.rs:
crates/predictor/src/kernel_model.rs:
crates/predictor/src/linreg.rs:
