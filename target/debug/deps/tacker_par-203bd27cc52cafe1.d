/root/repo/target/debug/deps/tacker_par-203bd27cc52cafe1.d: crates/par/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libtacker_par-203bd27cc52cafe1.rmeta: crates/par/src/lib.rs Cargo.toml

crates/par/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
