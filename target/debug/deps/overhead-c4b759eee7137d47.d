/root/repo/target/debug/deps/overhead-c4b759eee7137d47.d: crates/bench/benches/overhead.rs Cargo.toml

/root/repo/target/debug/deps/liboverhead-c4b759eee7137d47.rmeta: crates/bench/benches/overhead.rs Cargo.toml

crates/bench/benches/overhead.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
