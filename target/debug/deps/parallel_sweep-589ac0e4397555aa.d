/root/repo/target/debug/deps/parallel_sweep-589ac0e4397555aa.d: tests/parallel_sweep.rs

/root/repo/target/debug/deps/parallel_sweep-589ac0e4397555aa: tests/parallel_sweep.rs

tests/parallel_sweep.rs:
