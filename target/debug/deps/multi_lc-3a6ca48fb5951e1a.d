/root/repo/target/debug/deps/multi_lc-3a6ca48fb5951e1a.d: crates/bench/src/bin/multi_lc.rs

/root/repo/target/debug/deps/multi_lc-3a6ca48fb5951e1a: crates/bench/src/bin/multi_lc.rs

crates/bench/src/bin/multi_lc.rs:
