/root/repo/target/debug/deps/fig15-8421885e5d30d096.d: crates/bench/src/bin/fig15.rs

/root/repo/target/debug/deps/fig15-8421885e5d30d096: crates/bench/src/bin/fig15.rs

crates/bench/src/bin/fig15.rs:
