/root/repo/target/debug/deps/sweep_bench-9b68bbc4ee222bf4.d: crates/bench/src/bin/sweep_bench.rs Cargo.toml

/root/repo/target/debug/deps/libsweep_bench-9b68bbc4ee222bf4.rmeta: crates/bench/src/bin/sweep_bench.rs Cargo.toml

crates/bench/src/bin/sweep_bench.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
