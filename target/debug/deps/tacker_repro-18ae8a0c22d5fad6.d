/root/repo/target/debug/deps/tacker_repro-18ae8a0c22d5fad6.d: src/lib.rs

/root/repo/target/debug/deps/libtacker_repro-18ae8a0c22d5fad6.rlib: src/lib.rs

/root/repo/target/debug/deps/libtacker_repro-18ae8a0c22d5fad6.rmeta: src/lib.rs

src/lib.rs:
