/root/repo/target/debug/deps/fig01-90d87f2e8e92d036.d: crates/bench/src/bin/fig01.rs Cargo.toml

/root/repo/target/debug/deps/libfig01-90d87f2e8e92d036.rmeta: crates/bench/src/bin/fig01.rs Cargo.toml

crates/bench/src/bin/fig01.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
