/root/repo/target/debug/deps/tacker_sim-f6138eab090e8520.d: crates/sim/src/lib.rs crates/sim/src/concurrent.rs crates/sim/src/device.rs crates/sim/src/engine.rs crates/sim/src/error.rs crates/sim/src/plan.rs crates/sim/src/power.rs crates/sim/src/result.rs crates/sim/src/spec.rs crates/sim/src/timeline.rs Cargo.toml

/root/repo/target/debug/deps/libtacker_sim-f6138eab090e8520.rmeta: crates/sim/src/lib.rs crates/sim/src/concurrent.rs crates/sim/src/device.rs crates/sim/src/engine.rs crates/sim/src/error.rs crates/sim/src/plan.rs crates/sim/src/power.rs crates/sim/src/result.rs crates/sim/src/spec.rs crates/sim/src/timeline.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/concurrent.rs:
crates/sim/src/device.rs:
crates/sim/src/engine.rs:
crates/sim/src/error.rs:
crates/sim/src/plan.rs:
crates/sim/src/power.rs:
crates/sim/src/result.rs:
crates/sim/src/spec.rs:
crates/sim/src/timeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
