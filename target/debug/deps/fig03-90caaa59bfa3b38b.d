/root/repo/target/debug/deps/fig03-90caaa59bfa3b38b.d: crates/bench/src/bin/fig03.rs Cargo.toml

/root/repo/target/debug/deps/libfig03-90caaa59bfa3b38b.rmeta: crates/bench/src/bin/fig03.rs Cargo.toml

crates/bench/src/bin/fig03.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
