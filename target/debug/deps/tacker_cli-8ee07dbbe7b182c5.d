/root/repo/target/debug/deps/tacker_cli-8ee07dbbe7b182c5.d: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/debug/deps/tacker_cli-8ee07dbbe7b182c5: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs

crates/cli/src/main.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
