/root/repo/target/debug/deps/codegen_golden-17c41b2e0dc53f73.d: tests/codegen_golden.rs Cargo.toml

/root/repo/target/debug/deps/libcodegen_golden-17c41b2e0dc53f73.rmeta: tests/codegen_golden.rs Cargo.toml

tests/codegen_golden.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
