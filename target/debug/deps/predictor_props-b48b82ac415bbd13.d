/root/repo/target/debug/deps/predictor_props-b48b82ac415bbd13.d: tests/predictor_props.rs Cargo.toml

/root/repo/target/debug/deps/libpredictor_props-b48b82ac415bbd13.rmeta: tests/predictor_props.rs Cargo.toml

tests/predictor_props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
