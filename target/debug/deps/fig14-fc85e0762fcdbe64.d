/root/repo/target/debug/deps/fig14-fc85e0762fcdbe64.d: crates/bench/src/bin/fig14.rs

/root/repo/target/debug/deps/fig14-fc85e0762fcdbe64: crates/bench/src/bin/fig14.rs

crates/bench/src/bin/fig14.rs:
