/root/repo/target/debug/deps/predictor_props-302e10b6ea20b06c.d: tests/predictor_props.rs

/root/repo/target/debug/deps/predictor_props-302e10b6ea20b06c: tests/predictor_props.rs

tests/predictor_props.rs:
