/root/repo/target/debug/deps/fig10-26d8a442743dfc83.d: crates/bench/src/bin/fig10.rs

/root/repo/target/debug/deps/fig10-26d8a442743dfc83: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
