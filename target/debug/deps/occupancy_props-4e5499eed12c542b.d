/root/repo/target/debug/deps/occupancy_props-4e5499eed12c542b.d: tests/occupancy_props.rs

/root/repo/target/debug/deps/occupancy_props-4e5499eed12c542b: tests/occupancy_props.rs

tests/occupancy_props.rs:
