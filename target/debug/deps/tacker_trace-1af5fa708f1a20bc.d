/root/repo/target/debug/deps/tacker_trace-1af5fa708f1a20bc.d: crates/trace/src/lib.rs crates/trace/src/chrome.rs crates/trace/src/event.rs crates/trace/src/metrics.rs crates/trace/src/sink.rs

/root/repo/target/debug/deps/libtacker_trace-1af5fa708f1a20bc.rlib: crates/trace/src/lib.rs crates/trace/src/chrome.rs crates/trace/src/event.rs crates/trace/src/metrics.rs crates/trace/src/sink.rs

/root/repo/target/debug/deps/libtacker_trace-1af5fa708f1a20bc.rmeta: crates/trace/src/lib.rs crates/trace/src/chrome.rs crates/trace/src/event.rs crates/trace/src/metrics.rs crates/trace/src/sink.rs

crates/trace/src/lib.rs:
crates/trace/src/chrome.rs:
crates/trace/src/event.rs:
crates/trace/src/metrics.rs:
crates/trace/src/sink.rs:
