/root/repo/target/debug/deps/tacker_repro-11f9d3261d38d2cf.d: src/lib.rs

/root/repo/target/debug/deps/tacker_repro-11f9d3261d38d2cf: src/lib.rs

src/lib.rs:
