/root/repo/target/debug/deps/table3-5b241ba0d7e54474.d: crates/bench/src/bin/table3.rs

/root/repo/target/debug/deps/table3-5b241ba0d7e54474: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
