/root/repo/target/debug/deps/table2-a9aafd34479f759e.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-a9aafd34479f759e: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
