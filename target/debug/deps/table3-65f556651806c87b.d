/root/repo/target/debug/deps/table3-65f556651806c87b.d: crates/bench/src/bin/table3.rs

/root/repo/target/debug/deps/table3-65f556651806c87b: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
