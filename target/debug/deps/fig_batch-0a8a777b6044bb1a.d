/root/repo/target/debug/deps/fig_batch-0a8a777b6044bb1a.d: crates/bench/src/bin/fig_batch.rs Cargo.toml

/root/repo/target/debug/deps/libfig_batch-0a8a777b6044bb1a.rmeta: crates/bench/src/bin/fig_batch.rs Cargo.toml

crates/bench/src/bin/fig_batch.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
