/root/repo/target/debug/deps/fig15-09cf013c5cccbc2a.d: crates/bench/src/bin/fig15.rs Cargo.toml

/root/repo/target/debug/deps/libfig15-09cf013c5cccbc2a.rmeta: crates/bench/src/bin/fig15.rs Cargo.toml

crates/bench/src/bin/fig15.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
