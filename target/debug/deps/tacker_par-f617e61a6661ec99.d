/root/repo/target/debug/deps/tacker_par-f617e61a6661ec99.d: crates/par/src/lib.rs

/root/repo/target/debug/deps/tacker_par-f617e61a6661ec99: crates/par/src/lib.rs

crates/par/src/lib.rs:
