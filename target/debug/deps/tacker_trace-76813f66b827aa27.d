/root/repo/target/debug/deps/tacker_trace-76813f66b827aa27.d: crates/trace/src/lib.rs crates/trace/src/chrome.rs crates/trace/src/event.rs crates/trace/src/metrics.rs crates/trace/src/sink.rs

/root/repo/target/debug/deps/tacker_trace-76813f66b827aa27: crates/trace/src/lib.rs crates/trace/src/chrome.rs crates/trace/src/event.rs crates/trace/src/metrics.rs crates/trace/src/sink.rs

crates/trace/src/lib.rs:
crates/trace/src/chrome.rs:
crates/trace/src/event.rs:
crates/trace/src/metrics.rs:
crates/trace/src/sink.rs:
