/root/repo/target/debug/deps/fig22-72b5b9182a0788cb.d: crates/bench/src/bin/fig22.rs

/root/repo/target/debug/deps/fig22-72b5b9182a0788cb: crates/bench/src/bin/fig22.rs

crates/bench/src/bin/fig22.rs:
