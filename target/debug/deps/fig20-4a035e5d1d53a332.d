/root/repo/target/debug/deps/fig20-4a035e5d1d53a332.d: crates/bench/src/bin/fig20.rs Cargo.toml

/root/repo/target/debug/deps/libfig20-4a035e5d1d53a332.rmeta: crates/bench/src/bin/fig20.rs Cargo.toml

crates/bench/src/bin/fig20.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
