/root/repo/target/debug/deps/fig21-0e266e6e8fcdedff.d: crates/bench/src/bin/fig21.rs

/root/repo/target/debug/deps/fig21-0e266e6e8fcdedff: crates/bench/src/bin/fig21.rs

crates/bench/src/bin/fig21.rs:
