/root/repo/target/debug/deps/fig01-0c9a171eb38d02bf.d: crates/bench/src/bin/fig01.rs

/root/repo/target/debug/deps/fig01-0c9a171eb38d02bf: crates/bench/src/bin/fig01.rs

crates/bench/src/bin/fig01.rs:
