/root/repo/target/debug/deps/occupancy_props-c86332f0a51ba78a.d: tests/occupancy_props.rs

/root/repo/target/debug/deps/occupancy_props-c86332f0a51ba78a: tests/occupancy_props.rs

tests/occupancy_props.rs:
