/root/repo/target/debug/deps/multi_lc-b5fadd51f4984e99.d: crates/bench/src/bin/multi_lc.rs Cargo.toml

/root/repo/target/debug/deps/libmulti_lc-b5fadd51f4984e99.rmeta: crates/bench/src/bin/multi_lc.rs Cargo.toml

crates/bench/src/bin/multi_lc.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
