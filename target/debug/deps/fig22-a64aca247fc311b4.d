/root/repo/target/debug/deps/fig22-a64aca247fc311b4.d: crates/bench/src/bin/fig22.rs

/root/repo/target/debug/deps/fig22-a64aca247fc311b4: crates/bench/src/bin/fig22.rs

crates/bench/src/bin/fig22.rs:
