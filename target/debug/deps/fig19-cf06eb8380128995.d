/root/repo/target/debug/deps/fig19-cf06eb8380128995.d: crates/bench/src/bin/fig19.rs

/root/repo/target/debug/deps/fig19-cf06eb8380128995: crates/bench/src/bin/fig19.rs

crates/bench/src/bin/fig19.rs:
