/root/repo/target/debug/deps/occupancy_props-6d046422e915eeaf.d: tests/occupancy_props.rs Cargo.toml

/root/repo/target/debug/deps/liboccupancy_props-6d046422e915eeaf.rmeta: tests/occupancy_props.rs Cargo.toml

tests/occupancy_props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
