/root/repo/target/debug/deps/codegen_golden-741c779e5ec911fd.d: tests/codegen_golden.rs

/root/repo/target/debug/deps/codegen_golden-741c779e5ec911fd: tests/codegen_golden.rs

tests/codegen_golden.rs:
