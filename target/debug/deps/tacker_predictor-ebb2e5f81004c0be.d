/root/repo/target/debug/deps/tacker_predictor-ebb2e5f81004c0be.d: crates/predictor/src/lib.rs crates/predictor/src/error.rs crates/predictor/src/fused_model.rs crates/predictor/src/kernel_model.rs crates/predictor/src/linreg.rs

/root/repo/target/debug/deps/tacker_predictor-ebb2e5f81004c0be: crates/predictor/src/lib.rs crates/predictor/src/error.rs crates/predictor/src/fused_model.rs crates/predictor/src/kernel_model.rs crates/predictor/src/linreg.rs

crates/predictor/src/lib.rs:
crates/predictor/src/error.rs:
crates/predictor/src/fused_model.rs:
crates/predictor/src/kernel_model.rs:
crates/predictor/src/linreg.rs:
