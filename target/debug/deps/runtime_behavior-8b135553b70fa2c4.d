/root/repo/target/debug/deps/runtime_behavior-8b135553b70fa2c4.d: tests/runtime_behavior.rs

/root/repo/target/debug/deps/runtime_behavior-8b135553b70fa2c4: tests/runtime_behavior.rs

tests/runtime_behavior.rs:
