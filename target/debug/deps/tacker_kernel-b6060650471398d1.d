/root/repo/target/debug/deps/tacker_kernel-b6060650471398d1.d: crates/kernel/src/lib.rs crates/kernel/src/ast.rs crates/kernel/src/dims.rs crates/kernel/src/error.rs crates/kernel/src/kernel.rs crates/kernel/src/lower.rs crates/kernel/src/resources.rs crates/kernel/src/segments.rs crates/kernel/src/source.rs crates/kernel/src/time.rs

/root/repo/target/debug/deps/tacker_kernel-b6060650471398d1: crates/kernel/src/lib.rs crates/kernel/src/ast.rs crates/kernel/src/dims.rs crates/kernel/src/error.rs crates/kernel/src/kernel.rs crates/kernel/src/lower.rs crates/kernel/src/resources.rs crates/kernel/src/segments.rs crates/kernel/src/source.rs crates/kernel/src/time.rs

crates/kernel/src/lib.rs:
crates/kernel/src/ast.rs:
crates/kernel/src/dims.rs:
crates/kernel/src/error.rs:
crates/kernel/src/kernel.rs:
crates/kernel/src/lower.rs:
crates/kernel/src/resources.rs:
crates/kernel/src/segments.rs:
crates/kernel/src/source.rs:
crates/kernel/src/time.rs:
