/root/repo/target/debug/deps/tacker_cli-d85075e9d845dfc5.d: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs Cargo.toml

/root/repo/target/debug/deps/libtacker_cli-d85075e9d845dfc5.rmeta: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs Cargo.toml

crates/cli/src/main.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
