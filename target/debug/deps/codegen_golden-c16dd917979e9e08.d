/root/repo/target/debug/deps/codegen_golden-c16dd917979e9e08.d: tests/codegen_golden.rs Cargo.toml

/root/repo/target/debug/deps/libcodegen_golden-c16dd917979e9e08.rmeta: tests/codegen_golden.rs Cargo.toml

tests/codegen_golden.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
