/root/repo/target/debug/deps/tacker_cli-46c50f37fdc035ee.d: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/debug/deps/tacker_cli-46c50f37fdc035ee: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs

crates/cli/src/main.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
