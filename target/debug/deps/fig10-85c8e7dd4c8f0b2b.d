/root/repo/target/debug/deps/fig10-85c8e7dd4c8f0b2b.d: crates/bench/src/bin/fig10.rs Cargo.toml

/root/repo/target/debug/deps/libfig10-85c8e7dd4c8f0b2b.rmeta: crates/bench/src/bin/fig10.rs Cargo.toml

crates/bench/src/bin/fig10.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
