/root/repo/target/debug/deps/fig14-193e0d1bc89a9876.d: crates/bench/src/bin/fig14.rs

/root/repo/target/debug/deps/fig14-193e0d1bc89a9876: crates/bench/src/bin/fig14.rs

crates/bench/src/bin/fig14.rs:
