/root/repo/target/debug/deps/ablation-20382f07db58bff3.d: crates/bench/src/bin/ablation.rs

/root/repo/target/debug/deps/ablation-20382f07db58bff3: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
