/root/repo/target/debug/deps/fig01-d69b2efb632d944e.d: crates/bench/src/bin/fig01.rs

/root/repo/target/debug/deps/fig01-d69b2efb632d944e: crates/bench/src/bin/fig01.rs

crates/bench/src/bin/fig01.rs:
