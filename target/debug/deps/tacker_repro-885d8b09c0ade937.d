/root/repo/target/debug/deps/tacker_repro-885d8b09c0ade937.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libtacker_repro-885d8b09c0ade937.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
