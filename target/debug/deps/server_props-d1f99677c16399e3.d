/root/repo/target/debug/deps/server_props-d1f99677c16399e3.d: tests/server_props.rs

/root/repo/target/debug/deps/server_props-d1f99677c16399e3: tests/server_props.rs

tests/server_props.rs:
