/root/repo/target/debug/deps/runtime_behavior-5f0189fe5783552f.d: tests/runtime_behavior.rs

/root/repo/target/debug/deps/runtime_behavior-5f0189fe5783552f: tests/runtime_behavior.rs

tests/runtime_behavior.rs:
