/root/repo/target/debug/deps/fig15-04239f74bb886e35.d: crates/bench/src/bin/fig15.rs

/root/repo/target/debug/deps/fig15-04239f74bb886e35: crates/bench/src/bin/fig15.rs

crates/bench/src/bin/fig15.rs:
