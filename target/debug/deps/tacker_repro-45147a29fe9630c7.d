/root/repo/target/debug/deps/tacker_repro-45147a29fe9630c7.d: src/lib.rs

/root/repo/target/debug/deps/libtacker_repro-45147a29fe9630c7.rlib: src/lib.rs

/root/repo/target/debug/deps/libtacker_repro-45147a29fe9630c7.rmeta: src/lib.rs

src/lib.rs:
