/root/repo/target/debug/deps/tacker_repro-d198ce90ad62aa8c.d: src/lib.rs

/root/repo/target/debug/deps/tacker_repro-d198ce90ad62aa8c: src/lib.rs

src/lib.rs:
