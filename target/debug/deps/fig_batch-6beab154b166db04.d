/root/repo/target/debug/deps/fig_batch-6beab154b166db04.d: crates/bench/src/bin/fig_batch.rs

/root/repo/target/debug/deps/fig_batch-6beab154b166db04: crates/bench/src/bin/fig_batch.rs

crates/bench/src/bin/fig_batch.rs:
