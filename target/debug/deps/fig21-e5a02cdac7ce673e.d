/root/repo/target/debug/deps/fig21-e5a02cdac7ce673e.d: crates/bench/src/bin/fig21.rs Cargo.toml

/root/repo/target/debug/deps/libfig21-e5a02cdac7ce673e.rmeta: crates/bench/src/bin/fig21.rs Cargo.toml

crates/bench/src/bin/fig21.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
