/root/repo/target/debug/deps/fig18-d1d517b271b04c53.d: crates/bench/src/bin/fig18.rs

/root/repo/target/debug/deps/fig18-d1d517b271b04c53: crates/bench/src/bin/fig18.rs

crates/bench/src/bin/fig18.rs:
