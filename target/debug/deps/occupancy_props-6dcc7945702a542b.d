/root/repo/target/debug/deps/occupancy_props-6dcc7945702a542b.d: tests/occupancy_props.rs

/root/repo/target/debug/deps/occupancy_props-6dcc7945702a542b: tests/occupancy_props.rs

tests/occupancy_props.rs:
