/root/repo/target/debug/deps/overheads-a6a43c82a2d745b0.d: crates/bench/src/bin/overheads.rs

/root/repo/target/debug/deps/overheads-a6a43c82a2d745b0: crates/bench/src/bin/overheads.rs

crates/bench/src/bin/overheads.rs:
