/root/repo/target/debug/deps/fig02-7f3dfa394471ac93.d: crates/bench/src/bin/fig02.rs

/root/repo/target/debug/deps/fig02-7f3dfa394471ac93: crates/bench/src/bin/fig02.rs

crates/bench/src/bin/fig02.rs:
