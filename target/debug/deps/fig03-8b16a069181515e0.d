/root/repo/target/debug/deps/fig03-8b16a069181515e0.d: crates/bench/src/bin/fig03.rs

/root/repo/target/debug/deps/fig03-8b16a069181515e0: crates/bench/src/bin/fig03.rs

crates/bench/src/bin/fig03.rs:
