/root/repo/target/debug/deps/fig10-e088b1f676c2dda0.d: crates/bench/src/bin/fig10.rs Cargo.toml

/root/repo/target/debug/deps/libfig10-e088b1f676c2dda0.rmeta: crates/bench/src/bin/fig10.rs Cargo.toml

crates/bench/src/bin/fig10.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
