/root/repo/target/debug/deps/fig22-e736dbf5fbf5fe83.d: crates/bench/src/bin/fig22.rs Cargo.toml

/root/repo/target/debug/deps/libfig22-e736dbf5fbf5fe83.rmeta: crates/bench/src/bin/fig22.rs Cargo.toml

crates/bench/src/bin/fig22.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
