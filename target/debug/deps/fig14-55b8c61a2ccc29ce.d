/root/repo/target/debug/deps/fig14-55b8c61a2ccc29ce.d: crates/bench/src/bin/fig14.rs Cargo.toml

/root/repo/target/debug/deps/libfig14-55b8c61a2ccc29ce.rmeta: crates/bench/src/bin/fig14.rs Cargo.toml

crates/bench/src/bin/fig14.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
