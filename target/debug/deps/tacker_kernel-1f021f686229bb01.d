/root/repo/target/debug/deps/tacker_kernel-1f021f686229bb01.d: crates/kernel/src/lib.rs crates/kernel/src/ast.rs crates/kernel/src/dims.rs crates/kernel/src/error.rs crates/kernel/src/kernel.rs crates/kernel/src/lower.rs crates/kernel/src/resources.rs crates/kernel/src/segments.rs crates/kernel/src/source.rs crates/kernel/src/time.rs Cargo.toml

/root/repo/target/debug/deps/libtacker_kernel-1f021f686229bb01.rmeta: crates/kernel/src/lib.rs crates/kernel/src/ast.rs crates/kernel/src/dims.rs crates/kernel/src/error.rs crates/kernel/src/kernel.rs crates/kernel/src/lower.rs crates/kernel/src/resources.rs crates/kernel/src/segments.rs crates/kernel/src/source.rs crates/kernel/src/time.rs Cargo.toml

crates/kernel/src/lib.rs:
crates/kernel/src/ast.rs:
crates/kernel/src/dims.rs:
crates/kernel/src/error.rs:
crates/kernel/src/kernel.rs:
crates/kernel/src/lower.rs:
crates/kernel/src/resources.rs:
crates/kernel/src/segments.rs:
crates/kernel/src/source.rs:
crates/kernel/src/time.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
