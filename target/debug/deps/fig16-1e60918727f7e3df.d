/root/repo/target/debug/deps/fig16-1e60918727f7e3df.d: crates/bench/src/bin/fig16.rs Cargo.toml

/root/repo/target/debug/deps/libfig16-1e60918727f7e3df.rmeta: crates/bench/src/bin/fig16.rs Cargo.toml

crates/bench/src/bin/fig16.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
