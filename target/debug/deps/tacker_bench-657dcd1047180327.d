/root/repo/target/debug/deps/tacker_bench-657dcd1047180327.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libtacker_bench-657dcd1047180327.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libtacker_bench-657dcd1047180327.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
