/root/repo/target/debug/deps/fig_batch-6175c91001057060.d: crates/bench/src/bin/fig_batch.rs Cargo.toml

/root/repo/target/debug/deps/libfig_batch-6175c91001057060.rmeta: crates/bench/src/bin/fig_batch.rs Cargo.toml

crates/bench/src/bin/fig_batch.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
