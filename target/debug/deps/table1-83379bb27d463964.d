/root/repo/target/debug/deps/table1-83379bb27d463964.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-83379bb27d463964: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
