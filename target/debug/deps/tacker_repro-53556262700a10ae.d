/root/repo/target/debug/deps/tacker_repro-53556262700a10ae.d: src/lib.rs

/root/repo/target/debug/deps/tacker_repro-53556262700a10ae: src/lib.rs

src/lib.rs:
