/root/repo/target/debug/deps/fig21-cfa37fc6b20e142a.d: crates/bench/src/bin/fig21.rs

/root/repo/target/debug/deps/fig21-cfa37fc6b20e142a: crates/bench/src/bin/fig21.rs

crates/bench/src/bin/fig21.rs:
