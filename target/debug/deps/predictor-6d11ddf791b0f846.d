/root/repo/target/debug/deps/predictor-6d11ddf791b0f846.d: crates/bench/benches/predictor.rs

/root/repo/target/debug/deps/predictor-6d11ddf791b0f846: crates/bench/benches/predictor.rs

crates/bench/benches/predictor.rs:
