/root/repo/target/debug/deps/fig20-635e058b9af1a75c.d: crates/bench/src/bin/fig20.rs

/root/repo/target/debug/deps/fig20-635e058b9af1a75c: crates/bench/src/bin/fig20.rs

crates/bench/src/bin/fig20.rs:
