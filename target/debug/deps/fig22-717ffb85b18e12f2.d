/root/repo/target/debug/deps/fig22-717ffb85b18e12f2.d: crates/bench/src/bin/fig22.rs Cargo.toml

/root/repo/target/debug/deps/libfig22-717ffb85b18e12f2.rmeta: crates/bench/src/bin/fig22.rs Cargo.toml

crates/bench/src/bin/fig22.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
