/root/repo/target/debug/deps/multi_lc-2a9f9cd892efb770.d: crates/bench/src/bin/multi_lc.rs

/root/repo/target/debug/deps/multi_lc-2a9f9cd892efb770: crates/bench/src/bin/multi_lc.rs

crates/bench/src/bin/multi_lc.rs:
