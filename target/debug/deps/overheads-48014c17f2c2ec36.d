/root/repo/target/debug/deps/overheads-48014c17f2c2ec36.d: crates/bench/src/bin/overheads.rs

/root/repo/target/debug/deps/overheads-48014c17f2c2ec36: crates/bench/src/bin/overheads.rs

crates/bench/src/bin/overheads.rs:
