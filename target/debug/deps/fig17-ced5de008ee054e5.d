/root/repo/target/debug/deps/fig17-ced5de008ee054e5.d: crates/bench/src/bin/fig17.rs

/root/repo/target/debug/deps/fig17-ced5de008ee054e5: crates/bench/src/bin/fig17.rs

crates/bench/src/bin/fig17.rs:
