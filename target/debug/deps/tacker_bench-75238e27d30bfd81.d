/root/repo/target/debug/deps/tacker_bench-75238e27d30bfd81.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libtacker_bench-75238e27d30bfd81.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
