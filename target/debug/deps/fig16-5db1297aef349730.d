/root/repo/target/debug/deps/fig16-5db1297aef349730.d: crates/bench/src/bin/fig16.rs

/root/repo/target/debug/deps/fig16-5db1297aef349730: crates/bench/src/bin/fig16.rs

crates/bench/src/bin/fig16.rs:
