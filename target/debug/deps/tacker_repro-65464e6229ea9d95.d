/root/repo/target/debug/deps/tacker_repro-65464e6229ea9d95.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libtacker_repro-65464e6229ea9d95.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
