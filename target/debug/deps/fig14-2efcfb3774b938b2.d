/root/repo/target/debug/deps/fig14-2efcfb3774b938b2.d: crates/bench/src/bin/fig14.rs Cargo.toml

/root/repo/target/debug/deps/libfig14-2efcfb3774b938b2.rmeta: crates/bench/src/bin/fig14.rs Cargo.toml

crates/bench/src/bin/fig14.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
