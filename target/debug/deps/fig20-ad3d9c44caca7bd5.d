/root/repo/target/debug/deps/fig20-ad3d9c44caca7bd5.d: crates/bench/src/bin/fig20.rs

/root/repo/target/debug/deps/fig20-ad3d9c44caca7bd5: crates/bench/src/bin/fig20.rs

crates/bench/src/bin/fig20.rs:
