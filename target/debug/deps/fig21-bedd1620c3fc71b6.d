/root/repo/target/debug/deps/fig21-bedd1620c3fc71b6.d: crates/bench/src/bin/fig21.rs

/root/repo/target/debug/deps/fig21-bedd1620c3fc71b6: crates/bench/src/bin/fig21.rs

crates/bench/src/bin/fig21.rs:
