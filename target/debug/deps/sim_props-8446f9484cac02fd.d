/root/repo/target/debug/deps/sim_props-8446f9484cac02fd.d: tests/sim_props.rs

/root/repo/target/debug/deps/sim_props-8446f9484cac02fd: tests/sim_props.rs

tests/sim_props.rs:
