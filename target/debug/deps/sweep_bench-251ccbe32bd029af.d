/root/repo/target/debug/deps/sweep_bench-251ccbe32bd029af.d: crates/bench/src/bin/sweep_bench.rs Cargo.toml

/root/repo/target/debug/deps/libsweep_bench-251ccbe32bd029af.rmeta: crates/bench/src/bin/sweep_bench.rs Cargo.toml

crates/bench/src/bin/sweep_bench.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
