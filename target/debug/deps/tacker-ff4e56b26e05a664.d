/root/repo/target/debug/deps/tacker-ff4e56b26e05a664.d: crates/core/src/lib.rs crates/core/src/baselines.rs crates/core/src/cluster.rs crates/core/src/config.rs crates/core/src/error.rs crates/core/src/library.rs crates/core/src/manager.rs crates/core/src/metrics.rs crates/core/src/profile.rs crates/core/src/server.rs crates/core/src/sweep.rs Cargo.toml

/root/repo/target/debug/deps/libtacker-ff4e56b26e05a664.rmeta: crates/core/src/lib.rs crates/core/src/baselines.rs crates/core/src/cluster.rs crates/core/src/config.rs crates/core/src/error.rs crates/core/src/library.rs crates/core/src/manager.rs crates/core/src/metrics.rs crates/core/src/profile.rs crates/core/src/server.rs crates/core/src/sweep.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/baselines.rs:
crates/core/src/cluster.rs:
crates/core/src/config.rs:
crates/core/src/error.rs:
crates/core/src/library.rs:
crates/core/src/manager.rs:
crates/core/src/metrics.rs:
crates/core/src/profile.rs:
crates/core/src/server.rs:
crates/core/src/sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
