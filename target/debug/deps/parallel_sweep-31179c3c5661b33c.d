/root/repo/target/debug/deps/parallel_sweep-31179c3c5661b33c.d: tests/parallel_sweep.rs Cargo.toml

/root/repo/target/debug/deps/libparallel_sweep-31179c3c5661b33c.rmeta: tests/parallel_sweep.rs Cargo.toml

tests/parallel_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
