/root/repo/target/debug/deps/paper_claims-db796093c1ff2828.d: tests/paper_claims.rs

/root/repo/target/debug/deps/paper_claims-db796093c1ff2828: tests/paper_claims.rs

tests/paper_claims.rs:
