/root/repo/target/debug/deps/fig10-a4e772820fe37860.d: crates/bench/src/bin/fig10.rs

/root/repo/target/debug/deps/fig10-a4e772820fe37860: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
