/root/repo/target/debug/deps/fig16-08fee19814f58bae.d: crates/bench/src/bin/fig16.rs

/root/repo/target/debug/deps/fig16-08fee19814f58bae: crates/bench/src/bin/fig16.rs

crates/bench/src/bin/fig16.rs:
