/root/repo/target/debug/deps/tacker_sim-3aca91200d3d82ff.d: crates/sim/src/lib.rs crates/sim/src/concurrent.rs crates/sim/src/device.rs crates/sim/src/engine.rs crates/sim/src/error.rs crates/sim/src/plan.rs crates/sim/src/power.rs crates/sim/src/result.rs crates/sim/src/spec.rs crates/sim/src/timeline.rs

/root/repo/target/debug/deps/libtacker_sim-3aca91200d3d82ff.rlib: crates/sim/src/lib.rs crates/sim/src/concurrent.rs crates/sim/src/device.rs crates/sim/src/engine.rs crates/sim/src/error.rs crates/sim/src/plan.rs crates/sim/src/power.rs crates/sim/src/result.rs crates/sim/src/spec.rs crates/sim/src/timeline.rs

/root/repo/target/debug/deps/libtacker_sim-3aca91200d3d82ff.rmeta: crates/sim/src/lib.rs crates/sim/src/concurrent.rs crates/sim/src/device.rs crates/sim/src/engine.rs crates/sim/src/error.rs crates/sim/src/plan.rs crates/sim/src/power.rs crates/sim/src/result.rs crates/sim/src/spec.rs crates/sim/src/timeline.rs

crates/sim/src/lib.rs:
crates/sim/src/concurrent.rs:
crates/sim/src/device.rs:
crates/sim/src/engine.rs:
crates/sim/src/error.rs:
crates/sim/src/plan.rs:
crates/sim/src/power.rs:
crates/sim/src/result.rs:
crates/sim/src/spec.rs:
crates/sim/src/timeline.rs:
