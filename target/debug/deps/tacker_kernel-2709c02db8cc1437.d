/root/repo/target/debug/deps/tacker_kernel-2709c02db8cc1437.d: crates/kernel/src/lib.rs crates/kernel/src/ast.rs crates/kernel/src/dims.rs crates/kernel/src/error.rs crates/kernel/src/kernel.rs crates/kernel/src/lower.rs crates/kernel/src/resources.rs crates/kernel/src/segments.rs crates/kernel/src/source.rs crates/kernel/src/time.rs

/root/repo/target/debug/deps/libtacker_kernel-2709c02db8cc1437.rlib: crates/kernel/src/lib.rs crates/kernel/src/ast.rs crates/kernel/src/dims.rs crates/kernel/src/error.rs crates/kernel/src/kernel.rs crates/kernel/src/lower.rs crates/kernel/src/resources.rs crates/kernel/src/segments.rs crates/kernel/src/source.rs crates/kernel/src/time.rs

/root/repo/target/debug/deps/libtacker_kernel-2709c02db8cc1437.rmeta: crates/kernel/src/lib.rs crates/kernel/src/ast.rs crates/kernel/src/dims.rs crates/kernel/src/error.rs crates/kernel/src/kernel.rs crates/kernel/src/lower.rs crates/kernel/src/resources.rs crates/kernel/src/segments.rs crates/kernel/src/source.rs crates/kernel/src/time.rs

crates/kernel/src/lib.rs:
crates/kernel/src/ast.rs:
crates/kernel/src/dims.rs:
crates/kernel/src/error.rs:
crates/kernel/src/kernel.rs:
crates/kernel/src/lower.rs:
crates/kernel/src/resources.rs:
crates/kernel/src/segments.rs:
crates/kernel/src/source.rs:
crates/kernel/src/time.rs:
