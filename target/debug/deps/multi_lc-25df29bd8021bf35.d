/root/repo/target/debug/deps/multi_lc-25df29bd8021bf35.d: crates/bench/src/bin/multi_lc.rs

/root/repo/target/debug/deps/multi_lc-25df29bd8021bf35: crates/bench/src/bin/multi_lc.rs

crates/bench/src/bin/multi_lc.rs:
