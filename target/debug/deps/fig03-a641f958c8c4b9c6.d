/root/repo/target/debug/deps/fig03-a641f958c8c4b9c6.d: crates/bench/src/bin/fig03.rs

/root/repo/target/debug/deps/fig03-a641f958c8c4b9c6: crates/bench/src/bin/fig03.rs

crates/bench/src/bin/fig03.rs:
