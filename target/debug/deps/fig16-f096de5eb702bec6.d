/root/repo/target/debug/deps/fig16-f096de5eb702bec6.d: crates/bench/src/bin/fig16.rs Cargo.toml

/root/repo/target/debug/deps/libfig16-f096de5eb702bec6.rmeta: crates/bench/src/bin/fig16.rs Cargo.toml

crates/bench/src/bin/fig16.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
