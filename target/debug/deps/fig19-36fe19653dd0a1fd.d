/root/repo/target/debug/deps/fig19-36fe19653dd0a1fd.d: crates/bench/src/bin/fig19.rs

/root/repo/target/debug/deps/fig19-36fe19653dd0a1fd: crates/bench/src/bin/fig19.rs

crates/bench/src/bin/fig19.rs:
