/root/repo/target/debug/deps/engine_behavior-43b31bcb6538a203.d: tests/engine_behavior.rs

/root/repo/target/debug/deps/engine_behavior-43b31bcb6538a203: tests/engine_behavior.rs

tests/engine_behavior.rs:
