/root/repo/target/debug/deps/tacker_bench-33af74812e404742.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libtacker_bench-33af74812e404742.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libtacker_bench-33af74812e404742.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
