/root/repo/target/debug/deps/tacker_fuser-93d5180ae9bbf751.d: crates/fuser/src/lib.rs crates/fuser/src/barrier.rs crates/fuser/src/direct.rs crates/fuser/src/error.rs crates/fuser/src/flexible.rs crates/fuser/src/ptb.rs crates/fuser/src/rename.rs crates/fuser/src/select.rs

/root/repo/target/debug/deps/tacker_fuser-93d5180ae9bbf751: crates/fuser/src/lib.rs crates/fuser/src/barrier.rs crates/fuser/src/direct.rs crates/fuser/src/error.rs crates/fuser/src/flexible.rs crates/fuser/src/ptb.rs crates/fuser/src/rename.rs crates/fuser/src/select.rs

crates/fuser/src/lib.rs:
crates/fuser/src/barrier.rs:
crates/fuser/src/direct.rs:
crates/fuser/src/error.rs:
crates/fuser/src/flexible.rs:
crates/fuser/src/ptb.rs:
crates/fuser/src/rename.rs:
crates/fuser/src/select.rs:
