/root/repo/target/debug/deps/fig03-83cebab90f01af10.d: crates/bench/src/bin/fig03.rs

/root/repo/target/debug/deps/fig03-83cebab90f01af10: crates/bench/src/bin/fig03.rs

crates/bench/src/bin/fig03.rs:
