/root/repo/target/debug/deps/runtime_behavior-42fd84201aeb9d0f.d: tests/runtime_behavior.rs

/root/repo/target/debug/deps/runtime_behavior-42fd84201aeb9d0f: tests/runtime_behavior.rs

tests/runtime_behavior.rs:
