/root/repo/target/debug/deps/sim_props-ee3245c442bab30e.d: tests/sim_props.rs

/root/repo/target/debug/deps/sim_props-ee3245c442bab30e: tests/sim_props.rs

tests/sim_props.rs:
