/root/repo/target/debug/deps/fig11-21d35c6bdeae59c9.d: crates/bench/src/bin/fig11.rs

/root/repo/target/debug/deps/fig11-21d35c6bdeae59c9: crates/bench/src/bin/fig11.rs

crates/bench/src/bin/fig11.rs:
