/root/repo/target/debug/deps/multi_lc-34dc6cb4bb0196d2.d: crates/bench/src/bin/multi_lc.rs Cargo.toml

/root/repo/target/debug/deps/libmulti_lc-34dc6cb4bb0196d2.rmeta: crates/bench/src/bin/multi_lc.rs Cargo.toml

crates/bench/src/bin/multi_lc.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
