/root/repo/target/debug/deps/fig_batch-24a2297209e492a5.d: crates/bench/src/bin/fig_batch.rs

/root/repo/target/debug/deps/fig_batch-24a2297209e492a5: crates/bench/src/bin/fig_batch.rs

crates/bench/src/bin/fig_batch.rs:
