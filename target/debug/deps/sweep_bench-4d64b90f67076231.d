/root/repo/target/debug/deps/sweep_bench-4d64b90f67076231.d: crates/bench/src/bin/sweep_bench.rs

/root/repo/target/debug/deps/sweep_bench-4d64b90f67076231: crates/bench/src/bin/sweep_bench.rs

crates/bench/src/bin/sweep_bench.rs:
