/root/repo/target/debug/deps/fig20-53395c52e7cfbfce.d: crates/bench/src/bin/fig20.rs

/root/repo/target/debug/deps/fig20-53395c52e7cfbfce: crates/bench/src/bin/fig20.rs

crates/bench/src/bin/fig20.rs:
