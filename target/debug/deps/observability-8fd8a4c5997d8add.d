/root/repo/target/debug/deps/observability-8fd8a4c5997d8add.d: tests/observability.rs

/root/repo/target/debug/deps/observability-8fd8a4c5997d8add: tests/observability.rs

tests/observability.rs:
