/root/repo/target/debug/deps/tacker_bench-8dabfc29fc73d42c.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libtacker_bench-8dabfc29fc73d42c.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
