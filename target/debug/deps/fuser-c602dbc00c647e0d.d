/root/repo/target/debug/deps/fuser-c602dbc00c647e0d.d: crates/bench/benches/fuser.rs Cargo.toml

/root/repo/target/debug/deps/libfuser-c602dbc00c647e0d.rmeta: crates/bench/benches/fuser.rs Cargo.toml

crates/bench/benches/fuser.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
