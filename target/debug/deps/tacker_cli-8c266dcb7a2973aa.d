/root/repo/target/debug/deps/tacker_cli-8c266dcb7a2973aa.d: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs Cargo.toml

/root/repo/target/debug/deps/libtacker_cli-8c266dcb7a2973aa.rmeta: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs Cargo.toml

crates/cli/src/main.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
