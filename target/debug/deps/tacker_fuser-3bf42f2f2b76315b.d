/root/repo/target/debug/deps/tacker_fuser-3bf42f2f2b76315b.d: crates/fuser/src/lib.rs crates/fuser/src/barrier.rs crates/fuser/src/direct.rs crates/fuser/src/error.rs crates/fuser/src/flexible.rs crates/fuser/src/ptb.rs crates/fuser/src/rename.rs crates/fuser/src/select.rs

/root/repo/target/debug/deps/libtacker_fuser-3bf42f2f2b76315b.rlib: crates/fuser/src/lib.rs crates/fuser/src/barrier.rs crates/fuser/src/direct.rs crates/fuser/src/error.rs crates/fuser/src/flexible.rs crates/fuser/src/ptb.rs crates/fuser/src/rename.rs crates/fuser/src/select.rs

/root/repo/target/debug/deps/libtacker_fuser-3bf42f2f2b76315b.rmeta: crates/fuser/src/lib.rs crates/fuser/src/barrier.rs crates/fuser/src/direct.rs crates/fuser/src/error.rs crates/fuser/src/flexible.rs crates/fuser/src/ptb.rs crates/fuser/src/rename.rs crates/fuser/src/select.rs

crates/fuser/src/lib.rs:
crates/fuser/src/barrier.rs:
crates/fuser/src/direct.rs:
crates/fuser/src/error.rs:
crates/fuser/src/flexible.rs:
crates/fuser/src/ptb.rs:
crates/fuser/src/rename.rs:
crates/fuser/src/select.rs:
