/root/repo/target/debug/deps/table1-808d73fe282fe2d1.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-808d73fe282fe2d1: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
