/root/repo/target/debug/deps/paper_claims-ea7d14fab3af3211.d: tests/paper_claims.rs

/root/repo/target/debug/deps/paper_claims-ea7d14fab3af3211: tests/paper_claims.rs

tests/paper_claims.rs:
