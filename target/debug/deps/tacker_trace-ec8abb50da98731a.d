/root/repo/target/debug/deps/tacker_trace-ec8abb50da98731a.d: crates/trace/src/lib.rs crates/trace/src/chrome.rs crates/trace/src/event.rs crates/trace/src/metrics.rs crates/trace/src/sink.rs Cargo.toml

/root/repo/target/debug/deps/libtacker_trace-ec8abb50da98731a.rmeta: crates/trace/src/lib.rs crates/trace/src/chrome.rs crates/trace/src/event.rs crates/trace/src/metrics.rs crates/trace/src/sink.rs Cargo.toml

crates/trace/src/lib.rs:
crates/trace/src/chrome.rs:
crates/trace/src/event.rs:
crates/trace/src/metrics.rs:
crates/trace/src/sink.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
