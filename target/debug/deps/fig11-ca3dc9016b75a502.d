/root/repo/target/debug/deps/fig11-ca3dc9016b75a502.d: crates/bench/src/bin/fig11.rs

/root/repo/target/debug/deps/fig11-ca3dc9016b75a502: crates/bench/src/bin/fig11.rs

crates/bench/src/bin/fig11.rs:
