/root/repo/target/debug/deps/fig18-77752d78744dd7e0.d: crates/bench/src/bin/fig18.rs

/root/repo/target/debug/deps/fig18-77752d78744dd7e0: crates/bench/src/bin/fig18.rs

crates/bench/src/bin/fig18.rs:
