/root/repo/target/debug/deps/tacker-b554861114ec1490.d: crates/core/src/lib.rs crates/core/src/baselines.rs crates/core/src/cluster.rs crates/core/src/config.rs crates/core/src/error.rs crates/core/src/library.rs crates/core/src/manager.rs crates/core/src/metrics.rs crates/core/src/profile.rs crates/core/src/server.rs

/root/repo/target/debug/deps/libtacker-b554861114ec1490.rlib: crates/core/src/lib.rs crates/core/src/baselines.rs crates/core/src/cluster.rs crates/core/src/config.rs crates/core/src/error.rs crates/core/src/library.rs crates/core/src/manager.rs crates/core/src/metrics.rs crates/core/src/profile.rs crates/core/src/server.rs

/root/repo/target/debug/deps/libtacker-b554861114ec1490.rmeta: crates/core/src/lib.rs crates/core/src/baselines.rs crates/core/src/cluster.rs crates/core/src/config.rs crates/core/src/error.rs crates/core/src/library.rs crates/core/src/manager.rs crates/core/src/metrics.rs crates/core/src/profile.rs crates/core/src/server.rs

crates/core/src/lib.rs:
crates/core/src/baselines.rs:
crates/core/src/cluster.rs:
crates/core/src/config.rs:
crates/core/src/error.rs:
crates/core/src/library.rs:
crates/core/src/manager.rs:
crates/core/src/metrics.rs:
crates/core/src/profile.rs:
crates/core/src/server.rs:
