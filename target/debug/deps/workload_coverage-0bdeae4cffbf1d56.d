/root/repo/target/debug/deps/workload_coverage-0bdeae4cffbf1d56.d: tests/workload_coverage.rs

/root/repo/target/debug/deps/workload_coverage-0bdeae4cffbf1d56: tests/workload_coverage.rs

tests/workload_coverage.rs:
