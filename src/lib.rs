//! Umbrella crate for the Tacker reproduction workspace.
//!
//! Re-exports the public crates so examples and integration tests can use a
//! single dependency. See the individual crates for the real APIs:
//! [`tacker`], [`tacker_fuser`], [`tacker_sim`], [`tacker_predictor`],
//! [`tacker_workloads`], [`tacker_kernel`], [`tacker_trace`].

pub use tacker;
pub use tacker_fuser;
pub use tacker_kernel;
pub use tacker_predictor;
pub use tacker_sim;
pub use tacker_trace;
pub use tacker_workloads;
