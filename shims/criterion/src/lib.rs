//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the slice of criterion it uses: [`Criterion`],
//! [`Bencher::iter`], [`criterion_group!`] and [`criterion_main!`], plus
//! [`black_box`]. Each benchmark auto-calibrates an iteration count to a
//! small time budget, reports the mean time per iteration, and exposes the
//! measured numbers programmatically via [`Criterion::results`] so tests
//! and overhead gates can assert on them.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// One benchmark's measurement.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark id as given to [`Criterion::bench_function`].
    pub name: String,
    /// Iterations measured.
    pub iterations: u64,
    /// Mean wall-clock time per iteration.
    pub mean: Duration,
}

/// The benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    /// Per-benchmark measurement budget.
    measurement_time: Duration,
    results: Vec<BenchResult>,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            measurement_time: Duration::from_millis(800),
            results: Vec::new(),
        }
    }
}

impl Criterion {
    /// Sets the per-benchmark measurement budget.
    pub fn measurement_time(mut self, t: Duration) -> Criterion {
        self.measurement_time = t;
        self
    }

    /// Runs one benchmark and prints its mean iteration time.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            budget: self.measurement_time,
            iterations: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        let iterations = bencher.iterations.max(1);
        let mean = bencher.elapsed / iterations as u32;
        println!(
            "{name:<44} {:>12.3} µs/iter  ({iterations} iters)",
            mean.as_secs_f64() * 1e6
        );
        self.results.push(BenchResult {
            name: name.to_string(),
            iterations,
            mean,
        });
        self
    }

    /// All measurements taken so far, in execution order.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// The measurement with the given name, if it ran.
    pub fn result(&self, name: &str) -> Option<&BenchResult> {
        self.results.iter().find(|r| r.name == name)
    }
}

/// Times closures handed to it by a benchmark body.
#[derive(Debug)]
pub struct Bencher {
    budget: Duration,
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Repeatedly runs `f`, timing it, until the measurement budget is
    /// spent (with a short warm-up discarded first).
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warm-up + calibration: estimate the per-iteration cost.
        let warmup_start = Instant::now();
        black_box(f());
        let probe = warmup_start.elapsed().max(Duration::from_nanos(50));
        let target = (self.budget.as_nanos() / probe.as_nanos().max(1)).clamp(10, 1_000_000) as u64;
        let start = Instant::now();
        for _ in 0..target {
            black_box(f());
        }
        self.elapsed = start.elapsed();
        self.iterations = target;
    }
}

/// Declares a function running a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_and_records() {
        let mut c = Criterion::default().measurement_time(Duration::from_millis(5));
        let mut calls = 0u64;
        c.bench_function("noop", |b| {
            b.iter(|| {
                calls += 1;
                black_box(calls)
            })
        });
        let r = c.result("noop").expect("recorded");
        assert!(r.iterations >= 10);
        assert!(calls >= r.iterations);
        assert!(r.mean < Duration::from_millis(5));
    }

    criterion_group!(sample_group, sample_bench);

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("macro_path", |b| b.iter(|| black_box(1 + 1)));
    }

    #[test]
    fn group_macro_runs() {
        sample_group();
    }
}
