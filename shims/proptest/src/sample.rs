//! Sampling from explicit value lists.

use crate::{Strategy, TestRng};

/// Uniformly selects one of the given values.
pub fn select<T: Clone>(values: Vec<T>) -> Select<T> {
    assert!(!values.is_empty(), "select requires at least one value");
    Select { values }
}

/// The [`select`] strategy.
#[derive(Debug, Clone)]
pub struct Select<T> {
    values: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        self.values[rng.below(self.values.len() as u64) as usize].clone()
    }
}
