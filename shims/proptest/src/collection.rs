//! Collection strategies.

use std::ops::Range;

use crate::{Strategy, TestRng};

/// The accepted length specifications of [`vec`].
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi_exclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange {
            lo: n,
            hi_exclusive: n + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        SizeRange {
            lo: r.start,
            hi_exclusive: r.end.max(r.start + 1),
        }
    }
}

/// Generates `Vec`s whose length is drawn from `size` and whose elements
/// are drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// The [`vec`] strategy.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi_exclusive - self.size.lo).max(1) as u64;
        let len = self.size.lo + rng.below(span) as usize;
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}
