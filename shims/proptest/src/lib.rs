//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the slice of proptest it uses: the [`Strategy`]
//! trait with `prop_map`, range/tuple/vec/select strategies, the
//! [`proptest!`] macro with `#![proptest_config(..)]`, and the
//! `prop_assert*` / `prop_assume!` macros. Cases are generated from a
//! fixed-seed SplitMix64 stream so runs are deterministic; failing inputs
//! are **not shrunk** — the failure message carries the assertion site
//! instead.

use std::fmt;
use std::ops::{Range, RangeInclusive};

pub mod collection;
pub mod sample;

/// Deterministic case generator (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn seed_from_u64(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    /// The next 64-bit word of the stream.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// A value generator. Unlike real proptest there is no shrinking: a
/// strategy is just a deterministic sampler over a [`TestRng`].
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Samples one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// The [`Strategy::prop_map`] combinator.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Numeric types samplable uniformly from a range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
    fn sample_range(lo: Self, hi: Self, inclusive: bool, rng: &mut TestRng) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range(lo: $t, hi: $t, inclusive: bool, rng: &mut TestRng) -> $t {
                // Width in u128 so `hi - lo (+1)` cannot overflow the type.
                let lo_w = lo as i128;
                let hi_w = hi as i128;
                let span = (hi_w - lo_w + if inclusive { 1 } else { 0 }).max(1) as u128;
                let offset = (rng.next_u64() as u128 % span) as i128;
                (lo_w + offset) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range(lo: f64, hi: f64, _inclusive: bool, rng: &mut TestRng) -> f64 {
        lo + rng.next_f64() * (hi - lo)
    }
}

impl SampleUniform for f32 {
    fn sample_range(lo: f32, hi: f32, _inclusive: bool, rng: &mut TestRng) -> f32 {
        lo + rng.next_f64() as f32 * (hi - lo)
    }
}

impl<T: SampleUniform> Strategy for Range<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::sample_range(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> Strategy for RangeInclusive<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::sample_range(*self.start(), *self.end(), true, rng)
    }
}

macro_rules! impl_strategy_tuple {
    ($($name:ident),*) => {
        impl<$($name: Strategy),*> Strategy for ($($name,)*) {
            type Value = ($($name::Value,)*);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)*) = self;
                ($($name.sample(rng),)*)
            }
        }
    };
}

impl_strategy_tuple!(A);
impl_strategy_tuple!(A, B);
impl_strategy_tuple!(A, B, C);
impl_strategy_tuple!(A, B, C, D);
impl_strategy_tuple!(A, B, C, D, E);
impl_strategy_tuple!(A, B, C, D, E, F);
impl_strategy_tuple!(A, B, C, D, E, F, G);
impl_strategy_tuple!(A, B, C, D, E, F, G, H);

/// Why a test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// An assertion failed; the run aborts with this message.
    Fail(String),
    /// A `prop_assume!` rejected the inputs; the case is skipped.
    Reject(String),
}

impl TestCaseError {
    /// An assertion failure.
    pub fn fail(message: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(message.into())
    }

    /// An input rejection.
    pub fn reject(message: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(message.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
        }
    }
}

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per test.
    pub cases: u32,
    /// RNG seed of the case stream.
    pub seed: u64,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig {
            cases: 256,
            seed: 0x7e57_ca5e,
        }
    }
}

impl ProptestConfig {
    /// A config running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

/// Drives a strategy through a test closure `config.cases` times.
#[derive(Debug)]
pub struct TestRunner {
    config: ProptestConfig,
    rng: TestRng,
}

impl TestRunner {
    /// Creates a runner with the given config.
    pub fn new(config: ProptestConfig) -> TestRunner {
        let rng = TestRng::seed_from_u64(config.seed);
        TestRunner { config, rng }
    }

    /// Runs the test body until `cases` inputs were accepted.
    ///
    /// # Panics
    ///
    /// Panics on the first failing case, or when `prop_assume!` rejects an
    /// excessive fraction of generated inputs.
    pub fn run<S, F>(&mut self, strategy: &S, mut body: F)
    where
        S: Strategy,
        F: FnMut(S::Value) -> Result<(), TestCaseError>,
    {
        let mut accepted = 0u32;
        let mut rejected = 0u32;
        let reject_limit = self.config.cases.saturating_mul(20).saturating_add(1_000);
        while accepted < self.config.cases {
            let value = strategy.sample(&mut self.rng);
            match body(value) {
                Ok(()) => accepted += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejected += 1;
                    assert!(
                        rejected <= reject_limit,
                        "prop_assume! rejected {rejected} inputs before {} cases passed",
                        self.config.cases
                    );
                }
                Err(TestCaseError::Fail(message)) => {
                    panic!("proptest case {} failed: {message}", accepted + 1)
                }
            }
        }
    }
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// Supports the subset of real-proptest syntax this workspace uses:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn it_holds(x in 0u64..100, v in proptest::collection::vec(0f64..1.0, 3..20)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@funcs ($cfg) $($rest)*);
    };
    (@funcs ($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $cfg;
                let mut runner = $crate::TestRunner::new(config);
                runner.run(
                    &($($strat,)*),
                    |($($arg,)*)| {
                        $body
                        Ok(())
                    },
                );
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@funcs ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// `assert!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!(
                "{} at {}:{}",
                format!($($fmt)*),
                file!(),
                line!()
            )));
        }
    };
}

/// `assert_eq!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "{left:?} != {right:?} ({} != {})",
            stringify!($left),
            stringify!($right)
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(left == right, "{left:?} != {right:?}: {}", format!($($fmt)*));
    }};
}

/// Skips the current case when its generated inputs are unsuitable.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// The glob-import surface used by test files.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assume, proptest, Just, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::TestRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = (5u64..10).sample(&mut rng);
            assert!((5..10).contains(&x));
            let y = (1u32..=3).sample(&mut rng);
            assert!((1..=3).contains(&y));
            let f = (-2.0f64..2.0).sample(&mut rng);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn tuples_and_map_compose() {
        let strat = (1u32..=4, 0u64..8).prop_map(|(a, b)| a as u64 + b);
        let mut rng = crate::TestRng::seed_from_u64(2);
        for _ in 0..100 {
            let v = strat.sample(&mut rng);
            assert!(v <= 11);
        }
    }

    #[test]
    fn vec_and_select_sample() {
        let mut rng = crate::TestRng::seed_from_u64(3);
        let v = crate::collection::vec(0u64..5, 3..6).sample(&mut rng);
        assert!((3..6).contains(&v.len()));
        assert!(v.iter().all(|&x| x < 5));
        let s = crate::sample::select(vec![2u32, 4, 8]).sample(&mut rng);
        assert!([2, 4, 8].contains(&s));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro path itself: config, assume, assert, trailing comma.
        #[test]
        fn macro_roundtrip(x in 1u64..100, y in prop::sample::select(vec![1u64, 2, 3]),) {
            prop_assume!(x != 50);
            prop_assert!((1..100).contains(&x));
            prop_assert_eq!(y * 2 / 2, y, "y {}", y);
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failures_panic_with_site() {
        let mut runner = crate::TestRunner::new(ProptestConfig::with_cases(4));
        runner.run(&(0u64..10,), |(x,)| {
            prop_assert!(x > 100, "x {x} not above 100");
            Ok(())
        });
    }
}
