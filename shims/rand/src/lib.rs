//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the *tiny* slice of the `rand` 0.10 API it actually
//! uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`] and
//! [`RngExt::random`]. The generator is SplitMix64 — deterministic,
//! well-distributed, and more than adequate for seeding simulated Poisson
//! arrival processes. It is **not** cryptographically secure.

/// A source of 64-bit random words.
pub trait RngCore {
    /// The next 64-bit word of the stream.
    fn next_u64(&mut self) -> u64;
}

/// Types constructible from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable from the uniform "standard" distribution.
pub trait Standard: Sized {
    /// Samples one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Convenience sampling methods on any [`RngCore`] (rand 0.10's `Rng`
/// extension trait).
pub trait RngExt: RngCore {
    /// Samples a value from the standard distribution of `T`.
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Vigna): passes BigCrush, one add + three xorshifts.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.random::<u64>(), b.random::<u64>());
    }

    #[test]
    fn f64_in_unit_interval_with_sane_mean() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 10_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x), "{x} outside [0,1)");
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
