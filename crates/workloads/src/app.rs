//! Application-level workload abstractions.
//!
//! The scheduler consumes kernels, not benchmarks: an LC service turns a
//! query into a finite kernel sequence; a BE application yields an endless
//! stream of task iterations, each a kernel sequence. [`WorkloadKernel`]
//! couples a kernel definition with its concrete grid and bindings.

use std::fmt;
use std::sync::Arc;

use tacker_kernel::{Bindings, KernelDef, KernelKind, KernelLaunch};

/// The paper's BE-application classification (Table II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Intensity {
    /// Bound by arithmetic throughput (mriq, fft, mrif, cutcp, cp).
    Compute,
    /// Bound by memory bandwidth (sgemm, lbm, tpacf, DNN training).
    Memory,
}

impl fmt::Display for Intensity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Intensity::Compute => write!(f, "compute-intensive"),
            Intensity::Memory => write!(f, "memory-intensive"),
        }
    }
}

/// A concrete kernel invocation: definition + grid + bindings.
#[derive(Debug, Clone)]
pub struct WorkloadKernel {
    /// The kernel definition.
    pub def: Arc<KernelDef>,
    /// Original grid size (blocks) for this input.
    pub grid: u64,
    /// Launch parameter bindings.
    pub bindings: Bindings,
}

impl WorkloadKernel {
    /// Creates a workload kernel.
    pub fn new(def: Arc<KernelDef>, grid: u64, bindings: Bindings) -> Self {
        WorkloadKernel {
            def,
            grid,
            bindings,
        }
    }

    /// The launch for this invocation.
    pub fn launch(&self) -> KernelLaunch {
        KernelLaunch::new(Arc::clone(&self.def), self.grid, self.bindings.clone())
    }

    /// Whether this kernel runs on Tensor Cores.
    pub fn is_tensor(&self) -> bool {
        self.def.kind() == KernelKind::Tensor
    }

    /// Whether this kernel runs on CUDA Cores.
    pub fn is_cuda(&self) -> bool {
        self.def.kind() == KernelKind::Cuda
    }
}

impl fmt::Display for WorkloadKernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}<<<{}>>>", self.def.name(), self.grid)
    }
}

/// A latency-critical inference service: each query is the same kernel
/// sequence (shapes fixed by the configured batch size).
#[derive(Clone)]
pub struct LcService {
    name: String,
    batch: u32,
    kernels: Arc<Vec<WorkloadKernel>>,
}

impl LcService {
    /// Creates a service from its per-query kernel sequence.
    pub fn new(name: impl Into<String>, batch: u32, kernels: Vec<WorkloadKernel>) -> LcService {
        LcService {
            name: name.into(),
            batch,
            kernels: Arc::new(kernels),
        }
    }

    /// Service name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Configured batch size (Table II).
    pub fn batch(&self) -> u32 {
        self.batch
    }

    /// The kernel sequence one query executes.
    pub fn query_kernels(&self) -> &[WorkloadKernel] {
        &self.kernels
    }

    /// Number of Tensor-Core kernels per query.
    pub fn tc_kernel_count(&self) -> usize {
        self.kernels.iter().filter(|k| k.is_tensor()).count()
    }

    /// Number of CUDA-Core kernels per query.
    pub fn cd_kernel_count(&self) -> usize {
        self.kernels.iter().filter(|k| k.is_cuda()).count()
    }
}

impl fmt::Debug for LcService {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LcService")
            .field("name", &self.name)
            .field("batch", &self.batch)
            .field("kernels", &self.kernels.len())
            .finish()
    }
}

/// A best-effort application: an endless stream of identical task
/// iterations, each a kernel sequence.
#[derive(Clone)]
pub struct BeApp {
    name: String,
    intensity: Intensity,
    task: Arc<Vec<WorkloadKernel>>,
}

impl BeApp {
    /// Creates a BE application from one task iteration's kernels.
    pub fn new(name: impl Into<String>, intensity: Intensity, task: Vec<WorkloadKernel>) -> BeApp {
        BeApp {
            name: name.into(),
            intensity,
            task: Arc::new(task),
        }
    }

    /// Application name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Compute- or memory-intensive classification.
    pub fn intensity(&self) -> Intensity {
        self.intensity
    }

    /// The kernels of one task iteration.
    pub fn task_kernels(&self) -> &[WorkloadKernel] {
        &self.task
    }
}

impl fmt::Debug for BeApp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BeApp")
            .field("name", &self.name)
            .field("intensity", &self.intensity)
            .field("kernels", &self.task.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tacker_kernel::ast::{Expr, Stmt};
    use tacker_kernel::{Dim3, ResourceUsage};

    fn kernel(kind: KernelKind) -> WorkloadKernel {
        let def = KernelDef::builder("k", kind)
            .block_dim(Dim3::x(64))
            .resources(ResourceUsage::new(32, 0))
            .body(vec![Stmt::compute_cd(Expr::lit(1), "x")])
            .build()
            .unwrap();
        WorkloadKernel::new(Arc::new(def), 10, Bindings::new())
    }

    #[test]
    fn kind_predicates() {
        assert!(kernel(KernelKind::Tensor).is_tensor());
        assert!(kernel(KernelKind::Cuda).is_cuda());
        assert!(!kernel(KernelKind::Fused).is_tensor());
    }

    #[test]
    fn service_counts_kernel_kinds() {
        let svc = LcService::new(
            "svc",
            32,
            vec![
                kernel(KernelKind::Tensor),
                kernel(KernelKind::Cuda),
                kernel(KernelKind::Cuda),
            ],
        );
        assert_eq!(svc.tc_kernel_count(), 1);
        assert_eq!(svc.cd_kernel_count(), 2);
        assert_eq!(svc.batch(), 32);
    }

    #[test]
    fn launch_round_trip() {
        let wk = kernel(KernelKind::Cuda);
        let launch = wk.launch();
        assert_eq!(launch.grid_blocks, 10);
        assert_eq!(launch.def.name(), "k");
    }
}
