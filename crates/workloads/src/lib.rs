//! Workload definitions for the Tacker reproduction.
//!
//! Everything the paper runs on the GPU is modelled here:
//!
//! * [`gemm`] — the open-source Tensor-Core GEMM (the paper replaces
//!   cuDNN's black-box TC kernels with NVIDIA's public wmma GEMM);
//! * [`parboil`] — fourteen Parboil-suite benchmarks (the paper's ten plus
//!   bfs/histo/sad/spmv) used as best-effort applications and fusion
//!   partners, with per-benchmark resource and compute/memory profiles
//!   matching the paper's compute- vs memory-intensive classification
//!   (Table II);
//! * [`dnn`] — the six latency-critical DNN services (Resnet50, ResNext50,
//!   VGG16, VGG19, Inception-v3, Densenet121) as real layer graphs with
//!   tensor-shape propagation, the im2col+GEMM conversion of §VIII-H, the
//!   cuDNN kernel catalog of Table III, and the four `-T` training tasks;
//! * [`microbench`] — Bench-A/B/C from Table I;
//! * [`app`] — the application-level view: LC services producing queries
//!   (kernel sequences) and BE applications producing endless task streams.

pub mod app;
pub mod dnn;
pub mod gemm;
pub mod microbench;
pub mod parboil;
pub mod registry;

pub use app::{BeApp, Intensity, LcService, WorkloadKernel};
pub use registry::{be_app, be_apps, lc_service, lc_services};
