//! The motivation microbenchmarks of §III-B (Table I).
//!
//! * `Kt` — a Tensor-Core kernel built from the official wmma GEMM body;
//! * `Kc` — a CUDA-Core kernel doing pure register arithmetic with
//!   negligible memory traffic.
//!
//! Both use 128-thread blocks and are sized so that one warp-iteration
//! occupies its pipeline for the same number of cycles, so equal `iters`
//! give equal solo durations. Bench-A fuses `Kt` with `Kc` (both pipelines
//! in parallel → ≈ 1.03× the solo duration); Bench-B fuses `Kt` with `Kt`
//! and Bench-C `Kc` with `Kc` (same pipeline → 2×).

use std::sync::Arc;

use tacker_kernel::ast::{Expr, Stmt};
use tacker_kernel::{Dim3, KernelDef, KernelKind, ResourceUsage};

use crate::app::WorkloadKernel;
use crate::parboil::launch_with_iters;

/// Per-warp pipeline occupancy per iteration, in cycles, for both kernels
/// (with the modelled 256 TC ops/cycle and 32 CD ops/cycle).
pub const CYCLES_PER_WARP_ITER: u64 = 256;

/// `Kt`: the Tensor-Core microkernel (wmma GEMM mainloop).
///
/// 2048 TC ops per thread per iteration → 65536 per warp → 256 cycles at
/// 256 ops/cycle.
pub fn kt() -> KernelDef {
    KernelDef::builder("micro_kt", KernelKind::Tensor)
        .block_dim(Dim3::x(128))
        .resources(ResourceUsage::new(64, 16 * 1024))
        .param("iters")
        .body(vec![
            Stmt::shared_decl("frag_tiles", 16 * 1024),
            Stmt::loop_over(
                "k",
                Expr::param("iters"),
                vec![
                    Stmt::global_load("tiles", Expr::lit(16), 0.97),
                    Stmt::sync_threads(),
                    Stmt::compute_tc(Expr::lit(2048), "wmma::mma_sync(acc, a, b, acc)"),
                    Stmt::sync_threads(),
                ],
            ),
        ])
        .build()
        .expect("kt is valid")
}

/// `Kc`: the CUDA-Core microkernel ("pure computation using registers …
/// negligible memory operations").
///
/// 256 CD ops per thread per iteration → 8192 per warp → 256 cycles at
/// 32 ops/cycle.
pub fn kc() -> KernelDef {
    KernelDef::builder("micro_kc", KernelKind::Cuda)
        .block_dim(Dim3::x(128))
        .resources(ResourceUsage::new(64, 0))
        .param("iters")
        .body(vec![Stmt::loop_over(
            "i",
            Expr::param("iters"),
            vec![Stmt::compute_cd(
                Expr::lit(256),
                "x = fmaf(x, a, b); y = fmaf(y, c, d); /* unrolled register FMA chain */",
            )],
        )])
        .build()
        .expect("kc is valid")
}

/// A launch of either microkernel at `blocks_per_sm` blocks per SM on a
/// 68-SM device, with the given mainloop length.
pub fn micro_launch(def: &Arc<KernelDef>, blocks_per_sm: u64, iters: u64) -> WorkloadKernel {
    launch_with_iters(Arc::clone(def), blocks_per_sm * 68, iters)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tacker_kernel::ComputeUnit;

    #[test]
    fn per_iteration_pipeline_cycles_match() {
        let kt = kt();
        let kc = kc();
        let mut b = tacker_kernel::Bindings::new();
        b.insert("iters".into(), 1);
        let bt = tacker_kernel::lower_block(&kt, 1, &b).unwrap();
        let bc = tacker_kernel::lower_block(&kc, 1, &b).unwrap();
        let tc_ops = bt.roles[0].program.total_compute(ComputeUnit::Tensor);
        let cd_ops = bc.roles[0].program.total_compute(ComputeUnit::Cuda);
        assert_eq!(tc_ops / 256, CYCLES_PER_WARP_ITER);
        assert_eq!(cd_ops / 32, CYCLES_PER_WARP_ITER);
    }

    #[test]
    fn kinds_are_complementary() {
        assert_eq!(kt().kind(), KernelKind::Tensor);
        assert_eq!(kc().kind(), KernelKind::Cuda);
        assert!(kc().resources().shared_mem_bytes == 0);
    }

    #[test]
    fn micro_launch_scales_grid() {
        let def = Arc::new(kc());
        let wk = micro_launch(&def, 4, 100);
        assert_eq!(wk.grid, 272);
        assert_eq!(wk.bindings.get("iters"), Some(&100));
    }
}
