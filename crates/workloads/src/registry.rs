//! The Table II workload registry: six LC services and twelve BE
//! applications.

use tacker_sim::Device;

use crate::app::{BeApp, LcService};
use crate::dnn::training::{training_be_app, TRAINING_MODELS};
use crate::dnn::DnnModel;
use crate::parboil::Benchmark;

/// All twelve BE applications of Table II: eight Parboil benchmarks plus
/// four DNN training tasks.
pub fn be_apps() -> Vec<BeApp> {
    let mut apps: Vec<BeApp> = Benchmark::BE_APPS
        .iter()
        .map(|b| BeApp::new(b.name(), b.intensity(), b.task()))
        .collect();
    apps.extend(TRAINING_MODELS.iter().map(|&m| training_be_app(m)));
    apps
}

/// Looks up a BE application by its paper name (e.g. `"sgemm"`, `"Res-T"`).
pub fn be_app(name: &str) -> Option<BeApp> {
    be_apps().into_iter().find(|a| a.name() == name)
}

/// The six LC services at their Table II batch sizes, compiled for the
/// given device.
pub fn lc_services(device: &Device) -> Vec<LcService> {
    DnnModel::ALL.iter().map(|m| m.lc_service(device)).collect()
}

/// Looks up an LC service by model name.
pub fn lc_service(name: &str, device: &Device) -> Option<LcService> {
    DnnModel::ALL
        .iter()
        .find(|m| m.name() == name)
        .map(|m| m.lc_service(device))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::Intensity;

    #[test]
    fn twelve_be_apps_with_paper_names() {
        let apps = be_apps();
        assert_eq!(apps.len(), 12);
        let names: Vec<&str> = apps.iter().map(|a| a.name()).collect();
        for expected in [
            "mriq", "fft", "mrif", "cutcp", "cp", "sgemm", "lbm", "tpacf", "Res-T", "VGG-T",
            "Incep-T", "Dense-T",
        ] {
            assert!(names.contains(&expected), "missing {expected}");
        }
        // 5 compute-intensive, 7 memory-intensive (3 Parboil + 4 training).
        let compute = apps
            .iter()
            .filter(|a| a.intensity() == Intensity::Compute)
            .count();
        assert_eq!(compute, 5);
    }

    #[test]
    fn be_app_lookup() {
        assert!(be_app("sgemm").is_some());
        assert!(be_app("Dense-T").is_some());
        assert!(be_app("nope").is_none());
    }
}
