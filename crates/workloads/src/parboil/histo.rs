//! `histo` — image histogramming.
//!
//! Streams pixels and scatters increments into a privatized shared-memory
//! histogram, merging to global memory at the end. Memory-intensive with
//! shared-memory conflict pressure.

use std::sync::{Arc, OnceLock};

use tacker_kernel::ast::{Expr, MemDir, Stmt};
use tacker_kernel::{Dim3, KernelDef, KernelKind, ResourceUsage};

use super::launch_with_iters;
use crate::app::WorkloadKernel;

/// The privatized-histogram kernel.
pub fn kernel() -> KernelDef {
    KernelDef::builder("histo", KernelKind::Cuda)
        .block_dim(Dim3::x(256))
        .resources(ResourceUsage::new(24, 4 * 1024))
        .param("iters")
        .body(vec![
            Stmt::shared_decl("private_histo", 4 * 1024),
            Stmt::loop_over(
                "px",
                Expr::param("iters"),
                vec![
                    Stmt::global_load("pixels", Expr::lit(32), 0.3),
                    Stmt::compute_cd(Expr::lit(48), "bin = classify(px)"),
                    Stmt::shared_access(MemDir::Write, "private_histo", Expr::lit(16)),
                ],
            ),
            Stmt::sync_threads(),
            Stmt::global_store("histo", Expr::lit(16), 0.0),
        ])
        .build()
        .expect("histo kernel is valid")
}

/// The process-wide shared instance of the kernel definition.
pub fn shared() -> Arc<KernelDef> {
    static DEF: OnceLock<Arc<KernelDef>> = OnceLock::new();
    Arc::clone(DEF.get_or_init(|| Arc::new(kernel())))
}

/// One task iteration: one image.
pub fn task(scale: u32) -> Vec<WorkloadKernel> {
    let def = shared();
    vec![launch_with_iters(def, 1536 * scale as u64, 4)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uses_privatized_shared_histogram() {
        let def = kernel();
        assert_eq!(def.resources().shared_mem_bytes, 4 * 1024);
        assert!(def.body().iter().any(Stmt::contains_sync_threads));
    }
}
