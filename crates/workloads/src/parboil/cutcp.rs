//! `cutcp` — cutoff-limited Coulomb potential.
//!
//! Each block accumulates short-range electrostatic contributions for a
//! lattice region, staging atom data in shared memory. Compute-intensive
//! with moderate register pressure.

use std::sync::{Arc, OnceLock};

use tacker_kernel::ast::{Expr, MemDir, Stmt};
use tacker_kernel::{Dim3, KernelDef, KernelKind, ResourceUsage};

use super::launch_with_iters;
use crate::app::WorkloadKernel;

/// The lattice-region potential kernel.
pub fn kernel() -> KernelDef {
    KernelDef::builder("cutcp", KernelKind::Cuda)
        .block_dim(Dim3::x(128))
        .resources(ResourceUsage::new(44, 4 * 1024))
        .param("iters")
        .body(vec![
            Stmt::shared_decl("atom_cache", 4 * 1024),
            Stmt::loop_over(
                "bin",
                Expr::param("iters"),
                vec![
                    Stmt::global_load("atoms", Expr::lit(32), 0.88),
                    Stmt::shared_access(MemDir::Write, "atom_cache", Expr::lit(16)),
                    Stmt::sync_threads(),
                    Stmt::compute_cd(
                        Expr::lit(384),
                        "r2 = dx*dx+dy*dy+dz*dz; if (r2 < cutoff2) pot += q * (1/sqrtf(r2) - ...)",
                    ),
                    Stmt::sync_threads(),
                ],
            ),
            Stmt::global_store("lattice", Expr::lit(16), 0.0),
        ])
        .build()
        .expect("cutcp kernel is valid")
}

/// The process-wide shared instance of the kernel definition.
///
/// Sharing one definition keeps `KernelId`s stable, so the simulator's
/// memoization and the runtime's fusion library both recognize repeated
/// launches.
pub fn shared() -> Arc<KernelDef> {
    static DEF: OnceLock<Arc<KernelDef>> = OnceLock::new();
    Arc::clone(DEF.get_or_init(|| Arc::new(kernel())))
}

/// One task iteration.
pub fn task(scale: u32) -> Vec<WorkloadKernel> {
    let def = shared();
    vec![launch_with_iters(def, 2048 * scale as u64, 2)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uses_shared_atom_cache() {
        let def = kernel();
        assert_eq!(def.resources().shared_mem_bytes, 4 * 1024);
        assert!(def.body().iter().any(Stmt::contains_sync_threads));
    }
}
