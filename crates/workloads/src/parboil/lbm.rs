//! `lbm` — lattice-Boltzmann method fluid simulation.
//!
//! Streams 19 distribution values per cell in and out of global memory
//! with little arithmetic: the most bandwidth-bound kernel in the suite,
//! with the suite's highest register pressure.

use std::sync::{Arc, OnceLock};

use tacker_kernel::ast::{Expr, Stmt};
use tacker_kernel::{Dim3, KernelDef, KernelKind, ResourceUsage};

use super::launch_with_iters;
use crate::app::WorkloadKernel;

/// The stream-collide kernel.
pub fn kernel() -> KernelDef {
    KernelDef::builder("lbm", KernelKind::Cuda)
        .block_dim(Dim3::x(128))
        .resources(ResourceUsage::new(84, 0))
        .param("iters")
        .body(vec![Stmt::loop_over(
            "cell",
            Expr::param("iters"),
            vec![
                Stmt::global_load("src_grid", Expr::lit(152), 0.2),
                Stmt::compute_cd(
                    Expr::lit(80),
                    "rho = sum(f); u = momentum(f); f' = collide(f)",
                ),
                Stmt::global_store("dst_grid", Expr::lit(152), 0.0),
            ],
        )])
        .build()
        .expect("lbm kernel is valid")
}

/// The process-wide shared instance of the kernel definition.
///
/// Sharing one definition keeps `KernelId`s stable, so the simulator's
/// memoization and the runtime's fusion library both recognize repeated
/// launches.
pub fn shared() -> Arc<KernelDef> {
    static DEF: OnceLock<Arc<KernelDef>> = OnceLock::new();
    Arc::clone(DEF.get_or_init(|| Arc::new(kernel())))
}

/// One task iteration: one lattice time step.
pub fn task(scale: u32) -> Vec<WorkloadKernel> {
    let def = shared();
    vec![launch_with_iters(def, 4096 * scale as u64, 1)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_bound() {
        use tacker_kernel::ComputeUnit;
        let wk = &task(1)[0];
        let bp = tacker_kernel::lower_block(&wk.def, wk.grid, &wk.bindings).unwrap();
        let bytes = bp.roles[0].program.total_global_bytes() as f64;
        let ops = bp.roles[0].program.total_compute(ComputeUnit::Cuda) as f64;
        assert!(bytes / ops > 3.0);
        assert_eq!(kernel().resources().registers_per_thread, 84);
    }
}
