//! The Parboil benchmark suite (Stratton et al.), as used for the paper's
//! best-effort applications (Table II) and fusion partners (Figs. 3, 20),
//! plus four further suite members (bfs, histo, sad, spmv) available as
//! additional fusion partners.
//!
//! Each module models one benchmark's dominant GPU kernel: its block shape,
//! register/shared-memory footprint, and per-iteration compute/memory
//! profile, tuned so the suite splits into the paper's compute-intensive
//! (mriq, fft, mrif, cutcp, cp) and memory-intensive (sgemm, lbm, tpacf)
//! classes. `stencil` and `regtile` (the register-tiled sgemm variant)
//! appear in the fusion-quality experiments.
//!
//! All kernels take an `iters` parameter scaling their main loop, which the
//! load-ratio experiments (Fig. 10/11) sweep.

pub mod bfs;
pub mod cp;
pub mod cutcp;
pub mod fft;
pub mod histo;
pub mod lbm;
pub mod mrif;
pub mod mriq;
pub mod regtile;
pub mod sad;
pub mod sgemm;
pub mod spmv;
pub mod stencil;
pub mod tpacf;

use std::sync::Arc;

use tacker_kernel::{Bindings, KernelDef};

use crate::app::{Intensity, WorkloadKernel};

/// The ten modelled Parboil benchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Benchmark {
    /// Magnetic-resonance imaging Q-matrix (compute-intensive).
    Mriq,
    /// Fast Fourier transform (compute-intensive).
    Fft,
    /// MRI reconstruction FHd (compute-intensive).
    Mrif,
    /// Cutoff Coulomb potential (compute-intensive).
    Cutcp,
    /// Direct Coulomb potential (compute-intensive).
    Cp,
    /// Single-precision GEMM on CUDA cores (memory-intensive).
    Sgemm,
    /// Lattice-Boltzmann method (memory-intensive).
    Lbm,
    /// Two-point angular correlation function (memory-intensive).
    Tpacf,
    /// 7-point stencil (fusion-quality experiments).
    Stencil,
    /// Register-tiled dense matrix multiply (fusion-quality experiments).
    Regtile,
    /// Breadth-first search (suite member; the introduction's canonical
    /// best-effort example).
    Bfs,
    /// Image histogramming (suite member).
    Histo,
    /// Sum of absolute differences (suite member).
    Sad,
    /// Sparse matrix–vector multiply (suite member).
    Spmv,
}

impl Benchmark {
    /// All benchmarks: the paper's ten plus four further suite members
    /// available as fusion partners.
    pub const ALL: [Benchmark; 14] = [
        Benchmark::Mriq,
        Benchmark::Fft,
        Benchmark::Mrif,
        Benchmark::Cutcp,
        Benchmark::Cp,
        Benchmark::Sgemm,
        Benchmark::Lbm,
        Benchmark::Tpacf,
        Benchmark::Stencil,
        Benchmark::Regtile,
        Benchmark::Bfs,
        Benchmark::Histo,
        Benchmark::Sad,
        Benchmark::Spmv,
    ];

    /// The eight used as BE applications in Fig. 14 (stencil and regtile
    /// are only fusion-quality subjects).
    pub const BE_APPS: [Benchmark; 8] = [
        Benchmark::Mriq,
        Benchmark::Fft,
        Benchmark::Mrif,
        Benchmark::Cutcp,
        Benchmark::Cp,
        Benchmark::Sgemm,
        Benchmark::Lbm,
        Benchmark::Tpacf,
    ];

    /// The benchmark's short name.
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::Mriq => "mriq",
            Benchmark::Fft => "fft",
            Benchmark::Mrif => "mrif",
            Benchmark::Cutcp => "cutcp",
            Benchmark::Cp => "cp",
            Benchmark::Sgemm => "sgemm",
            Benchmark::Lbm => "lbm",
            Benchmark::Tpacf => "tpacf",
            Benchmark::Stencil => "stencil",
            Benchmark::Regtile => "regtil",
            Benchmark::Bfs => "bfs",
            Benchmark::Histo => "histo",
            Benchmark::Sad => "sad",
            Benchmark::Spmv => "spmv",
        }
    }

    /// The paper's compute/memory classification.
    pub fn intensity(self) -> Intensity {
        match self {
            Benchmark::Mriq
            | Benchmark::Fft
            | Benchmark::Mrif
            | Benchmark::Cutcp
            | Benchmark::Cp
            | Benchmark::Stencil
            | Benchmark::Regtile
            | Benchmark::Sad => Intensity::Compute,
            Benchmark::Sgemm
            | Benchmark::Lbm
            | Benchmark::Tpacf
            | Benchmark::Bfs
            | Benchmark::Histo
            | Benchmark::Spmv => Intensity::Memory,
        }
    }

    /// The process-wide shared instance of the benchmark's kernel
    /// definition (stable `KernelId` across tasks).
    pub fn shared_kernel(self) -> Arc<KernelDef> {
        match self {
            Benchmark::Mriq => mriq::shared(),
            Benchmark::Fft => fft::shared(),
            Benchmark::Mrif => mrif::shared(),
            Benchmark::Cutcp => cutcp::shared(),
            Benchmark::Cp => cp::shared(),
            Benchmark::Sgemm => sgemm::shared(),
            Benchmark::Lbm => lbm::shared(),
            Benchmark::Tpacf => tpacf::shared(),
            Benchmark::Stencil => stencil::shared(),
            Benchmark::Regtile => regtile::shared(),
            Benchmark::Bfs => bfs::shared(),
            Benchmark::Histo => histo::shared(),
            Benchmark::Sad => sad::shared(),
            Benchmark::Spmv => spmv::shared(),
        }
    }

    /// The benchmark's dominant CUDA-Core kernel.
    pub fn kernel(self) -> KernelDef {
        match self {
            Benchmark::Mriq => mriq::kernel(),
            Benchmark::Fft => fft::kernel(),
            Benchmark::Mrif => mrif::kernel(),
            Benchmark::Cutcp => cutcp::kernel(),
            Benchmark::Cp => cp::kernel(),
            Benchmark::Sgemm => sgemm::kernel(),
            Benchmark::Lbm => lbm::kernel(),
            Benchmark::Tpacf => tpacf::kernel(),
            Benchmark::Stencil => stencil::kernel(),
            Benchmark::Regtile => regtile::kernel(),
            Benchmark::Bfs => bfs::kernel(),
            Benchmark::Histo => histo::kernel(),
            Benchmark::Sad => sad::kernel(),
            Benchmark::Spmv => spmv::kernel(),
        }
    }

    /// One BE task iteration at the default problem size.
    pub fn task(self) -> Vec<WorkloadKernel> {
        self.task_scaled(1)
    }

    /// One BE task iteration with the problem size multiplied by `scale`.
    pub fn task_scaled(self, scale: u32) -> Vec<WorkloadKernel> {
        match self {
            Benchmark::Mriq => mriq::task(scale),
            Benchmark::Fft => fft::task(scale),
            Benchmark::Mrif => mrif::task(scale),
            Benchmark::Cutcp => cutcp::task(scale),
            Benchmark::Cp => cp::task(scale),
            Benchmark::Sgemm => sgemm::task(scale),
            Benchmark::Lbm => lbm::task(scale),
            Benchmark::Tpacf => tpacf::task(scale),
            Benchmark::Stencil => stencil::task(scale),
            Benchmark::Regtile => regtile::task(scale),
            Benchmark::Bfs => bfs::task(scale),
            Benchmark::Histo => histo::task(scale),
            Benchmark::Sad => sad::task(scale),
            Benchmark::Spmv => spmv::task(scale),
        }
    }
}

/// Parboil dataset sizes. The real suite ships small/medium/large inputs
/// per benchmark; tasks scale their grids accordingly (the default BE
/// tasks use [`Dataset::Small`], sized so one kernel is comparable to an
/// LC layer kernel — see DESIGN.md §5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Dataset {
    /// The default co-location input.
    #[default]
    Small,
    /// 4× the small grid.
    Medium,
    /// 16× the small grid.
    Large,
}

impl Dataset {
    /// Grid multiplier relative to [`Dataset::Small`].
    pub fn scale(self) -> u32 {
        match self {
            Dataset::Small => 1,
            Dataset::Medium => 4,
            Dataset::Large => 16,
        }
    }
}

impl Benchmark {
    /// One task iteration at a given dataset size.
    pub fn task_with(self, dataset: Dataset) -> Vec<WorkloadKernel> {
        self.task_scaled(dataset.scale())
    }
}

/// Helper used by the benchmark modules: a launch with the standard
/// `iters` binding.
pub(crate) fn launch_with_iters(def: Arc<KernelDef>, grid: u64, iters: u64) -> WorkloadKernel {
    let mut bindings = Bindings::new();
    bindings.insert("iters".to_string(), iters);
    WorkloadKernel::new(def, grid, bindings)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tacker_kernel::KernelKind;

    #[test]
    fn all_benchmarks_build_valid_cuda_kernels() {
        for b in Benchmark::ALL {
            let def = b.kernel();
            assert_eq!(def.kind(), KernelKind::Cuda, "{}", b.name());
            let (tensor, cuda) = def.unit_usage();
            assert!(!tensor, "{} must not use tensor cores", b.name());
            assert!(cuda, "{} must use cuda cores", b.name());
            assert!(def.block_dim().total() % 32 == 0, "{}", b.name());
        }
    }

    #[test]
    fn tasks_are_nonempty_and_scale() {
        for b in Benchmark::ALL {
            let t1 = b.task();
            let t4 = b.task_scaled(4);
            assert!(!t1.is_empty(), "{}", b.name());
            let g1: u64 = t1.iter().map(|k| k.grid).sum();
            let g4: u64 = t4.iter().map(|k| k.grid).sum();
            assert!(g4 > g1, "{} should scale grids", b.name());
        }
    }

    #[test]
    fn intensity_classification_matches_table_ii() {
        assert_eq!(Benchmark::Sgemm.intensity(), Intensity::Memory);
        assert_eq!(Benchmark::Lbm.intensity(), Intensity::Memory);
        assert_eq!(Benchmark::Tpacf.intensity(), Intensity::Memory);
        assert_eq!(Benchmark::Mriq.intensity(), Intensity::Compute);
        assert_eq!(Benchmark::Cp.intensity(), Intensity::Compute);
    }

    #[test]
    fn memory_benchmarks_move_more_bytes_per_op() {
        use tacker_kernel::ComputeUnit;
        let ratio = |b: Benchmark| {
            let def = b.kernel();
            let wk = &b.task()[0];
            let bp = tacker_kernel::lower_block(&def, wk.grid, &wk.bindings).unwrap();
            let bytes = bp.roles[0].program.total_global_bytes() as f64;
            let ops = bp.roles[0].program.total_compute(ComputeUnit::Cuda) as f64;
            bytes / ops.max(1.0)
        };
        let lbm = ratio(Benchmark::Lbm);
        let mriq = ratio(Benchmark::Mriq);
        assert!(
            lbm > 4.0 * mriq,
            "lbm bytes/op {lbm} should dwarf mriq {mriq}"
        );
    }

    #[test]
    fn datasets_scale_grids_monotonically() {
        for b in Benchmark::ALL {
            let small: u64 = b.task_with(Dataset::Small).iter().map(|k| k.grid).sum();
            let medium: u64 = b.task_with(Dataset::Medium).iter().map(|k| k.grid).sum();
            let large: u64 = b.task_with(Dataset::Large).iter().map(|k| k.grid).sum();
            assert_eq!(medium, 4 * small, "{}", b.name());
            assert_eq!(large, 16 * small, "{}", b.name());
        }
    }

    #[test]
    fn names_round_trip() {
        for b in Benchmark::ALL {
            assert!(!b.name().is_empty());
        }
        assert_eq!(Benchmark::Regtile.name(), "regtil");
    }
}
