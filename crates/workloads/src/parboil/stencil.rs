//! `stencil` — 7-point 3-D Jacobi stencil.
//!
//! Loads a neighbourhood per cell, computes a weighted sum, writes one
//! value. Balanced but leaning on bandwidth; used in the fusion-quality
//! experiments (Figs. 3 and 20).

use std::sync::{Arc, OnceLock};

use tacker_kernel::ast::{Expr, Stmt};
use tacker_kernel::{Dim3, KernelDef, KernelKind, ResourceUsage};

use super::launch_with_iters;
use crate::app::WorkloadKernel;

/// The Jacobi-sweep kernel.
pub fn kernel() -> KernelDef {
    KernelDef::builder("stencil", KernelKind::Cuda)
        .block_dim(Dim3::x(128))
        .resources(ResourceUsage::new(36, 4 * 1024))
        .param("iters")
        .body(vec![
            Stmt::shared_decl("plane", 4 * 1024),
            Stmt::loop_over(
                "z",
                Expr::param("iters"),
                vec![
                    Stmt::global_load("a0", Expr::lit(48), 0.75),
                    Stmt::compute_cd(
                        Expr::lit(128),
                        "out = c0*center + c1*(north+south+east+west+top+bottom)",
                    ),
                    Stmt::global_store("a_next", Expr::lit(16), 0.0),
                ],
            ),
        ])
        .build()
        .expect("stencil kernel is valid")
}

/// The process-wide shared instance of the kernel definition.
///
/// Sharing one definition keeps `KernelId`s stable, so the simulator's
/// memoization and the runtime's fusion library both recognize repeated
/// launches.
pub fn shared() -> Arc<KernelDef> {
    static DEF: OnceLock<Arc<KernelDef>> = OnceLock::new();
    Arc::clone(DEF.get_or_init(|| Arc::new(kernel())))
}

/// One task iteration: one sweep.
pub fn task(scale: u32) -> Vec<WorkloadKernel> {
    let def = shared();
    vec![launch_with_iters(def, 4096 * scale as u64, 1)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds() {
        assert_eq!(kernel().block_dim().total(), 128);
    }
}
