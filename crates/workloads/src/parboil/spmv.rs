//! `spmv` — sparse matrix–vector multiply (JDS format).
//!
//! Streams the sparse matrix once with no reuse while gathering from the
//! dense vector with some locality: classic bandwidth-bound kernel.

use std::sync::{Arc, OnceLock};

use tacker_kernel::ast::{Expr, Stmt};
use tacker_kernel::{Dim3, KernelDef, KernelKind, ResourceUsage};

use super::launch_with_iters;
use crate::app::WorkloadKernel;

/// The JDS SpMV kernel.
pub fn kernel() -> KernelDef {
    KernelDef::builder("spmv", KernelKind::Cuda)
        .block_dim(Dim3::x(256))
        .resources(ResourceUsage::new(28, 0))
        .param("iters")
        .body(vec![
            Stmt::loop_over(
                "nz",
                Expr::param("iters"),
                vec![
                    // Matrix values + column indices stream once.
                    Stmt::global_load("jds_data", Expr::lit(96), 0.1),
                    // Gathered vector entries have some temporal locality.
                    Stmt::global_load("x_vec", Expr::lit(16), 0.6),
                    Stmt::compute_cd(Expr::lit(32), "acc += val * x[col]"),
                ],
            ),
            Stmt::global_store("y_vec", Expr::lit(8), 0.0),
        ])
        .build()
        .expect("spmv kernel is valid")
}

/// The process-wide shared instance of the kernel definition.
pub fn shared() -> Arc<KernelDef> {
    static DEF: OnceLock<Arc<KernelDef>> = OnceLock::new();
    Arc::clone(DEF.get_or_init(|| Arc::new(kernel())))
}

/// One task iteration: one multiply.
pub fn task(scale: u32) -> Vec<WorkloadKernel> {
    let def = shared();
    vec![launch_with_iters(def, 2048 * scale as u64, 3)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_bound_profile() {
        use tacker_kernel::ComputeUnit;
        let wk = &task(1)[0];
        let bp = tacker_kernel::lower_block(&wk.def, wk.grid, &wk.bindings).unwrap();
        let ops = bp.roles[0].program.total_compute(ComputeUnit::Cuda) as f64;
        let bytes = bp.roles[0].program.total_global_bytes() as f64;
        assert!(bytes / ops > 2.0);
    }
}
