//! `tpacf` — two-point angular correlation function.
//!
//! Histograms angular distances between galaxy pairs: streaming loads of
//! coordinate data with shared-memory histogram updates. Memory-intensive
//! with scattered access (low cache locality).

use std::sync::{Arc, OnceLock};

use tacker_kernel::ast::{Expr, MemDir, Stmt};
use tacker_kernel::{Dim3, KernelDef, KernelKind, ResourceUsage};

use super::launch_with_iters;
use crate::app::WorkloadKernel;

/// The pair-histogram kernel.
pub fn kernel() -> KernelDef {
    KernelDef::builder("tpacf", KernelKind::Cuda)
        .block_dim(Dim3::x(256))
        .resources(ResourceUsage::new(40, 8 * 1024))
        .param("iters")
        .body(vec![
            Stmt::shared_decl("hist", 8 * 1024),
            Stmt::loop_over(
                "chunk",
                Expr::param("iters"),
                vec![
                    Stmt::global_load("cartesian", Expr::lit(64), 0.35),
                    Stmt::compute_cd(
                        Expr::lit(96),
                        "dot = xi*xj + yi*yj + zi*zj; bin = bsearch(dot)",
                    ),
                    Stmt::shared_access(MemDir::Write, "hist", Expr::lit(8)),
                ],
            ),
            Stmt::sync_threads(),
            Stmt::global_store("global_hist", Expr::lit(16), 0.0),
        ])
        .build()
        .expect("tpacf kernel is valid")
}

/// The process-wide shared instance of the kernel definition.
///
/// Sharing one definition keeps `KernelId`s stable, so the simulator's
/// memoization and the runtime's fusion library both recognize repeated
/// launches.
pub fn shared() -> Arc<KernelDef> {
    static DEF: OnceLock<Arc<KernelDef>> = OnceLock::new();
    Arc::clone(DEF.get_or_init(|| Arc::new(kernel())))
}

/// One task iteration.
pub fn task(scale: u32) -> Vec<WorkloadKernel> {
    let def = shared();
    vec![launch_with_iters(def, 1500 * scale as u64, 4)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scattered_loads_have_low_locality() {
        let def = kernel();
        let has_low_loc = def.body().iter().any(|s| match s {
            Stmt::Loop { body, .. } => body
                .iter()
                .any(|s| matches!(s, Stmt::MemAccess { locality, .. } if *locality < 0.5)),
            _ => false,
        });
        assert!(has_low_loc);
    }
}
