//! `bfs` — breadth-first search.
//!
//! The introduction's canonical best-effort example ("to breadth-first
//! search a node in a graph without setting a deadline"). Frontier
//! expansion is irregular, pointer-chasing memory access: very low cache
//! locality, little arithmetic.

use std::sync::{Arc, OnceLock};

use tacker_kernel::ast::{Expr, Stmt};
use tacker_kernel::{Dim3, KernelDef, KernelKind, ResourceUsage};

use super::launch_with_iters;
use crate::app::WorkloadKernel;

/// The frontier-expansion kernel.
pub fn kernel() -> KernelDef {
    KernelDef::builder("bfs", KernelKind::Cuda)
        .block_dim(Dim3::x(256))
        .resources(ResourceUsage::new(24, 0))
        .param("iters")
        .body(vec![Stmt::loop_over(
            "edge",
            Expr::param("iters"),
            vec![
                // Gather neighbour lists: pointer chasing, ~no locality.
                Stmt::global_load("col_idx", Expr::lit(24), 0.12),
                Stmt::compute_cd(Expr::lit(24), "next = visited[v] ? skip : enqueue(v)"),
                Stmt::global_store("frontier_out", Expr::lit(8), 0.0),
            ],
        )])
        .build()
        .expect("bfs kernel is valid")
}

/// The process-wide shared instance of the kernel definition.
pub fn shared() -> Arc<KernelDef> {
    static DEF: OnceLock<Arc<KernelDef>> = OnceLock::new();
    Arc::clone(DEF.get_or_init(|| Arc::new(kernel())))
}

/// One task iteration: one frontier level.
pub fn task(scale: u32) -> Vec<WorkloadKernel> {
    let def = shared();
    vec![launch_with_iters(def, 2048 * scale as u64, 2)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn irregular_access_has_very_low_locality() {
        let def = kernel();
        let low = def.body().iter().any(|s| match s {
            Stmt::Loop { body, .. } => body
                .iter()
                .any(|s| matches!(s, Stmt::MemAccess { locality, .. } if *locality < 0.2)),
            _ => false,
        });
        assert!(low);
    }
}
