//! `sad` — sum of absolute differences (video encoding block matching).
//!
//! Each thread evaluates SAD over 16×16 macroblock candidates: dense
//! small-window loads with high reuse and abs-diff accumulation chains.
//! Compute-leaning.

use std::sync::{Arc, OnceLock};

use tacker_kernel::ast::{Expr, Stmt};
use tacker_kernel::{Dim3, KernelDef, KernelKind, ResourceUsage};

use super::launch_with_iters;
use crate::app::WorkloadKernel;

/// The macroblock SAD kernel.
pub fn kernel() -> KernelDef {
    KernelDef::builder("sad", KernelKind::Cuda)
        .block_dim(Dim3::x(128))
        .resources(ResourceUsage::new(36, 2 * 1024))
        .param("iters")
        .body(vec![
            Stmt::shared_decl("ref_window", 2 * 1024),
            Stmt::loop_over(
                "cand",
                Expr::param("iters"),
                vec![
                    Stmt::global_load("cur_mb", Expr::lit(24), 0.8),
                    Stmt::compute_cd(Expr::lit(256), "sad += __vabsdiffu4(cur, ref)"),
                ],
            ),
            Stmt::global_store("sad_out", Expr::lit(8), 0.0),
        ])
        .build()
        .expect("sad kernel is valid")
}

/// The process-wide shared instance of the kernel definition.
pub fn shared() -> Arc<KernelDef> {
    static DEF: OnceLock<Arc<KernelDef>> = OnceLock::new();
    Arc::clone(DEF.get_or_init(|| Arc::new(kernel())))
}

/// One task iteration: one frame's macroblocks.
pub fn task(scale: u32) -> Vec<WorkloadKernel> {
    let def = shared();
    vec![launch_with_iters(def, 2048 * scale as u64, 3)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compute_leaning_profile() {
        use tacker_kernel::ComputeUnit;
        let wk = &task(1)[0];
        let bp = tacker_kernel::lower_block(&wk.def, wk.grid, &wk.bindings).unwrap();
        let ops = bp.roles[0].program.total_compute(ComputeUnit::Cuda) as f64;
        let bytes = bp.roles[0].program.total_global_bytes() as f64;
        assert!(ops / bytes > 5.0);
    }
}
