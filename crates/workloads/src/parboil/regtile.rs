//! `regtil` — register-tiled dense matrix multiply.
//!
//! An aggressively register-blocked FP32 GEMM: high arithmetic intensity
//! and the suite's largest register/shared-memory footprint, which makes
//! it the hardest kernel to co-locate (its fused blocks crowd out
//! partners). Appears in Figs. 3 and 20.

use std::sync::{Arc, OnceLock};

use tacker_kernel::ast::{Expr, Stmt};
use tacker_kernel::{Dim3, KernelDef, KernelKind, ResourceUsage};

use super::launch_with_iters;
use crate::app::WorkloadKernel;

/// The register-tiled GEMM kernel.
pub fn kernel() -> KernelDef {
    KernelDef::builder("regtil", KernelKind::Cuda)
        .block_dim(Dim3::x(128))
        .resources(ResourceUsage::new(96, 16 * 1024))
        .param("iters")
        .body(vec![
            Stmt::shared_decl("tiles", 16 * 1024),
            Stmt::loop_over(
                "kk",
                Expr::param("iters"),
                vec![
                    Stmt::global_load("A_B", Expr::lit(64), 0.8),
                    Stmt::sync_threads(),
                    Stmt::compute_cd(Expr::lit(768), "8x8 register-tile FMA accumulation"),
                    Stmt::sync_threads(),
                ],
            ),
            Stmt::global_store("C", Expr::lit(128), 0.0),
        ])
        .build()
        .expect("regtile kernel is valid")
}

/// The process-wide shared instance of the kernel definition.
///
/// Sharing one definition keeps `KernelId`s stable, so the simulator's
/// memoization and the runtime's fusion library both recognize repeated
/// launches.
pub fn shared() -> Arc<KernelDef> {
    static DEF: OnceLock<Arc<KernelDef>> = OnceLock::new();
    Arc::clone(DEF.get_or_init(|| Arc::new(kernel())))
}

/// One task iteration.
pub fn task(scale: u32) -> Vec<WorkloadKernel> {
    let def = shared();
    vec![launch_with_iters(def, 1024 * scale as u64, 2)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heaviest_resource_footprint_in_suite() {
        let def = kernel();
        assert_eq!(def.resources().registers_per_thread, 96);
        assert_eq!(def.resources().shared_mem_bytes, 16 * 1024);
    }
}
