//! `mriq` — MRI Q-matrix computation.
//!
//! Dominated by per-sample trigonometric arithmetic over a small streamed
//! sample array: the textbook compute-intensive kernel (each thread
//! evaluates `sin`/`cos` chains per voxel-sample pair).

use std::sync::{Arc, OnceLock};

use tacker_kernel::ast::{Expr, Stmt};
use tacker_kernel::{Dim3, KernelDef, KernelKind, ResourceUsage};

use super::launch_with_iters;
use crate::app::WorkloadKernel;

/// The `ComputeQ` kernel.
pub fn kernel() -> KernelDef {
    KernelDef::builder("mriq", KernelKind::Cuda)
        .block_dim(Dim3::x(256))
        .resources(ResourceUsage::new(40, 0))
        .param("iters")
        .body(vec![Stmt::loop_over(
            "s",
            Expr::param("iters"),
            vec![
                Stmt::global_load("kvals", Expr::lit(16), 0.92),
                Stmt::compute_cd(
                    Expr::lit(512),
                    "phi = kx*x + ky*y + kz*z; Qr += mag * __cosf(phi); Qi += mag * __sinf(phi)",
                ),
            ],
        )])
        .build()
        .expect("mriq kernel is valid")
}

/// The process-wide shared instance of the kernel definition.
///
/// Sharing one definition keeps `KernelId`s stable, so the simulator's
/// memoization and the runtime's fusion library both recognize repeated
/// launches.
pub fn shared() -> Arc<KernelDef> {
    static DEF: OnceLock<Arc<KernelDef>> = OnceLock::new();
    Arc::clone(DEF.get_or_init(|| Arc::new(kernel())))
}

/// One task iteration: the Q computation over the voxel grid.
pub fn task(scale: u32) -> Vec<WorkloadKernel> {
    let def = shared();
    vec![launch_with_iters(def, 2048 * scale as u64, 2)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heavily_compute_bound() {
        use tacker_kernel::ComputeUnit;
        let wk = &task(1)[0];
        let bp = tacker_kernel::lower_block(&wk.def, wk.grid, &wk.bindings).unwrap();
        let ops = bp.roles[0].program.total_compute(ComputeUnit::Cuda);
        let bytes = bp.roles[0].program.total_global_bytes();
        assert!(ops as f64 / bytes as f64 > 20.0);
    }
}
