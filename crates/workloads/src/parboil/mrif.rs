//! `mrif` — MRI reconstruction (FHd computation).
//!
//! Sibling of `mriq`: streams sample values and accumulates trigonometric
//! contributions per voxel. Compute-intensive.

use std::sync::{Arc, OnceLock};

use tacker_kernel::ast::{Expr, Stmt};
use tacker_kernel::{Dim3, KernelDef, KernelKind, ResourceUsage};

use super::launch_with_iters;
use crate::app::WorkloadKernel;

/// The `ComputeFHd` kernel.
pub fn kernel() -> KernelDef {
    KernelDef::builder("mrif", KernelKind::Cuda)
        .block_dim(Dim3::x(256))
        .resources(ResourceUsage::new(40, 0))
        .param("iters")
        .body(vec![Stmt::loop_over(
            "s",
            Expr::param("iters"),
            vec![
                Stmt::global_load("samples", Expr::lit(16), 0.9),
                Stmt::compute_cd(
                    Expr::lit(448),
                    "arg = 2*PI*(kx*x + ky*y + kz*z); rFH += rRho*__cosf(arg) + iRho*__sinf(arg)",
                ),
            ],
        )])
        .build()
        .expect("mrif kernel is valid")
}

/// The process-wide shared instance of the kernel definition.
///
/// Sharing one definition keeps `KernelId`s stable, so the simulator's
/// memoization and the runtime's fusion library both recognize repeated
/// launches.
pub fn shared() -> Arc<KernelDef> {
    static DEF: OnceLock<Arc<KernelDef>> = OnceLock::new();
    Arc::clone(DEF.get_or_init(|| Arc::new(kernel())))
}

/// One task iteration.
pub fn task(scale: u32) -> Vec<WorkloadKernel> {
    let def = shared();
    vec![launch_with_iters(def, 1536 * scale as u64, 2)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compute_dominates() {
        use tacker_kernel::ComputeUnit;
        let wk = &task(1)[0];
        let bp = tacker_kernel::lower_block(&wk.def, wk.grid, &wk.bindings).unwrap();
        assert!(bp.roles[0].program.total_compute(ComputeUnit::Cuda) > 0);
        assert!(wk.grid == 1536);
    }
}
