//! `cp` — direct Coulomb potential.
//!
//! The classic GPU showcase: each thread sums analytic contributions from
//! a constant-memory atom list. Almost pure arithmetic; the most
//! compute-intensive kernel in the suite.

use std::sync::{Arc, OnceLock};

use tacker_kernel::ast::{Expr, Stmt};
use tacker_kernel::{Dim3, KernelDef, KernelKind, ResourceUsage};

use super::launch_with_iters;
use crate::app::WorkloadKernel;

/// The potential-map kernel.
pub fn kernel() -> KernelDef {
    KernelDef::builder("cp", KernelKind::Cuda)
        .block_dim(Dim3::x(128))
        .resources(ResourceUsage::new(32, 0))
        .param("iters")
        .body(vec![
            Stmt::loop_over(
                "chunk",
                Expr::param("iters"),
                vec![
                    Stmt::global_load("atominfo", Expr::lit(8), 0.95),
                    Stmt::compute_cd(
                        Expr::lit(448),
                        "dx = x - ax; dy = y - ay; pot += aq * rsqrtf(dx*dx + dy*dy + dz2)",
                    ),
                ],
            ),
            Stmt::global_store("energygrid", Expr::lit(16), 0.0),
        ])
        .build()
        .expect("cp kernel is valid")
}

/// The process-wide shared instance of the kernel definition.
///
/// Sharing one definition keeps `KernelId`s stable, so the simulator's
/// memoization and the runtime's fusion library both recognize repeated
/// launches.
pub fn shared() -> Arc<KernelDef> {
    static DEF: OnceLock<Arc<KernelDef>> = OnceLock::new();
    Arc::clone(DEF.get_or_init(|| Arc::new(kernel())))
}

/// One task iteration.
pub fn task(scale: u32) -> Vec<WorkloadKernel> {
    let def = shared();
    vec![launch_with_iters(def, 2048 * scale as u64, 2)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_shared_memory_needed() {
        assert_eq!(kernel().resources().shared_mem_bytes, 0);
    }
}
