//! `sgemm` — single-precision GEMM on CUDA Cores.
//!
//! The FP32 shared-memory-tiled matrix multiply. Unlike the Tensor-Core
//! GEMM, the FP32 pipeline is slow enough relative to the tile traffic
//! that the kernel is bandwidth-sensitive — the paper classifies Parboil
//! sgemm as memory-intensive.

use std::sync::{Arc, OnceLock};

use tacker_kernel::ast::{Expr, Stmt};
use tacker_kernel::{Dim3, KernelDef, KernelKind, ResourceUsage};

use super::launch_with_iters;
use crate::app::WorkloadKernel;

/// The 64×64-tile FP32 GEMM kernel (`iters` = K / 16).
pub fn kernel() -> KernelDef {
    KernelDef::builder("sgemm", KernelKind::Cuda)
        .block_dim(Dim3::x(128))
        .resources(ResourceUsage::new(60, 8 * 1024))
        .param("iters")
        .body(vec![
            Stmt::shared_decl("tile_ab", 8 * 1024),
            Stmt::loop_over(
                "kk",
                Expr::param("iters"),
                vec![
                    Stmt::global_load("A_B", Expr::lit(64), 0.40),
                    Stmt::sync_threads(),
                    Stmt::compute_cd(Expr::lit(256), "acc[i][j] += As[ty][k] * Bs[k][tx]"),
                    Stmt::sync_threads(),
                ],
            ),
            Stmt::global_store("C", Expr::lit(128), 0.0),
        ])
        .build()
        .expect("sgemm kernel is valid")
}

/// The process-wide shared instance of the kernel definition.
///
/// Sharing one definition keeps `KernelId`s stable, so the simulator's
/// memoization and the runtime's fusion library both recognize repeated
/// launches.
pub fn shared() -> Arc<KernelDef> {
    static DEF: OnceLock<Arc<KernelDef>> = OnceLock::new();
    Arc::clone(DEF.get_or_init(|| Arc::new(kernel())))
}

/// One task iteration: a 2048×2048×1024 FP32 GEMM.
pub fn task(scale: u32) -> Vec<WorkloadKernel> {
    let def = shared();
    vec![launch_with_iters(def, 1024 * scale as u64, 8)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_more_bytes_than_compute_kernels() {
        use tacker_kernel::ComputeUnit;
        let wk = &task(1)[0];
        let bp = tacker_kernel::lower_block(&wk.def, wk.grid, &wk.bindings).unwrap();
        let bytes = bp.roles[0].program.total_global_bytes() as f64;
        let ops = bp.roles[0].program.total_compute(ComputeUnit::Cuda) as f64;
        assert!(bytes / ops > 0.2, "bytes/op {}", bytes / ops);
    }
}
