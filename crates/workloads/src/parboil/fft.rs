//! `fft` — batched fast Fourier transform.
//!
//! Butterfly stages through shared memory with block-wide synchronization
//! between stages; compute-intensive with strong data reuse.

use std::sync::{Arc, OnceLock};

use tacker_kernel::ast::{Expr, MemDir, Stmt};
use tacker_kernel::{Dim3, KernelDef, KernelKind, ResourceUsage};

use super::launch_with_iters;
use crate::app::WorkloadKernel;

/// The batched FFT kernel (one transform per block).
pub fn kernel() -> KernelDef {
    KernelDef::builder("fft", KernelKind::Cuda)
        .block_dim(Dim3::x(256))
        .resources(ResourceUsage::new(56, 8 * 1024))
        .param("iters")
        .body(vec![
            Stmt::shared_decl("stage_buf", 8 * 1024),
            Stmt::global_load("signal", Expr::lit(32), 0.6),
            Stmt::loop_over(
                "stage",
                Expr::param("iters"),
                vec![
                    Stmt::shared_access(MemDir::Read, "stage_buf", Expr::lit(32)),
                    Stmt::sync_threads(),
                    Stmt::compute_cd(Expr::lit(320), "butterfly(w, lo, hi)"),
                    Stmt::sync_threads(),
                    Stmt::shared_access(MemDir::Write, "stage_buf", Expr::lit(32)),
                ],
            ),
            Stmt::global_store("spectrum", Expr::lit(32), 0.0),
        ])
        .build()
        .expect("fft kernel is valid")
}

/// The process-wide shared instance of the kernel definition.
///
/// Sharing one definition keeps `KernelId`s stable, so the simulator's
/// memoization and the runtime's fusion library both recognize repeated
/// launches.
pub fn shared() -> Arc<KernelDef> {
    static DEF: OnceLock<Arc<KernelDef>> = OnceLock::new();
    Arc::clone(DEF.get_or_init(|| Arc::new(kernel())))
}

/// One task iteration: a batch of transforms.
pub fn task(scale: u32) -> Vec<WorkloadKernel> {
    let def = shared();
    vec![launch_with_iters(def, 1536 * scale as u64, 3)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synchronizes_between_stages() {
        let def = kernel();
        assert!(def.body().iter().any(Stmt::contains_sync_threads));
        assert_eq!(def.resources().shared_mem_bytes, 8 * 1024);
    }
}
