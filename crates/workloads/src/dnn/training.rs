//! DNN training tasks (`Resnet50-T`, `VGG16-T`, `Inception-T`,
//! `Densenet-T`) used as memory-intensive best-effort applications.
//!
//! One training iteration launches, per convolution, the forward GEMM plus
//! the data-gradient and weight-gradient GEMMs (all Tensor-Core kernels
//! from the open wmma implementation — training frameworks compile them as
//! custom ops, §VIII-A), interleaved with the elementwise forward/backward
//! kernels whose streaming traffic makes the tasks memory-intensive, and a
//! final SGD parameter update.

use crate::app::{BeApp, Intensity, WorkloadKernel};
use crate::gemm::{gemm_workload, GemmShape};

use super::compile::shared_gemm;
use super::elementwise as ew;
use super::layer::Layer;
use super::DnnModel;

/// The four training tasks of Table II.
pub const TRAINING_MODELS: [DnnModel; 4] = [
    DnnModel::Resnet50,
    DnnModel::Vgg16,
    DnnModel::InceptionV3,
    DnnModel::Densenet121,
];

/// Training batch size (matching the inference services' scale).
pub const TRAINING_BATCH: u64 = 16;

fn gemm_launch(shape: GemmShape) -> WorkloadKernel {
    gemm_workload(&shared_gemm(), shape)
}

/// The `-T` display name.
pub fn training_name(model: DnnModel) -> String {
    match model {
        DnnModel::Resnet50 => "Res-T".to_string(),
        DnnModel::Vgg16 => "VGG-T".to_string(),
        DnnModel::InceptionV3 => "Incep-T".to_string(),
        DnnModel::Densenet121 => "Dense-T".to_string(),
        other => format!("{}-T", other.name()),
    }
}

/// Builds one training iteration's kernel sequence.
pub fn training_task(model: DnnModel, batch: u64) -> Vec<WorkloadKernel> {
    let graph = model.graph(batch);
    let mut kernels = Vec::new();
    let mut params: u64 = 0;

    // Forward pass.
    for inst in graph.layers() {
        match inst.layer {
            Layer::Conv(spec) => {
                let g = spec.gemm_shape(inst.input);
                params += g.n * g.k;
                kernels.push(gemm_launch(g));
            }
            Layer::BatchNorm => kernels.push(ew::elementwise_workload(
                &ew::batch_norm(),
                inst.output.elems(),
            )),
            Layer::ReLU => kernels.push(ew::elementwise_workload(&ew::relu(), inst.output.elems())),
            Layer::Scale => {
                kernels.push(ew::elementwise_workload(&ew::scale(), inst.output.elems()))
            }
            Layer::Add => kernels.push(ew::elementwise_workload(&ew::add(), inst.output.elems())),
            Layer::MaxPool { k, .. } | Layer::AvgPool { k, .. } => kernels.push(ew::pool_workload(
                inst.output.elems(),
                (k as u64) * (k as u64),
            )),
            Layer::GlobalAvgPool => {
                kernels.push(ew::pool_workload(inst.output.elems(), inst.input.spatial()))
            }
            Layer::FullyConnected { out } => {
                let k = inst.input.elems() / inst.input.n.max(1);
                let g = GemmShape::new(inst.input.n, out, k);
                params += g.n * g.k;
                kernels.push(gemm_launch(g));
            }
        }
    }

    // Backward pass (reverse layer order).
    for inst in graph.layers().iter().rev() {
        match inst.layer {
            Layer::Conv(spec) => {
                let g = spec.gemm_shape(inst.input);
                // dgrad: dX = dY · Wᵀ  → (M × K × N).
                kernels.push(gemm_launch(GemmShape::new(g.m, g.k, g.n)));
                // wgrad: dW = dYᵀ · X → (N × K × M).
                kernels.push(gemm_launch(GemmShape::new(g.n, g.k, g.m)));
            }
            Layer::BatchNorm => kernels.push(ew::elementwise_workload(
                &ew::bn_backward(),
                inst.output.elems(),
            )),
            Layer::ReLU => kernels.push(ew::elementwise_workload(
                &ew::relu_backward(),
                inst.output.elems(),
            )),
            Layer::Scale | Layer::Add => {
                kernels.push(ew::elementwise_workload(&ew::add(), inst.output.elems()))
            }
            Layer::MaxPool { .. } | Layer::AvgPool { .. } | Layer::GlobalAvgPool => kernels.push(
                ew::elementwise_workload(&ew::relu_backward(), inst.input.elems()),
            ),
            Layer::FullyConnected { out } => {
                let k = inst.input.elems() / inst.input.n.max(1);
                kernels.push(gemm_launch(GemmShape::new(inst.input.n, k, out)));
                kernels.push(gemm_launch(GemmShape::new(out, k, inst.input.n)));
            }
        }
    }

    // Optimizer step over all parameters.
    kernels.push(ew::elementwise_workload(&ew::sgd_update(), params));
    kernels
}

/// The training task as a best-effort application (memory-intensive,
/// Table II).
pub fn training_be_app(model: DnnModel) -> BeApp {
    BeApp::new(
        training_name(model),
        Intensity::Memory,
        training_task(model, TRAINING_BATCH),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backward_roughly_doubles_gemm_count() {
        let task = training_task(DnnModel::Vgg16, 4);
        let gemms = task.iter().filter(|k| k.is_tensor()).count();
        // 13 convs + 3 FC forward; ×3 total with dgrad+wgrad.
        assert_eq!(gemms, 3 * (13 + 3));
    }

    #[test]
    fn training_apps_are_memory_intensive() {
        for m in TRAINING_MODELS {
            let app = training_be_app(m);
            assert_eq!(app.intensity(), Intensity::Memory);
            assert!(!app.task_kernels().is_empty());
        }
    }

    #[test]
    fn names_match_the_paper() {
        assert_eq!(training_name(DnnModel::Resnet50), "Res-T");
        assert_eq!(training_name(DnnModel::Vgg16), "VGG-T");
        assert_eq!(training_name(DnnModel::InceptionV3), "Incep-T");
        assert_eq!(training_name(DnnModel::Densenet121), "Dense-T");
    }

    #[test]
    fn task_contains_both_kernel_classes_and_update() {
        let task = training_task(DnnModel::Resnet50, 2);
        assert!(task.iter().any(|k| k.is_tensor()));
        assert!(task.iter().any(|k| k.is_cuda()));
        assert_eq!(task.last().unwrap().def.name(), "SGD");
    }
}
