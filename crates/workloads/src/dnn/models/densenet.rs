//! DenseNet-121 (Huang et al.).
//!
//! Dense blocks concatenate every layer's output onto the running feature
//! map; in the linearized graph this appears as the channel count growing
//! by the growth rate after each composite layer.

use crate::dnn::graph::{GraphBuilder, ModelGraph};
use crate::dnn::shapes::TensorShape;

/// Growth rate `k`.
const GROWTH: u64 = 32;
/// Composite layers per dense block.
const BLOCKS: [usize; 4] = [6, 12, 24, 16];

/// One composite layer: BN → ReLU → 1×1 conv (4k) → BN → ReLU → 3×3 conv
/// (k), then concatenation.
fn dense_layer(b: &mut GraphBuilder) {
    let in_c = b.shape().c;
    b.bn()
        .relu()
        .conv(4 * GROWTH, 1, 1, 0)
        .bn()
        .relu()
        .conv(GROWTH, 3, 1, 1);
    b.set_channels(in_c + GROWTH);
}

/// DenseNet-121 at 224×224 input: 120 convolutions.
pub fn densenet121(batch: u64) -> ModelGraph {
    let mut b = GraphBuilder::new("Densenet", TensorShape::new(batch, 3, 224, 224));
    b.conv_bn_relu(2 * GROWTH, 7, 2, 3).maxpool(3, 2);
    for (i, &layers) in BLOCKS.iter().enumerate() {
        for _ in 0..layers {
            dense_layer(&mut b);
        }
        if i + 1 < BLOCKS.len() {
            // Transition: 1×1 conv halving channels + 2×2 average pool.
            let c = b.shape().c / 2;
            b.bn().relu().conv(c, 1, 1, 0).avgpool(2, 2);
        }
    }
    b.bn().relu().gap().fc(1000);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn structure() {
        let g = densenet121(1);
        // 1 stem + 2×58 dense + 3 transition = 120 convolutions.
        assert_eq!(g.conv_count(), 120);
        let gap = g
            .layers()
            .iter()
            .find(|l| matches!(l.layer, crate::dnn::layer::Layer::GlobalAvgPool))
            .unwrap();
        // DenseNet-121 ends at 1024 channels.
        assert_eq!(gap.input.c, 1024);
    }

    #[test]
    fn channels_grow_by_growth_rate() {
        let g = densenet121(1);
        // Find two consecutive 3x3 convs in the first dense block and check
        // the channel growth between their inputs.
        let threes: Vec<_> = g
            .convs()
            .filter(|(c, _)| c.kernel == 3 && c.out_channels == GROWTH)
            .take(2)
            .collect();
        assert_eq!(threes.len(), 2);
        // 1x1 bottleneck input grew by GROWTH between layers; the 3x3 conv
        // input is always the 4k bottleneck output.
        assert_eq!(threes[0].1.c, 4 * GROWTH);
    }
}
