//! VGG-16 and VGG-19.

use crate::dnn::graph::{GraphBuilder, ModelGraph};
use crate::dnn::shapes::TensorShape;

fn vgg(name: &str, batch: u64, convs_per_stage: [usize; 5]) -> ModelGraph {
    let widths = [64u64, 128, 256, 512, 512];
    let mut b = GraphBuilder::new(name, TensorShape::new(batch, 3, 224, 224));
    for (stage, &count) in convs_per_stage.iter().enumerate() {
        for _ in 0..count {
            b.conv(widths[stage], 3, 1, 1).relu();
        }
        b.maxpool(2, 2);
    }
    b.fc(4096).relu().fc(4096).relu().fc(1000);
    b.build()
}

/// VGG-16: 13 convolutions + 3 fully connected layers.
pub fn vgg16(batch: u64) -> ModelGraph {
    vgg("VGG16", batch, [2, 2, 3, 3, 3])
}

/// VGG-19: 16 convolutions + 3 fully connected layers.
pub fn vgg19(batch: u64) -> ModelGraph {
    vgg("VGG19", batch, [2, 2, 4, 4, 4])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_counts() {
        assert_eq!(vgg16(1).conv_count(), 13);
        assert_eq!(vgg19(1).conv_count(), 16);
    }

    #[test]
    fn feature_map_shrinks_to_7x7() {
        let g = vgg16(1);
        let fc = g
            .layers()
            .iter()
            .find(|l| matches!(l.layer, crate::dnn::layer::Layer::FullyConnected { .. }))
            .unwrap();
        assert_eq!((fc.input.h, fc.input.w), (7, 7));
        assert_eq!(fc.input.c, 512);
    }
}
