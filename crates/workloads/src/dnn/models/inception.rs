//! Inception-v3 (Szegedy et al., "Rethinking the Inception Architecture").
//!
//! The block structure is linearized branch by branch: each branch's
//! convolutions are emitted with the block's input shape as their starting
//! point, and the concatenation at the block end becomes a channel-count
//! adjustment.
//!
//! Asymmetric `1×n`/`n×1` convolutions cannot be expressed with our square
//! [`crate::dnn::layer::ConvSpec`]; they are emitted as *grouped* `n×n` convolutions with
//! `groups = n`, which has exactly the same multiply-accumulate count and
//! output shape — the properties the simulator consumes.

use crate::dnn::graph::{GraphBuilder, ModelGraph};
use crate::dnn::shapes::TensorShape;

/// Emits an asymmetric 1×n (or n×1) convolution with MAC-equivalent
/// grouped n×n form.
fn conv_1xn(b: &mut GraphBuilder, out: u64, n: u32) {
    b.conv_grouped(out, n, 1, (n - 1) / 2, n).bn().relu();
}

/// Inception-A block (35×35 grid). `pool_c` is the pool-branch width.
fn inception_a(b: &mut GraphBuilder, pool_c: u64) {
    let input = b.shape();
    // 1x1 branch.
    b.conv_bn_relu(64, 1, 1, 0);
    // 5x5 branch.
    b.set_shape(input)
        .conv_bn_relu(48, 1, 1, 0)
        .conv_bn_relu(64, 5, 1, 2);
    // double 3x3 branch.
    b.set_shape(input)
        .conv_bn_relu(64, 1, 1, 0)
        .conv_bn_relu(96, 3, 1, 1)
        .conv_bn_relu(96, 3, 1, 1);
    // pool branch.
    b.set_shape(input).conv_bn_relu(pool_c, 1, 1, 0);
    b.set_shape(input.with_channels(64 + 64 + 96 + pool_c));
}

/// Inception-B (grid reduction 35→17).
fn inception_b(b: &mut GraphBuilder) {
    let input = b.shape();
    b.conv_bn_relu(384, 3, 2, 0);
    let reduced = b.shape();
    b.set_shape(input)
        .conv_bn_relu(64, 1, 1, 0)
        .conv_bn_relu(96, 3, 1, 1)
        .conv_bn_relu(96, 3, 2, 0);
    b.set_shape(input).maxpool(3, 2);
    b.set_shape(reduced.with_channels(384 + 96 + input.c));
}

/// Inception-C block (17×17 grid, 7×1 factorized). `c7` is the bottleneck
/// width.
fn inception_c(b: &mut GraphBuilder, c7: u64) {
    let input = b.shape();
    b.conv_bn_relu(192, 1, 1, 0);
    // 7x7 branch: 1x1 → 1x7 → 7x1.
    b.set_shape(input).conv_bn_relu(c7, 1, 1, 0);
    conv_1xn(b, c7, 7);
    conv_1xn(b, 192, 7);
    // double 7x7 branch: 1x1 → (7x1 → 1x7) × 2.
    b.set_shape(input).conv_bn_relu(c7, 1, 1, 0);
    conv_1xn(b, c7, 7);
    conv_1xn(b, c7, 7);
    conv_1xn(b, c7, 7);
    conv_1xn(b, 192, 7);
    // pool branch.
    b.set_shape(input).conv_bn_relu(192, 1, 1, 0);
    b.set_shape(input.with_channels(4 * 192));
}

/// Inception-D (grid reduction 17→8).
fn inception_d(b: &mut GraphBuilder) {
    let input = b.shape();
    b.conv_bn_relu(192, 1, 1, 0).conv_bn_relu(320, 3, 2, 0);
    let reduced = b.shape();
    b.set_shape(input).conv_bn_relu(192, 1, 1, 0);
    conv_1xn(b, 192, 7);
    conv_1xn(b, 192, 7);
    b.conv_bn_relu(192, 3, 2, 0);
    b.set_shape(input).maxpool(3, 2);
    b.set_shape(reduced.with_channels(320 + 192 + input.c));
}

/// Inception-E block (8×8 grid, expanded filter banks).
fn inception_e(b: &mut GraphBuilder) {
    let input = b.shape();
    b.conv_bn_relu(320, 1, 1, 0);
    // 3x3 branch split into 1x3 and 3x1.
    b.set_shape(input).conv_bn_relu(384, 1, 1, 0);
    let split_in = b.shape();
    conv_1xn(b, 384, 3);
    b.set_shape(split_in);
    conv_1xn(b, 384, 3);
    // double 3x3 branch.
    b.set_shape(input)
        .conv_bn_relu(448, 1, 1, 0)
        .conv_bn_relu(384, 3, 1, 1);
    let split_in = b.shape();
    conv_1xn(b, 384, 3);
    b.set_shape(split_in);
    conv_1xn(b, 384, 3);
    // pool branch.
    b.set_shape(input).conv_bn_relu(192, 1, 1, 0);
    b.set_shape(input.with_channels(320 + 768 + 768 + 192));
}

/// Inception-v3 at 299×299 input.
pub fn inception_v3(batch: u64) -> ModelGraph {
    let mut b = GraphBuilder::new("Inception", TensorShape::new(batch, 3, 299, 299));
    // Stem.
    b.conv_bn_relu(32, 3, 2, 0)
        .conv_bn_relu(32, 3, 1, 0)
        .conv_bn_relu(64, 3, 1, 1)
        .maxpool(3, 2)
        .conv_bn_relu(80, 1, 1, 0)
        .conv_bn_relu(192, 3, 1, 0)
        .maxpool(3, 2);
    inception_a(&mut b, 32);
    inception_a(&mut b, 64);
    inception_a(&mut b, 64);
    inception_b(&mut b);
    inception_c(&mut b, 128);
    inception_c(&mut b, 160);
    inception_c(&mut b, 160);
    inception_c(&mut b, 192);
    inception_d(&mut b);
    inception_e(&mut b);
    inception_e(&mut b);
    b.gap().fc(1000);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn structure() {
        let g = inception_v3(1);
        assert!((90..=96).contains(&g.conv_count()), "{}", g.conv_count());
        // Final channels before the classifier.
        let gap = g
            .layers()
            .iter()
            .find(|l| matches!(l.layer, crate::dnn::layer::Layer::GlobalAvgPool))
            .unwrap();
        assert_eq!(gap.input.c, 2048);
        assert_eq!((gap.input.h, gap.input.w), (8, 8));
    }

    #[test]
    fn asymmetric_convs_have_linear_mac_cost() {
        use crate::dnn::layer::ConvSpec;
        // A 1x7 factorized conv must cost C·7 MACs per output element,
        // not C·49.
        let spec = ConvSpec::grouped(192, 7, 1, 3, 7);
        let input = TensorShape::new(1, 192, 17, 17);
        let per_out = spec.macs(input) / (192 * 17 * 17);
        let ideal = 192 * 7; // C · n for a true 1×7 convolution
        let err = (per_out as f64 - ideal as f64).abs() / ideal as f64;
        assert!(err < 0.05, "per-output MACs {per_out} vs ideal {ideal}");
    }
}
