//! Architecture builders for the six Table II models.

pub mod densenet;
pub mod inception;
pub mod resnet;
pub mod vgg;

#[cfg(test)]
mod tests {
    use crate::dnn::DnnModel;

    #[test]
    fn conv_counts_match_the_literature() {
        // §VIII-H: "the 53 convolution kernels in Resnet50".
        assert_eq!(DnnModel::Resnet50.graph(1).conv_count(), 53);
        assert_eq!(DnnModel::Resnext50.graph(1).conv_count(), 53);
        assert_eq!(DnnModel::Vgg16.graph(1).conv_count(), 13);
        assert_eq!(DnnModel::Vgg19.graph(1).conv_count(), 16);
        assert_eq!(DnnModel::Densenet121.graph(1).conv_count(), 120);
        let inception = DnnModel::InceptionV3.graph(1).conv_count();
        assert!(
            (90..=96).contains(&inception),
            "inception convs {inception}"
        );
    }

    #[test]
    fn per_image_mac_counts_are_in_published_ballpark() {
        // Published per-image MACs: Resnet50 ≈ 4.1 G, VGG16 ≈ 15.5 G,
        // Inception-v3 ≈ 5.7 G, Densenet121 ≈ 2.9 G. Allow ±35% for the
        // linearization approximations.
        let gmacs = |m: DnnModel| m.graph(1).total_macs() as f64 / 1e9;
        let r = gmacs(DnnModel::Resnet50);
        assert!((2.6..=5.6).contains(&r), "resnet50 {r}");
        let v = gmacs(DnnModel::Vgg16);
        assert!((10.0..=21.0).contains(&v), "vgg16 {v}");
        let i = gmacs(DnnModel::InceptionV3);
        assert!((3.5..=8.0).contains(&i), "inception {i}");
        let d = gmacs(DnnModel::Densenet121);
        assert!((1.8..=4.0).contains(&d), "densenet {d}");
        // VGG19 strictly heavier than VGG16; ResNeXt lighter than ResNet
        // at equal width thanks to grouping.
        assert!(gmacs(DnnModel::Vgg19) > v);
    }

    #[test]
    fn parameter_counts_match_the_published_models() {
        // Published weight counts (millions): Resnet50 ≈ 25.6, VGG16 ≈ 138,
        // VGG19 ≈ 144, Densenet121 ≈ 8.0, Inception-v3 ≈ 23.9. Allow
        // ±25% for the linearization approximations (asymmetric convs,
        // omitted BN affine terms).
        let mparams = |m: DnnModel| m.graph(1).total_params() as f64 / 1e6;
        let checks = [
            (DnnModel::Resnet50, 25.6),
            (DnnModel::Vgg16, 138.0),
            (DnnModel::Vgg19, 143.7),
            (DnnModel::Densenet121, 8.0),
            (DnnModel::InceptionV3, 23.9),
        ];
        for (m, published) in checks {
            let got = mparams(m);
            let rel = (got - published).abs() / published;
            assert!(
                rel < 0.25,
                "{m}: {got:.1} M params vs published {published} M"
            );
        }
        // Parameter counts are batch-invariant.
        assert_eq!(
            DnnModel::Resnet50.graph(1).total_params(),
            DnnModel::Resnet50.graph(16).total_params()
        );
    }

    #[test]
    fn batch_scales_macs_linearly() {
        let one = DnnModel::Resnet50.graph(1).total_macs();
        let eight = DnnModel::Resnet50.graph(8).total_macs();
        assert_eq!(eight, 8 * one);
    }

    #[test]
    fn all_models_have_mixed_kernel_work() {
        for m in DnnModel::ALL {
            let g = m.graph(2);
            assert!(g.conv_count() > 10, "{m}");
            // Plenty of CUDA-core (elementwise/pool) layers too.
            let non_conv = g.layers().len() - g.conv_count();
            assert!(non_conv > 10, "{m}");
        }
    }
}
