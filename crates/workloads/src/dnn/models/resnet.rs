//! ResNet-50 and ResNeXt-50 (32×4d).

use crate::dnn::graph::{GraphBuilder, ModelGraph};
use crate::dnn::shapes::TensorShape;

/// Bottleneck-stage configuration: (mid width, out width, blocks, stride).
const STAGES: [(u64, u64, usize, u32); 4] = [
    (64, 256, 3, 1),
    (128, 512, 4, 2),
    (256, 1024, 6, 2),
    (512, 2048, 3, 2),
];

fn backbone(name: &str, batch: u64, width_factor: u64, groups: u32) -> ModelGraph {
    let mut b = GraphBuilder::new(name, TensorShape::new(batch, 3, 224, 224));
    b.conv_bn_relu(64, 7, 2, 3).maxpool(3, 2);
    for (mid, out, blocks, stride) in STAGES {
        let mid = mid * width_factor;
        for block in 0..blocks {
            let s = if block == 0 { stride } else { 1 };
            let block_in = b.shape();
            if block == 0 {
                // Projection shortcut reads the block input, then the main
                // path starts from the block input again.
                b.conv(out, 1, s, 0).bn();
                b.set_shape(block_in);
            }
            b.conv_bn_relu(mid, 1, 1, 0);
            if groups > 1 {
                b.conv_grouped(mid, 3, s, 1, groups).bn().relu();
            } else {
                b.conv_bn_relu(mid, 3, s, 1);
            }
            b.conv(out, 1, 1, 0).bn().add().relu();
        }
    }
    b.gap().fc(1000);
    b.build()
}

/// ResNet-50: 53 convolutions, ~4 GMAC per image.
pub fn resnet50(batch: u64) -> ModelGraph {
    backbone("Resnet50", batch, 1, 1)
}

/// ResNeXt-50 32×4d: same topology with doubled bottleneck width and
/// 32-way grouped 3×3 convolutions.
pub fn resnext50(batch: u64) -> ModelGraph {
    backbone("ResNext", batch, 2, 32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resnet50_structure() {
        let g = resnet50(1);
        assert_eq!(g.conv_count(), 53);
        // Final feature map is 2048 channels at 7x7-ish spatial.
        let gap = g
            .layers()
            .iter()
            .find(|l| matches!(l.layer, crate::dnn::layer::Layer::GlobalAvgPool))
            .unwrap();
        assert_eq!(gap.input.c, 2048);
        assert!(gap.input.h <= 8);
    }

    #[test]
    fn resnext_same_conv_count_fewer_macs_per_width() {
        let rn = resnet50(1);
        let rx = resnext50(1);
        assert_eq!(rx.conv_count(), rn.conv_count());
        // Doubled width but 32-way grouping: total MACs stay comparable
        // (within 2×) rather than 4×.
        let ratio = rx.total_macs() as f64 / rn.total_macs() as f64;
        assert!(ratio < 2.0, "ratio {ratio}");
    }
}
