//! Elementwise and pooling CUDA-Core kernels used between convolutions.
//!
//! These are the non-GEMM kernels of the LC services (and the kernels the
//! paper's Fig. 17 predicts: ReLU, Scale, BN, Pooling). Each is a shared
//! process-wide definition; grids scale with the tensor's element count.

use std::sync::{Arc, OnceLock};

use tacker_kernel::ast::{Expr, Stmt};
use tacker_kernel::{Bindings, Dim3, KernelDef, KernelKind, ResourceUsage};

use crate::app::WorkloadKernel;

/// Elements processed by one thread.
pub const ELEMS_PER_THREAD: u64 = 16;
/// Threads per elementwise block.
pub const BLOCK_THREADS: u32 = 256;
/// Elements covered by one block.
pub const ELEMS_PER_BLOCK: u64 = ELEMS_PER_THREAD * BLOCK_THREADS as u64;

fn streaming_kernel(
    name: &str,
    read_bytes_per_elem: u64,
    write_bytes_per_elem: u64,
    ops_per_elem: u64,
    desc: &str,
) -> KernelDef {
    KernelDef::builder(name, KernelKind::Cuda)
        .block_dim(Dim3::x(BLOCK_THREADS))
        .resources(ResourceUsage::new(24, 0))
        .body(vec![
            Stmt::global_load(
                "in",
                Expr::lit(read_bytes_per_elem * ELEMS_PER_THREAD),
                0.25,
            ),
            Stmt::compute_cd(Expr::lit(ops_per_elem * ELEMS_PER_THREAD), desc),
            Stmt::global_store(
                "out",
                Expr::lit(write_bytes_per_elem * ELEMS_PER_THREAD),
                0.0,
            ),
        ])
        .build()
        .expect("elementwise kernel is valid")
}

macro_rules! shared_def {
    ($fn_name:ident, $builder:expr, $doc:literal) => {
        #[doc = $doc]
        pub fn $fn_name() -> Arc<KernelDef> {
            static DEF: OnceLock<Arc<KernelDef>> = OnceLock::new();
            Arc::clone(DEF.get_or_init(|| Arc::new($builder)))
        }
    };
}

shared_def!(
    relu,
    streaming_kernel("ReLU", 2, 2, 1, "out[i] = fmaxf(in[i], 0)"),
    "The ReLU activation kernel."
);
shared_def!(
    batch_norm,
    streaming_kernel(
        "BN",
        2,
        2,
        6,
        "out[i] = gamma[c] * (in[i] - mu[c]) * rsig[c] + beta[c]"
    ),
    "The inference batch-normalization kernel (scale + shift)."
);
shared_def!(
    scale,
    streaming_kernel("Scale", 2, 2, 2, "out[i] = in[i] * alpha[c] + bias[c]"),
    "The Caffe-style Scale kernel."
);
shared_def!(
    add,
    streaming_kernel("Add", 4, 2, 1, "out[i] = a[i] + b[i]"),
    "The residual elementwise addition kernel."
);
shared_def!(
    relu_backward,
    streaming_kernel("ReLU_bwd", 4, 2, 1, "din[i] = in[i] > 0 ? dout[i] : 0"),
    "The ReLU backward kernel (training)."
);
shared_def!(
    bn_backward,
    streaming_kernel("BN_bwd", 6, 4, 10, "dgamma/dbeta reduction + dx"),
    "The batch-normalization backward kernel (training)."
);
shared_def!(
    sgd_update,
    streaming_kernel("SGD", 6, 4, 4, "m = b1*m + g; w -= lr * m"),
    "The SGD-with-momentum parameter update kernel (training)."
);

/// The pooling kernel: per output element, reads a `win_sq`-element window
/// and reduces it.
pub fn pool() -> Arc<KernelDef> {
    static DEF: OnceLock<Arc<KernelDef>> = OnceLock::new();
    Arc::clone(DEF.get_or_init(|| {
        Arc::new(
            KernelDef::builder("Pooling", KernelKind::Cuda)
                .block_dim(Dim3::x(BLOCK_THREADS))
                .resources(ResourceUsage::new(28, 0))
                .param("win_sq")
                .body(vec![
                    Stmt::global_load(
                        "window",
                        Expr::param("win_sq").mul(Expr::lit(2 * ELEMS_PER_THREAD)),
                        0.6,
                    ),
                    Stmt::compute_cd(
                        Expr::param("win_sq").mul(Expr::lit(ELEMS_PER_THREAD)),
                        "acc = reduce(window)",
                    ),
                    Stmt::global_store("out", Expr::lit(2 * ELEMS_PER_THREAD), 0.0),
                ])
                .build()
                .expect("pool kernel is valid"),
        )
    }))
}

/// Grid size covering `elems` elements.
pub fn grid_for(elems: u64) -> u64 {
    elems.div_ceil(ELEMS_PER_BLOCK).max(1)
}

/// A launch of an elementwise kernel over `elems` elements.
pub fn elementwise_workload(def: &Arc<KernelDef>, elems: u64) -> WorkloadKernel {
    WorkloadKernel::new(Arc::clone(def), grid_for(elems), Bindings::new())
}

/// A pooling launch over `out_elems` output elements with a `k × k` window.
pub fn pool_workload(out_elems: u64, window_sq: u64) -> WorkloadKernel {
    let mut b = Bindings::new();
    b.insert("win_sq".to_string(), window_sq.max(1));
    WorkloadKernel::new(pool(), grid_for(out_elems), b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_defs_are_singletons() {
        assert_eq!(relu().id(), relu().id());
        assert_ne!(relu().id(), batch_norm().id());
    }

    #[test]
    fn grid_covers_all_elements() {
        assert_eq!(grid_for(1), 1);
        assert_eq!(grid_for(ELEMS_PER_BLOCK), 1);
        assert_eq!(grid_for(ELEMS_PER_BLOCK + 1), 2);
        assert_eq!(grid_for(10 * ELEMS_PER_BLOCK), 10);
    }

    #[test]
    fn pool_workload_binds_window() {
        let wk = pool_workload(4096, 9);
        assert_eq!(wk.bindings.get("win_sq"), Some(&9));
        assert_eq!(wk.grid, 1);
        // Global average pool over 49 elements works too.
        let gap = pool_workload(2048, 49);
        assert_eq!(gap.bindings.get("win_sq"), Some(&49));
    }

    #[test]
    fn all_are_cuda_kernels() {
        for def in [
            relu(),
            batch_norm(),
            scale(),
            add(),
            relu_backward(),
            bn_backward(),
            sgd_update(),
            pool(),
        ] {
            assert_eq!(def.kind(), KernelKind::Cuda, "{}", def.name());
        }
    }
}
