//! Tensor shapes (NCHW) with half-precision sizing.

use std::fmt;

/// Bytes per element (the inference path runs half precision on Tensor
/// Cores, as the paper's wmma GEMM does).
pub const ELEM_BYTES: u64 = 2;

/// An NCHW activation tensor shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TensorShape {
    /// Batch.
    pub n: u64,
    /// Channels.
    pub c: u64,
    /// Height.
    pub h: u64,
    /// Width.
    pub w: u64,
}

impl TensorShape {
    /// Creates a shape.
    pub const fn new(n: u64, c: u64, h: u64, w: u64) -> TensorShape {
        TensorShape { n, c, h, w }
    }

    /// Total elements.
    pub const fn elems(self) -> u64 {
        self.n * self.c * self.h * self.w
    }

    /// Total bytes at half precision.
    pub const fn bytes(self) -> u64 {
        self.elems() * ELEM_BYTES
    }

    /// Spatial size `h × w`.
    pub const fn spatial(self) -> u64 {
        self.h * self.w
    }

    /// Same shape with different channel count (used for concatenation
    /// effects in DenseNet/Inception).
    pub const fn with_channels(self, c: u64) -> TensorShape {
        TensorShape { c, ..self }
    }
}

impl fmt::Display for TensorShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}x{}x{}", self.n, self.c, self.h, self.w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn element_and_byte_counts() {
        let s = TensorShape::new(32, 64, 56, 56);
        assert_eq!(s.elems(), 32 * 64 * 56 * 56);
        assert_eq!(s.bytes(), s.elems() * 2);
        assert_eq!(s.spatial(), 56 * 56);
    }

    #[test]
    fn channel_override() {
        let s = TensorShape::new(1, 64, 7, 7).with_channels(128);
        assert_eq!(s.c, 128);
        assert_eq!(s.h, 7);
    }

    #[test]
    fn display() {
        assert_eq!(TensorShape::new(1, 3, 224, 224).to_string(), "1x3x224x224");
    }
}
