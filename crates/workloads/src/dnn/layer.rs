//! Layer types and shape propagation.

use std::fmt;

use crate::gemm::GemmShape;

use super::shapes::TensorShape;

/// A 2-D convolution specification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConvSpec {
    /// Output channels.
    pub out_channels: u64,
    /// Square kernel edge.
    pub kernel: u32,
    /// Stride.
    pub stride: u32,
    /// Zero padding.
    pub pad: u32,
    /// Groups (1 = dense, >1 = grouped as in ResNeXt).
    pub groups: u32,
}

impl ConvSpec {
    /// A dense convolution.
    pub const fn new(out_channels: u64, kernel: u32, stride: u32, pad: u32) -> ConvSpec {
        ConvSpec {
            out_channels,
            kernel,
            stride,
            pad,
            groups: 1,
        }
    }

    /// A grouped convolution.
    pub const fn grouped(
        out_channels: u64,
        kernel: u32,
        stride: u32,
        pad: u32,
        groups: u32,
    ) -> ConvSpec {
        ConvSpec {
            out_channels,
            kernel,
            stride,
            pad,
            groups,
        }
    }

    /// A pointwise (1×1) convolution.
    pub const fn pointwise(out_channels: u64) -> ConvSpec {
        ConvSpec::new(out_channels, 1, 1, 0)
    }

    /// Output shape for an input.
    pub fn out_shape(&self, input: TensorShape) -> TensorShape {
        let h = (input.h + 2 * self.pad as u64 - self.kernel as u64) / self.stride as u64 + 1;
        let w = (input.w + 2 * self.pad as u64 - self.kernel as u64) / self.stride as u64 + 1;
        TensorShape::new(input.n, self.out_channels, h, w)
    }

    /// The implicit/im2col GEMM dimensions: `M = N·Ho·Wo`,
    /// `N = C_out / groups … aggregated`, `K = C_in/groups · k²`.
    ///
    /// Grouped convolutions run `groups` independent GEMMs; we aggregate
    /// them into one shape with the per-group `K` (total MACs preserved).
    pub fn gemm_shape(&self, input: TensorShape) -> GemmShape {
        let out = self.out_shape(input);
        GemmShape::new(
            out.n * out.spatial(),
            self.out_channels,
            (input.c / self.groups as u64).max(1) * (self.kernel as u64).pow(2),
        )
    }

    /// Multiply-accumulate count.
    pub fn macs(&self, input: TensorShape) -> u64 {
        self.gemm_shape(input).macs()
    }

    /// Whether this conv needs no im2col materialization (1×1, stride 1).
    pub fn is_pointwise(&self) -> bool {
        self.kernel == 1 && self.stride == 1 && self.pad == 0
    }

    /// Weight parameter count: `C_out × C_in/groups × k²`.
    pub fn params(&self, input: TensorShape) -> u64 {
        self.out_channels * (input.c / self.groups as u64).max(1) * (self.kernel as u64).pow(2)
    }
}

/// A network layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Layer {
    /// Convolution.
    Conv(ConvSpec),
    /// Batch normalization (inference: scale + shift).
    BatchNorm,
    /// ReLU activation.
    ReLU,
    /// Scale layer (Caffe-style, used by some models).
    Scale,
    /// Max pooling.
    MaxPool {
        /// Window edge.
        k: u32,
        /// Stride.
        stride: u32,
    },
    /// Average pooling.
    AvgPool {
        /// Window edge.
        k: u32,
        /// Stride.
        stride: u32,
    },
    /// Global average pooling to 1×1.
    GlobalAvgPool,
    /// Residual elementwise addition.
    Add,
    /// Fully connected layer.
    FullyConnected {
        /// Output features.
        out: u64,
    },
}

impl Layer {
    /// Output shape for an input shape.
    pub fn out_shape(&self, input: TensorShape) -> TensorShape {
        match self {
            Layer::Conv(c) => c.out_shape(input),
            Layer::BatchNorm | Layer::ReLU | Layer::Scale | Layer::Add => input,
            Layer::MaxPool { k, stride } | Layer::AvgPool { k, stride } => {
                let h = ((input.h.saturating_sub(*k as u64)) / *stride as u64) + 1;
                let w = ((input.w.saturating_sub(*k as u64)) / *stride as u64) + 1;
                TensorShape::new(input.n, input.c, h.max(1), w.max(1))
            }
            Layer::GlobalAvgPool => TensorShape::new(input.n, input.c, 1, 1),
            Layer::FullyConnected { out } => TensorShape::new(input.n, *out, 1, 1),
        }
    }
}

impl fmt::Display for Layer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Layer::Conv(c) => write!(
                f,
                "conv{}x{}/{}x{}{}",
                c.kernel,
                c.kernel,
                c.stride,
                c.out_channels,
                if c.groups > 1 {
                    format!(" g{}", c.groups)
                } else {
                    String::new()
                }
            ),
            Layer::BatchNorm => write!(f, "bn"),
            Layer::ReLU => write!(f, "relu"),
            Layer::Scale => write!(f, "scale"),
            Layer::MaxPool { k, stride } => write!(f, "maxpool{k}/{stride}"),
            Layer::AvgPool { k, stride } => write!(f, "avgpool{k}/{stride}"),
            Layer::GlobalAvgPool => write!(f, "gap"),
            Layer::Add => write!(f, "add"),
            Layer::FullyConnected { out } => write!(f, "fc{out}"),
        }
    }
}

/// A layer placed in a graph, with resolved shapes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LayerInstance {
    /// The layer.
    pub layer: Layer,
    /// Input shape.
    pub input: TensorShape,
    /// Output shape.
    pub output: TensorShape,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_shape_propagation() {
        // Resnet50 conv1: 7x7/2 pad 3 on 224 → 112.
        let c = ConvSpec::new(64, 7, 2, 3);
        let out = c.out_shape(TensorShape::new(32, 3, 224, 224));
        assert_eq!(out, TensorShape::new(32, 64, 112, 112));
        // 3x3/1 pad 1 preserves spatial.
        let c = ConvSpec::new(64, 3, 1, 1);
        let out = c.out_shape(TensorShape::new(1, 64, 56, 56));
        assert_eq!(out.spatial(), 56 * 56);
    }

    #[test]
    fn gemm_shape_matches_im2col_convention() {
        let c = ConvSpec::new(128, 3, 1, 1);
        let g = c.gemm_shape(TensorShape::new(8, 64, 28, 28));
        assert_eq!(g.m, 8 * 28 * 28);
        assert_eq!(g.n, 128);
        assert_eq!(g.k, 64 * 9);
    }

    #[test]
    fn grouped_conv_reduces_k() {
        let dense = ConvSpec::new(128, 3, 1, 1);
        let grouped = ConvSpec::grouped(128, 3, 1, 1, 32);
        let input = TensorShape::new(1, 128, 14, 14);
        assert_eq!(
            grouped.macs(input) * 32,
            dense.macs(input),
            "grouping by 32 divides MACs by 32"
        );
    }

    #[test]
    fn pool_and_fc_shapes() {
        let p = Layer::MaxPool { k: 3, stride: 2 };
        let out = p.out_shape(TensorShape::new(1, 64, 112, 112));
        assert_eq!((out.h, out.w), (55, 55));
        let gap = Layer::GlobalAvgPool.out_shape(TensorShape::new(4, 2048, 7, 7));
        assert_eq!(gap, TensorShape::new(4, 2048, 1, 1));
        let fc = Layer::FullyConnected { out: 1000 }.out_shape(gap);
        assert_eq!(fc.c, 1000);
    }

    #[test]
    fn pointwise_detection() {
        assert!(ConvSpec::pointwise(256).is_pointwise());
        assert!(!ConvSpec::new(256, 1, 2, 0).is_pointwise());
        assert!(!ConvSpec::new(256, 3, 1, 1).is_pointwise());
    }
}
