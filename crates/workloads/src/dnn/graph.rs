//! Model graphs: ordered layer sequences with resolved shapes.
//!
//! Branchy architectures (Inception, DenseNet, residual networks) are
//! linearized into the kernel-execution order a framework would launch;
//! concatenations are modelled by adjusting the tracked channel count,
//! which is exactly their effect on downstream kernel shapes.

use std::fmt;

use super::layer::{ConvSpec, Layer, LayerInstance};
use super::shapes::TensorShape;

/// A compiled-shape model graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelGraph {
    name: String,
    input: TensorShape,
    layers: Vec<LayerInstance>,
}

impl ModelGraph {
    /// Model name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The network input shape.
    pub fn input(&self) -> TensorShape {
        self.input
    }

    /// Layers in execution order.
    pub fn layers(&self) -> &[LayerInstance] {
        &self.layers
    }

    /// Convolution layers in execution order.
    pub fn convs(&self) -> impl Iterator<Item = (ConvSpec, TensorShape)> + '_ {
        self.layers.iter().filter_map(|l| match l.layer {
            Layer::Conv(c) => Some((c, l.input)),
            _ => None,
        })
    }

    /// Number of convolution layers.
    pub fn conv_count(&self) -> usize {
        self.convs().count()
    }

    /// Total convolution multiply-accumulates.
    pub fn total_macs(&self) -> u64 {
        self.convs().map(|(c, i)| c.macs(i)).sum()
    }

    /// Total weight parameters of the convolution and fully-connected
    /// layers (BN scale/shift omitted — sub-percent).
    pub fn total_params(&self) -> u64 {
        self.layers
            .iter()
            .map(|l| match l.layer {
                Layer::Conv(c) => c.params(l.input),
                Layer::FullyConnected { out } => out * (l.input.elems() / l.input.n.max(1)),
                _ => 0,
            })
            .sum()
    }
}

impl fmt::Display for ModelGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} layers, {} convs, {:.1} GMAC)",
            self.name,
            self.layers.len(),
            self.conv_count(),
            self.total_macs() as f64 / 1e9
        )
    }
}

/// Incremental graph builder tracking the current tensor shape.
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    name: String,
    input: TensorShape,
    cur: TensorShape,
    layers: Vec<LayerInstance>,
}

impl GraphBuilder {
    /// Starts a graph at the given input shape.
    pub fn new(name: impl Into<String>, input: TensorShape) -> GraphBuilder {
        GraphBuilder {
            name: name.into(),
            input,
            cur: input,
            layers: Vec::new(),
        }
    }

    /// The shape after the last pushed layer.
    pub fn shape(&self) -> TensorShape {
        self.cur
    }

    /// Pushes any layer.
    pub fn push(&mut self, layer: Layer) -> &mut Self {
        let output = layer.out_shape(self.cur);
        self.layers.push(LayerInstance {
            layer,
            input: self.cur,
            output,
        });
        self.cur = output;
        self
    }

    /// Convolution.
    pub fn conv(&mut self, out_channels: u64, kernel: u32, stride: u32, pad: u32) -> &mut Self {
        self.push(Layer::Conv(ConvSpec::new(
            out_channels,
            kernel,
            stride,
            pad,
        )))
    }

    /// Grouped convolution.
    pub fn conv_grouped(
        &mut self,
        out_channels: u64,
        kernel: u32,
        stride: u32,
        pad: u32,
        groups: u32,
    ) -> &mut Self {
        self.push(Layer::Conv(ConvSpec::grouped(
            out_channels,
            kernel,
            stride,
            pad,
            groups,
        )))
    }

    /// Conv + BN + ReLU, the standard block.
    pub fn conv_bn_relu(
        &mut self,
        out_channels: u64,
        kernel: u32,
        stride: u32,
        pad: u32,
    ) -> &mut Self {
        self.conv(out_channels, kernel, stride, pad).bn().relu()
    }

    /// Batch norm.
    pub fn bn(&mut self) -> &mut Self {
        self.push(Layer::BatchNorm)
    }

    /// ReLU.
    pub fn relu(&mut self) -> &mut Self {
        self.push(Layer::ReLU)
    }

    /// Residual add.
    pub fn add(&mut self) -> &mut Self {
        self.push(Layer::Add)
    }

    /// Max pool.
    pub fn maxpool(&mut self, k: u32, stride: u32) -> &mut Self {
        self.push(Layer::MaxPool { k, stride })
    }

    /// Average pool.
    pub fn avgpool(&mut self, k: u32, stride: u32) -> &mut Self {
        self.push(Layer::AvgPool { k, stride })
    }

    /// Global average pool.
    pub fn gap(&mut self) -> &mut Self {
        self.push(Layer::GlobalAvgPool)
    }

    /// Fully connected.
    pub fn fc(&mut self, out: u64) -> &mut Self {
        self.push(Layer::FullyConnected { out })
    }

    /// Models a concatenation: downstream layers see `channels` channels
    /// at the current spatial size.
    pub fn set_channels(&mut self, channels: u64) -> &mut Self {
        self.cur = self.cur.with_channels(channels);
        self
    }

    /// Rewinds the tracked shape to `shape` (used when linearizing a
    /// branchy block: every branch reads the block input).
    pub fn set_shape(&mut self, shape: TensorShape) -> &mut Self {
        self.cur = shape;
        self
    }

    /// Finalizes the graph.
    pub fn build(self) -> ModelGraph {
        ModelGraph {
            name: self.name,
            input: self.input,
            layers: self.layers,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_threads_shapes() {
        let mut b = GraphBuilder::new("toy", TensorShape::new(2, 3, 32, 32));
        b.conv_bn_relu(16, 3, 1, 1).maxpool(2, 2).gap().fc(10);
        let g = b.build();
        assert_eq!(g.layers().len(), 6);
        assert_eq!(g.conv_count(), 1);
        let last = g.layers().last().unwrap();
        assert_eq!(last.output, TensorShape::new(2, 10, 1, 1));
    }

    #[test]
    fn concat_adjusts_channels() {
        let mut b = GraphBuilder::new("cat", TensorShape::new(1, 32, 8, 8));
        b.conv(32, 3, 1, 1);
        b.set_channels(64); // concat with the input
        b.conv(16, 1, 1, 0);
        let g = b.build();
        let convs: Vec<_> = g.convs().collect();
        assert_eq!(convs[1].1.c, 64);
    }

    #[test]
    fn macs_accumulate() {
        let mut b = GraphBuilder::new("m", TensorShape::new(1, 8, 4, 4));
        b.conv(8, 1, 1, 0).conv(8, 1, 1, 0);
        let g = b.build();
        assert_eq!(g.total_macs(), 2 * (16 * 8 * 8));
    }
}
