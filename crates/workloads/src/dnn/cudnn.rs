//! The black-box cuDNN convolution kernels (§VIII-H, Fig. 22, Table III).
//!
//! cuDNN ships a closed set of internal convolution implementations per
//! architecture; the paper profiles the 7 used on the 2080Ti (`T1`–`T7`)
//! and the 5 used on the V100 (`V1`–`V5`) and reports their resource usage
//! in Table III. We reproduce that catalog verbatim and model each
//! implementation as an *implicit-GEMM* Tensor-Core kernel whose resource
//! footprint is derived from the published percentages. Because the source
//! is unavailable, these kernels can never be fused — which is exactly why
//! the im2col+GEMM transformation ([`super::im2col`]) exists.

use std::sync::{Arc, OnceLock};

use tacker_kernel::ast::{Expr, Stmt};
use tacker_kernel::{Bindings, Dim3, KernelDef, KernelKind, ResourceUsage, SmCapacity};

use crate::app::WorkloadKernel;
use crate::gemm::GemmShape;

/// cuDNN's modest efficiency edge over the open wmma GEMM ("similar
/// performance", §VIII-C): a hand-tuned implicit-GEMM mainloop retires the
/// same math in ~7% fewer pipeline cycles.
pub const CUDNN_EFFICIENCY: f64 = 0.93;

/// One cuDNN internal convolution implementation (a Table III row).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CudnnImpl {
    /// Short label used in Table III.
    pub short: &'static str,
    /// Full mangled kernel name in the Fig. 22 convention.
    pub name: &'static str,
    /// Register-file usage, percent of SM.
    pub register_pct: f64,
    /// Shared-memory usage, percent of SM.
    pub shared_pct: f64,
    /// Peak DRAM-bandwidth usage, percent.
    pub dram_pct: f64,
    /// FP32 (CUDA-core) pipeline utilization, percent.
    pub fp32_pct: f64,
    /// Measured fit quality of this implementation for the shapes the
    /// dispatcher sends to it: mainloop cycles relative to the open wmma
    /// GEMM (1.0 = identical; >1 = this implementation is a poor fit for
    /// its dispatch bucket). Black-box dispatch is imperfect on real
    /// hardware; this is the knob that reproduces the paper's per-model
    /// transformed-conv fractions (55.4% ResNet-family, 36.5% VGG).
    pub fit_cycles: f64,
}

/// Table III, 2080Ti columns.
pub const TURING_IMPLS: [CudnnImpl; 7] = [
    CudnnImpl {
        short: "T1",
        name: "turing_h1688cudnn_128x64_ldg8_relu_exp_small_nhwc_tn_v1",
        register_pct: 69.5,
        shared_pct: 64.0,
        dram_pct: 32.5,
        fp32_pct: 0.0,
        fit_cycles: 1.0,
    },
    CudnnImpl {
        short: "T2",
        name: "turing_h1688cudnn_256x64_ldg8_relu_exp_medium_nhwc_tn_v1",
        register_pct: 79.3,
        shared_pct: 100.0,
        dram_pct: 64.1,
        fp32_pct: 0.31,
        fit_cycles: 0.86,
    },
    CudnnImpl {
        short: "T3",
        name: "turing_h1688cudnn_256x128_ldg8_relu_exp_large_nhwc_tn_v1",
        register_pct: 79.3,
        shared_pct: 64.0,
        dram_pct: 42.8,
        fp32_pct: 0.0,
        fit_cycles: 1.0,
    },
    CudnnImpl {
        short: "T4",
        name: "turing_h1688cudnn_128x128_ldg8_relu_exp_interior_nhwc_tn_v1",
        register_pct: 67.2,
        shared_pct: 64.0,
        dram_pct: 70.3,
        fp32_pct: 0.19,
        fit_cycles: 1.35,
    },
    CudnnImpl {
        short: "T5",
        name: "turing_h884cudnn_256x64_ldg8_relu_exp_small_nhwc_tn_v1",
        register_pct: 82.8,
        shared_pct: 100.0,
        dram_pct: 50.2,
        fp32_pct: 0.0,
        fit_cycles: 1.0,
    },
    CudnnImpl {
        short: "T6",
        name: "turing_h884cudnn_128x128_ldg8_relu_exp_medium_nhwc_tn_v1",
        register_pct: 73.4,
        shared_pct: 76.8,
        dram_pct: 41.9,
        fp32_pct: 0.0,
        fit_cycles: 1.0,
    },
    CudnnImpl {
        short: "T7",
        name: "turing_h884cudnn_256x128_ldg8_relu_exp_large_nhwc_tn_v1",
        register_pct: 76.9,
        shared_pct: 76.8,
        dram_pct: 32.2,
        fp32_pct: 0.0,
        fit_cycles: 1.0,
    },
];

/// Table III, V100 columns.
pub const VOLTA_IMPLS: [CudnnImpl; 5] = [
    CudnnImpl {
        short: "V1",
        name: "volta_h884cudnn_128x64_ldg8_relu_exp_small_nhwc_tn_v1",
        register_pct: 88.6,
        shared_pct: 86.4,
        dram_pct: 53.4,
        fp32_pct: 0.0,
        fit_cycles: 1.0,
    },
    CudnnImpl {
        short: "V2",
        name: "volta_h884cudnn_256x64_ldg8_relu_exp_medium_nhwc_tn_v1",
        register_pct: 88.6,
        shared_pct: 51.2,
        dram_pct: 63.9,
        fp32_pct: 0.0,
        fit_cycles: 1.3,
    },
    CudnnImpl {
        short: "V3",
        name: "volta_h884cudnn_128x128_ldg8_relu_exp_large_nhwc_tn_v1",
        register_pct: 88.6,
        shared_pct: 86.4,
        dram_pct: 59.1,
        fp32_pct: 0.25,
        fit_cycles: 1.0,
    },
    CudnnImpl {
        short: "V4",
        name: "volta_h884cudnn_256x128_ldg8_relu_exp_interior_nhwc_tn_v1",
        register_pct: 88.6,
        shared_pct: 86.4,
        dram_pct: 38.5,
        fp32_pct: 0.0,
        fit_cycles: 1.0,
    },
    CudnnImpl {
        short: "V5",
        name: "volta_h884cudnn_256x64_sliced1x2_ldg8_relu_exp_small_nhwc_tn_v1",
        register_pct: 88.6,
        shared_pct: 51.2,
        dram_pct: 30.2,
        fp32_pct: 0.0,
        fit_cycles: 1.0,
    },
];

/// A decoded cuDNN kernel name (Fig. 22's naming convention):
/// `<arch>_<hmma>cudnn_<tileM>x<tileN>_…_<size class>_…`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodedKernelName {
    /// Target architecture (`turing`, `volta`).
    pub arch: String,
    /// HMMA shape: `884` or `1688` indicate Tensor-Core use (Fig. 22).
    pub hmma: String,
    /// Thread-block tile, e.g. `(256, 64)`.
    pub tile: (u32, u32),
    /// Input-shape-related size class (`small`, `medium`, `large`,
    /// `interior`).
    pub size_class: String,
}

/// Decodes a kernel name following the Fig. 22 convention.
///
/// ```
/// let d = tacker_workloads::dnn::cudnn::parse_kernel_name(
///     "volta_h884cudnn_256x64_ldg8_relu_exp_medium_nhwc_tn_v1",
/// ).expect("decodes");
/// assert_eq!(d.arch, "volta");
/// assert_eq!(d.hmma, "884");
/// assert_eq!(d.tile, (256, 64));
/// assert_eq!(d.size_class, "medium");
/// ```
pub fn parse_kernel_name(name: &str) -> Option<DecodedKernelName> {
    let mut parts = name.split('_');
    let arch = parts.next()?.to_string();
    let engine = parts.next()?; // e.g. "h884cudnn"
    let hmma = engine.strip_prefix('h')?.strip_suffix("cudnn")?.to_string();
    let tile_part = parts.next()?;
    let (m, n) = tile_part.split_once('x')?;
    let tile = (m.parse().ok()?, n.parse().ok()?);
    let size_class = parts
        .clone()
        .find(|p| matches!(*p, "small" | "medium" | "large" | "interior"))?
        .to_string();
    Some(DecodedKernelName {
        arch,
        hmma,
        tile,
        size_class,
    })
}

/// The catalog for an SM generation.
pub fn catalog(sm: &SmCapacity) -> &'static [CudnnImpl] {
    if sm.shared_mem_bytes > 64 * 1024 {
        &VOLTA_IMPLS
    } else {
        &TURING_IMPLS
    }
}

/// cuDNN's heuristic dispatch: picks an implementation by filter size and
/// reduction depth, deterministic in the problem shape like the real
/// library's size-class heuristics.
pub fn impl_for(gemm: GemmShape, filter: u32, sm: &SmCapacity) -> &'static CudnnImpl {
    let cat = catalog(sm);
    let is_volta = cat.len() == 5;
    let footprint = (gemm.m * gemm.n).max(1);
    let idx = if is_volta {
        match filter {
            0 | 1 => footprint.ilog2() as usize % 2 * 3, // V1 or V4
            3 if gemm.k > 1536 => 1,                     // V2 (poor fit)
            3 => 3,                                      // V4
            _ => 4,                                      // V5
        }
    } else {
        match filter {
            0 | 1 => [0, 1, 2, 6][footprint.ilog2() as usize % 4], // T1/T2/T3/T7
            3 if gemm.k > 1536 => 3,                               // T4 (poor fit)
            3 => 5,                                                // T6
            _ => 4,                                                // T5
        }
    };
    &cat[idx]
}

/// The kernel definition for one cuDNN implementation (shared per impl).
pub fn conv_kernel(ci: &CudnnImpl) -> Arc<KernelDef> {
    static DEFS: OnceLock<
        std::sync::Mutex<std::collections::HashMap<&'static str, Arc<KernelDef>>>,
    > = OnceLock::new();
    let map = DEFS.get_or_init(Default::default);
    let mut map = map.lock().expect("cudnn def map poisoned");
    Arc::clone(map.entry(ci.short).or_insert_with(|| {
        // Resource footprint from the Table III percentages, assuming the
        // implementation targets two resident blocks of 256 threads.
        let regs_per_thread = ((ci.register_pct / 100.0 * 65_536.0) / (2.0 * 256.0)) as u32;
        let smem = ((ci.shared_pct / 100.0 * 64.0 * 1024.0) / 2.0) as u64;
        // Higher published DRAM usage ⇒ lower effective cache locality.
        let locality = 1.0 - 0.0025 * ci.dram_pct;
        let tc_ops = (2048.0 * CUDNN_EFFICIENCY * ci.fit_cycles) as u64;
        Arc::new(
            KernelDef::builder(ci.name, KernelKind::Tensor)
                .block_dim(Dim3::x(256))
                .resources(ResourceUsage::new(regs_per_thread, smem))
                .param("k_iters")
                .opaque(true)
                .body(vec![
                    Stmt::shared_decl("stage", smem),
                    Stmt::loop_over(
                        "k",
                        Expr::param("k_iters"),
                        vec![
                            Stmt::global_load("implicit_tiles", Expr::lit(64), locality),
                            Stmt::sync_threads(),
                            Stmt::compute_tc(Expr::lit(tc_ops), "hmma.1688 implicit-gemm mainloop"),
                            Stmt::sync_threads(),
                        ],
                    ),
                    Stmt::global_store("output", Expr::lit(128), 0.0),
                ])
                .build()
                .expect("cudnn kernel is valid"),
        )
    }))
}

/// A cuDNN convolution launch for the problem's implicit-GEMM shape and
/// filter size. Small problems use split-K slicing like the open GEMM
/// (cuDNN's internal kernels do the same for occupancy).
pub fn conv_workload(gemm: GemmShape, filter: u32, sm: &SmCapacity) -> WorkloadKernel {
    let ci = impl_for(gemm, filter, sm);
    let def = conv_kernel(ci);
    let mut grid = gemm.grid_blocks().max(1);
    let mut k_iters = gemm.k_iters().max(1);
    while grid < crate::gemm::SPLIT_K_TARGET_BLOCKS && k_iters >= 2 {
        grid *= 2;
        k_iters = k_iters.div_ceil(2);
    }
    let mut b = Bindings::new();
    b.insert("k_iters".to_string(), k_iters);
    WorkloadKernel::new(def, grid, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_iii_row_counts() {
        assert_eq!(TURING_IMPLS.len(), 7);
        assert_eq!(VOLTA_IMPLS.len(), 5);
        assert_eq!(catalog(&SmCapacity::TURING).len(), 7);
        assert_eq!(catalog(&SmCapacity::VOLTA).len(), 5);
    }

    #[test]
    fn table_iii_values_survive() {
        let t2 = &TURING_IMPLS[1];
        assert_eq!(t2.shared_pct, 100.0);
        assert_eq!(t2.dram_pct, 64.1);
        assert_eq!(t2.fp32_pct, 0.31);
        let v5 = &VOLTA_IMPLS[4];
        assert_eq!(v5.shared_pct, 51.2);
        // All implementations are below 71% DRAM and barely touch FP32
        // (the paper's "unused resources" observation).
        for ci in TURING_IMPLS.iter().chain(&VOLTA_IMPLS) {
            assert!(ci.dram_pct < 71.0);
            assert!(ci.fp32_pct < 0.5);
        }
    }

    #[test]
    fn dispatch_is_deterministic_and_covers_catalog() {
        let sm = SmCapacity::TURING;
        let a = impl_for(GemmShape::new(100_352, 64, 576), 3, &sm);
        let b = impl_for(GemmShape::new(100_352, 64, 576), 3, &sm);
        assert_eq!(a.short, b.short);
        // Different shape classes hit different implementations.
        let shorts: std::collections::HashSet<_> = [
            (GemmShape::new(100_352, 64, 576), 3),
            (GemmShape::new(6_272, 512, 2048), 3),
            (GemmShape::new(25_088, 128, 128), 1),
            (GemmShape::new(1_568, 2048, 512), 1),
            (GemmShape::new(401_408, 64, 4800), 5),
        ]
        .iter()
        .map(|&(g, f)| impl_for(g, f, &sm).short)
        .collect();
        assert!(shorts.len() >= 3, "got {shorts:?}");
    }

    #[test]
    fn every_catalog_name_follows_the_fig22_convention() {
        for ci in TURING_IMPLS.iter().chain(VOLTA_IMPLS.iter()) {
            let d =
                parse_kernel_name(ci.name).unwrap_or_else(|| panic!("{} does not decode", ci.name));
            let expected_arch = if ci.short.starts_with('T') {
                "turing"
            } else {
                "volta"
            };
            assert_eq!(d.arch, expected_arch, "{}", ci.short);
            // "884 or 1688 indicate using Tensor Core" (Fig. 22).
            assert!(d.hmma == "884" || d.hmma == "1688", "{}", ci.short);
            assert!(d.tile.0 >= 128 && d.tile.1 >= 64, "{}", ci.short);
        }
    }

    #[test]
    fn malformed_names_do_not_decode() {
        assert!(parse_kernel_name("sgemm_128x128").is_none());
        assert!(parse_kernel_name("turing_i8816cudnn_bad").is_none());
        assert!(parse_kernel_name("").is_none());
    }

    #[test]
    fn kernels_are_tensor_core_and_unshareable_source() {
        let wk = conv_workload(GemmShape::new(8192, 256, 1024), 3, &SmCapacity::TURING);
        assert!(wk.is_tensor());
        assert!(wk.def.name().contains("cudnn"));
        // Shared per implementation.
        let wk2 = conv_workload(GemmShape::new(8192, 256, 1024), 3, &SmCapacity::TURING);
        assert_eq!(wk.def.id(), wk2.def.id());
    }
}
