//! The `cudnnIm2col` kernel (§VIII-H).
//!
//! Converting `cudnnConvolutionForward()` into `cudnnIm2col()` + GEMM is
//! what exposes a fusable open-source Tensor-Core kernel. The im2col stage
//! materializes the `M × K` patch matrix: it reads each input element once
//! per covering window position and writes the expanded matrix — pure
//! CUDA-Core memory work, and the source of the transformation's
//! performance gap (Fig. 21). Pointwise (1×1/stride-1) convolutions skip
//! it entirely: their input already *is* the GEMM operand.

use std::sync::{Arc, OnceLock};

use tacker_kernel::ast::{Expr, Stmt};
use tacker_kernel::{Bindings, Dim3, KernelDef, KernelKind, ResourceUsage};

use crate::app::WorkloadKernel;
use crate::gemm::GemmShape;

use super::elementwise::{grid_for, ELEMS_PER_THREAD};

/// The im2col expansion kernel.
///
/// Each thread produces [`ELEMS_PER_THREAD`] elements of the patch matrix:
/// a gather from the input tensor (overlapping windows give decent cache
/// locality) and a streaming store.
pub fn im2col_kernel() -> Arc<KernelDef> {
    static DEF: OnceLock<Arc<KernelDef>> = OnceLock::new();
    Arc::clone(DEF.get_or_init(|| {
        Arc::new(
            KernelDef::builder("cudnnIm2col", KernelKind::Cuda)
                .block_dim(Dim3::x(256))
                .resources(ResourceUsage::new(28, 0))
                .body(vec![
                    Stmt::global_load("input", Expr::lit(2 * ELEMS_PER_THREAD), 0.65),
                    Stmt::compute_cd(
                        Expr::lit(8 * ELEMS_PER_THREAD),
                        "col[(c*kh*kw + kidx)*M + m] = in[n][c][h0+kh][w0+kw]",
                    ),
                    Stmt::global_store("col", Expr::lit(2 * ELEMS_PER_THREAD), 0.0),
                ])
                .build()
                .expect("im2col kernel is valid"),
        )
    }))
}

/// The im2col launch for a convolution's GEMM shape: the patch matrix has
/// `M × K` elements.
pub fn im2col_workload(gemm: GemmShape) -> WorkloadKernel {
    WorkloadKernel::new(im2col_kernel(), grid_for(gemm.m * gemm.k), Bindings::new())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_scales_with_patch_matrix() {
        let small = im2col_workload(GemmShape::new(1024, 64, 64));
        let big = im2col_workload(GemmShape::new(1024, 64, 576));
        assert_eq!(big.grid, 9 * small.grid);
        assert!(small.is_cuda());
    }

    #[test]
    fn kernel_is_shared() {
        assert_eq!(im2col_kernel().id(), im2col_kernel().id());
    }
}
