//! Compiling a model graph into its kernel launch sequence.
//!
//! This is where the §VIII-H transformation decision happens: each
//! convolution either stays a black-box cuDNN Tensor-Core kernel or is
//! rewritten to `cudnnIm2col` + the open wmma GEMM. Under
//! [`ConvPolicy::Profitable`], both paths are *measured* on the simulated
//! device and the transformation is kept only when its slowdown is within
//! the threshold (15% in the paper) — reproducing Fig. 21's per-conv
//! relative performance and the "55.4% of TC kernels usable for fusion"
//! statistic.

use tacker_kernel::SimTime;
use tacker_sim::Device;

use crate::app::WorkloadKernel;
use crate::gemm::{gemm_workload, GemmShape};

use super::cudnn;
use super::elementwise as ew;
use super::graph::ModelGraph;
use super::im2col;
use super::layer::Layer;

/// How convolutions are implemented.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ConvPolicy {
    /// Every conv stays on cuDNN (nothing fusable).
    Cudnn,
    /// Every conv is transformed to im2col + GEMM.
    Im2colAll,
    /// Measure both; transform when the slowdown is below the threshold
    /// (the paper uses 0.15).
    Profitable(f64),
}

/// Per-convolution compilation outcome.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConvReport {
    /// Index among the model's convolutions.
    pub index: usize,
    /// The implicit/im2col GEMM shape.
    pub gemm: GemmShape,
    /// Whether the conv was transformed to im2col + GEMM.
    pub transformed: bool,
    /// Normalized performance of im2col+GEMM over cuDNN
    /// (`t_cudnn / t_path`, ≤ 1 when cuDNN is faster) — the Fig. 21 metric.
    pub rel_perf: f64,
}

/// A compiled model: the per-query kernel sequence plus conv reports.
#[derive(Debug, Clone)]
pub struct CompiledModel {
    /// Model name.
    pub name: String,
    /// Kernels in launch order.
    pub kernels: Vec<WorkloadKernel>,
    /// One report per convolution.
    pub convs: Vec<ConvReport>,
}

impl CompiledModel {
    /// Fraction of convolutions transformed to im2col + GEMM.
    pub fn transformed_fraction(&self) -> f64 {
        if self.convs.is_empty() {
            return 0.0;
        }
        self.convs.iter().filter(|c| c.transformed).count() as f64 / self.convs.len() as f64
    }
}

/// The shared wmma GEMM definition used by every transformed conv and FC
/// layer.
pub fn shared_gemm() -> std::sync::Arc<tacker_kernel::KernelDef> {
    static DEF: std::sync::OnceLock<std::sync::Arc<tacker_kernel::KernelDef>> =
        std::sync::OnceLock::new();
    std::sync::Arc::clone(DEF.get_or_init(|| std::sync::Arc::new(crate::gemm::gemm_kernel())))
}

fn measure(device: &Device, wk: &WorkloadKernel) -> SimTime {
    device
        .run_launch(&wk.launch())
        .map(|r| r.duration)
        .unwrap_or(SimTime::from_millis(1_000))
}

/// Compiles a graph into its kernel sequence under the given policy.
pub fn compile(graph: &ModelGraph, device: &Device, policy: ConvPolicy) -> CompiledModel {
    let sm = &device.spec().sm;
    let gemm_def = shared_gemm();
    let mut kernels = Vec::new();
    let mut convs = Vec::new();
    let mut conv_idx = 0usize;

    for inst in graph.layers() {
        match inst.layer {
            Layer::Conv(spec) => {
                let gemm = spec.gemm_shape(inst.input);
                let cudnn_wk = cudnn::conv_workload(gemm, spec.kernel, sm);
                let mut path: Vec<WorkloadKernel> = Vec::new();
                if !spec.is_pointwise() {
                    path.push(im2col::im2col_workload(gemm));
                }
                path.push(gemm_workload(&gemm_def, gemm));

                let (transformed, rel_perf) = match policy {
                    ConvPolicy::Cudnn => (false, 1.0),
                    ConvPolicy::Im2colAll => (true, 1.0),
                    ConvPolicy::Profitable(threshold) => {
                        let t_cudnn = measure(device, &cudnn_wk);
                        let t_path: SimTime = path.iter().map(|wk| measure(device, wk)).sum();
                        let rel = t_cudnn.ratio(t_path);
                        (
                            t_path.as_nanos() as f64
                                <= t_cudnn.as_nanos() as f64 * (1.0 + threshold),
                            rel,
                        )
                    }
                };
                convs.push(ConvReport {
                    index: conv_idx,
                    gemm,
                    transformed,
                    rel_perf,
                });
                conv_idx += 1;
                if transformed {
                    kernels.extend(path);
                } else {
                    kernels.push(cudnn_wk);
                }
            }
            Layer::BatchNorm => {
                kernels.push(ew::elementwise_workload(
                    &ew::batch_norm(),
                    inst.output.elems(),
                ));
            }
            Layer::ReLU => {
                kernels.push(ew::elementwise_workload(&ew::relu(), inst.output.elems()));
            }
            Layer::Scale => {
                kernels.push(ew::elementwise_workload(&ew::scale(), inst.output.elems()));
            }
            Layer::Add => {
                kernels.push(ew::elementwise_workload(&ew::add(), inst.output.elems()));
            }
            Layer::MaxPool { k, .. } | Layer::AvgPool { k, .. } => {
                kernels.push(ew::pool_workload(
                    inst.output.elems(),
                    (k as u64) * (k as u64),
                ));
            }
            Layer::GlobalAvgPool => {
                kernels.push(ew::pool_workload(inst.output.elems(), inst.input.spatial()));
            }
            Layer::FullyConnected { out } => {
                let k = inst.input.elems() / inst.input.n.max(1);
                let gemm = GemmShape::new(inst.input.n, out, k);
                kernels.push(gemm_workload(&gemm_def, gemm));
            }
        }
    }

    CompiledModel {
        name: graph.name().to_string(),
        kernels,
        convs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dnn::DnnModel;
    use tacker_sim::GpuSpec;

    #[test]
    fn cudnn_policy_keeps_all_convs_black_box() {
        let device = Device::new(GpuSpec::rtx2080ti());
        let g = DnnModel::Vgg16.graph(2);
        let c = compile(&g, &device, ConvPolicy::Cudnn);
        assert_eq!(c.convs.len(), 13);
        assert_eq!(c.transformed_fraction(), 0.0);
        // cuDNN kernels are named per Fig. 22.
        assert!(c.kernels.iter().any(|k| k.def.name().contains("cudnn")));
        assert!(!c.kernels.iter().any(|k| k.def.name() == "cudnnIm2col"));
    }

    #[test]
    fn im2col_all_transforms_everything() {
        let device = Device::new(GpuSpec::rtx2080ti());
        let g = DnnModel::Vgg16.graph(2);
        let c = compile(&g, &device, ConvPolicy::Im2colAll);
        assert_eq!(c.transformed_fraction(), 1.0);
        // Every non-pointwise conv contributes an im2col kernel.
        let im2cols = c
            .kernels
            .iter()
            .filter(|k| k.def.name() == "cudnnIm2col")
            .count();
        assert_eq!(im2cols, 13, "VGG16 has no pointwise convs");
    }

    #[test]
    fn profitable_policy_transforms_a_real_fraction() {
        let device = Device::new(GpuSpec::rtx2080ti());
        let g = DnnModel::Resnet50.graph(4);
        let c = compile(&g, &device, ConvPolicy::Profitable(0.15));
        let f = c.transformed_fraction();
        assert!(f > 0.2 && f < 1.0, "transformed fraction {f}");
        // Reports carry the Fig. 21 metric.
        assert!(c.convs.iter().all(|r| r.rel_perf > 0.0));
        assert_eq!(c.convs.len(), 53);
    }

    #[test]
    fn kernel_stream_mixes_tc_and_cd() {
        let device = Device::new(GpuSpec::rtx2080ti());
        let g = DnnModel::Resnet50.graph(2);
        let c = compile(&g, &device, ConvPolicy::Cudnn);
        let tc = c.kernels.iter().filter(|k| k.is_tensor()).count();
        let cd = c.kernels.iter().filter(|k| k.is_cuda()).count();
        assert!(tc >= 50, "tc kernels {tc}");
        assert!(cd >= 100, "cd kernels {cd}");
    }
}
