//! The DNN workloads: the paper's latency-critical services and training
//! tasks.
//!
//! Six inference services (Table II) are modelled as genuine layer graphs
//! with tensor-shape propagation:
//!
//! | model        | batch | conv layers |
//! |--------------|-------|-------------|
//! | Resnet50     | 32    | 53          |
//! | ResNext50    | 24    | 53          |
//! | VGG16        | 24    | 13          |
//! | VGG19        | 16    | 16          |
//! | Inception-v3 | 32    | ~90         |
//! | Densenet121  | 16    | 120         |
//!
//! Convolutions execute either as black-box cuDNN Tensor-Core kernels
//! ([`cudnn`], Table III) or — when the performance gap is under 15%
//! (§VIII-H, Fig. 21) — as an `im2col` CUDA-Core kernel plus the public
//! wmma GEMM ([`im2col`], [`compile`]), which is what makes them fusable.
//! The four `-T` training tasks ([`training`]) serve as memory-intensive
//! best-effort applications.

pub mod compile;
pub mod cudnn;
pub mod elementwise;
pub mod graph;
pub mod im2col;
pub mod layer;
pub mod models;
pub mod shapes;
pub mod training;

use std::fmt;

use crate::app::LcService;
use graph::ModelGraph;

/// The six DNN models of Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DnnModel {
    /// ResNet-50 (He et al.).
    Resnet50,
    /// ResNeXt-50 32×4d (Xie et al.).
    Resnext50,
    /// VGG-16 (Simonyan & Zisserman).
    Vgg16,
    /// VGG-19.
    Vgg19,
    /// Inception-v3 (Szegedy et al.).
    InceptionV3,
    /// DenseNet-121 (Huang et al.).
    Densenet121,
}

impl DnnModel {
    /// All six models in the paper's order.
    pub const ALL: [DnnModel; 6] = [
        DnnModel::Resnet50,
        DnnModel::Resnext50,
        DnnModel::Vgg16,
        DnnModel::Vgg19,
        DnnModel::InceptionV3,
        DnnModel::Densenet121,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            DnnModel::Resnet50 => "Resnet50",
            DnnModel::Resnext50 => "ResNext",
            DnnModel::Vgg16 => "VGG16",
            DnnModel::Vgg19 => "VGG19",
            DnnModel::InceptionV3 => "Inception",
            DnnModel::Densenet121 => "Densenet",
        }
    }

    /// The QoS-target-derived batch size from Table II.
    pub fn table_ii_batch(self) -> u32 {
        match self {
            DnnModel::Resnet50 => 32,
            DnnModel::Resnext50 => 24,
            DnnModel::Vgg16 => 24,
            DnnModel::Vgg19 => 16,
            DnnModel::InceptionV3 => 32,
            DnnModel::Densenet121 => 16,
        }
    }

    /// Builds the model's layer graph for a batch size.
    pub fn graph(self, batch: u64) -> ModelGraph {
        match self {
            DnnModel::Resnet50 => models::resnet::resnet50(batch),
            DnnModel::Resnext50 => models::resnet::resnext50(batch),
            DnnModel::Vgg16 => models::vgg::vgg16(batch),
            DnnModel::Vgg19 => models::vgg::vgg19(batch),
            DnnModel::InceptionV3 => models::inception::inception_v3(batch),
            DnnModel::Densenet121 => models::densenet::densenet121(batch),
        }
    }

    /// Compiles the model into an LC service at its Table II batch size,
    /// deciding per-conv implementations on `device` (§VIII-H policy).
    pub fn lc_service(self, device: &tacker_sim::Device) -> LcService {
        let graph = self.graph(self.table_ii_batch() as u64);
        let compiled = compile::compile(&graph, device, compile::ConvPolicy::Profitable(0.15));
        LcService::new(self.name(), self.table_ii_batch(), compiled.kernels)
    }
}

impl fmt::Display for DnnModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}
