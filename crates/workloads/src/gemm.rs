//! The open-source Tensor-Core GEMM kernel.
//!
//! The paper cannot fuse cuDNN's black-box kernels, so it substitutes
//! NVIDIA's public wmma GEMM (CUTLASS / cudaTensorCoreGemm) with similar
//! performance (§VIII-C, §VIII-H). This module models that kernel: a
//! 128×128 output tile per 256-thread block, staged through shared memory,
//! with `K/32` mainloop iterations of `wmma::mma_sync` work.
//!
//! `C[M×N] += A[M×K] · B[K×N]` in half precision.

use std::sync::Arc;

use tacker_kernel::ast::{Expr, Stmt};
use tacker_kernel::{Bindings, Dim3, KernelDef, KernelKind, ResourceUsage};

use crate::app::WorkloadKernel;

/// Output tile edge computed by one thread block.
pub const TILE_M: u64 = 128;
/// Output tile edge computed by one thread block.
pub const TILE_N: u64 = 128;
/// Mainloop K step.
pub const TILE_K: u64 = 32;
/// Threads per GEMM block (8 warps).
pub const BLOCK_THREADS: u32 = 256;
/// Shared memory for the software-pipelined A/B tile buffers: 1.5 stages
/// (the B-tile double buffer is register-staged), as the Turing wmma
/// kernels do to keep two blocks resident per 64 KB SM.
pub const SMEM_BYTES: u64 = 24 * 1024;

/// A GEMM problem size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GemmShape {
    /// Rows of A and C.
    pub m: u64,
    /// Columns of B and C.
    pub n: u64,
    /// Inner dimension.
    pub k: u64,
}

impl GemmShape {
    /// Creates a shape.
    pub const fn new(m: u64, n: u64, k: u64) -> GemmShape {
        GemmShape { m, n, k }
    }

    /// Thread blocks the launch needs.
    pub const fn grid_blocks(self) -> u64 {
        self.m.div_ceil(TILE_M) * self.n.div_ceil(TILE_N)
    }

    /// Mainloop iterations.
    pub const fn k_iters(self) -> u64 {
        if self.k == 0 {
            0
        } else {
            self.k.div_ceil(TILE_K)
        }
    }

    /// Total multiply-accumulate operations.
    pub const fn macs(self) -> u64 {
        self.m * self.n * self.k
    }
}

/// Builds the wmma GEMM kernel definition.
///
/// Per mainloop iteration each block loads the A and B tiles through shared
/// memory (good L2 locality — tiles are reused across the block row/column)
/// and performs `TILE_M × TILE_N × TILE_K` MACs on the Tensor pipeline.
pub fn gemm_kernel() -> KernelDef {
    // Per-thread figures for one mainloop iteration.
    let tc_ops_per_thread = TILE_M * TILE_N * TILE_K / BLOCK_THREADS as u64; // 2048
    let load_bytes_per_thread = (TILE_M + TILE_N) * TILE_K * 2 / BLOCK_THREADS as u64; // 64
    let store_bytes_per_thread = TILE_M * TILE_N * 2 / BLOCK_THREADS as u64; // 128
    KernelDef::builder("wmma_gemm", KernelKind::Tensor)
        .block_dim(Dim3::x(BLOCK_THREADS))
        .resources(ResourceUsage::new(72, SMEM_BYTES))
        .param("k_iters")
        .body(vec![
            Stmt::shared_decl("smem_tiles", SMEM_BYTES),
            Stmt::loop_over(
                "k",
                Expr::param("k_iters"),
                vec![
                    // Double-buffered mainloop: the tile for iteration k+1
                    // streams in while iteration k computes, so one barrier
                    // per iteration suffices (CUTLASS-style software
                    // pipelining).
                    Stmt::global_load("A_B_tiles_next", Expr::lit(load_bytes_per_thread), 0.86),
                    Stmt::compute_tc(
                        Expr::lit(tc_ops_per_thread),
                        "wmma::mma_sync(acc, a_frag, b_frag, acc)",
                    ),
                    Stmt::sync_threads(),
                ],
            ),
            Stmt::global_store("C_tile", Expr::lit(store_bytes_per_thread), 0.0),
        ])
        .build()
        .expect("gemm kernel definition is valid")
}

/// Builds the second Tensor-Core GEMM implementation: the
/// `cudaTensorCoreGemm` sample style with a 64×64 output tile per
/// 128-thread block (§VIII-G co-runs *two* NVIDIA GEMM implementations).
///
/// Compared to [`gemm_kernel`], the smaller tile means less shared memory
/// and fewer registers per block — more blocks co-reside — but each block
/// amortizes its tile loads over less math, so it leans harder on memory
/// bandwidth.
pub fn gemm_kernel_64() -> KernelDef {
    const TILE: u64 = 64;
    const THREADS: u32 = 128;
    let tc_ops_per_thread = TILE * TILE * TILE_K / THREADS as u64; // 1024
    let load_bytes_per_thread = (TILE + TILE) * TILE_K * 2 / THREADS as u64; // 64
    let store_bytes_per_thread = TILE * TILE * 2 / THREADS as u64; // 64
    KernelDef::builder("wmma_gemm_64", KernelKind::Tensor)
        .block_dim(Dim3::x(THREADS))
        .resources(ResourceUsage::new(56, 10 * 1024))
        .param("k_iters")
        .body(vec![
            Stmt::shared_decl("tile_buf", 10 * 1024),
            Stmt::loop_over(
                "k",
                Expr::param("k_iters"),
                vec![
                    Stmt::global_load("A_B_tiles", Expr::lit(load_bytes_per_thread), 0.82),
                    Stmt::compute_tc(
                        Expr::lit(tc_ops_per_thread),
                        "wmma::mma_sync(acc, a_frag, b_frag, acc)",
                    ),
                    Stmt::sync_threads(),
                ],
            ),
            Stmt::global_store("C_tile", Expr::lit(store_bytes_per_thread), 0.0),
        ])
        .build()
        .expect("gemm_64 kernel definition is valid")
}

/// The process-wide shared instance of the 64-tile GEMM.
pub fn shared_gemm_64() -> Arc<KernelDef> {
    use std::sync::OnceLock;
    static DEF: OnceLock<Arc<KernelDef>> = OnceLock::new();
    Arc::clone(DEF.get_or_init(|| Arc::new(gemm_kernel_64())))
}

/// A launch of the 64-tile GEMM for a problem shape (with the same split-K
/// policy as [`gemm_workload`]).
pub fn gemm_workload_64(shape: GemmShape) -> WorkloadKernel {
    const TILE: u64 = 64;
    let mut grid = (shape.m.div_ceil(TILE) * shape.n.div_ceil(TILE)).max(1);
    let mut k_iters = shape.k_iters().max(1);
    while grid < SPLIT_K_TARGET_BLOCKS && k_iters >= 2 {
        grid *= 2;
        k_iters = k_iters.div_ceil(2);
    }
    let mut bindings = Bindings::new();
    bindings.insert("k_iters".to_string(), k_iters);
    WorkloadKernel::new(shared_gemm_64(), grid, bindings)
}

/// Minimum grid (several waves on a 68-SM part) below which skinny or
/// small problems use split-K parallelism, as CUTLASS does. A few work
/// items per persistent worker keeps the PTB round-robin well balanced.
pub const SPLIT_K_TARGET_BLOCKS: u64 = 544;

/// A concrete GEMM invocation for a problem shape.
///
/// Skinny problems (fewer output tiles than SMs) are launched with split-K
/// slicing: the K loop is divided across additional blocks so the device
/// stays occupied, exactly as production GEMM libraries do for
/// weight-gradient and fully-connected shapes.
pub fn gemm_workload(def: &Arc<KernelDef>, shape: GemmShape) -> WorkloadKernel {
    let mut grid = shape.grid_blocks().max(1);
    let mut k_iters = shape.k_iters().max(1);
    while grid < SPLIT_K_TARGET_BLOCKS && k_iters >= 2 {
        grid *= 2;
        k_iters = k_iters.div_ceil(2);
    }
    let mut bindings = Bindings::new();
    bindings.insert("k_iters".to_string(), k_iters);
    WorkloadKernel::new(Arc::clone(def), grid, bindings)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_arithmetic() {
        let s = GemmShape::new(4096, 4096, 1024);
        assert_eq!(s.grid_blocks(), 32 * 32);
        assert_eq!(s.k_iters(), 32);
        assert_eq!(s.macs(), 4096 * 4096 * 1024);
        // Ragged shapes round up.
        let r = GemmShape::new(100, 100, 33);
        assert_eq!(r.grid_blocks(), 1);
        assert_eq!(r.k_iters(), 2);
    }

    #[test]
    fn kernel_shape_and_resources() {
        let def = gemm_kernel();
        assert_eq!(def.kind(), KernelKind::Tensor);
        assert_eq!(def.block_dim().total(), 256);
        assert_eq!(def.resources().shared_mem_bytes, 24 * 1024);
        let (tensor, cuda) = def.unit_usage();
        assert!(tensor);
        assert!(!cuda);
    }

    #[test]
    fn workload_binds_k_iters_with_split_k_for_skinny_shapes() {
        let def = Arc::new(gemm_kernel());
        // Wide problem: no splitting.
        let wk = gemm_workload(&def, GemmShape::new(4096, 4096, 320));
        assert_eq!(wk.grid, 1024);
        assert_eq!(wk.bindings.get("k_iters"), Some(&10));
        // Skinny problem (1 output tile, deep K): split-K spreads it.
        let wk = gemm_workload(&def, GemmShape::new(64, 27, 200_704));
        assert!(wk.grid >= 128, "grid {}", wk.grid);
        let k = *wk.bindings.get("k_iters").unwrap();
        // Total work is preserved up to ceil rounding.
        assert!(wk.grid * k >= 6272 && wk.grid * k <= 6272 * 2);
    }

    #[test]
    fn gemm_64_has_a_distinct_lighter_footprint() {
        let big = gemm_kernel();
        let small = gemm_kernel_64();
        assert_eq!(small.kind(), KernelKind::Tensor);
        assert!(small.resources().shared_mem_bytes < big.resources().shared_mem_bytes);
        assert!(small.block_dim().total() < big.block_dim().total());
        // Same problem needs 4× the blocks at the 64-tile size.
        let shape = GemmShape::new(8192, 8192, 1024);
        let wk_small = gemm_workload_64(shape);
        let wk_big = gemm_workload(&std::sync::Arc::new(gemm_kernel()), shape);
        assert_eq!(wk_small.grid, 4 * wk_big.grid);
        // Total MACs agree between the two implementations.
        let macs = |wk: &crate::app::WorkloadKernel| {
            let bp = tacker_kernel::lower_block(&wk.def, wk.grid, &wk.bindings).unwrap();
            bp.roles[0]
                .program
                .total_compute(tacker_kernel::ComputeUnit::Tensor)
                * bp.roles[0].warps as u64
                * wk.grid
        };
        assert_eq!(macs(&wk_small), macs(&wk_big));
    }

    #[test]
    fn shared_gemm_64_is_a_singleton() {
        assert_eq!(shared_gemm_64().id(), shared_gemm_64().id());
    }

    #[test]
    fn lowered_work_matches_shape_macs() {
        let def = Arc::new(gemm_kernel());
        // Large enough that split-K does not trigger.
        let shape = GemmShape::new(4096, 4096, 640);
        let wk = gemm_workload(&def, shape);
        let bp = tacker_kernel::lower_block(&def, wk.grid, &wk.bindings).unwrap();
        // Warp-level TC ops per block × blocks = total MACs of the problem.
        let per_block: u64 = bp.roles[0]
            .program
            .total_compute(tacker_kernel::ComputeUnit::Tensor)
            * bp.roles[0].warps as u64;
        assert_eq!(per_block * wk.grid, shape.macs());
    }
}
