//! Per-convolution im2col+GEMM vs cuDNN relative performance (the Fig. 21
//! metric) for VGG16 and Resnet50.
//!
//! ```sh
//! cargo run --release -p tacker-workloads --example convgap
//! ```
use tacker_sim::{Device, GpuSpec};
use tacker_workloads::dnn::compile::{compile, ConvPolicy};
use tacker_workloads::dnn::DnnModel;

fn main() {
    let device = Device::new(GpuSpec::rtx2080ti());
    for m in [DnnModel::Vgg16, DnnModel::Resnet50] {
        let g = m.graph(m.table_ii_batch() as u64);
        let c = compile(&g, &device, ConvPolicy::Profitable(0.15));
        println!("== {} ==", m.name());
        for r in &c.convs {
            println!(
                "  conv{:<3} M={:<7} N={:<5} K={:<5} rel={:.3} {}",
                r.index,
                r.gemm.m,
                r.gemm.n,
                r.gemm.k,
                r.rel_perf,
                if r.transformed { "TRANSFORMED" } else { "" }
            );
        }
    }
}
