//! Calibration report: per-model MACs, transformed-convolution fraction
//! (§VIII-H) and solo query duration on the simulated 2080Ti — the numbers
//! DESIGN.md's workload sizing is based on.
//!
//! ```sh
//! cargo run --release -p tacker-workloads --example calibrate
//! ```

use tacker_sim::{Device, GpuSpec};
use tacker_workloads::dnn::compile::{compile, ConvPolicy};
use tacker_workloads::dnn::DnnModel;

fn main() {
    let device = Device::new(GpuSpec::rtx2080ti());
    for m in DnnModel::ALL {
        let g = m.graph(m.table_ii_batch() as u64);
        let c = compile(&g, &device, ConvPolicy::Profitable(0.15));
        let mut total = tacker_kernel::SimTime::ZERO;
        let mut tc_time = tacker_kernel::SimTime::ZERO;
        for k in &c.kernels {
            let run = device.run_launch(&k.launch()).expect("runs");
            total += run.duration;
            if k.is_tensor() {
                tc_time += run.duration;
            }
        }
        println!(
            "{:<10} batch {:>2}: {:>6.1} GMAC, {} kernels, query {:>7.2} ms (TC part {:>6.2} ms), transformed {:.1}%",
            m.name(),
            m.table_ii_batch(),
            g.total_macs() as f64 / 1e9,
            c.kernels.len(),
            total.as_millis_f64(),
            tc_time.as_millis_f64(),
            100.0 * c.transformed_fraction()
        );
    }
    let (hits, misses) = device.cache_stats();
    println!("cache: {hits} hits, {misses} misses");
}
