//! The two-stage linear regression model for fused kernels (§VI-A/§VI-B).
//!
//! The fused kernel's duration, normalized by the Tensor part's original
//! duration `X_tc`, is a piecewise-linear function of the pair's load ratio
//! `X_cd / X_tc` (Fig. 10):
//!
//! * **before the inflection** (`Load_ratio < Load_ratio_opportune`) the CD
//!   part finishes inside the co-run; growing it lengthens the co-run only
//!   mildly (shallow slope);
//! * **after the inflection** the CD part solo-runs after the co-run, so
//!   every unit of extra CD work converts directly into fused duration
//!   (slope ≈ 1).
//!
//! The model fits one line per stage, takes their intersection as the
//! opportune load ratio, and predicts `T_fuse = f(ratio) × X_tc`
//! (Equations 2–6). Following §VI-C, it retrains from accumulated online
//! observations whenever a prediction misses by more than 10%.

use tacker_kernel::SimTime;

use crate::error::PredictError;
use crate::linreg::{mean_abs_pct_error, LinReg};

/// Which side of the inflection point a load ratio falls on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Co-run covers the whole execution (TC part may solo-run afterwards).
    BeforeInflection,
    /// The CUDA part solo-runs after the co-run.
    AfterInflection,
}

/// A fitted two-stage model for one (TC kernel, CD kernel) pair.
#[derive(Debug, Clone, PartialEq)]
pub struct FusedPairModel {
    pair: String,
    low: LinReg,
    high: LinReg,
    inflection: f64,
    samples: Vec<(f64, f64)>,
    error_threshold: f64,
    retrains: u32,
}

impl FusedPairModel {
    /// Fits the model from `(load_ratio, T_fuse / X_tc)` profile points.
    ///
    /// The paper profiles four ratios (10%, 20%, 180%, 190%) — two per
    /// stage; any sample set with at least two points per stage works. The
    /// split is chosen to minimize total squared error over all candidate
    /// partitions of the ratio-sorted samples.
    ///
    /// ```
    /// use tacker_kernel::SimTime;
    /// use tacker_predictor::FusedPairModel;
    ///
    /// # fn main() -> Result<(), tacker_predictor::PredictError> {
    /// // (load ratio, fused duration / X_tc) profile points.
    /// let model = FusedPairModel::fit("gemm+fft", &[
    ///     (0.1, 1.02), (0.2, 1.04), (1.8, 1.9), (1.9, 2.0),
    /// ])?;
    /// let x_tc = SimTime::from_micros(100);
    /// let x_cd = SimTime::from_micros(50); // ratio 0.5: co-run regime
    /// assert!(model.predict(x_tc, x_cd) < x_tc + x_cd);
    /// # Ok(())
    /// # }
    /// ```
    ///
    /// # Errors
    ///
    /// [`PredictError::InsufficientData`] with fewer than four samples, or
    /// degenerate fits.
    pub fn fit(
        pair: impl Into<String>,
        profile: &[(f64, f64)],
    ) -> Result<FusedPairModel, PredictError> {
        let mut samples = profile.to_vec();
        if samples.len() < 4 {
            return Err(PredictError::InsufficientData {
                got: samples.len(),
                need: 4,
            });
        }
        samples.sort_by(|a, b| a.0.total_cmp(&b.0));
        let (low, high) = Self::fit_split(&samples)?;
        let inflection = Self::inflection_of(&low, &high, &samples);
        Ok(FusedPairModel {
            pair: pair.into(),
            low,
            high,
            inflection,
            samples,
            error_threshold: 0.10,
            retrains: 0,
        })
    }

    fn fit_split(sorted: &[(f64, f64)]) -> Result<(LinReg, LinReg), PredictError> {
        let n = sorted.len();
        let mut best: Option<(f64, LinReg, LinReg)> = None;
        for split in 2..=(n - 2) {
            let (lo, hi) = sorted.split_at(split);
            let (Ok(l), Ok(h)) = (LinReg::fit(lo), LinReg::fit(hi)) else {
                continue;
            };
            let sse: f64 = lo
                .iter()
                .map(|(x, y)| (y - l.predict(*x)).powi(2))
                .chain(hi.iter().map(|(x, y)| (y - h.predict(*x)).powi(2)))
                .sum();
            if best.as_ref().is_none_or(|(b, _, _)| sse < *b) {
                best = Some((sse, l, h));
            }
        }
        best.map(|(_, l, h)| (l, h))
            .ok_or(PredictError::Degenerate {
                reason: "no valid two-stage split".to_string(),
            })
    }

    fn inflection_of(low: &LinReg, high: &LinReg, sorted: &[(f64, f64)]) -> f64 {
        let lo_x = sorted.first().map(|(x, _)| *x).unwrap_or(0.0);
        let hi_x = sorted.last().map(|(x, _)| *x).unwrap_or(2.0);
        match low.intersect_x(high) {
            Some(x) if x.is_finite() => x.clamp(lo_x, hi_x),
            _ => (lo_x + hi_x) / 2.0,
        }
    }

    /// The pair label.
    pub fn pair(&self) -> &str {
        &self.pair
    }

    /// The fitted opportune load ratio (the inflection point of Fig. 10).
    pub fn opportune_load_ratio(&self) -> f64 {
        self.inflection
    }

    /// How many online retrains have happened.
    pub fn retrains(&self) -> u32 {
        self.retrains
    }

    /// Which stage a load ratio falls on.
    pub fn stage(&self, load_ratio: f64) -> Stage {
        if load_ratio < self.inflection {
            Stage::BeforeInflection
        } else {
            Stage::AfterInflection
        }
    }

    /// Predicts the normalized duration `T_fuse / X_tc` at a load ratio.
    ///
    /// The curve is the upper envelope of the two stage lines, which is
    /// exactly the piecewise model when the post-inflection slope is
    /// steeper.
    pub fn predict_norm(&self, load_ratio: f64) -> f64 {
        let r = load_ratio.max(0.0);
        match self.stage(r) {
            Stage::BeforeInflection => self.low.predict(r),
            Stage::AfterInflection => self.high.predict(r),
        }
        .max(0.0)
    }

    /// Predicts the fused duration from the components' (predicted)
    /// original durations (Equation 1 + the two-stage model).
    pub fn predict(&self, x_tc: SimTime, x_cd: SimTime) -> SimTime {
        if x_tc == SimTime::ZERO {
            return x_cd;
        }
        let ratio = x_cd.ratio(x_tc);
        x_tc.mul_f64(self.predict_norm(ratio))
    }

    /// Records an online observation. If the relative prediction error
    /// exceeds the 10% threshold, the model retrains with the new point
    /// (and all accumulated history) and returns `true`.
    pub fn observe(&mut self, x_tc: SimTime, x_cd: SimTime, actual: SimTime) -> bool {
        if x_tc == SimTime::ZERO || actual == SimTime::ZERO {
            return false;
        }
        let ratio = x_cd.ratio(x_tc);
        let norm = actual.ratio(x_tc);
        let predicted = self.predict(x_tc, x_cd);
        let err = (predicted.as_nanos() as f64 - actual.as_nanos() as f64).abs()
            / actual.as_nanos() as f64;
        self.samples.push((ratio, norm));
        if err > self.error_threshold {
            self.samples.sort_by(|a, b| a.0.total_cmp(&b.0));
            if let Ok((low, high)) = Self::fit_split(&self.samples) {
                self.inflection = Self::inflection_of(&low, &high, &self.samples);
                self.low = low;
                self.high = high;
                self.retrains += 1;
            }
            true
        } else {
            false
        }
    }

    /// Mean absolute percentage error over held-out `(ratio, norm)` points,
    /// split by stage: `(before_inflection, after_inflection)`.
    pub fn validation_error_by_stage(&self, held_out: &[(f64, f64)]) -> (f64, f64) {
        let before: Vec<(f64, f64)> = held_out
            .iter()
            .copied()
            .filter(|(r, _)| self.stage(*r) == Stage::BeforeInflection)
            .collect();
        let after: Vec<(f64, f64)> = held_out
            .iter()
            .copied()
            .filter(|(r, _)| self.stage(*r) == Stage::AfterInflection)
            .collect();
        (
            mean_abs_pct_error(|r| self.predict_norm(r), &before),
            mean_abs_pct_error(|r| self.predict_norm(r), &after),
        )
    }

    /// The two fitted stage lines `(before, after)`.
    pub fn lines(&self) -> (&LinReg, &LinReg) {
        (&self.low, &self.high)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Synthetic ground truth shaped like Fig. 10: shallow slope 0.15 up to
    /// ratio 1.0 (norm 0.95→1.1), then slope 1.0.
    fn truth(ratio: f64) -> f64 {
        if ratio < 1.0 {
            0.95 + 0.15 * ratio
        } else {
            1.1 + 1.0 * (ratio - 1.0)
        }
    }

    fn paper_profile() -> Vec<(f64, f64)> {
        // The four profiling ratios from §VI-C.
        [0.1, 0.2, 1.8, 1.9]
            .iter()
            .map(|&r| (r, truth(r)))
            .collect()
    }

    #[test]
    fn recovers_inflection_from_four_points() {
        let m = FusedPairModel::fit("gemm+fft", &paper_profile()).unwrap();
        assert!(
            (m.opportune_load_ratio() - 1.0).abs() < 0.05,
            "inflection {}",
            m.opportune_load_ratio()
        );
        assert_eq!(m.stage(0.5), Stage::BeforeInflection);
        assert_eq!(m.stage(1.5), Stage::AfterInflection);
    }

    #[test]
    fn predictions_match_truth_on_both_stages() {
        let m = FusedPairModel::fit("p", &paper_profile()).unwrap();
        for r in [0.05, 0.3, 0.7, 1.2, 1.6, 1.95] {
            let pred = m.predict_norm(r);
            let t = truth(r);
            assert!((pred - t).abs() / t < 0.03, "ratio {r}: {pred} vs {t}");
        }
    }

    #[test]
    fn predict_scales_linearly_with_x_tc() {
        // Second observation of §VI-A: fixed ratio ⇒ linear in X_tc.
        let m = FusedPairModel::fit("p", &paper_profile()).unwrap();
        let d1 = m.predict(SimTime::from_micros(100), SimTime::from_micros(50));
        let d2 = m.predict(SimTime::from_micros(200), SimTime::from_micros(100));
        let ratio = d2.as_nanos() as f64 / d1.as_nanos() as f64;
        assert!((ratio - 2.0).abs() < 1e-6);
    }

    #[test]
    fn zero_tc_duration_degrades_to_cd_duration() {
        let m = FusedPairModel::fit("p", &paper_profile()).unwrap();
        assert_eq!(
            m.predict(SimTime::ZERO, SimTime::from_micros(7)),
            SimTime::from_micros(7)
        );
    }

    #[test]
    fn observe_retrains_on_large_error() {
        let mut m = FusedPairModel::fit("p", &paper_profile()).unwrap();
        // Reality shifted: everything 30% slower.
        let x_tc = SimTime::from_micros(100);
        let mut retrained = false;
        for r in [0.4, 0.6, 0.8, 1.2, 1.4] {
            let x_cd = x_tc.mul_f64(r);
            let actual = x_tc.mul_f64(truth(r) * 1.3);
            retrained |= m.observe(x_tc, x_cd, actual);
        }
        assert!(retrained);
        assert!(m.retrains() >= 1);
        // After retraining, predictions track the shifted truth better.
        let pred = m.predict_norm(0.5);
        assert!((pred - truth(0.5) * 1.3).abs() / (truth(0.5) * 1.3) < 0.15);
    }

    #[test]
    fn observe_keeps_model_on_small_error() {
        let mut m = FusedPairModel::fit("p", &paper_profile()).unwrap();
        let x_tc = SimTime::from_micros(100);
        let x_cd = SimTime::from_micros(50);
        let actual = x_tc.mul_f64(truth(0.5) * 1.02); // 2% off
        assert!(!m.observe(x_tc, x_cd, actual));
        assert_eq!(m.retrains(), 0);
    }

    #[test]
    fn validation_error_split_by_stage() {
        let m = FusedPairModel::fit("p", &paper_profile()).unwrap();
        let held: Vec<(f64, f64)> = [0.3, 0.5, 1.3, 1.7]
            .iter()
            .map(|&r| (r, truth(r)))
            .collect();
        let (before, after) = m.validation_error_by_stage(&held);
        assert!(before < 0.08, "before {before}");
        assert!(after < 0.08, "after {after}");
    }

    #[test]
    fn prediction_is_continuous_at_the_inflection() {
        let m = FusedPairModel::fit("p", &paper_profile()).unwrap();
        let infl = m.opportune_load_ratio();
        let below = m.predict_norm(infl - 1e-9);
        let above = m.predict_norm(infl + 1e-9);
        // The two stage lines intersect at the inflection, so the curve is
        // continuous there.
        assert!((below - above).abs() < 1e-3, "jump {below} → {above}");
    }

    #[test]
    fn negative_ratios_clamp_to_zero() {
        let m = FusedPairModel::fit("p", &paper_profile()).unwrap();
        assert_eq!(m.predict_norm(-5.0), m.predict_norm(0.0));
    }

    #[test]
    fn too_few_samples_rejected() {
        assert!(matches!(
            FusedPairModel::fit("p", &[(0.1, 1.0), (0.2, 1.0), (1.8, 2.0)]),
            Err(PredictError::InsufficientData { .. })
        ));
    }
}
