//! Online predicted-vs-actual error feedback (the serving runtime's
//! input to the adaptive QoS guard).
//!
//! The duration models in this crate are trained offline and refreshed
//! only when a single observation misses by >10% (§VI-C). Under
//! *sustained* misprediction — a faulty profile, interference the model
//! never saw — individual refreshes are not enough: the scheduler needs
//! a smoothed, per-kernel view of how wrong predictions have been
//! recently, so it can widen safety margins and shed risky work.
//! [`ErrorFeedback`] keeps one EWMA of the relative prediction error per
//! kernel identity and exposes the worst sufficiently-sampled stream.

use std::collections::HashMap;
use std::sync::Mutex;

/// An exponentially-weighted moving average of a nonnegative signal.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ewma {
    alpha: f64,
    value: f64,
    count: u64,
}

impl Ewma {
    /// Creates an empty EWMA with smoothing factor `alpha ∈ (0, 1]`
    /// (larger = more responsive).
    ///
    /// # Panics
    ///
    /// Panics when `alpha` is outside `(0, 1]`.
    pub fn new(alpha: f64) -> Ewma {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha {alpha} out of range");
        Ewma {
            alpha,
            value: 0.0,
            count: 0,
        }
    }

    /// Folds one observation in. The first observation initializes the
    /// average exactly.
    pub fn observe(&mut self, x: f64) {
        self.count += 1;
        if self.count == 1 {
            self.value = x;
        } else {
            self.value += self.alpha * (x - self.value);
        }
    }

    /// The current smoothed value (0.0 before any observation).
    pub fn value(&self) -> f64 {
        self.value
    }

    /// Observations folded in so far.
    pub fn count(&self) -> u64 {
        self.count
    }
}

/// Per-kernel EWMA registry of relative prediction errors.
///
/// Keys are opaque kernel identities (the caller supplies the stable
/// content fingerprint); values are smoothed `|predicted − actual| /
/// actual` streams.
#[derive(Debug)]
pub struct ErrorFeedback {
    alpha: f64,
    streams: Mutex<HashMap<u64, Ewma>>,
}

impl ErrorFeedback {
    /// Creates a registry whose per-kernel EWMAs use `alpha`.
    pub fn new(alpha: f64) -> ErrorFeedback {
        ErrorFeedback {
            alpha,
            streams: Mutex::new(HashMap::new()),
        }
    }

    /// Folds one predicted-vs-actual pair (in nanoseconds) into the
    /// kernel's error stream and returns the relative error of this
    /// observation.
    pub fn observe(&self, kernel: u64, predicted_ns: u64, actual_ns: u64) -> f64 {
        let rel = if actual_ns == 0 {
            0.0
        } else {
            (predicted_ns as f64 - actual_ns as f64).abs() / actual_ns as f64
        };
        self.streams
            .lock()
            .expect("feedback poisoned")
            .entry(kernel)
            .or_insert_with(|| Ewma::new(self.alpha))
            .observe(rel);
        rel
    }

    /// The smoothed error of one kernel's stream, if it has any samples.
    pub fn error_of(&self, kernel: u64) -> Option<f64> {
        self.streams
            .lock()
            .expect("feedback poisoned")
            .get(&kernel)
            .map(Ewma::value)
    }

    /// The worst smoothed error over every stream with at least
    /// `min_samples` observations (0.0 when none qualifies). Streams
    /// below the sample floor are ignored so a single noisy launch
    /// cannot trip guard thresholds.
    pub fn max_error(&self, min_samples: u64) -> f64 {
        self.streams
            .lock()
            .expect("feedback poisoned")
            .values()
            .filter(|e| e.count() >= min_samples)
            .map(Ewma::value)
            .fold(0.0, f64::max)
    }

    /// Number of kernel streams tracked.
    pub fn stream_count(&self) -> usize {
        self.streams.lock().expect("feedback poisoned").len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ewma_initializes_then_smooths() {
        let mut e = Ewma::new(0.5);
        assert_eq!(e.value(), 0.0);
        e.observe(1.0);
        assert_eq!(e.value(), 1.0);
        e.observe(0.0);
        assert!((e.value() - 0.5).abs() < 1e-12);
        assert_eq!(e.count(), 2);
    }

    #[test]
    #[should_panic]
    fn bad_alpha_panics() {
        let _ = Ewma::new(0.0);
    }

    #[test]
    fn feedback_tracks_relative_error_per_kernel() {
        let fb = ErrorFeedback::new(0.3);
        let rel = fb.observe(1, 100, 150);
        assert!((rel - 1.0 / 3.0).abs() < 1e-12);
        fb.observe(2, 100, 100);
        assert!((fb.error_of(1).unwrap() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(fb.error_of(2), Some(0.0));
        assert_eq!(fb.error_of(3), None);
        assert_eq!(fb.stream_count(), 2);
    }

    #[test]
    fn max_error_respects_sample_floor() {
        let fb = ErrorFeedback::new(0.5);
        for _ in 0..4 {
            fb.observe(7, 100, 200); // rel 0.5 each time
        }
        fb.observe(8, 1000, 100); // rel 9.0, but only one sample
        assert!((fb.max_error(2) - 0.5).abs() < 1e-12);
        assert!((fb.max_error(1) - 9.0).abs() < 1e-12);
        assert_eq!(fb.max_error(10), 0.0);
    }

    #[test]
    fn zero_actual_is_not_an_error() {
        let fb = ErrorFeedback::new(0.5);
        assert_eq!(fb.observe(1, 100, 0), 0.0);
    }
}
