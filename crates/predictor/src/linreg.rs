//! Ordinary least-squares simple linear regression.

use crate::error::PredictError;

/// A fitted line `y = slope · x + intercept`.
///
/// ```
/// use tacker_predictor::LinReg;
/// let lr = LinReg::fit(&[(1.0, 3.0), (2.0, 5.0), (3.0, 7.0)]).unwrap();
/// assert!((lr.slope() - 2.0).abs() < 1e-9);
/// assert!((lr.predict(10.0) - 21.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinReg {
    slope: f64,
    intercept: f64,
}

impl LinReg {
    /// Fits a line to `(x, y)` samples by least squares.
    ///
    /// # Errors
    ///
    /// * [`PredictError::InsufficientData`] with fewer than two samples;
    /// * [`PredictError::Degenerate`] when all x values coincide or inputs
    ///   are non-finite.
    pub fn fit(samples: &[(f64, f64)]) -> Result<LinReg, PredictError> {
        if samples.len() < 2 {
            return Err(PredictError::InsufficientData {
                got: samples.len(),
                need: 2,
            });
        }
        if samples
            .iter()
            .any(|(x, y)| !x.is_finite() || !y.is_finite())
        {
            return Err(PredictError::Degenerate {
                reason: "non-finite sample".to_string(),
            });
        }
        let n = samples.len() as f64;
        let sx: f64 = samples.iter().map(|(x, _)| x).sum();
        let sy: f64 = samples.iter().map(|(_, y)| y).sum();
        let sxx: f64 = samples.iter().map(|(x, _)| x * x).sum();
        let sxy: f64 = samples.iter().map(|(x, y)| x * y).sum();
        let denom = n * sxx - sx * sx;
        if denom.abs() < 1e-12 {
            return Err(PredictError::Degenerate {
                reason: "all x values identical".to_string(),
            });
        }
        let slope = (n * sxy - sx * sy) / denom;
        let intercept = (sy - slope * sx) / n;
        Ok(LinReg { slope, intercept })
    }

    /// Constructs a line directly.
    pub fn from_parts(slope: f64, intercept: f64) -> LinReg {
        LinReg { slope, intercept }
    }

    /// The fitted slope.
    pub fn slope(&self) -> f64 {
        self.slope
    }

    /// The fitted intercept.
    pub fn intercept(&self) -> f64 {
        self.intercept
    }

    /// Evaluates the line at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.slope * x + self.intercept
    }

    /// Coefficient of determination against the given samples.
    pub fn r2(&self, samples: &[(f64, f64)]) -> f64 {
        if samples.is_empty() {
            return 0.0;
        }
        let mean = samples.iter().map(|(_, y)| y).sum::<f64>() / samples.len() as f64;
        let ss_tot: f64 = samples.iter().map(|(_, y)| (y - mean).powi(2)).sum();
        let ss_res: f64 = samples
            .iter()
            .map(|(x, y)| (y - self.predict(*x)).powi(2))
            .sum();
        if ss_tot < 1e-12 {
            if ss_res < 1e-12 {
                1.0
            } else {
                0.0
            }
        } else {
            1.0 - ss_res / ss_tot
        }
    }

    /// The x where this line intersects `other`; `None` for parallel lines.
    pub fn intersect_x(&self, other: &LinReg) -> Option<f64> {
        let ds = self.slope - other.slope;
        if ds.abs() < 1e-12 {
            None
        } else {
            Some((other.intercept - self.intercept) / ds)
        }
    }
}

/// Mean absolute percentage error of predictions against samples, in `[0, ∞)`.
pub fn mean_abs_pct_error(pred: impl Fn(f64) -> f64, samples: &[(f64, f64)]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples
        .iter()
        .filter(|(_, y)| y.abs() > 1e-12)
        .map(|(x, y)| ((pred(*x) - y) / y).abs())
        .sum::<f64>()
        / samples.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line_recovered() {
        let samples: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 3.0 * i as f64 + 7.0)).collect();
        let lr = LinReg::fit(&samples).unwrap();
        assert!((lr.slope() - 3.0).abs() < 1e-9);
        assert!((lr.intercept() - 7.0).abs() < 1e-9);
        assert!((lr.r2(&samples) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn noisy_fit_has_reasonable_r2() {
        let samples: Vec<(f64, f64)> = (0..50)
            .map(|i| {
                let x = i as f64;
                // deterministic pseudo-noise
                let noise = ((i * 37 % 11) as f64 - 5.0) * 0.1;
                (x, 2.0 * x + 1.0 + noise)
            })
            .collect();
        let lr = LinReg::fit(&samples).unwrap();
        assert!((lr.slope() - 2.0).abs() < 0.05);
        assert!(lr.r2(&samples) > 0.99);
    }

    #[test]
    fn degenerate_inputs_rejected() {
        assert!(matches!(
            LinReg::fit(&[(1.0, 2.0)]),
            Err(PredictError::InsufficientData { .. })
        ));
        assert!(matches!(
            LinReg::fit(&[(1.0, 2.0), (1.0, 3.0)]),
            Err(PredictError::Degenerate { .. })
        ));
        assert!(matches!(
            LinReg::fit(&[(f64::NAN, 2.0), (1.0, 3.0)]),
            Err(PredictError::Degenerate { .. })
        ));
    }

    #[test]
    fn intersection() {
        let a = LinReg::from_parts(1.0, 0.0);
        let b = LinReg::from_parts(2.0, -1.0);
        assert!((a.intersect_x(&b).unwrap() - 1.0).abs() < 1e-12);
        assert!(a.intersect_x(&a).is_none());
    }

    #[test]
    fn mape_zero_for_perfect_predictions() {
        let samples = [(1.0, 2.0), (2.0, 4.0)];
        let e = mean_abs_pct_error(|x| 2.0 * x, &samples);
        assert!(e < 1e-12);
        let e = mean_abs_pct_error(|x| 2.2 * x, &samples);
        assert!((e - 0.1).abs() < 1e-9);
    }
}

/// Multiple linear regression `y = w₀ + Σ wᵢ·xᵢ`, fitted by solving the
/// normal equations with Gaussian elimination.
///
/// Used for kernels whose duration depends on more than one launch knob
/// (e.g. a GEMM's duration ≈ a·(blocks·k_iters) + b·blocks + c).
#[derive(Debug, Clone, PartialEq)]
pub struct MultiLinReg {
    /// `[intercept, w₁, …, w_n]`.
    weights: Vec<f64>,
}

impl MultiLinReg {
    /// Fits the regression to rows of features and targets.
    ///
    /// # Errors
    ///
    /// * [`PredictError::InsufficientData`] with fewer rows than
    ///   `features + 1`;
    /// * [`PredictError::Degenerate`] for inconsistent row widths,
    ///   non-finite inputs or a singular normal matrix.
    pub fn fit(rows: &[Vec<f64>], targets: &[f64]) -> Result<MultiLinReg, PredictError> {
        let n = rows.len();
        if n == 0 || n != targets.len() {
            return Err(PredictError::InsufficientData {
                got: n.min(targets.len()),
                need: 2,
            });
        }
        let d = rows[0].len() + 1; // + intercept
        if n < d {
            return Err(PredictError::InsufficientData { got: n, need: d });
        }
        if rows.iter().any(|r| r.len() + 1 != d)
            || rows.iter().flatten().any(|v| !v.is_finite())
            || targets.iter().any(|v| !v.is_finite())
        {
            return Err(PredictError::Degenerate {
                reason: "inconsistent or non-finite rows".to_string(),
            });
        }
        // Normal equations: (XᵀX) w = Xᵀy, with X including the 1s column.
        let mut xtx = vec![vec![0.0f64; d]; d];
        let mut xty = vec![0.0f64; d];
        for (row, &y) in rows.iter().zip(targets) {
            let mut x = Vec::with_capacity(d);
            x.push(1.0);
            x.extend_from_slice(row);
            for i in 0..d {
                xty[i] += x[i] * y;
                for j in 0..d {
                    xtx[i][j] += x[i] * x[j];
                }
            }
        }
        // Small ridge term for numerical stability on collinear features.
        for (i, row) in xtx.iter_mut().enumerate() {
            row[i] += 1e-9 * (1.0 + row[i].abs());
        }
        let weights = solve_gauss(xtx, xty).ok_or_else(|| PredictError::Degenerate {
            reason: "singular normal matrix".to_string(),
        })?;
        Ok(MultiLinReg { weights })
    }

    /// Evaluates the regression at a feature row.
    ///
    /// # Panics
    ///
    /// Panics if `row` has a different width than the training rows.
    pub fn predict(&self, row: &[f64]) -> f64 {
        assert_eq!(row.len() + 1, self.weights.len(), "feature width mismatch");
        self.weights[0]
            + row
                .iter()
                .zip(&self.weights[1..])
                .map(|(x, w)| x * w)
                .sum::<f64>()
    }

    /// The fitted weights `[intercept, w₁, …]`.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }
}

/// Solves `A·x = b` by Gaussian elimination with partial pivoting.
fn solve_gauss(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Option<Vec<f64>> {
    let n = b.len();
    for col in 0..n {
        let pivot = (col..n).max_by(|&i, &j| a[i][col].abs().total_cmp(&a[j][col].abs()))?;
        if a[pivot][col].abs() < 1e-30 {
            return None;
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        for row in (col + 1)..n {
            let f = a[row][col] / a[col][col];
            let (upper, lower) = a.split_at_mut(row);
            let pivot_row = &upper[col];
            for (dst, src) in lower[0][col..].iter_mut().zip(&pivot_row[col..]) {
                *dst -= f * src;
            }
            b[row] -= f * b[col];
        }
    }
    let mut x = vec![0.0; n];
    for col in (0..n).rev() {
        let mut acc = b[col];
        for k in (col + 1)..n {
            acc -= a[col][k] * x[k];
        }
        x[col] = acc / a[col][col];
    }
    Some(x)
}

#[cfg(test)]
mod multi_tests {
    use super::*;

    #[test]
    fn recovers_planar_fit() {
        let rows: Vec<Vec<f64>> = (0..20)
            .map(|i| vec![(i % 5) as f64, (i / 5) as f64])
            .collect();
        let targets: Vec<f64> = rows.iter().map(|r| 7.0 + 2.0 * r[0] - 3.0 * r[1]).collect();
        let m = MultiLinReg::fit(&rows, &targets).unwrap();
        assert!((m.predict(&[10.0, 2.0]) - (7.0 + 20.0 - 6.0)).abs() < 1e-6);
        assert!((m.weights()[1] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn rejects_underdetermined_and_bad_rows() {
        assert!(matches!(
            MultiLinReg::fit(&[vec![1.0, 2.0]], &[3.0]),
            Err(PredictError::InsufficientData { .. })
        ));
        assert!(
            MultiLinReg::fit(&[vec![1.0], vec![2.0, 3.0], vec![4.0]], &[1.0, 2.0, 3.0]).is_err()
        );
        assert!(
            MultiLinReg::fit(&[vec![f64::NAN], vec![1.0], vec![2.0]], &[1.0, 2.0, 3.0]).is_err()
        );
    }

    #[test]
    fn collinear_features_survive_via_ridge() {
        // Second feature is exactly 2× the first.
        let rows: Vec<Vec<f64>> = (1..10).map(|i| vec![i as f64, 2.0 * i as f64]).collect();
        let targets: Vec<f64> = (1..10).map(|i| 5.0 * i as f64).collect();
        let m = MultiLinReg::fit(&rows, &targets).unwrap();
        assert!((m.predict(&[4.0, 8.0]) - 20.0).abs() < 1e-3);
    }
}
