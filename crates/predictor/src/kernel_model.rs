//! Per-kernel duration models (§VI-C).
//!
//! "We choose LR to predict each GPU kernel's duration, and the input is
//! the block number in non-PTB mode, and the output is the kernel's
//! duration." A handful of profiled points per kernel suffices because PTB
//! execution is repetitive and stable.
//!
//! The model's input is a scalar *work feature*. For most kernels that is
//! simply the original block count; kernels whose per-block work also
//! scales with a launch parameter (e.g. a GEMM's `K` loop) fold it into
//! the feature (`blocks × k_iters`), matching the paper's "basic runtime
//! configuration (input parameters)" phrasing.

use tacker_kernel::SimTime;

use crate::error::PredictError;
use crate::linreg::{mean_abs_pct_error, MultiLinReg};

/// A fitted duration model for one kernel: work features → duration.
///
/// The feature row is `[work]` for simple kernels or
/// `[blocks × loop_iters, blocks]` for kernels with a per-block loop knob;
/// the model is linear in whatever row it was trained on.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelDurationModel {
    kernel: String,
    lr: MultiLinReg,
    rows: Vec<Vec<f64>>,
    targets: Vec<f64>,
}

impl KernelDurationModel {
    /// Fits a model from `(feature_row, duration)` profile points.
    ///
    /// # Errors
    ///
    /// Propagates [`PredictError`] from the regression (needs at least
    /// `features + 1` rows).
    pub fn fit_rows(
        kernel: impl Into<String>,
        profile: &[(Vec<f64>, SimTime)],
    ) -> Result<KernelDurationModel, PredictError> {
        let rows: Vec<Vec<f64>> = profile.iter().map(|(r, _)| r.clone()).collect();
        let targets: Vec<f64> = profile.iter().map(|(_, d)| d.as_nanos() as f64).collect();
        let lr = MultiLinReg::fit(&rows, &targets)?;
        Ok(KernelDurationModel {
            kernel: kernel.into(),
            lr,
            rows,
            targets,
        })
    }

    /// Fits a model from scalar `(work_feature, duration)` profile points.
    ///
    /// # Errors
    ///
    /// Same as [`KernelDurationModel::fit_rows`].
    pub fn fit(
        kernel: impl Into<String>,
        profile: &[(f64, SimTime)],
    ) -> Result<KernelDurationModel, PredictError> {
        let rows: Vec<(Vec<f64>, SimTime)> = profile.iter().map(|(x, d)| (vec![*x], *d)).collect();
        Self::fit_rows(kernel, &rows)
    }

    /// Convenience: fit from `(original_blocks, duration)` points.
    ///
    /// # Errors
    ///
    /// Same as [`KernelDurationModel::fit_rows`].
    pub fn fit_blocks(
        kernel: impl Into<String>,
        profile: &[(u64, SimTime)],
    ) -> Result<KernelDurationModel, PredictError> {
        let feat: Vec<(f64, SimTime)> = profile.iter().map(|(b, d)| (*b as f64, *d)).collect();
        Self::fit(kernel, &feat)
    }

    /// The kernel this model describes.
    pub fn kernel(&self) -> &str {
        &self.kernel
    }

    /// Predicts the duration for a feature row. Negative extrapolations
    /// clamp to zero.
    ///
    /// # Panics
    ///
    /// Panics if `row` has a different width than the training rows.
    pub fn predict_row(&self, row: &[f64]) -> SimTime {
        let ns = self.lr.predict(row).max(0.0);
        SimTime::from_nanos(ns.round() as u64)
    }

    /// Predicts the duration for a scalar work feature (single-feature
    /// models only).
    ///
    /// # Panics
    ///
    /// Panics if the model was trained on multi-feature rows.
    pub fn predict(&self, work: f64) -> SimTime {
        self.predict_row(&[work])
    }

    /// Mean absolute percentage error over the training profile.
    pub fn training_error(&self) -> f64 {
        let samples: Vec<(f64, f64)> = self
            .rows
            .iter()
            .zip(&self.targets)
            .enumerate()
            .map(|(i, (_, y))| (i as f64, *y))
            .collect();
        mean_abs_pct_error(|i| self.lr.predict(&self.rows[i as usize]), &samples)
    }

    /// Mean absolute percentage error over held-out scalar points.
    pub fn validation_error(&self, held_out: &[(f64, SimTime)]) -> f64 {
        let samples: Vec<(f64, f64)> = held_out
            .iter()
            .map(|(b, d)| (*b, d.as_nanos() as f64))
            .collect();
        mean_abs_pct_error(|x| self.lr.predict(&[x]), &samples)
    }

    /// Adds a fresh scalar observation and refits (online refresh).
    ///
    /// # Errors
    ///
    /// Propagates regression failures; the previous fit is kept on error.
    pub fn observe(&mut self, work: f64, duration: SimTime) -> Result<(), PredictError> {
        self.observe_row(vec![work], duration)
    }

    /// Adds a fresh observation row and refits.
    ///
    /// # Errors
    ///
    /// Propagates regression failures; the previous fit is kept on error.
    pub fn observe_row(&mut self, row: Vec<f64>, duration: SimTime) -> Result<(), PredictError> {
        self.rows.push(row);
        self.targets.push(duration.as_nanos() as f64);
        self.lr = MultiLinReg::fit(&self.rows, &self.targets)?;
        Ok(())
    }

    /// The underlying regression.
    pub fn line(&self) -> &MultiLinReg {
        &self.lr
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(slope_ns: u64, intercept_ns: u64) -> Vec<(u64, SimTime)> {
        [64u64, 128, 256, 512, 1024]
            .iter()
            .map(|&b| (b, SimTime::from_nanos(intercept_ns + slope_ns * b)))
            .collect()
    }

    #[test]
    fn linear_kernels_predict_exactly() {
        let m = KernelDurationModel::fit_blocks("sgemm", &profile(100, 3000)).unwrap();
        assert_eq!(m.kernel(), "sgemm");
        assert_eq!(m.predict(2048.0), SimTime::from_nanos(3000 + 100 * 2048));
        assert!(m.training_error() < 1e-4);
    }

    #[test]
    fn validation_error_reported() {
        let m = KernelDurationModel::fit_blocks("fft", &profile(100, 3000)).unwrap();
        // Held-out points 10% slower than the line.
        let held: Vec<(f64, SimTime)> = [300u64, 700]
            .iter()
            .map(|&b| {
                (
                    b as f64,
                    SimTime::from_nanos(((3000 + 100 * b) as f64 * 1.1) as u64),
                )
            })
            .collect();
        let err = m.validation_error(&held);
        assert!((err - 0.0909).abs() < 0.01, "err {err}");
    }

    #[test]
    fn observe_refits() {
        let mut m = KernelDurationModel::fit_blocks("lbm", &profile(100, 0)).unwrap();
        // Feed dominant points from a steeper reality; slope should move up.
        for b in [2048u64, 4096, 8192] {
            m.observe(b as f64, SimTime::from_nanos(200 * b)).unwrap();
        }
        assert!(m.line().weights()[1] > 100.0);
    }

    #[test]
    fn negative_extrapolation_clamps() {
        let m = KernelDurationModel::fit(
            "x",
            &[
                (100.0, SimTime::from_nanos(1000)),
                (200.0, SimTime::from_nanos(3000)),
            ],
        )
        .unwrap();
        assert_eq!(m.predict(0.0), SimTime::ZERO);
    }

    #[test]
    fn fractional_work_features_supported() {
        // A GEMM-style feature: blocks × k_iters.
        let m = KernelDurationModel::fit(
            "gemm",
            &[
                (64.0 * 8.0, SimTime::from_micros(10)),
                (128.0 * 8.0, SimTime::from_micros(20)),
                (128.0 * 16.0, SimTime::from_micros(40)),
            ],
        )
        .unwrap();
        let mid = m.predict(96.0 * 8.0);
        assert!(mid > SimTime::from_micros(10) && mid < SimTime::from_micros(20));
    }
}
