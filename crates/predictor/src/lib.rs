//! Duration prediction models for Tacker (§VI of the paper).
//!
//! Tacker's QoS guarantees rest on predicting, *before launching*, how long
//! a kernel — original or fused — will take:
//!
//! * single PTB kernels have stable per-block behaviour, so their duration
//!   is linear in the original block count: [`KernelDurationModel`] is a
//!   per-kernel least-squares fit (as in Baymax/Prophet/GDP/HSM);
//! * a fused kernel's duration is governed by the pair's **load ratio**
//!   `X_cd / X_tc` (Equation 1): when the ratio is below the *opportune*
//!   point both parts co-run and finish together; beyond it the CUDA part
//!   solo-runs after the co-run. [`FusedPairModel`] fits the resulting
//!   two-stage linear curve (Fig. 10) and predicts
//!   `T_fuse = f(load_ratio) × X_tc` (Equations 2–6);
//! * models are cheap to (re)train; [`FusedPairModel::observe`] implements
//!   the paper's online refresh whenever prediction error exceeds 10%.

pub mod error;
pub mod feedback;
pub mod fused_model;
pub mod kernel_model;
pub mod linreg;

pub use error::PredictError;
pub use feedback::{ErrorFeedback, Ewma};
pub use fused_model::{FusedPairModel, Stage};
pub use kernel_model::KernelDurationModel;
pub use linreg::{LinReg, MultiLinReg};
