//! Predictor error type.

use std::error::Error;
use std::fmt;

/// Errors from model fitting and prediction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PredictError {
    /// Fewer samples than the model needs.
    InsufficientData {
        /// Samples provided.
        got: usize,
        /// Samples required.
        need: usize,
    },
    /// The inputs are degenerate (e.g. all x values identical).
    Degenerate {
        /// Human-readable reason.
        reason: String,
    },
}

impl fmt::Display for PredictError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PredictError::InsufficientData { got, need } => {
                write!(f, "need at least {need} samples, got {got}")
            }
            PredictError::Degenerate { reason } => write!(f, "degenerate fit: {reason}"),
        }
    }
}

impl Error for PredictError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = PredictError::InsufficientData { got: 1, need: 2 };
        assert!(e.to_string().contains("at least 2"));
    }
}
