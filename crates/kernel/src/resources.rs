//! Explicit SM resources: what a block consumes and what an SM provides.
//!
//! These are the "explicit resources" of §III-C in the paper (thread slots,
//! registers, shared memory, block slots, barriers). The fuser's feasibility
//! checks and the simulator's occupancy calculator both use them.

use std::fmt;

use crate::WARP_SIZE;

/// Per-block resource usage of a kernel.
///
/// ```
/// use tacker_kernel::ResourceUsage;
/// let r = ResourceUsage::new(64, 16 * 1024);
/// assert_eq!(r.registers_per_thread, 64);
/// assert_eq!(r.shared_mem_bytes, 16 * 1024);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct ResourceUsage {
    /// Registers used by each thread.
    pub registers_per_thread: u32,
    /// Static shared memory allocated per block, in bytes.
    pub shared_mem_bytes: u64,
    /// Number of distinct named barriers the block uses (`bar.sync` ids).
    /// Plain kernels use one (`__syncthreads`); fused kernels use one per
    /// branch that synchronizes.
    pub barriers: u32,
}

impl ResourceUsage {
    /// Creates a usage record with a single implicit barrier.
    pub const fn new(registers_per_thread: u32, shared_mem_bytes: u64) -> Self {
        ResourceUsage {
            registers_per_thread,
            shared_mem_bytes,
            barriers: 1,
        }
    }

    /// Sets the number of named barriers.
    pub const fn with_barriers(mut self, barriers: u32) -> Self {
        self.barriers = barriers;
        self
    }

    /// Registers consumed by a whole block of `threads` threads, with
    /// allocation granularity rounding (the hardware allocates registers in
    /// warp-sized chunks).
    pub fn registers_per_block(&self, threads: u32) -> u64 {
        let warps = threads.div_ceil(WARP_SIZE) as u64;
        warps * WARP_SIZE as u64 * self.registers_per_thread as u64
    }

    /// Combines the usage of two component kernels fused into one block.
    ///
    /// Registers take the max per-thread count (each thread runs only one
    /// branch, but the compiler must allocate for the widest); shared memory
    /// and barrier counts add, exactly as in the paper's §V-C example where a
    /// 16 KB + 32 KB pair needs 48 KB.
    pub fn fuse_with(&self, other: &ResourceUsage) -> ResourceUsage {
        ResourceUsage {
            registers_per_thread: self.registers_per_thread.max(other.registers_per_thread),
            shared_mem_bytes: self.shared_mem_bytes + other.shared_mem_bytes,
            barriers: self.barriers + other.barriers,
        }
    }

    /// Scales shared memory and keeps per-thread quantities, used when a
    /// fused block contains `n` copies of this kernel's block.
    pub fn scaled_blocks(&self, n: u32) -> ResourceUsage {
        ResourceUsage {
            registers_per_thread: self.registers_per_thread,
            shared_mem_bytes: self.shared_mem_bytes * n as u64,
            barriers: self.barriers,
        }
    }
}

impl fmt::Display for ResourceUsage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} reg/thr, {} B smem, {} barriers",
            self.registers_per_thread, self.shared_mem_bytes, self.barriers
        )
    }
}

/// Per-SM capacity limits of a GPU generation.
///
/// Defaults match the NVIDIA Turing SM used in the paper's main experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SmCapacity {
    /// Maximum resident threads per SM.
    pub max_threads: u32,
    /// Maximum resident blocks per SM.
    pub max_blocks: u32,
    /// Register file size (32-bit registers) per SM.
    pub registers: u64,
    /// Shared memory per SM, bytes.
    pub shared_mem_bytes: u64,
    /// Hardware named barriers per SM block slot (PTX allows ids 0..16).
    pub max_barriers: u32,
}

impl SmCapacity {
    /// Turing (RTX 2080Ti) SM limits.
    pub const TURING: SmCapacity = SmCapacity {
        max_threads: 1024,
        max_blocks: 16,
        registers: 65_536,
        shared_mem_bytes: 64 * 1024,
        max_barriers: 16,
    };

    /// Volta (V100) SM limits — notably 96 KB shared memory, which the paper
    /// credits for V100's better memory-intensive co-location results.
    pub const VOLTA: SmCapacity = SmCapacity {
        max_threads: 2048,
        max_blocks: 32,
        registers: 65_536,
        shared_mem_bytes: 96 * 1024,
        max_barriers: 16,
    };

    /// How many blocks of the given shape fit on one SM, limited by thread
    /// slots, block slots, registers, shared memory and named barriers.
    ///
    /// Returns 0 when a single block does not fit at all.
    ///
    /// ```
    /// use tacker_kernel::{ResourceUsage, SmCapacity};
    /// let sm = SmCapacity::TURING;
    /// // 256 threads, 32 regs/thread, 16 KB smem: limited by smem to 4.
    /// let r = ResourceUsage::new(32, 16 * 1024);
    /// assert_eq!(sm.blocks_per_sm(&r, 256), 4);
    /// ```
    pub fn blocks_per_sm(&self, usage: &ResourceUsage, threads_per_block: u32) -> u32 {
        if threads_per_block == 0 || threads_per_block > self.max_threads {
            return 0;
        }
        let by_threads = self.max_threads / threads_per_block;
        let regs_per_block = usage.registers_per_block(threads_per_block);
        let by_regs = if regs_per_block == 0 {
            self.max_blocks
        } else if regs_per_block > self.registers {
            0
        } else {
            (self.registers / regs_per_block) as u32
        };
        let by_smem = if usage.shared_mem_bytes == 0 {
            self.max_blocks
        } else if usage.shared_mem_bytes > self.shared_mem_bytes {
            0
        } else {
            (self.shared_mem_bytes / usage.shared_mem_bytes) as u32
        };
        let by_barriers = if usage.barriers == 0 {
            self.max_blocks
        } else if usage.barriers > self.max_barriers {
            0
        } else {
            self.max_barriers / usage.barriers
        };
        by_threads
            .min(by_regs)
            .min(by_smem)
            .min(by_barriers)
            .min(self.max_blocks)
    }

    /// Whether a single block of this shape fits on the SM at all.
    pub fn fits(&self, usage: &ResourceUsage, threads_per_block: u32) -> bool {
        self.blocks_per_sm(usage, threads_per_block) > 0
    }
}

impl Default for SmCapacity {
    fn default() -> Self {
        SmCapacity::TURING
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_rounding_is_warp_granular() {
        let r = ResourceUsage::new(40, 0);
        // 33 threads round to 2 warps = 64 threads worth of registers.
        assert_eq!(r.registers_per_block(33), 64 * 40);
    }

    #[test]
    fn fuse_adds_smem_and_barriers_maxes_regs() {
        let a = ResourceUsage::new(32, 16 * 1024);
        let b = ResourceUsage::new(64, 32 * 1024);
        let f = a.fuse_with(&b);
        assert_eq!(f.registers_per_thread, 64);
        assert_eq!(f.shared_mem_bytes, 48 * 1024);
        assert_eq!(f.barriers, 2);
    }

    #[test]
    fn occupancy_limited_by_each_resource() {
        let sm = SmCapacity::TURING;
        // Thread-limited: 512 threads → 2 blocks.
        assert_eq!(sm.blocks_per_sm(&ResourceUsage::new(16, 0), 512), 2);
        // Register-limited: 64 regs × 256 thr = 16384 per block → 4 blocks.
        assert_eq!(sm.blocks_per_sm(&ResourceUsage::new(64, 0), 256), 4);
        // Shared-memory-limited: 32 KB → 2 blocks.
        assert_eq!(sm.blocks_per_sm(&ResourceUsage::new(16, 32 * 1024), 128), 2);
        // Block-slot-limited: tiny blocks cap at 16.
        assert_eq!(sm.blocks_per_sm(&ResourceUsage::new(8, 0), 32), 16);
    }

    #[test]
    fn paper_example_48kb_fused_block() {
        // §V-C: TC kernel 16 KB × 2 blocks + CD kernel 32 KB. A fused block
        // with one of each uses 48 KB → only 1 fits in a 64 KB Turing SM.
        let fused = ResourceUsage::new(32, 16 * 1024).fuse_with(&ResourceUsage::new(32, 32 * 1024));
        assert_eq!(SmCapacity::TURING.blocks_per_sm(&fused, 256), 1);
        // Volta's 96 KB SM fits the same fused block twice.
        assert_eq!(SmCapacity::VOLTA.blocks_per_sm(&fused, 256), 2);
    }

    #[test]
    fn zero_and_oversized_blocks() {
        let sm = SmCapacity::TURING;
        assert_eq!(sm.blocks_per_sm(&ResourceUsage::new(16, 0), 0), 0);
        assert_eq!(sm.blocks_per_sm(&ResourceUsage::new(16, 0), 2048), 0);
        assert!(!sm.fits(&ResourceUsage::new(16, 128 * 1024), 128));
    }

    #[test]
    fn barrier_limit_applies() {
        let sm = SmCapacity::TURING;
        let r = ResourceUsage::new(8, 0).with_barriers(9);
        // 16 named barriers / 9 per block → 1 block.
        assert_eq!(sm.blocks_per_sm(&r, 32), 1);
    }
}
