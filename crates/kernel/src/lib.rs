//! Kernel intermediate representation for the Tacker reproduction.
//!
//! This crate defines everything the rest of the workspace agrees on when it
//! talks about a GPU kernel:
//!
//! * geometry and time primitives ([`Dim3`], [`Cycles`], [`SimTime`]);
//! * per-kernel resource usage and per-SM capacities ([`ResourceUsage`],
//!   [`SmCapacity`]);
//! * a miniature CUDA-like abstract syntax tree ([`ast`]) that the fuser
//!   rewrites (PTB transform, thread-range split, `bar.sync` allocation) and
//!   that can be rendered back to CUDA-looking source ([`source`]);
//! * a lowering pass from the AST to per-warp timing segment programs
//!   ([`segments`], [`lower`]) which the discrete-event simulator executes.
//!
//! The paper's kernel fuser is a source-to-source CUDA compiler. Since this
//! reproduction has no CUDA toolchain, the AST plays the role of the parsed
//! source: the same structural transformations are applied to it, and the
//! simulator executes the lowered semantics while the renderer shows the
//! equivalent CUDA text.
//!
//! # Example
//!
//! ```
//! use tacker_kernel::{ast::*, Dim3, KernelDef, KernelKind, ResourceUsage};
//!
//! let body = vec![
//!     Stmt::shared_decl("tile", 4096),
//!     Stmt::loop_over(
//!         "k",
//!         Expr::param("k_iters"),
//!         vec![
//!             Stmt::global_load("a", Expr::lit(128), 0.5),
//!             Stmt::sync_threads(),
//!             Stmt::compute_cd(Expr::lit(256), "acc += a[i] * b[i]"),
//!             Stmt::sync_threads(),
//!         ],
//!     ),
//!     Stmt::global_store("c", Expr::lit(64), 0.0),
//! ];
//! let def = KernelDef::builder("toy", KernelKind::Cuda)
//!     .block_dim(Dim3::x(256))
//!     .resources(ResourceUsage::new(32, 4096))
//!     .param("k_iters")
//!     .body(body)
//!     .build()
//!     .expect("valid kernel");
//! assert_eq!(def.name(), "toy");
//! ```

pub mod ast;
pub mod dims;
pub mod error;
pub mod fingerprint;
pub mod intern;
pub mod kernel;
pub mod lower;
pub mod resources;
pub mod segments;
pub mod source;
pub mod time;

pub use ast::{ComputeUnit, Expr, MemDir, MemSpace, Stmt};
pub use dims::{Dim3, LaunchGeometry};
pub use error::KernelError;
pub use fingerprint::StableHasher;
pub use intern::{intern, intern_name, NameId};
pub use kernel::{Bindings, KernelDef, KernelDefBuilder, KernelId, KernelKind, KernelLaunch, Name};
pub use lower::{lower_block, LowerOptions};
pub use resources::{ResourceUsage, SmCapacity};
pub use segments::{BarrierSpec, BlockProgram, Op, WarpProgram, WarpRole};
pub use time::{Cycles, SimTime};

/// The fixed number of threads in a warp, as on all NVIDIA architectures the
/// paper targets (Volta and Turing).
pub const WARP_SIZE: u32 = 32;
