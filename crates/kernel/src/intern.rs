//! Workspace-wide name interning: dense integer identities for kernel
//! (and role) names.
//!
//! The simulator's hot paths — plan compilation, the DES event loop,
//! device-cache accounting — want cheap copyable identities, while the
//! trace/report boundary wants human-readable strings. [`NameId`] is the
//! dense id: a `u32` index into a process-global table of interned
//! [`Name`]s. Interning the same string twice yields the same id, ids
//! compare/hash as integers, and [`NameId::resolve`] recovers the shared
//! `Arc<str>` at the boundary.
//!
//! The table is append-only and never garbage-collected: the workspace
//! interns a bounded population (kernel names, role names, service names),
//! so the table stays small for the lifetime of the process. Reads after
//! interning go through a lock only on insertion; lookups of existing
//! names take a shared read lock.

use std::collections::HashMap;
use std::sync::{OnceLock, RwLock};

use crate::Name;

/// A dense, copyable identity for an interned [`Name`].
///
/// Ids are process-local: they are assigned in interning order and must
/// never be persisted or compared across processes (use the content
/// fingerprints in [`crate::fingerprint`] for that).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NameId(u32);

impl NameId {
    /// The raw dense index.
    #[inline]
    pub fn get(self) -> u32 {
        self.0
    }

    /// The interned name this id stands for.
    pub fn resolve(self) -> Name {
        let table = interner().read().expect("interner poisoned");
        table.names[self.0 as usize].clone()
    }
}

impl std::fmt::Display for NameId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.resolve())
    }
}

#[derive(Default)]
struct Interner {
    ids: HashMap<Name, u32>,
    names: Vec<Name>,
}

fn interner() -> &'static RwLock<Interner> {
    static TABLE: OnceLock<RwLock<Interner>> = OnceLock::new();
    TABLE.get_or_init(|| RwLock::new(Interner::default()))
}

/// Interns `name`, returning its dense id. Idempotent: the same string
/// always maps to the same id within a process.
pub fn intern(name: &str) -> NameId {
    {
        let table = interner().read().expect("interner poisoned");
        if let Some(&id) = table.ids.get(name) {
            return NameId(id);
        }
    }
    let mut table = interner().write().expect("interner poisoned");
    // Double-checked: another thread may have inserted between locks.
    if let Some(&id) = table.ids.get(name) {
        return NameId(id);
    }
    let id = u32::try_from(table.names.len()).expect("interner table overflow");
    let shared: Name = name.into();
    table.names.push(shared.clone());
    table.ids.insert(shared, id);
    NameId(id)
}

/// Interns an already-shared [`Name`] without copying the string when it
/// is new to the table.
pub fn intern_name(name: &Name) -> NameId {
    {
        let table = interner().read().expect("interner poisoned");
        if let Some(&id) = table.ids.get(name.as_ref()) {
            return NameId(id);
        }
    }
    let mut table = interner().write().expect("interner poisoned");
    if let Some(&id) = table.ids.get(name.as_ref()) {
        return NameId(id);
    }
    let id = u32::try_from(table.names.len()).expect("interner table overflow");
    table.names.push(name.clone());
    table.ids.insert(name.clone(), id);
    NameId(id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let a = intern("interner-test-axpy");
        let b = intern("interner-test-axpy");
        assert_eq!(a, b);
        assert_eq!(a.resolve().as_ref(), "interner-test-axpy");
    }

    #[test]
    fn distinct_names_get_distinct_ids() {
        let a = intern("interner-test-a");
        let b = intern("interner-test-b");
        assert_ne!(a, b);
        assert_ne!(a.get(), b.get());
    }

    #[test]
    fn shared_name_interning_matches_str_interning() {
        let name: Name = "interner-test-shared".into();
        assert_eq!(intern_name(&name), intern("interner-test-shared"));
    }

    #[test]
    fn ids_round_trip_through_display() {
        let id = intern("interner-test-display");
        assert_eq!(id.to_string(), "interner-test-display");
    }

    #[test]
    fn concurrent_interning_agrees() {
        let ids: Vec<NameId> = std::thread::scope(|s| {
            (0..8)
                .map(|_| s.spawn(|| intern("interner-test-race")))
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        assert!(ids.windows(2).all(|w| w[0] == w[1]));
    }
}
