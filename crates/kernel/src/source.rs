//! Rendering kernel definitions back to CUDA-flavoured source text.
//!
//! The paper's fuser is a source-to-source compiler; this module shows the
//! text our structural transforms correspond to. The renderer output mirrors
//! the paper's listings: Fig. 5 (direct fusion guards), Fig. 7 (the PTB
//! loop) and Fig. 9 (`bar.sync` partial barriers).

use std::fmt::Write as _;

use crate::ast::{ComputeUnit, MemDir, MemSpace, Stmt};
use crate::kernel::KernelDef;

/// Renders a kernel definition as CUDA-like source.
///
/// ```
/// use tacker_kernel::{ast::*, Dim3, KernelDef, KernelKind, ResourceUsage};
/// let def = KernelDef::builder("axpy", KernelKind::Cuda)
///     .block_dim(Dim3::x(256))
///     .resources(ResourceUsage::new(16, 0))
///     .body(vec![Stmt::compute_cd(Expr::lit(2), "y[i] = a * x[i] + y[i]")])
///     .build()
///     .unwrap();
/// let src = tacker_kernel::source::render(&def);
/// assert!(src.contains("__global__ void axpy("));
/// ```
pub fn render(def: &KernelDef) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "// kind: {} | block: {} threads | {}",
        def.kind(),
        def.block_dim().total(),
        def.resources()
    );
    let mut sig: Vec<String> = vec!["float* __restrict__ data".to_string()];
    for p in def.params() {
        sig.push(format!("int {p}"));
    }
    if def.is_ptb() {
        sig.push("int issued_block_num".to_string());
    }
    let _ = writeln!(out, "__global__ void {}({}) {{", def.name(), sig.join(", "));
    for s in def.body() {
        render_stmt(&mut out, s, 1);
    }
    out.push_str("}\n");
    out
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("    ");
    }
}

fn render_stmt(out: &mut String, stmt: &Stmt, depth: usize) {
    match stmt {
        Stmt::SharedDecl { name, bytes } => {
            indent(out, depth);
            let _ = writeln!(out, "__shared__ char {name}[{bytes}];");
        }
        Stmt::Loop { var, count, body } => {
            indent(out, depth);
            let _ = writeln!(out, "for (int {var} = 0; {var} < {count}; ++{var}) {{");
            for s in body {
                render_stmt(out, s, depth + 1);
            }
            indent(out, depth);
            out.push_str("}\n");
        }
        Stmt::Compute {
            unit,
            ops_per_thread,
            desc,
        } => {
            indent(out, depth);
            let tag = match unit {
                ComputeUnit::Tensor => "tensor-core",
                ComputeUnit::Cuda => "cuda-core",
            };
            let _ = writeln!(out, "{desc}; // {tag}, {ops_per_thread} FMA/thread");
        }
        Stmt::MemAccess {
            dir,
            space,
            bytes_per_thread,
            buffer,
            ..
        } => {
            indent(out, depth);
            let verb = match (dir, space) {
                (MemDir::Read, MemSpace::Global) => "ld.global",
                (MemDir::Write, MemSpace::Global) => "st.global",
                (MemDir::Read, MemSpace::Shared) => "ld.shared",
                (MemDir::Write, MemSpace::Shared) => "st.shared",
            };
            let _ = writeln!(out, "/* {verb} */ access({buffer}, {bytes_per_thread});");
        }
        Stmt::SyncThreads => {
            indent(out, depth);
            out.push_str("__syncthreads();\n");
        }
        Stmt::BarSync { id, count_threads } => {
            indent(out, depth);
            let _ = writeln!(out, "asm volatile(\"bar.sync {id}, {count_threads};\");");
        }
        Stmt::ThreadRange { lo, hi, body } => {
            indent(out, depth);
            if *lo == 0 {
                let _ = writeln!(out, "if (threadIdx.x < {hi}) {{");
            } else {
                let _ = writeln!(out, "else if (threadIdx.x < {hi}) {{");
                indent(out, depth + 1);
                let _ = writeln!(out, "int thread_id = threadIdx.x - {lo}; // thread step");
            }
            for s in body {
                render_stmt(out, s, depth + 1);
            }
            indent(out, depth);
            out.push_str("}\n");
        }
        Stmt::BlockGuard { limit, body } => {
            indent(out, depth);
            let _ = writeln!(out, "if (block_pos < {limit}) {{");
            for s in body {
                render_stmt(out, s, depth + 1);
            }
            indent(out, depth);
            out.push_str("}\n");
        }
        Stmt::PtbLoop {
            original_blocks,
            body,
        } => {
            indent(out, depth);
            let _ = writeln!(
                out,
                "for (int block_pos = blockIdx.x; block_pos < {original_blocks}; block_pos += issued_block_num) {{"
            );
            for s in body {
                render_stmt(out, s, depth + 1);
            }
            indent(out, depth);
            out.push_str("}\n");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Expr;
    use crate::dims::Dim3;
    use crate::kernel::KernelKind;
    use crate::resources::ResourceUsage;

    #[test]
    fn renders_ptb_loop_like_fig7() {
        let body = vec![Stmt::PtbLoop {
            original_blocks: Expr::param("original_block_num"),
            body: vec![Stmt::compute_cd(Expr::lit(4), "int i = block_pos")],
        }];
        let def = KernelDef::builder("ptb_cd_kernel", KernelKind::Cuda)
            .block_dim(Dim3::x(128))
            .resources(ResourceUsage::new(32, 0))
            .param("original_block_num")
            .body(body)
            .ptb(true)
            .build()
            .unwrap();
        let src = render(&def);
        assert!(src.contains("for (int block_pos = blockIdx.x;"));
        assert!(src.contains("block_pos += issued_block_num"));
        assert!(src.contains("int issued_block_num"));
    }

    #[test]
    fn renders_bar_sync_like_fig9() {
        let def = KernelDef::builder("fused", KernelKind::Fused)
            .block_dim(Dim3::x(192))
            .resources(ResourceUsage::new(32, 0))
            .body(vec![Stmt::BarSync {
                id: 1,
                count_threads: 64,
            }])
            .build()
            .unwrap();
        let src = render(&def);
        assert!(src.contains("asm volatile(\"bar.sync 1, 64;\");"));
    }

    #[test]
    fn renders_thread_ranges_like_fig5() {
        let body = vec![
            Stmt::ThreadRange {
                lo: 0,
                hi: 64,
                body: vec![Stmt::compute_tc(Expr::lit(1), "TC_kernel(...)")],
            },
            Stmt::ThreadRange {
                lo: 64,
                hi: 192,
                body: vec![Stmt::compute_cd(
                    Expr::lit(1),
                    "CD_kernel(params, thread_id)",
                )],
            },
        ];
        let def = KernelDef::builder("fused_kernel", KernelKind::Fused)
            .block_dim(Dim3::x(192))
            .resources(ResourceUsage::new(32, 0))
            .body(body)
            .build()
            .unwrap();
        let src = render(&def);
        assert!(src.contains("if (threadIdx.x < 64)"));
        assert!(src.contains("else if (threadIdx.x < 192)"));
        assert!(src.contains("int thread_id = threadIdx.x - 64;"));
    }

    #[test]
    fn block_guard_and_loop_render() {
        let body = vec![Stmt::BlockGuard {
            limit: Expr::param("n"),
            body: vec![Stmt::loop_over(
                "i",
                Expr::lit(4),
                vec![Stmt::compute_cd(Expr::lit(1), "work")],
            )],
        }];
        let def = KernelDef::builder("guarded", KernelKind::Cuda)
            .param("n")
            .body(body)
            .build()
            .unwrap();
        let src = render(&def);
        assert!(src.contains("if (block_pos < n) {"));
        assert!(src.contains("for (int i = 0; i < 4; ++i) {"));
    }

    #[test]
    fn renders_all_mem_verbs() {
        let body = vec![
            Stmt::global_load("a", Expr::lit(4), 0.5),
            Stmt::global_store("b", Expr::lit(4), 0.0),
            Stmt::shared_access(MemDir::Read, "s", Expr::lit(4)),
            Stmt::shared_access(MemDir::Write, "s", Expr::lit(4)),
            Stmt::sync_threads(),
        ];
        let def = KernelDef::builder("mem", KernelKind::Cuda)
            .body(body)
            .build()
            .unwrap();
        let src = render(&def);
        for verb in ["ld.global", "st.global", "ld.shared", "st.shared"] {
            assert!(src.contains(verb), "missing {verb} in:\n{src}");
        }
        assert!(src.contains("__syncthreads();"));
    }
}
