//! Launch geometry: CUDA-style 3-component dimensions and grid/block sizes.

use std::fmt;

use crate::WARP_SIZE;

/// A CUDA `dim3`: the x/y/z extent of a grid or thread block.
///
/// ```
/// use tacker_kernel::Dim3;
/// let block = Dim3::xy(16, 16);
/// assert_eq!(block.total(), 256);
/// assert_eq!(block.warps(), 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Dim3 {
    /// Extent along x.
    pub x: u32,
    /// Extent along y.
    pub y: u32,
    /// Extent along z.
    pub z: u32,
}

impl Dim3 {
    /// A one-dimensional extent.
    pub const fn x(x: u32) -> Self {
        Dim3 { x, y: 1, z: 1 }
    }

    /// A two-dimensional extent.
    pub const fn xy(x: u32, y: u32) -> Self {
        Dim3 { x, y, z: 1 }
    }

    /// A three-dimensional extent.
    pub const fn xyz(x: u32, y: u32, z: u32) -> Self {
        Dim3 { x, y, z }
    }

    /// Total number of elements (threads or blocks).
    pub const fn total(self) -> u64 {
        self.x as u64 * self.y as u64 * self.z as u64
    }

    /// Number of warps needed for this many threads (rounded up).
    pub const fn warps(self) -> u32 {
        self.total().div_ceil(WARP_SIZE as u64) as u32
    }
}

impl Default for Dim3 {
    fn default() -> Self {
        Dim3::x(1)
    }
}

impl fmt::Display for Dim3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.z == 1 && self.y == 1 {
            write!(f, "{}", self.x)
        } else if self.z == 1 {
            write!(f, "({},{})", self.x, self.y)
        } else {
            write!(f, "({},{},{})", self.x, self.y, self.z)
        }
    }
}

/// The complete launch geometry of a kernel invocation: its grid and block
/// dimensions.
///
/// The grid dimension is the *dynamic* part determined by the task input at
/// runtime — the quantity the paper's PTB transform exists to make static.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LaunchGeometry {
    /// Blocks in the grid.
    pub grid: Dim3,
    /// Threads per block.
    pub block: Dim3,
}

impl LaunchGeometry {
    /// Creates a launch geometry.
    pub const fn new(grid: Dim3, block: Dim3) -> Self {
        LaunchGeometry { grid, block }
    }

    /// Total number of thread blocks.
    pub const fn blocks(self) -> u64 {
        self.grid.total()
    }

    /// Threads per block.
    pub const fn threads_per_block(self) -> u64 {
        self.block.total()
    }

    /// Total threads in the launch.
    pub const fn total_threads(self) -> u64 {
        self.blocks() * self.threads_per_block()
    }
}

impl fmt::Display for LaunchGeometry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<<<{}, {}>>>", self.grid, self.block)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_warps() {
        assert_eq!(Dim3::x(1).total(), 1);
        assert_eq!(Dim3::xyz(4, 3, 2).total(), 24);
        assert_eq!(Dim3::x(33).warps(), 2);
        assert_eq!(Dim3::x(32).warps(), 1);
        assert_eq!(Dim3::x(1).warps(), 1);
    }

    #[test]
    fn geometry_totals() {
        let g = LaunchGeometry::new(Dim3::xy(8, 8), Dim3::x(128));
        assert_eq!(g.blocks(), 64);
        assert_eq!(g.threads_per_block(), 128);
        assert_eq!(g.total_threads(), 8192);
    }

    #[test]
    fn display_forms() {
        assert_eq!(format!("{}", Dim3::x(7)), "7");
        assert_eq!(format!("{}", Dim3::xy(2, 3)), "(2,3)");
        assert_eq!(format!("{}", Dim3::xyz(2, 3, 4)), "(2,3,4)");
        let g = LaunchGeometry::new(Dim3::x(10), Dim3::x(256));
        assert_eq!(format!("{g}"), "<<<10, 256>>>");
    }
}
