//! Kernel definitions and launches.
//!
//! A [`KernelDef`] is the static, input-independent part of a kernel: its
//! body AST, block shape and resource usage — what the paper's offline fuser
//! manipulates. A [`KernelLaunch`] adds the dynamic part known only at
//! runtime: the grid size and parameter bindings derived from the task input.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use crate::ast::{body_unit_usage, Stmt};
use crate::dims::Dim3;
use crate::error::KernelError;
use crate::fingerprint::{def_fingerprint, DefContent, StableHasher};
use crate::resources::ResourceUsage;

/// An interned kernel name: cheap to clone (one refcount bump), derefs to
/// `&str`. Threaded through executable plans, run results and trace events
/// so the simulator's hot path never copies name bytes.
pub type Name = Arc<str>;

/// Content-derived identity of a kernel definition.
///
/// The id is a stable structural fingerprint ([`crate::fingerprint`]):
/// two definitions with equal content — name, kind, block shape,
/// resources, parameters, body and flags — share one id in any process.
/// In particular, a fused kernel rebuilt from the same (TC, CD, ratio)
/// triple by a later run fingerprints identically, so its launches hit
/// execution caches warmed by earlier runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct KernelId(u64);

impl KernelId {
    /// Raw fingerprint value.
    pub const fn get(self) -> u64 {
        self.0
    }
}

impl fmt::Display for KernelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "k{:016x}", self.0)
    }
}

/// Which class of compute the kernel predominantly occupies.
///
/// The scheduler uses this to pick fusion partners: a [`KernelKind::Tensor`]
/// kernel fuses with a [`KernelKind::Cuda`] kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelKind {
    /// Occupies Tensor Cores (GEMM-like).
    Tensor,
    /// Occupies CUDA Cores.
    Cuda,
    /// A fused kernel occupying both (produced by the fuser, never authored).
    Fused,
}

impl fmt::Display for KernelKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KernelKind::Tensor => write!(f, "TC"),
            KernelKind::Cuda => write!(f, "CD"),
            KernelKind::Fused => write!(f, "FUSED"),
        }
    }
}

/// Parameter bindings supplied at launch: parameter name → value.
pub type Bindings = BTreeMap<String, u64>;

/// A static kernel definition.
///
/// Construct with [`KernelDef::builder`]. The definition is immutable after
/// construction; the fuser produces *new* definitions rather than mutating.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelDef {
    id: KernelId,
    name: Name,
    kind: KernelKind,
    block_dim: Dim3,
    resources: ResourceUsage,
    params: Vec<String>,
    body: Vec<Stmt>,
    /// True once the PTB transform has been applied.
    ptb: bool,
    /// True for kernels whose source is unavailable (black-box library
    /// kernels like cuDNN's): they execute normally but cannot be
    /// transformed or fused.
    opaque: bool,
}

impl KernelDef {
    /// Starts building a kernel definition.
    pub fn builder(name: impl Into<String>, kind: KernelKind) -> KernelDefBuilder {
        KernelDefBuilder {
            name: name.into(),
            kind,
            block_dim: Dim3::x(256),
            resources: ResourceUsage::new(32, 0),
            params: Vec::new(),
            body: Vec::new(),
            ptb: false,
            opaque: false,
        }
    }

    /// Unique id of this definition.
    pub fn id(&self) -> KernelId {
        self.id
    }

    /// Kernel name (as it would appear in CUDA source).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The interned kernel name, sharing this definition's allocation.
    pub fn name_shared(&self) -> Name {
        Arc::clone(&self.name)
    }

    /// Compute class.
    pub fn kind(&self) -> KernelKind {
        self.kind
    }

    /// Threads per block.
    pub fn block_dim(&self) -> Dim3 {
        self.block_dim
    }

    /// Per-block resource usage.
    pub fn resources(&self) -> &ResourceUsage {
        &self.resources
    }

    /// Declared parameter names, in declaration order.
    pub fn params(&self) -> &[String] {
        &self.params
    }

    /// The body AST.
    pub fn body(&self) -> &[Stmt] {
        &self.body
    }

    /// Whether this definition has been through the PTB transform.
    pub fn is_ptb(&self) -> bool {
        self.ptb
    }

    /// Whether the kernel source is unavailable (black-box library
    /// kernels), making it ineligible for source-level transforms.
    pub fn is_opaque(&self) -> bool {
        self.opaque
    }

    /// Which units the body computes on: `(uses_tensor, uses_cuda)`.
    pub fn unit_usage(&self) -> (bool, bool) {
        body_unit_usage(&self.body)
    }

    /// Creates a derived definition with a new name, body and flags, keeping
    /// everything else. Used by the fuser's transforms.
    pub fn derive(
        &self,
        name: impl Into<String>,
        kind: KernelKind,
        block_dim: Dim3,
        resources: ResourceUsage,
        body: Vec<Stmt>,
        ptb: bool,
    ) -> Result<KernelDef, KernelError> {
        let mut params = Vec::new();
        for s in &body {
            s.collect_params(&mut params);
        }
        KernelDefBuilder {
            name: name.into(),
            kind,
            block_dim,
            resources,
            params,
            body,
            ptb,
            opaque: self.opaque,
        }
        .build()
    }
}

impl fmt::Display for KernelDef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} `{}` [{} thr/blk, {}]",
            self.kind,
            self.name,
            self.block_dim.total(),
            self.resources
        )
    }
}

/// Builder for [`KernelDef`].
#[derive(Debug, Clone)]
pub struct KernelDefBuilder {
    name: String,
    kind: KernelKind,
    block_dim: Dim3,
    resources: ResourceUsage,
    params: Vec<String>,
    body: Vec<Stmt>,
    ptb: bool,
    opaque: bool,
}

impl KernelDefBuilder {
    /// Sets the block shape (threads per block). Default: 256 × 1 × 1.
    pub fn block_dim(mut self, dim: Dim3) -> Self {
        self.block_dim = dim;
        self
    }

    /// Sets per-block resource usage. Default: 32 regs/thread, 0 B smem.
    pub fn resources(mut self, resources: ResourceUsage) -> Self {
        self.resources = resources;
        self
    }

    /// Declares a launch parameter.
    pub fn param(mut self, name: impl Into<String>) -> Self {
        self.params.push(name.into());
        self
    }

    /// Sets the body AST.
    pub fn body(mut self, body: Vec<Stmt>) -> Self {
        self.body = body;
        self
    }

    /// Marks the definition as already PTB-transformed.
    pub fn ptb(mut self, ptb: bool) -> Self {
        self.ptb = ptb;
        self
    }

    /// Marks the definition as a black-box (source-unavailable) kernel.
    pub fn opaque(mut self, opaque: bool) -> Self {
        self.opaque = opaque;
        self
    }

    /// Finalizes the definition.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::InvalidDefinition`] when the body is empty, the
    /// block is empty or exceeds 1024 threads, or the body references a
    /// parameter that was not declared (undeclared parameters are added
    /// automatically when using [`KernelDef::derive`], but `build` insists on
    /// explicit declarations to catch typos).
    pub fn build(mut self) -> Result<KernelDef, KernelError> {
        let invalid = |reason: &str| KernelError::InvalidDefinition {
            kernel: self.name.clone(),
            reason: reason.to_string(),
        };
        if self.body.is_empty() {
            return Err(invalid("empty body"));
        }
        let threads = self.block_dim.total();
        if threads == 0 {
            return Err(invalid("zero-sized block"));
        }
        if threads > 1024 {
            return Err(invalid("block exceeds 1024 threads"));
        }
        let mut referenced = Vec::new();
        for s in &self.body {
            s.collect_params(&mut referenced);
        }
        for p in &referenced {
            if !self.params.contains(p) {
                return Err(KernelError::InvalidDefinition {
                    kernel: self.name.clone(),
                    reason: format!("body references undeclared parameter `{p}`"),
                });
            }
        }
        // Account for declared shared memory if the resource record
        // understates it.
        let declared: u64 = self.body.iter().map(Stmt::shared_bytes).sum();
        if declared > self.resources.shared_mem_bytes {
            self.resources.shared_mem_bytes = declared;
        }
        let id = KernelId(def_fingerprint(&DefContent {
            name: &self.name,
            kind_tag: match self.kind {
                KernelKind::Tensor => 0,
                KernelKind::Cuda => 1,
                KernelKind::Fused => 2,
            },
            block_dim: self.block_dim,
            resources: &self.resources,
            params: &self.params,
            body: &self.body,
            ptb: self.ptb,
            opaque: self.opaque,
        }));
        Ok(KernelDef {
            id,
            name: self.name.into(),
            kind: self.kind,
            block_dim: self.block_dim,
            resources: self.resources,
            params: self.params,
            body: self.body,
            ptb: self.ptb,
            opaque: self.opaque,
        })
    }
}

/// A kernel invocation: a definition plus the dynamic launch state.
#[derive(Debug, Clone)]
pub struct KernelLaunch {
    /// The kernel being launched.
    pub def: Arc<KernelDef>,
    /// Number of thread blocks in the (original, pre-PTB) grid.
    pub grid_blocks: u64,
    /// Parameter bindings.
    pub bindings: Bindings,
}

impl KernelLaunch {
    /// Creates a launch.
    pub fn new(def: Arc<KernelDef>, grid_blocks: u64, bindings: Bindings) -> Self {
        KernelLaunch {
            def,
            grid_blocks,
            bindings,
        }
    }

    /// A stable fingerprint of (definition, grid, bindings) for memoising
    /// simulated executions.
    ///
    /// The definition contributes its content-derived [`KernelId`] and the
    /// hash itself is a pinned algorithm ([`StableHasher`]), so equal
    /// launches fingerprint identically across runs and processes — a
    /// fused kernel rebuilt by a later run hits caches keyed by this value.
    pub fn fingerprint(&self) -> u64 {
        let mut h = StableHasher::new();
        h.write_u64(self.def.id().get());
        h.write_u64(self.grid_blocks);
        h.write_u64(self.bindings.len() as u64);
        for (k, v) in &self.bindings {
            h.write_str(k);
            h.write_u64(*v);
        }
        h.finish()
    }
}

impl fmt::Display for KernelLaunch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}<<<{}, {}>>>",
            self.def.name(),
            self.grid_blocks,
            self.def.block_dim()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Expr;

    fn toy_def() -> KernelDef {
        KernelDef::builder("toy", KernelKind::Cuda)
            .block_dim(Dim3::x(128))
            .resources(ResourceUsage::new(32, 1024))
            .param("n")
            .body(vec![Stmt::compute_cd(Expr::param("n"), "fma")])
            .build()
            .unwrap()
    }

    #[test]
    fn ids_are_content_derived() {
        // Structurally equal definitions share one identity (this is what
        // lets rebuilt fused kernels hit execution caches across runs)...
        assert_eq!(toy_def().id(), toy_def().id());
        // ...while any content difference separates them.
        let other = KernelDef::builder("toy2", KernelKind::Cuda)
            .block_dim(Dim3::x(128))
            .resources(ResourceUsage::new(32, 1024))
            .param("n")
            .body(vec![Stmt::compute_cd(Expr::param("n"), "fma")])
            .build()
            .unwrap();
        assert_ne!(toy_def().id(), other.id());
    }

    #[test]
    fn empty_body_rejected() {
        let err = KernelDef::builder("bad", KernelKind::Cuda)
            .body(vec![])
            .build()
            .unwrap_err();
        assert!(matches!(err, KernelError::InvalidDefinition { .. }));
    }

    #[test]
    fn oversized_block_rejected() {
        let err = KernelDef::builder("bad", KernelKind::Cuda)
            .block_dim(Dim3::x(2048))
            .body(vec![Stmt::compute_cd(Expr::lit(1), "fma")])
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("1024"));
    }

    #[test]
    fn undeclared_param_rejected() {
        let err = KernelDef::builder("bad", KernelKind::Cuda)
            .body(vec![Stmt::compute_cd(Expr::param("mystery"), "fma")])
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("mystery"));
    }

    #[test]
    fn shared_decl_bumps_resources() {
        let def = KernelDef::builder("smem", KernelKind::Cuda)
            .resources(ResourceUsage::new(32, 0))
            .body(vec![
                Stmt::shared_decl("tile", 9000),
                Stmt::compute_cd(Expr::lit(1), "fma"),
            ])
            .build()
            .unwrap();
        assert_eq!(def.resources().shared_mem_bytes, 9000);
    }

    #[test]
    fn launch_fingerprint_distinguishes_inputs() {
        let def = Arc::new(toy_def());
        let mut b1 = Bindings::new();
        b1.insert("n".into(), 10);
        let mut b2 = Bindings::new();
        b2.insert("n".into(), 20);
        let l1 = KernelLaunch::new(Arc::clone(&def), 64, b1.clone());
        let l2 = KernelLaunch::new(Arc::clone(&def), 64, b2);
        let l3 = KernelLaunch::new(Arc::clone(&def), 128, b1);
        assert_ne!(l1.fingerprint(), l2.fingerprint());
        assert_ne!(l1.fingerprint(), l3.fingerprint());
        assert_eq!(l1.fingerprint(), l1.fingerprint());
    }

    #[test]
    fn display_forms() {
        let def = toy_def();
        assert!(format!("{def}").contains("CD `toy`"));
        let launch = KernelLaunch::new(Arc::new(toy_def()), 12, Bindings::new());
        assert_eq!(format!("{launch}"), "toy<<<12, 128>>>");
    }
}
