//! Content fingerprints for kernel definitions and launches.
//!
//! A [`KernelDef`](crate::KernelDef)'s identity is derived from its
//! structural content — name, kind, block shape, resources, parameters,
//! body AST and flags — rather than from a process-local counter. Two
//! structurally equal definitions therefore share one
//! [`KernelId`](crate::KernelId) in *any* process, which is what lets the
//! device execution cache recognise a fused kernel rebuilt by a later run
//! (or another process, or another sweep cell) as the kernel it has
//! already simulated.
//!
//! The hash is a hand-rolled FNV-1a 64 with explicit domain-separation
//! tags and length prefixes, so it does not depend on `std`'s hasher
//! (whose keys/algorithm are unspecified across toolchains) and stays
//! stable across runs, processes and Rust versions.

use crate::ast::{ComputeUnit, Expr, MemDir, MemSpace, Stmt};
use crate::dims::Dim3;
use crate::resources::ResourceUsage;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// A deterministic, platform-independent streaming hasher (FNV-1a 64).
///
/// Unlike `std::collections::hash_map::DefaultHasher`, the algorithm is
/// pinned: the same byte stream fingerprints identically on every host,
/// process and toolchain.
#[derive(Debug, Clone)]
pub struct StableHasher {
    state: u64,
}

impl Default for StableHasher {
    fn default() -> Self {
        StableHasher::new()
    }
}

impl StableHasher {
    /// Creates a hasher at the FNV offset basis.
    pub fn new() -> StableHasher {
        StableHasher { state: FNV_OFFSET }
    }

    /// Absorbs raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= b as u64;
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Absorbs a `u64` (little-endian).
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Absorbs a `u32`.
    pub fn write_u32(&mut self, v: u32) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Absorbs a single byte (used for enum/variant tags).
    pub fn write_tag(&mut self, tag: u8) {
        self.write_bytes(&[tag]);
    }

    /// Absorbs an `f64` via its bit pattern.
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Absorbs a length-prefixed string.
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write_bytes(s.as_bytes());
    }

    /// Finishes the hash. A final SplitMix64-style avalanche spreads the
    /// FNV state over all 64 bits so the low bits (used for cache-shard
    /// selection) are well mixed even for short inputs.
    pub fn finish(&self) -> u64 {
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

fn hash_expr(h: &mut StableHasher, e: &Expr) {
    match e {
        Expr::Lit(v) => {
            h.write_tag(0);
            h.write_u64(*v);
        }
        Expr::Param(p) => {
            h.write_tag(1);
            h.write_str(p);
        }
        Expr::BlockIdx => h.write_tag(2),
        Expr::Add(a, b) => {
            h.write_tag(3);
            hash_expr(h, a);
            hash_expr(h, b);
        }
        Expr::Mul(a, b) => {
            h.write_tag(4);
            hash_expr(h, a);
            hash_expr(h, b);
        }
        Expr::CeilDiv(a, b) => {
            h.write_tag(5);
            hash_expr(h, a);
            hash_expr(h, b);
        }
        Expr::Div(a, b) => {
            h.write_tag(6);
            hash_expr(h, a);
            hash_expr(h, b);
        }
    }
}

fn hash_body(h: &mut StableHasher, body: &[Stmt]) {
    h.write_u64(body.len() as u64);
    for s in body {
        hash_stmt(h, s);
    }
}

fn hash_stmt(h: &mut StableHasher, s: &Stmt) {
    match s {
        Stmt::SharedDecl { name, bytes } => {
            h.write_tag(0);
            h.write_str(name);
            h.write_u64(*bytes);
        }
        Stmt::Loop { var, count, body } => {
            h.write_tag(1);
            h.write_str(var);
            hash_expr(h, count);
            hash_body(h, body);
        }
        Stmt::Compute {
            unit,
            ops_per_thread,
            desc,
        } => {
            h.write_tag(2);
            h.write_tag(match unit {
                ComputeUnit::Tensor => 0,
                ComputeUnit::Cuda => 1,
            });
            hash_expr(h, ops_per_thread);
            h.write_str(desc);
        }
        Stmt::MemAccess {
            dir,
            space,
            bytes_per_thread,
            locality,
            buffer,
        } => {
            h.write_tag(3);
            h.write_tag(match dir {
                MemDir::Read => 0,
                MemDir::Write => 1,
            });
            h.write_tag(match space {
                MemSpace::Global => 0,
                MemSpace::Shared => 1,
            });
            hash_expr(h, bytes_per_thread);
            h.write_f64(*locality);
            h.write_str(buffer);
        }
        Stmt::SyncThreads => h.write_tag(4),
        Stmt::BarSync { id, count_threads } => {
            h.write_tag(5);
            h.write_u64(*id as u64);
            h.write_u32(*count_threads);
        }
        Stmt::ThreadRange { lo, hi, body } => {
            h.write_tag(6);
            h.write_u32(*lo);
            h.write_u32(*hi);
            hash_body(h, body);
        }
        Stmt::BlockGuard { limit, body } => {
            h.write_tag(7);
            hash_expr(h, limit);
            hash_body(h, body);
        }
        Stmt::PtbLoop {
            original_blocks,
            body,
        } => {
            h.write_tag(8);
            hash_expr(h, original_blocks);
            hash_body(h, body);
        }
    }
}

/// The content fields a definition's identity is derived from.
///
/// Everything that participates in [`KernelDef`](crate::KernelDef)'s
/// structural equality participates here, so `a == b` implies equal
/// fingerprints, and any field perturbation changes the fingerprint
/// (modulo 64-bit collisions).
pub(crate) struct DefContent<'a> {
    pub name: &'a str,
    pub kind_tag: u8,
    pub block_dim: Dim3,
    pub resources: &'a ResourceUsage,
    pub params: &'a [String],
    pub body: &'a [Stmt],
    pub ptb: bool,
    pub opaque: bool,
}

/// Fingerprints a definition's structural content.
pub(crate) fn def_fingerprint(c: &DefContent<'_>) -> u64 {
    let mut h = StableHasher::new();
    // Version tag: bump if the encoding ever changes, so stale persisted
    // fingerprints (if any appear later) cannot alias new ones.
    h.write_tag(1);
    h.write_str(c.name);
    h.write_tag(c.kind_tag);
    h.write_u32(c.block_dim.x);
    h.write_u32(c.block_dim.y);
    h.write_u32(c.block_dim.z);
    h.write_u32(c.resources.registers_per_thread);
    h.write_u64(c.resources.shared_mem_bytes);
    h.write_u32(c.resources.barriers);
    h.write_u64(c.params.len() as u64);
    for p in c.params {
        h.write_str(p);
    }
    hash_body(&mut h, c.body);
    h.write_tag(c.ptb as u8);
    h.write_tag(c.opaque as u8);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_is_deterministic_and_order_sensitive() {
        let mut a = StableHasher::new();
        a.write_str("ab");
        let mut b = StableHasher::new();
        b.write_str("ab");
        assert_eq!(a.finish(), b.finish());
        let mut c = StableHasher::new();
        c.write_str("ba");
        assert_ne!(a.finish(), c.finish());
    }

    #[test]
    fn length_prefix_prevents_concat_aliasing() {
        // ("ab", "c") must not hash like ("a", "bc").
        let mut a = StableHasher::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = StableHasher::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn expr_variants_are_domain_separated() {
        let lit = {
            let mut h = StableHasher::new();
            hash_expr(&mut h, &Expr::Lit(2));
            h.finish()
        };
        let idx = {
            let mut h = StableHasher::new();
            hash_expr(&mut h, &Expr::BlockIdx);
            h.finish()
        };
        assert_ne!(lit, idx);
    }
}
