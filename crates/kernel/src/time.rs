//! Time primitives shared across the simulator, predictor and scheduler.
//!
//! The SM engine works in clock [`Cycles`]; everything above the device
//! (kernel manager, QoS targets, latency percentiles) works in [`SimTime`]
//! nanoseconds. Conversion happens exactly once, at the device boundary,
//! using the device clock frequency.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A duration or instant measured in GPU core clock cycles.
///
/// `Cycles` is a plain newtype over `u64`; arithmetic saturates on
/// subtraction so interval math never wraps.
///
/// ```
/// use tacker_kernel::Cycles;
/// let a = Cycles::new(100);
/// let b = Cycles::new(40);
/// assert_eq!((a - b).get(), 60);
/// assert_eq!((b - a).get(), 0); // saturating
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycles(u64);

impl Cycles {
    /// The zero duration.
    pub const ZERO: Cycles = Cycles(0);

    /// Creates a cycle count.
    pub const fn new(cycles: u64) -> Self {
        Cycles(cycles)
    }

    /// Returns the raw cycle count.
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Converts to wall-clock simulated time at the given core clock (GHz).
    ///
    /// ```
    /// use tacker_kernel::Cycles;
    /// // 1500 cycles at 1.5 GHz is exactly 1 microsecond.
    /// assert_eq!(Cycles::new(1500).to_sim_time(1.5).as_nanos(), 1_000);
    /// ```
    pub fn to_sim_time(self, clock_ghz: f64) -> SimTime {
        SimTime::from_nanos((self.0 as f64 / clock_ghz).round() as u64)
    }

    /// Saturating addition.
    pub fn saturating_add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.saturating_add(rhs.0))
    }

    /// Returns the larger of two cycle counts.
    pub fn max(self, other: Cycles) -> Cycles {
        Cycles(self.0.max(other.0))
    }

    /// Returns the smaller of two cycle counts.
    pub fn min(self, other: Cycles) -> Cycles {
        Cycles(self.0.min(other.0))
    }
}

impl Add for Cycles {
    type Output = Cycles;
    fn add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 + rhs.0)
    }
}

impl AddAssign for Cycles {
    fn add_assign(&mut self, rhs: Cycles) {
        self.0 += rhs.0;
    }
}

impl Sub for Cycles {
    type Output = Cycles;
    fn sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for Cycles {
    fn sub_assign(&mut self, rhs: Cycles) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Mul<u64> for Cycles {
    type Output = Cycles;
    fn mul(self, rhs: u64) -> Cycles {
        Cycles(self.0 * rhs)
    }
}

impl Sum for Cycles {
    fn sum<I: Iterator<Item = Cycles>>(iter: I) -> Cycles {
        Cycles(iter.map(|c| c.0).sum())
    }
}

impl fmt::Display for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} cyc", self.0)
    }
}

/// A simulated wall-clock duration or instant, in nanoseconds.
///
/// All scheduler-level quantities (QoS targets, query latencies, kernel
/// durations as seen by the kernel manager) use `SimTime`.
///
/// ```
/// use tacker_kernel::SimTime;
/// let qos = SimTime::from_millis(50);
/// assert_eq!(qos.as_micros_f64(), 50_000.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The zero time.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates a time from nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Creates a time from microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros * 1_000)
    }

    /// Creates a time from milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * 1_000_000)
    }

    /// Creates a time from fractional seconds, rounding to nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "invalid duration: {secs}");
        SimTime((secs * 1e9).round() as u64)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds as a float (lossless for display purposes).
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Milliseconds as a float.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating subtraction: returns zero if `rhs > self`.
    pub fn saturating_sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }

    /// Checked subtraction.
    pub fn checked_sub(self, rhs: SimTime) -> Option<SimTime> {
        self.0.checked_sub(rhs.0).map(SimTime)
    }

    /// Returns the larger of two times.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// Returns the smaller of two times.
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }

    /// Multiplies by a non-negative float factor, rounding to nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    pub fn mul_f64(self, factor: f64) -> SimTime {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "invalid factor: {factor}"
        );
        SimTime((self.0 as f64 * factor).round() as u64)
    }

    /// Ratio of two durations as a float. Returns `f64::INFINITY` when
    /// dividing by zero.
    pub fn ratio(self, denom: SimTime) -> f64 {
        if denom.0 == 0 {
            f64::INFINITY
        } else {
            self.0 as f64 / denom.0 as f64
        }
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Mul<u64> for SimTime {
    type Output = SimTime;
    fn mul(self, rhs: u64) -> SimTime {
        SimTime(self.0 * rhs)
    }
}

impl Div<u64> for SimTime {
    type Output = SimTime;
    fn div(self, rhs: u64) -> SimTime {
        SimTime(self.0 / rhs)
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        SimTime(iter.map(|t| t.0).sum())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3} ms", self.as_millis_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3} us", self.as_micros_f64())
        } else {
            write!(f, "{} ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycles_arithmetic_and_saturation() {
        let a = Cycles::new(10);
        let b = Cycles::new(3);
        assert_eq!((a + b).get(), 13);
        assert_eq!((a - b).get(), 7);
        assert_eq!((b - a).get(), 0);
        assert_eq!((a * 4).get(), 40);
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
    }

    #[test]
    fn cycles_to_sim_time_uses_clock() {
        let t = Cycles::new(3_000).to_sim_time(1.5);
        assert_eq!(t.as_nanos(), 2_000);
    }

    #[test]
    fn sim_time_constructors_agree() {
        assert_eq!(SimTime::from_millis(1), SimTime::from_micros(1_000));
        assert_eq!(SimTime::from_micros(1), SimTime::from_nanos(1_000));
        assert_eq!(SimTime::from_secs_f64(0.002), SimTime::from_millis(2));
    }

    #[test]
    fn sim_time_ratio_and_mul() {
        let a = SimTime::from_micros(30);
        let b = SimTime::from_micros(20);
        assert!((a.ratio(b) - 1.5).abs() < 1e-12);
        assert_eq!(a.mul_f64(0.5), SimTime::from_micros(15));
        assert_eq!(SimTime::ZERO.ratio(SimTime::ZERO), f64::INFINITY);
    }

    #[test]
    fn sim_time_display_picks_unit() {
        assert_eq!(format!("{}", SimTime::from_nanos(12)), "12 ns");
        assert_eq!(format!("{}", SimTime::from_micros(12)), "12.000 us");
        assert_eq!(format!("{}", SimTime::from_millis(12)), "12.000 ms");
    }

    #[test]
    fn sums_work() {
        let cy: Cycles = [Cycles::new(1), Cycles::new(2)].into_iter().sum();
        assert_eq!(cy.get(), 3);
        let t: SimTime = [SimTime::from_nanos(5), SimTime::from_nanos(7)]
            .into_iter()
            .sum();
        assert_eq!(t.as_nanos(), 12);
    }

    #[test]
    #[should_panic]
    fn negative_seconds_panic() {
        let _ = SimTime::from_secs_f64(-1.0);
    }
}
