//! A miniature CUDA-like abstract syntax tree.
//!
//! The AST models just enough of a CUDA kernel for the paper's transforms to
//! be expressed structurally:
//!
//! * counted loops whose bounds may depend on kernel parameters (so the PTB
//!   transform can wrap a body in a `for (block_pos = blockIdx.x; ...)` loop);
//! * compute statements attributed to a specific execution unit (Tensor Core
//!   or CUDA Core), which is what makes Tensor-CUDA fusion meaningful;
//! * global/shared memory accesses with a locality hint;
//! * block-wide `__syncthreads()` and the partial `bar.sync id, cnt` barriers
//!   the fuser rewrites them into (§V-D, Fig. 9);
//! * thread-range guards (`if (threadIdx.x < n)`) used by direct fusion
//!   (Fig. 5) and block-position guards used by PTB fusion.
//!
//! Statements carry small CUDA-flavoured description strings purely for the
//! source renderer; the simulator only looks at the structural fields.

use std::fmt;

/// Which execution unit a compute statement occupies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ComputeUnit {
    /// Tensor Cores (HMMA/IMMA pipelines).
    Tensor,
    /// CUDA Cores (FP32/INT ALU pipelines).
    Cuda,
}

impl fmt::Display for ComputeUnit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ComputeUnit::Tensor => write!(f, "tensor"),
            ComputeUnit::Cuda => write!(f, "cuda"),
        }
    }
}

/// Memory access direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemDir {
    /// A load.
    Read,
    /// A store.
    Write,
}

/// Which address space a memory access targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemSpace {
    /// Device global memory (through L1/L2/DRAM).
    Global,
    /// On-chip shared memory.
    Shared,
}

/// A side-effect-free integer expression.
///
/// Expressions appear as loop bounds, operation sizes and guard limits. They
/// are evaluated against a parameter binding at lowering time.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Expr {
    /// A literal constant.
    Lit(u64),
    /// A named kernel parameter (bound at launch).
    Param(String),
    /// `blockIdx.x` — flagged so the PTB transform can find and rewrite it.
    BlockIdx,
    /// Sum of two expressions.
    Add(Box<Expr>, Box<Expr>),
    /// Product of two expressions.
    Mul(Box<Expr>, Box<Expr>),
    /// Ceiling division.
    CeilDiv(Box<Expr>, Box<Expr>),
    /// Floor division.
    Div(Box<Expr>, Box<Expr>),
}

impl Expr {
    /// A literal.
    pub fn lit(v: u64) -> Expr {
        Expr::Lit(v)
    }

    /// A named parameter reference.
    pub fn param(name: impl Into<String>) -> Expr {
        Expr::Param(name.into())
    }

    /// `self + rhs`.
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, rhs: Expr) -> Expr {
        Expr::Add(Box::new(self), Box::new(rhs))
    }

    /// `self * rhs`.
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, rhs: Expr) -> Expr {
        Expr::Mul(Box::new(self), Box::new(rhs))
    }

    /// `ceil(self / rhs)`.
    pub fn ceil_div(self, rhs: Expr) -> Expr {
        Expr::CeilDiv(Box::new(self), Box::new(rhs))
    }

    /// `floor(self / rhs)`.
    pub fn floor_div(self, rhs: Expr) -> Expr {
        Expr::Div(Box::new(self), Box::new(rhs))
    }

    /// Names of all parameters referenced by this expression, appended to
    /// `out`.
    pub fn collect_params(&self, out: &mut Vec<String>) {
        match self {
            Expr::Lit(_) | Expr::BlockIdx => {}
            Expr::Param(p) => {
                if !out.contains(p) {
                    out.push(p.clone());
                }
            }
            Expr::Add(a, b) | Expr::Mul(a, b) | Expr::CeilDiv(a, b) | Expr::Div(a, b) => {
                a.collect_params(out);
                b.collect_params(out);
            }
        }
    }

    /// Whether the expression mentions `blockIdx`.
    pub fn uses_block_idx(&self) -> bool {
        match self {
            Expr::BlockIdx => true,
            Expr::Lit(_) | Expr::Param(_) => false,
            Expr::Add(a, b) | Expr::Mul(a, b) | Expr::CeilDiv(a, b) | Expr::Div(a, b) => {
                a.uses_block_idx() || b.uses_block_idx()
            }
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Lit(v) => write!(f, "{v}"),
            Expr::Param(p) => write!(f, "{p}"),
            Expr::BlockIdx => write!(f, "blockIdx.x"),
            Expr::Add(a, b) => write!(f, "({a} + {b})"),
            Expr::Mul(a, b) => write!(f, "({a} * {b})"),
            Expr::CeilDiv(a, b) => write!(f, "(({a} + {b} - 1) / {b})"),
            Expr::Div(a, b) => write!(f, "({a} / {b})"),
        }
    }
}

/// A statement in the kernel body.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `__shared__ char name[bytes];`
    SharedDecl {
        /// Buffer name.
        name: String,
        /// Size in bytes.
        bytes: u64,
    },
    /// `for (int var = 0; var < count; ++var) { body }`
    Loop {
        /// Loop variable name.
        var: String,
        /// Trip count.
        count: Expr,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// A chunk of arithmetic on one execution unit.
    ///
    /// `ops_per_thread` counts fused-multiply-add–equivalent operations each
    /// thread performs (for Tensor statements this is the per-thread share of
    /// the warp-wide MMA).
    Compute {
        /// Unit the work occupies.
        unit: ComputeUnit,
        /// FMA-equivalent ops per thread.
        ops_per_thread: Expr,
        /// CUDA-flavoured text for the renderer.
        desc: String,
    },
    /// A global- or shared-memory access.
    MemAccess {
        /// Load or store.
        dir: MemDir,
        /// Address space.
        space: MemSpace,
        /// Bytes moved per thread.
        bytes_per_thread: Expr,
        /// Fraction of global traffic served by on-chip caches in `[0, 1]`.
        locality: f64,
        /// Buffer name for the renderer.
        buffer: String,
    },
    /// Block-wide `__syncthreads()`.
    SyncThreads,
    /// Partial barrier `asm volatile("bar.sync id, cnt")` — the fuser's
    /// replacement for [`Stmt::SyncThreads`] inside one branch of a fused
    /// kernel.
    BarSync {
        /// Hardware barrier id (0..16).
        id: u16,
        /// Number of threads that must arrive.
        count_threads: u32,
    },
    /// Guard limiting the enclosed statements to threads with
    /// `lo <= threadIdx.x < hi` (direct fusion's branch split, Fig. 5).
    ThreadRange {
        /// Inclusive lower thread id.
        lo: u32,
        /// Exclusive upper thread id.
        hi: u32,
        /// Guarded body.
        body: Vec<Stmt>,
    },
    /// Guard limiting the enclosed statements to blocks with
    /// `block_pos < limit` (used after grid-size alignment in fusion).
    BlockGuard {
        /// Exclusive block-position bound.
        limit: Expr,
        /// Guarded body.
        body: Vec<Stmt>,
    },
    /// The persistent-thread-block loop inserted by the PTB transform:
    /// `for (block_pos = blockIdx.x; block_pos < original_block_num;
    /// block_pos += issued_block_num) { body }` (Fig. 7).
    PtbLoop {
        /// Parameter holding the original grid size.
        original_blocks: Expr,
        /// The per-original-block work.
        body: Vec<Stmt>,
    },
}

impl Stmt {
    /// `__shared__` declaration.
    pub fn shared_decl(name: impl Into<String>, bytes: u64) -> Stmt {
        Stmt::SharedDecl {
            name: name.into(),
            bytes,
        }
    }

    /// Counted loop.
    pub fn loop_over(var: impl Into<String>, count: Expr, body: Vec<Stmt>) -> Stmt {
        Stmt::Loop {
            var: var.into(),
            count,
            body,
        }
    }

    /// CUDA-Core compute chunk.
    pub fn compute_cd(ops_per_thread: Expr, desc: impl Into<String>) -> Stmt {
        Stmt::Compute {
            unit: ComputeUnit::Cuda,
            ops_per_thread,
            desc: desc.into(),
        }
    }

    /// Tensor-Core compute chunk.
    pub fn compute_tc(ops_per_thread: Expr, desc: impl Into<String>) -> Stmt {
        Stmt::Compute {
            unit: ComputeUnit::Tensor,
            ops_per_thread,
            desc: desc.into(),
        }
    }

    /// Global load with a cache-locality hint.
    pub fn global_load(buffer: impl Into<String>, bytes_per_thread: Expr, locality: f64) -> Stmt {
        Stmt::MemAccess {
            dir: MemDir::Read,
            space: MemSpace::Global,
            bytes_per_thread,
            locality,
            buffer: buffer.into(),
        }
    }

    /// Global store (stores are modelled as fully write-through).
    pub fn global_store(buffer: impl Into<String>, bytes_per_thread: Expr, locality: f64) -> Stmt {
        Stmt::MemAccess {
            dir: MemDir::Write,
            space: MemSpace::Global,
            bytes_per_thread,
            locality,
            buffer: buffer.into(),
        }
    }

    /// Shared-memory access.
    pub fn shared_access(dir: MemDir, buffer: impl Into<String>, bytes_per_thread: Expr) -> Stmt {
        Stmt::MemAccess {
            dir,
            space: MemSpace::Shared,
            bytes_per_thread,
            locality: 1.0,
            buffer: buffer.into(),
        }
    }

    /// `__syncthreads()`.
    pub fn sync_threads() -> Stmt {
        Stmt::SyncThreads
    }

    /// Walks the statement tree, appending every referenced parameter name.
    pub fn collect_params(&self, out: &mut Vec<String>) {
        match self {
            Stmt::SharedDecl { .. } | Stmt::SyncThreads | Stmt::BarSync { .. } => {}
            Stmt::Loop { count, body, .. } => {
                count.collect_params(out);
                for s in body {
                    s.collect_params(out);
                }
            }
            Stmt::Compute { ops_per_thread, .. } => ops_per_thread.collect_params(out),
            Stmt::MemAccess {
                bytes_per_thread, ..
            } => bytes_per_thread.collect_params(out),
            Stmt::ThreadRange { body, .. } => {
                for s in body {
                    s.collect_params(out);
                }
            }
            Stmt::BlockGuard { limit, body } => {
                limit.collect_params(out);
                for s in body {
                    s.collect_params(out);
                }
            }
            Stmt::PtbLoop {
                original_blocks,
                body,
            } => {
                original_blocks.collect_params(out);
                for s in body {
                    s.collect_params(out);
                }
            }
        }
    }

    /// Total shared memory declared in this statement subtree.
    pub fn shared_bytes(&self) -> u64 {
        match self {
            Stmt::SharedDecl { bytes, .. } => *bytes,
            Stmt::Loop { body, .. }
            | Stmt::ThreadRange { body, .. }
            | Stmt::BlockGuard { body, .. }
            | Stmt::PtbLoop { body, .. } => body.iter().map(Stmt::shared_bytes).sum(),
            _ => 0,
        }
    }

    /// Whether this subtree contains a block-wide `__syncthreads()`.
    pub fn contains_sync_threads(&self) -> bool {
        match self {
            Stmt::SyncThreads => true,
            Stmt::Loop { body, .. }
            | Stmt::ThreadRange { body, .. }
            | Stmt::BlockGuard { body, .. }
            | Stmt::PtbLoop { body, .. } => body.iter().any(Stmt::contains_sync_threads),
            _ => false,
        }
    }

    /// Whether this subtree contains a PTB loop.
    pub fn contains_ptb_loop(&self) -> bool {
        match self {
            Stmt::PtbLoop { .. } => true,
            Stmt::Loop { body, .. }
            | Stmt::ThreadRange { body, .. }
            | Stmt::BlockGuard { body, .. } => body.iter().any(Stmt::contains_ptb_loop),
            _ => false,
        }
    }

    /// Which units this subtree computes on: (uses_tensor, uses_cuda).
    pub fn unit_usage(&self) -> (bool, bool) {
        match self {
            Stmt::Compute { unit, .. } => match unit {
                ComputeUnit::Tensor => (true, false),
                ComputeUnit::Cuda => (false, true),
            },
            Stmt::Loop { body, .. }
            | Stmt::ThreadRange { body, .. }
            | Stmt::BlockGuard { body, .. }
            | Stmt::PtbLoop { body, .. } => body.iter().fold((false, false), |(t, c), s| {
                let (st, sc) = s.unit_usage();
                (t || st, c || sc)
            }),
            _ => (false, false),
        }
    }
}

/// Unit usage over a whole body slice: (uses_tensor, uses_cuda).
pub fn body_unit_usage(body: &[Stmt]) -> (bool, bool) {
    body.iter().fold((false, false), |(t, c), s| {
        let (st, sc) = s.unit_usage();
        (t || st, c || sc)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_body() -> Vec<Stmt> {
        vec![
            Stmt::shared_decl("tile", 2048),
            Stmt::loop_over(
                "k",
                Expr::param("k_iters"),
                vec![
                    Stmt::global_load("a", Expr::lit(64), 0.5),
                    Stmt::sync_threads(),
                    Stmt::compute_tc(Expr::param("mma_ops"), "wmma::mma_sync(...)"),
                ],
            ),
        ]
    }

    #[test]
    fn params_collected_once() {
        let mut p = Vec::new();
        for s in sample_body() {
            s.collect_params(&mut p);
        }
        assert_eq!(p, vec!["k_iters".to_string(), "mma_ops".to_string()]);
    }

    #[test]
    fn shared_bytes_summed_through_nesting() {
        let body = [Stmt::loop_over(
            "i",
            Expr::lit(2),
            vec![Stmt::shared_decl("a", 100), Stmt::shared_decl("b", 28)],
        )];
        assert_eq!(body.iter().map(Stmt::shared_bytes).sum::<u64>(), 128);
    }

    #[test]
    fn sync_detection() {
        let body = sample_body();
        assert!(body.iter().any(Stmt::contains_sync_threads));
        let no_sync = [Stmt::compute_cd(Expr::lit(1), "x")];
        assert!(!no_sync.iter().any(Stmt::contains_sync_threads));
    }

    #[test]
    fn unit_usage_propagates() {
        let (t, c) = body_unit_usage(&sample_body());
        assert!(t);
        assert!(!c);
        let mixed = vec![
            Stmt::compute_tc(Expr::lit(1), "mma"),
            Stmt::compute_cd(Expr::lit(1), "fma"),
        ];
        assert_eq!(body_unit_usage(&mixed), (true, true));
    }

    #[test]
    fn expr_display_and_block_idx() {
        let e = Expr::BlockIdx.mul(Expr::lit(4)).add(Expr::param("n"));
        assert_eq!(format!("{e}"), "((blockIdx.x * 4) + n)");
        assert!(e.uses_block_idx());
        assert!(!Expr::param("n").uses_block_idx());
    }
}
