//! Lowering from the kernel AST to per-warp timing programs.
//!
//! Lowering walks a [`KernelDef`]'s body with the launch's parameter
//! [`Bindings`] and produces a [`BlockProgram`]:
//!
//! * uniform bodies produce a single [`WarpRole`] covering every warp;
//! * top-level [`Stmt::ThreadRange`] guards (the structure direct and PTB
//!   fusion emit) produce one role per range;
//! * loops are unrolled up to [`LowerOptions::max_unroll`] iterations; longer
//!   loops are emitted at that granularity with each op's magnitude scaled so
//!   total work is preserved;
//! * `__syncthreads()` lowers to barrier 0 expecting **all** warps in the
//!   block, while `bar.sync id, cnt` lowers to barrier `id` expecting
//!   `cnt / 32` warps — reproducing the semantics that make un-rewritten
//!   synchronization deadlock inside fused kernels (§V-D).

use crate::ast::{Expr, Stmt};
use crate::error::KernelError;
use crate::kernel::{Bindings, KernelDef};
use crate::segments::{BlockProgram, Op, WarpProgram, WarpRole};
use crate::WARP_SIZE;

/// Tuning knobs for lowering.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LowerOptions {
    /// Maximum loop iterations emitted literally; longer loops are chunked
    /// into exactly this many scaled iterations.
    pub max_unroll: u64,
}

impl Default for LowerOptions {
    fn default() -> Self {
        LowerOptions { max_unroll: 16 }
    }
}

/// Evaluates an expression against parameter bindings.
///
/// # Errors
///
/// Returns [`KernelError::UnboundParam`] for missing parameters and
/// [`KernelError::InvalidDefinition`] if the expression uses `blockIdx`
/// (work-size expressions must be block-position independent once the PTB
/// transform has run).
pub fn eval_expr(expr: &Expr, kernel: &str, bindings: &Bindings) -> Result<u64, KernelError> {
    match expr {
        Expr::Lit(v) => Ok(*v),
        Expr::Param(p) => bindings
            .get(p)
            .copied()
            .ok_or_else(|| KernelError::UnboundParam {
                kernel: kernel.to_string(),
                param: p.clone(),
            }),
        Expr::BlockIdx => Err(KernelError::InvalidDefinition {
            kernel: kernel.to_string(),
            reason: "blockIdx.x used in a work-size expression".to_string(),
        }),
        Expr::Add(a, b) => {
            let (a, b) = (
                eval_expr(a, kernel, bindings)?,
                eval_expr(b, kernel, bindings)?,
            );
            a.checked_add(b).ok_or_else(|| KernelError::EvalOverflow {
                expr: format!("{expr}"),
            })
        }
        Expr::Mul(a, b) => {
            let (a, b) = (
                eval_expr(a, kernel, bindings)?,
                eval_expr(b, kernel, bindings)?,
            );
            a.checked_mul(b).ok_or_else(|| KernelError::EvalOverflow {
                expr: format!("{expr}"),
            })
        }
        Expr::CeilDiv(a, b) => {
            let (a, b) = (
                eval_expr(a, kernel, bindings)?,
                eval_expr(b, kernel, bindings)?,
            );
            if b == 0 {
                return Err(KernelError::EvalOverflow {
                    expr: format!("{expr}"),
                });
            }
            Ok(a.div_ceil(b))
        }
        Expr::Div(a, b) => {
            let (a, b) = (
                eval_expr(a, kernel, bindings)?,
                eval_expr(b, kernel, bindings)?,
            );
            if b == 0 {
                return Err(KernelError::EvalOverflow {
                    expr: format!("{expr}"),
                });
            }
            Ok(a / b)
        }
    }
}

struct Lowerer<'a> {
    kernel: &'a str,
    bindings: &'a Bindings,
    opts: LowerOptions,
    ops: Vec<Op>,
    /// Warps that __syncthreads() (barrier 0) must expect; set per role.
    block_warps: u32,
    used_sync_threads: bool,
}

impl Lowerer<'_> {
    fn lower_stmts(&mut self, stmts: &[Stmt], scale: f64) -> Result<(), KernelError> {
        for s in stmts {
            self.lower_stmt(s, scale)?;
        }
        Ok(())
    }

    fn lower_stmt(&mut self, stmt: &Stmt, scale: f64) -> Result<(), KernelError> {
        match stmt {
            Stmt::SharedDecl { .. } => Ok(()),
            Stmt::Loop { count, body, .. } => {
                let n = eval_expr(count, self.kernel, self.bindings)?;
                if n == 0 {
                    return Ok(());
                }
                if n <= self.opts.max_unroll {
                    for _ in 0..n {
                        self.lower_stmts(body, scale)?;
                    }
                } else {
                    let chunk_scale = scale * (n as f64 / self.opts.max_unroll as f64);
                    for _ in 0..self.opts.max_unroll {
                        self.lower_stmts(body, chunk_scale)?;
                    }
                }
                Ok(())
            }
            Stmt::Compute {
                unit,
                ops_per_thread,
                ..
            } => {
                let per_thread = eval_expr(ops_per_thread, self.kernel, self.bindings)?;
                let warp_ops = (per_thread as f64 * WARP_SIZE as f64 * scale).round() as u64;
                if warp_ops > 0 {
                    self.ops.push(Op::Compute {
                        unit: *unit,
                        ops: warp_ops,
                    });
                }
                Ok(())
            }
            Stmt::MemAccess {
                dir,
                space,
                bytes_per_thread,
                locality,
                ..
            } => {
                let per_thread = eval_expr(bytes_per_thread, self.kernel, self.bindings)?;
                let warp_bytes = (per_thread as f64 * WARP_SIZE as f64 * scale).round() as u64;
                if warp_bytes > 0 {
                    self.ops.push(Op::Memory {
                        dir: *dir,
                        space: *space,
                        bytes: warp_bytes,
                        locality: locality.clamp(0.0, 1.0),
                    });
                }
                Ok(())
            }
            Stmt::SyncThreads => {
                self.used_sync_threads = true;
                self.ops.push(Op::Barrier { id: 0 });
                Ok(())
            }
            Stmt::BarSync { id, .. } => {
                self.ops.push(Op::Barrier { id: *id });
                Ok(())
            }
            Stmt::ThreadRange { .. } => Err(KernelError::InvalidDefinition {
                kernel: self.kernel.to_string(),
                reason: "nested ThreadRange guards are not supported".to_string(),
            }),
            Stmt::BlockGuard { body, .. } => {
                // The guard trims which original block positions run the
                // body; per-position work is unchanged. Role-level
                // `original_blocks` accounting handles the trimming.
                self.lower_stmts(body, scale)
            }
            Stmt::PtbLoop { body, .. } => {
                // One iteration of the PTB loop is one original block's
                // work; the engine multiplies by the per-block iteration
                // count.
                self.lower_stmts(body, scale)
            }
        }
    }
}

/// Context describing how many original blocks each role must cover.
#[derive(Debug, Clone, Copy)]
struct RoleWork {
    original_blocks: u64,
}

#[allow(clippy::too_many_arguments)]
fn role_from_stmts(
    name: &str,
    warps: u32,
    block_warps: u32,
    stmts: &[Stmt],
    work: RoleWork,
    kernel: &str,
    bindings: &Bindings,
    opts: LowerOptions,
) -> Result<(WarpRole, bool), KernelError> {
    let mut low = Lowerer {
        kernel,
        bindings,
        opts,
        ops: Vec::new(),
        block_warps,
        used_sync_threads: false,
    };
    // Unwrap a leading PTB loop / block guard to find this role's work size.
    let mut body = stmts;
    let mut original_blocks = work.original_blocks;
    loop {
        match body {
            [Stmt::PtbLoop {
                original_blocks: ob,
                body: inner,
            }] => {
                original_blocks = eval_expr(ob, kernel, bindings)?;
                body = inner;
            }
            [Stmt::BlockGuard { limit, body: inner }] => {
                original_blocks = original_blocks.min(eval_expr(limit, kernel, bindings)?);
                body = inner;
            }
            _ => break,
        }
    }
    low.lower_stmts(body, 1.0)?;
    let _ = low.block_warps;
    Ok((
        WarpRole {
            name: name.into(),
            warps,
            program: WarpProgram::new(low.ops),
            original_blocks,
        },
        low.used_sync_threads,
    ))
}

/// Lowers a kernel definition into a block program.
///
/// `grid_blocks` is the *original* grid size; for PTB kernels the body's
/// `PtbLoop` statement supplies it from a parameter instead, and
/// `grid_blocks` is the issued grid.
///
/// # Errors
///
/// Propagates [`KernelError`] for unbound parameters, invalid structure and
/// arithmetic overflow.
pub fn lower_block(
    def: &KernelDef,
    grid_blocks: u64,
    bindings: &Bindings,
) -> Result<BlockProgram, KernelError> {
    lower_block_with(def, grid_blocks, bindings, LowerOptions::default())
}

/// [`lower_block`] with explicit options.
pub fn lower_block_with(
    def: &KernelDef,
    grid_blocks: u64,
    bindings: &Bindings,
    opts: LowerOptions,
) -> Result<BlockProgram, KernelError> {
    let block_warps = def.block_dim().warps();
    let body = def.body();
    let default_work = RoleWork {
        original_blocks: grid_blocks,
    };

    // Peel a whole-body PTB loop so the fused ThreadRange split (which PTB
    // fusion nests *inside* per-role PTB loops) and the plain PTB form are
    // both handled.
    let top: &[Stmt] = body;
    let ranges: Vec<&Stmt> = top
        .iter()
        .filter(|s| matches!(s, Stmt::ThreadRange { .. }))
        .collect();

    let mut any_sync_threads = false;
    let mut roles = Vec::new();
    if ranges.len() == top.len() && !ranges.is_empty() {
        // Fused form: every top-level statement is a thread-range guard.
        for s in top {
            let Stmt::ThreadRange { lo, hi, body } = s else {
                unreachable!("filtered above")
            };
            if hi <= lo || (hi - lo) % WARP_SIZE != 0 || lo % WARP_SIZE != 0 {
                return Err(KernelError::InvalidDefinition {
                    kernel: def.name().to_string(),
                    reason: format!("thread range [{lo}, {hi}) is not warp-aligned"),
                });
            }
            let warps = (hi - lo) / WARP_SIZE;
            let (role, sync) = role_from_stmts(
                &format!("{}[{}..{})", def.name(), lo, hi),
                warps,
                block_warps,
                body,
                default_work,
                def.name(),
                bindings,
                opts,
            )?;
            any_sync_threads |= sync;
            roles.push(role);
        }
    } else if ranges.is_empty() {
        let (role, sync) = role_from_stmts(
            def.name(),
            block_warps,
            block_warps,
            top,
            default_work,
            def.name(),
            bindings,
            opts,
        )?;
        any_sync_threads |= sync;
        roles.push(role);
    } else {
        return Err(KernelError::InvalidDefinition {
            kernel: def.name().to_string(),
            reason: "thread-range guards must cover the whole top level".to_string(),
        });
    }

    let mut program = BlockProgram::new(roles);
    if any_sync_threads {
        // __syncthreads() is block-wide: barrier 0 expects *every* warp in
        // the block, not just those of the role that invoked it.
        program.set_barrier_expectation(0, block_warps);
    }
    Ok(program)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{ComputeUnit, Expr};
    use crate::dims::Dim3;
    use crate::kernel::KernelKind;
    use crate::resources::ResourceUsage;

    fn bindings(pairs: &[(&str, u64)]) -> Bindings {
        pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect()
    }

    fn simple_def(body: Vec<Stmt>, params: &[&str]) -> KernelDef {
        let mut b = KernelDef::builder("t", KernelKind::Cuda)
            .block_dim(Dim3::x(128))
            .resources(ResourceUsage::new(32, 0))
            .body(body);
        for p in params {
            b = b.param(*p);
        }
        b.build().unwrap()
    }

    #[test]
    fn eval_expr_arith() {
        let b = bindings(&[("n", 7)]);
        let e = Expr::param("n").mul(Expr::lit(3)).add(Expr::lit(1));
        assert_eq!(eval_expr(&e, "k", &b).unwrap(), 22);
        let e = Expr::lit(10).ceil_div(Expr::lit(4));
        assert_eq!(eval_expr(&e, "k", &b).unwrap(), 3);
    }

    #[test]
    fn eval_expr_errors() {
        let b = Bindings::new();
        assert!(matches!(
            eval_expr(&Expr::param("x"), "k", &b),
            Err(KernelError::UnboundParam { .. })
        ));
        assert!(matches!(
            eval_expr(&Expr::BlockIdx, "k", &b),
            Err(KernelError::InvalidDefinition { .. })
        ));
        let div0 = Expr::lit(1).ceil_div(Expr::lit(0));
        assert!(matches!(
            eval_expr(&div0, "k", &b),
            Err(KernelError::EvalOverflow { .. })
        ));
    }

    #[test]
    fn uniform_body_single_role() {
        let def = simple_def(vec![Stmt::compute_cd(Expr::lit(10), "fma")], &[]);
        let bp = lower_block(&def, 8, &Bindings::new()).unwrap();
        assert_eq!(bp.roles.len(), 1);
        assert_eq!(bp.roles[0].warps, 4);
        assert_eq!(bp.roles[0].original_blocks, 8);
        // 10 ops/thread × 32 threads/warp = 320 warp-wide ops.
        assert_eq!(bp.roles[0].program.total_compute(ComputeUnit::Cuda), 320);
    }

    #[test]
    fn small_loop_unrolled_large_loop_scaled() {
        let small = simple_def(
            vec![Stmt::loop_over(
                "k",
                Expr::lit(4),
                vec![Stmt::compute_cd(Expr::lit(2), "fma")],
            )],
            &[],
        );
        let bp = lower_block(&small, 1, &Bindings::new()).unwrap();
        assert_eq!(bp.roles[0].program.ops.len(), 4);
        assert_eq!(bp.roles[0].program.total_compute(ComputeUnit::Cuda), 4 * 64);

        let large = simple_def(
            vec![Stmt::loop_over(
                "k",
                Expr::lit(64),
                vec![Stmt::compute_cd(Expr::lit(2), "fma")],
            )],
            &[],
        );
        let bp = lower_block(&large, 1, &Bindings::new()).unwrap();
        // Chunked to max_unroll = 16, total work preserved.
        assert_eq!(bp.roles[0].program.ops.len(), 16);
        assert_eq!(
            bp.roles[0].program.total_compute(ComputeUnit::Cuda),
            64 * 64
        );
    }

    #[test]
    fn sync_threads_expects_whole_block() {
        let def = simple_def(
            vec![Stmt::sync_threads(), Stmt::compute_cd(Expr::lit(1), "fma")],
            &[],
        );
        let bp = lower_block(&def, 1, &Bindings::new()).unwrap();
        assert_eq!(bp.barrier(0).unwrap().expected_warps, 4);
    }

    #[test]
    fn thread_ranges_become_roles() {
        let body = vec![
            Stmt::ThreadRange {
                lo: 0,
                hi: 64,
                body: vec![Stmt::compute_tc(Expr::lit(8), "mma")],
            },
            Stmt::ThreadRange {
                lo: 64,
                hi: 128,
                body: vec![Stmt::compute_cd(Expr::lit(8), "fma")],
            },
        ];
        let def = simple_def(body, &[]);
        let bp = lower_block(&def, 4, &Bindings::new()).unwrap();
        assert_eq!(bp.roles.len(), 2);
        assert_eq!(bp.roles[0].warps, 2);
        assert_eq!(bp.roles[1].warps, 2);
        assert_eq!(bp.roles[0].program.total_compute(ComputeUnit::Tensor), 256);
        assert_eq!(bp.roles[1].program.total_compute(ComputeUnit::Cuda), 256);
    }

    #[test]
    fn ptb_loop_sets_original_blocks() {
        let body = vec![Stmt::PtbLoop {
            original_blocks: Expr::param("orig"),
            body: vec![Stmt::compute_cd(Expr::lit(1), "fma")],
        }];
        let def = simple_def(body, &["orig"]);
        let bp = lower_block(&def, 8, &bindings(&[("orig", 100)])).unwrap();
        assert_eq!(bp.roles[0].original_blocks, 100);
    }

    #[test]
    fn misaligned_thread_range_rejected() {
        let body = vec![Stmt::ThreadRange {
            lo: 0,
            hi: 40,
            body: vec![Stmt::compute_cd(Expr::lit(1), "fma")],
        }];
        let def = simple_def(body, &[]);
        assert!(lower_block(&def, 1, &Bindings::new()).is_err());
    }

    #[test]
    fn mixed_top_level_rejected() {
        let body = vec![
            Stmt::ThreadRange {
                lo: 0,
                hi: 64,
                body: vec![Stmt::compute_cd(Expr::lit(1), "fma")],
            },
            Stmt::compute_cd(Expr::lit(1), "fma"),
        ];
        let def = simple_def(body, &[]);
        assert!(lower_block(&def, 1, &Bindings::new()).is_err());
    }

    #[test]
    fn block_guard_trims_work() {
        let body = vec![Stmt::BlockGuard {
            limit: Expr::param("lim"),
            body: vec![Stmt::compute_cd(Expr::lit(1), "fma")],
        }];
        let def = simple_def(body, &["lim"]);
        let bp = lower_block(&def, 10, &bindings(&[("lim", 6)])).unwrap();
        assert_eq!(bp.roles[0].original_blocks, 6);
    }
}
