//! Error type for kernel construction, lowering and evaluation.

use std::error::Error;
use std::fmt;

/// Errors produced while building, binding or lowering kernels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KernelError {
    /// A referenced parameter has no binding.
    UnboundParam {
        /// Kernel name.
        kernel: String,
        /// Missing parameter name.
        param: String,
    },
    /// The kernel definition is structurally invalid.
    InvalidDefinition {
        /// Kernel name.
        kernel: String,
        /// Human-readable reason.
        reason: String,
    },
    /// An expression evaluated to a value that overflows or is out of range.
    EvalOverflow {
        /// Offending expression, rendered.
        expr: String,
    },
}

impl fmt::Display for KernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KernelError::UnboundParam { kernel, param } => {
                write!(f, "kernel `{kernel}`: parameter `{param}` is not bound")
            }
            KernelError::InvalidDefinition { kernel, reason } => {
                write!(f, "kernel `{kernel}` is invalid: {reason}")
            }
            KernelError::EvalOverflow { expr } => {
                write!(f, "expression `{expr}` overflowed during evaluation")
            }
        }
    }
}

impl Error for KernelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = KernelError::UnboundParam {
            kernel: "sgemm".into(),
            param: "k_iters".into(),
        };
        assert_eq!(
            e.to_string(),
            "kernel `sgemm`: parameter `k_iters` is not bound"
        );
        let e = KernelError::InvalidDefinition {
            kernel: "x".into(),
            reason: "empty body".into(),
        };
        assert!(e.to_string().contains("empty body"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<KernelError>();
    }
}
