//! Lowered per-warp timing programs.
//!
//! The discrete-event simulator does not interpret the AST directly; kernels
//! are lowered ([`crate::lower`]) into a [`BlockProgram`]: a set of
//! [`WarpRole`]s, each describing a group of warps in the thread block that
//! execute the same [`Op`] sequence. A plain kernel has one role covering the
//! whole block; a fused kernel has one role per component kernel — exactly
//! the heterogeneous-warp structure of the paper's Fig. 6.

use std::fmt;

use crate::ast::{ComputeUnit, MemDir, MemSpace};
use crate::kernel::Name;
use crate::WARP_SIZE;

/// One warp-granularity operation.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// Occupy a compute pipeline for `ops` FMA-equivalent operations
    /// (warp-wide total).
    Compute {
        /// Pipeline to occupy.
        unit: ComputeUnit,
        /// Warp-wide FMA-equivalent operation count.
        ops: u64,
    },
    /// Move `bytes` (warp-wide) through the memory system.
    Memory {
        /// Load or store.
        dir: MemDir,
        /// Address space.
        space: MemSpace,
        /// Warp-wide bytes.
        bytes: u64,
        /// Fraction of global traffic served on-chip, in `[0, 1]`.
        locality: f64,
    },
    /// Arrive at named barrier `id` and wait for the expected warp count.
    Barrier {
        /// Hardware barrier id.
        id: u16,
    },
}

impl Op {
    /// FMA-equivalent compute work carried by this op on the given unit.
    pub fn compute_ops(&self, on: ComputeUnit) -> u64 {
        match self {
            Op::Compute { unit, ops } if *unit == on => *ops,
            _ => 0,
        }
    }

    /// Bytes of global DRAM-side traffic implied by this op (after locality
    /// filtering).
    pub fn dram_bytes(&self) -> f64 {
        match self {
            Op::Memory {
                space: MemSpace::Global,
                bytes,
                locality,
                ..
            } => *bytes as f64 * (1.0 - locality),
            _ => 0.0,
        }
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Op::Compute { unit, ops } => write!(f, "compute[{unit}] {ops} ops"),
            Op::Memory {
                dir, space, bytes, ..
            } => {
                let d = match dir {
                    MemDir::Read => "ld",
                    MemDir::Write => "st",
                };
                let s = match space {
                    MemSpace::Global => "global",
                    MemSpace::Shared => "shared",
                };
                write!(f, "{d}.{s} {bytes} B")
            }
            Op::Barrier { id } => write!(f, "bar.sync {id}"),
        }
    }
}

/// The op sequence one warp executes for one unit of work (one original
/// thread block's worth, in PTB terms).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct WarpProgram {
    /// Ops in issue order.
    pub ops: Vec<Op>,
}

impl WarpProgram {
    /// Creates a program from ops.
    pub fn new(ops: Vec<Op>) -> Self {
        WarpProgram { ops }
    }

    /// Total FMA-equivalent work on a unit, per execution of the program.
    pub fn total_compute(&self, unit: ComputeUnit) -> u64 {
        self.ops.iter().map(|o| o.compute_ops(unit)).sum()
    }

    /// Total warp-wide global-memory bytes (pre-locality).
    pub fn total_global_bytes(&self) -> u64 {
        self.ops
            .iter()
            .map(|o| match o {
                Op::Memory {
                    space: MemSpace::Global,
                    bytes,
                    ..
                } => *bytes,
                _ => 0,
            })
            .sum()
    }

    /// Barrier ids used by this program, deduplicated, in first-use order.
    pub fn barrier_ids(&self) -> Vec<u16> {
        let mut ids = Vec::new();
        for op in &self.ops {
            if let Op::Barrier { id } = op {
                if !ids.contains(id) {
                    ids.push(*id);
                }
            }
        }
        ids
    }

    /// Run-length metadata for the engine's macro-stepper: `r[pc]` is the
    /// number of consecutive **barrier-free** ops starting at `pc`
    /// (`0` when `ops[pc]` is itself a barrier). A warp positioned at
    /// `pc` can retire `r[pc]` ops without touching cross-warp barrier
    /// state; whether it may do so *inline* is decided by the engine's
    /// queue-minimum eligibility rule.
    pub fn run_lengths(&self) -> Vec<u32> {
        let mut out = vec![0u32; self.ops.len()];
        let mut run = 0u32;
        for (pc, op) in self.ops.iter().enumerate().rev() {
            run = match op {
                Op::Barrier { .. } => 0,
                _ => run + 1,
            };
            out[pc] = run;
        }
        out
    }

    /// Whether the program synchronizes at all. Barrier-free programs
    /// are fully macro-steppable once a warp runs alone.
    pub fn is_barrier_free(&self) -> bool {
        !self.ops.iter().any(|op| matches!(op, Op::Barrier { .. }))
    }
}

/// A group of warps within the block executing the same program.
#[derive(Debug, Clone, PartialEq)]
pub struct WarpRole {
    /// Human-readable role name (component kernel name).
    pub name: Name,
    /// Number of warps in this role.
    pub warps: u32,
    /// The per-work-unit program.
    pub program: WarpProgram,
    /// Total work units (original thread blocks) this role must cover across
    /// the whole launch. The engine divides these among issued blocks.
    pub original_blocks: u64,
}

impl WarpRole {
    /// Threads covered by this role.
    pub fn threads(&self) -> u32 {
        self.warps * WARP_SIZE
    }
}

/// Expected arrivals at one named barrier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BarrierSpec {
    /// Barrier id.
    pub id: u16,
    /// Warps that must arrive before the barrier releases.
    pub expected_warps: u32,
}

/// The lowered program for one thread block shape.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockProgram {
    /// Warp groups, in thread-id order.
    pub roles: Vec<WarpRole>,
    /// Expected warp arrivals per barrier id.
    pub barriers: Vec<BarrierSpec>,
}

impl BlockProgram {
    /// Builds a program and derives the barrier table: each barrier id
    /// expects arrivals from every warp of every role that uses it.
    pub fn new(roles: Vec<WarpRole>) -> Self {
        let mut barriers: Vec<BarrierSpec> = Vec::new();
        for role in &roles {
            for id in role.program.barrier_ids() {
                match barriers.iter_mut().find(|b| b.id == id) {
                    Some(b) => b.expected_warps += role.warps,
                    None => barriers.push(BarrierSpec {
                        id,
                        expected_warps: role.warps,
                    }),
                }
            }
        }
        BlockProgram { roles, barriers }
    }

    /// Total warps per block.
    pub fn warps(&self) -> u32 {
        self.roles.iter().map(|r| r.warps).sum()
    }

    /// Total threads per block.
    pub fn threads(&self) -> u32 {
        self.warps() * WARP_SIZE
    }

    /// Expected arrivals for barrier `id`, if any role uses it.
    pub fn barrier(&self, id: u16) -> Option<BarrierSpec> {
        self.barriers.iter().copied().find(|b| b.id == id)
    }

    /// Exclusive upper bound on barrier ids in use (max id + 1, or 0 when
    /// the block synchronizes nowhere). The engine sizes its dense
    /// per-block arrival/waiter tables from this, so barrier state is a
    /// direct index instead of a hash lookup.
    pub fn barrier_bound(&self) -> usize {
        self.barriers
            .iter()
            .map(|b| b.id as usize + 1)
            .max()
            .unwrap_or(0)
    }

    /// Overrides the expected arrival count for barrier `id`.
    ///
    /// Lowering uses this to give block-wide `__syncthreads()` semantics
    /// (barrier 0 expects *all* warps in the block, even those of roles that
    /// never arrive) — which is precisely how a fused kernel that kept
    /// `__syncthreads()` deadlocks, as §V-D warns.
    pub fn set_barrier_expectation(&mut self, id: u16, expected_warps: u32) {
        match self.barriers.iter_mut().find(|b| b.id == id) {
            Some(b) => b.expected_warps = expected_warps,
            None => self.barriers.push(BarrierSpec { id, expected_warps }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn compute(unit: ComputeUnit, ops: u64) -> Op {
        Op::Compute { unit, ops }
    }

    #[test]
    fn program_totals() {
        let p = WarpProgram::new(vec![
            compute(ComputeUnit::Tensor, 100),
            compute(ComputeUnit::Cuda, 40),
            Op::Memory {
                dir: MemDir::Read,
                space: MemSpace::Global,
                bytes: 256,
                locality: 0.75,
            },
            Op::Barrier { id: 3 },
            Op::Barrier { id: 3 },
            Op::Barrier { id: 5 },
        ]);
        assert_eq!(p.total_compute(ComputeUnit::Tensor), 100);
        assert_eq!(p.total_compute(ComputeUnit::Cuda), 40);
        assert_eq!(p.total_global_bytes(), 256);
        assert_eq!(p.barrier_ids(), vec![3, 5]);
    }

    #[test]
    fn dram_bytes_respects_locality() {
        let op = Op::Memory {
            dir: MemDir::Read,
            space: MemSpace::Global,
            bytes: 1000,
            locality: 0.9,
        };
        assert!((op.dram_bytes() - 100.0).abs() < 1e-9);
        let shared = Op::Memory {
            dir: MemDir::Read,
            space: MemSpace::Shared,
            bytes: 1000,
            locality: 0.0,
        };
        assert_eq!(shared.dram_bytes(), 0.0);
    }

    #[test]
    fn barrier_table_sums_role_warps() {
        let role = |name: &str, warps, ids: &[u16]| WarpRole {
            name: name.into(),
            warps,
            program: WarpProgram::new(ids.iter().map(|&id| Op::Barrier { id }).collect()),
            original_blocks: 1,
        };
        let bp = BlockProgram::new(vec![
            role("tc", 2, &[1]),
            role("cd", 4, &[2]),
            role("x", 1, &[1]),
        ]);
        assert_eq!(bp.warps(), 7);
        assert_eq!(bp.threads(), 224);
        assert_eq!(bp.barrier(1).unwrap().expected_warps, 3);
        assert_eq!(bp.barrier(2).unwrap().expected_warps, 4);
        assert!(bp.barrier(9).is_none());
    }

    #[test]
    fn run_lengths_count_barrier_free_spans() {
        let p = WarpProgram::new(vec![
            compute(ComputeUnit::Cuda, 1),
            compute(ComputeUnit::Tensor, 1),
            Op::Barrier { id: 2 },
            compute(ComputeUnit::Cuda, 1),
        ]);
        assert_eq!(p.run_lengths(), vec![2, 1, 0, 1]);
        assert!(!p.is_barrier_free());
        let free = WarpProgram::new(vec![
            compute(ComputeUnit::Cuda, 1),
            compute(ComputeUnit::Cuda, 1),
        ]);
        assert_eq!(free.run_lengths(), vec![2, 1]);
        assert!(free.is_barrier_free());
        assert!(WarpProgram::default().run_lengths().is_empty());
    }

    #[test]
    fn barrier_bound_is_max_id_plus_one() {
        let role = |ids: &[u16]| WarpRole {
            name: "r".into(),
            warps: 1,
            program: WarpProgram::new(ids.iter().map(|&id| Op::Barrier { id }).collect()),
            original_blocks: 1,
        };
        assert_eq!(BlockProgram::new(vec![role(&[])]).barrier_bound(), 0);
        assert_eq!(BlockProgram::new(vec![role(&[0])]).barrier_bound(), 1);
        let mut bp = BlockProgram::new(vec![role(&[3, 1])]);
        assert_eq!(bp.barrier_bound(), 4);
        // Overrides extend the bound too.
        bp.set_barrier_expectation(9, 2);
        assert_eq!(bp.barrier_bound(), 10);
    }

    #[test]
    fn barrier_expectation_override() {
        let mut bp = BlockProgram::new(vec![WarpRole {
            name: "a".into(),
            warps: 2,
            program: WarpProgram::new(vec![Op::Barrier { id: 0 }]),
            original_blocks: 1,
        }]);
        bp.set_barrier_expectation(0, 6);
        assert_eq!(bp.barrier(0).unwrap().expected_warps, 6);
        bp.set_barrier_expectation(7, 1);
        assert_eq!(bp.barrier(7).unwrap().expected_warps, 1);
    }
}
