//! `tacker-cli` — command-line front end for the Tacker reproduction.
//!
//! ```text
//! tacker-cli list                               # LC services / BE apps
//! tacker-cli colocate --lc Resnet50 --be fft    # run one co-location pair
//! tacker-cli fuse --cd cutcp                    # explore fusion ratios
//! tacker-cli codegen --cd fft                   # PTB + fused CUDA source
//! tacker-cli power --lc Resnet50                # §V-D power estimates
//! ```

mod args;
mod commands;

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match commands::dispatch(&argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!();
            eprintln!("{}", commands::USAGE);
            ExitCode::FAILURE
        }
    }
}
