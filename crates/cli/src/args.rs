//! Minimal `--flag value` argument parsing (no external dependencies).

use std::collections::HashMap;

/// Parsed flags of a subcommand.
#[derive(Debug, Default)]
pub struct Flags {
    values: HashMap<String, String>,
    switches: Vec<String>,
}

impl Flags {
    /// Parses `--key value` pairs and bare `--switch`es.
    ///
    /// # Errors
    ///
    /// Returns a message for positional arguments (none are accepted).
    pub fn parse(args: &[String]) -> Result<Flags, String> {
        let mut flags = Flags::default();
        let mut i = 0;
        while i < args.len() {
            let arg = &args[i];
            let Some(name) = arg.strip_prefix("--") else {
                return Err(format!("unexpected positional argument `{arg}`"));
            };
            if i + 1 < args.len() && !args[i + 1].starts_with("--") {
                flags.values.insert(name.to_string(), args[i + 1].clone());
                i += 2;
            } else {
                flags.switches.push(name.to_string());
                i += 1;
            }
        }
        Ok(flags)
    }

    /// A string flag value.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.values.get(name).map(String::as_str)
    }

    /// A required string flag.
    ///
    /// # Errors
    ///
    /// Returns a message when missing.
    pub fn require(&self, name: &str) -> Result<&str, String> {
        self.get(name).ok_or_else(|| format!("missing --{name}"))
    }

    /// A numeric flag with a default.
    ///
    /// # Errors
    ///
    /// Returns a message when the value does not parse.
    pub fn get_u64(&self, name: &str, default: u64) -> Result<u64, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{name} expects a number, got `{v}`")),
        }
    }

    /// Whether a bare switch is present.
    pub fn has(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_pairs_and_switches() {
        let f = Flags::parse(&argv("--lc Resnet50 --queries 50 --json")).unwrap();
        assert_eq!(f.get("lc"), Some("Resnet50"));
        assert_eq!(f.get_u64("queries", 0).unwrap(), 50);
        assert!(f.has("json"));
        assert!(!f.has("quiet"));
    }

    #[test]
    fn rejects_positional() {
        assert!(Flags::parse(&argv("Resnet50")).is_err());
    }

    #[test]
    fn require_and_defaults() {
        let f = Flags::parse(&argv("--be fft")).unwrap();
        assert!(f.require("be").is_ok());
        assert!(f.require("lc").is_err());
        assert_eq!(f.get_u64("queries", 100).unwrap(), 100);
        let bad = Flags::parse(&argv("--queries many")).unwrap();
        assert!(bad.get_u64("queries", 1).is_err());
    }
}
