//! Subcommand implementations.

use std::sync::Arc;

use tacker::prelude::*;
use tacker::profile::KernelProfiler;
use tacker_fuser::{enumerate_configs, fuse_flexible, to_ptb, PackPriority};
use tacker_kernel::SimTime;
use tacker_sim::{Device, ExecutablePlan, GpuSpec, PowerModel};
use tacker_trace::{chrome_trace, RingSink, TraceEvent};
use tacker_workloads::gemm::{gemm_workload, gemm_workload_64, GemmShape};
use tacker_workloads::parboil::Benchmark;

use crate::args::Flags;

/// Top-level usage text.
pub const USAGE: &str = "\
tacker-cli — Tensor-CUDA core kernel fusion with QoS (HPCA'22 reproduction)

USAGE:
  tacker-cli list
  tacker-cli colocate --lc <service> --be <app>
             [--policy tacker|baymax|fusion-only] [--queries N] [--seed N]
             [--gpu 2080ti|v100] [--jobs N] [--json] [--trace <out.json>]
  tacker-cli multi    --lc <svc,svc,...> --be <app> [--queries N] [--jobs N]
             [--json] [--trace <out.json>]
  tacker-cli serve    --lc <service> --be <app> [--policy ...] [--queries N]
             [--seed N] [--faults <plan>] [--arrivals poisson|bursty:N]
             [--guard] [--gpu 2080ti|v100] [--json] [--trace <out.json>]
             [--metrics-out <prom.txt>] [--timeseries-out <out.jsonl>]
             [--window-us N]
  tacker-cli cluster  --lc <svc,svc,...> [--devices N] [--be <app>]
             [--policy round-robin|least-outstanding|qos-headroom|cache-affinity]
             [--device-policy tacker|baymax|fusion-only|lc-only]
             [--dispatch-us N] [--compare] [--queries N] [--seed N]
             [--jobs N] [--json]
  tacker-cli stats    --in <prom.txt | out.jsonl>
  tacker-cli sweep    --lc <svc,svc,...> --be <app,app,...>
             [--policy tacker|baymax|fusion-only] [--queries N] [--seed N]
             [--gpu 2080ti|v100] [--jobs N] [--json]
  tacker-cli trace    --lc <service> --be <app> [--policy ...] [--queries N]
             [--out <out.json>] [--gpu 2080ti|v100]
  tacker-cli fuse     --cd <parboil> [--m N --n N --k N] [--impl 128|64]
             [--gpu 2080ti|v100]
  tacker-cli codegen  --cd <parboil> [--ratio AxB]
  tacker-cli power    --lc <service> [--gpu 2080ti|v100]
  tacker-cli model    --name <service> [--batch N]

`--trace <path>` records scheduler decisions, kernel retirements and query
completions, and writes a Chrome trace-event JSON loadable in Perfetto
(https://ui.perfetto.dev) or chrome://tracing.

`--jobs N` sets the worker-thread count for the parallel phases (sweep
cells, fusion-candidate measurement, serve-mode load calibration) on
colocate/multi/sweep/serve. `--jobs 0` (the default) auto-detects every
core; when the flag is omitted the `TACKER_JOBS` environment variable is
consulted with the same convention (0 = auto). Small batches fall back
to serial automatically, so `--jobs` is always safe to leave at auto.
Any jobs count produces bit-identical results: simulation is pure and
each run's RNG stream is derived from its (pair, policy) coordinates.

`serve` runs the online serving runtime. `--faults` takes a comma-separated
plan: `mispredict:<mult>:<frac>`, `straggler:<mult>:<frac>`,
`flood:<at_ms>:<kernels>`, `outage:<start_ms>:<dur_ms>`, `seed:<n>`, or
`none` (e.g. `--faults mispredict:1.5:0.2,outage:30:10`). `--guard` enables
the adaptive QoS guard (headroom-margin inflation + the fuse → reorder-only
→ LC-only degradation ladder).

`cluster` serves the LC services across a fleet of `--devices N` simulated
GPUs (alternating RTX 2080 Ti / V100 profiles), routing each query through
the global dispatcher under `--policy` (a *dispatch* policy; the on-device
scheduler is picked with `--device-policy`). `--be <app>` makes the BE
application resident on every node. `--dispatch-us N` charges a constant
dispatcher hop per query. `--compare` runs all four dispatch policies over
identical arrival streams and prints one row per policy.

`--metrics-out <path>` writes the run's metrics registry (counters, gauges
and latency histograms) as Prometheus text exposition. `--timeseries-out
<path>` enables windowed telemetry and writes one JSON object per non-empty
window (utilization, headroom, guard level, arrivals/violations, cache hit
rate); `--window-us N` sets the window width (default 1000, implies
windowed telemetry). `stats` summarizes either export format.
";

/// Dispatches a command line.
///
/// # Errors
///
/// Returns a human-readable message for unknown commands, bad flags, or
/// runtime failures.
pub fn dispatch(argv: &[String]) -> Result<(), String> {
    let Some((cmd, rest)) = argv.split_first() else {
        return Err("no command given".to_string());
    };
    let flags = Flags::parse(rest)?;
    match cmd.as_str() {
        "list" => list(),
        "colocate" => colocate(&flags),
        "multi" => multi(&flags),
        "serve" => serve(&flags),
        "cluster" => cluster(&flags),
        "stats" => stats(&flags),
        "sweep" => sweep(&flags),
        "trace" => trace(&flags),
        "fuse" => fuse(&flags),
        "codegen" => codegen(&flags),
        "power" => power(&flags),
        "model" => model(&flags),
        other => Err(format!("unknown command `{other}`")),
    }
}

fn device_for(flags: &Flags) -> Result<Arc<Device>, String> {
    match flags.get("gpu").unwrap_or("2080ti") {
        "2080ti" => Ok(Arc::new(Device::new(GpuSpec::rtx2080ti()))),
        "v100" => Ok(Arc::new(Device::new(GpuSpec::v100()))),
        other => Err(format!("unknown GPU `{other}` (2080ti or v100)")),
    }
}

fn parse_policy(name: &str) -> Result<Policy, String> {
    match name {
        "tacker" => Ok(Policy::Tacker),
        "baymax" => Ok(Policy::Baymax),
        "fusion-only" => Ok(Policy::FusionOnly),
        "lc-only" => Ok(Policy::LcOnly),
        other => Err(format!("unknown policy `{other}`")),
    }
}

fn policy_for(flags: &Flags) -> Result<Policy, String> {
    parse_policy(flags.get("policy").unwrap_or("tacker"))
}

/// Worker-count resolution for colocate/multi/sweep/serve: the `--jobs`
/// flag wins, then the shared [`tacker_par::env_jobs`] convention
/// (`TACKER_JOBS`, then `0` = auto-detect every core).
fn jobs_for(flags: &Flags) -> Result<usize, String> {
    let flag = match flags.get("jobs") {
        Some(_) => Some(flags.get_u64("jobs", 0)? as usize),
        None => None,
    };
    tacker_par::env_jobs(flag)
}

fn config_for(flags: &Flags) -> Result<ExperimentConfig, String> {
    let mut config = ExperimentConfig::default()
        .with_queries(flags.get_u64("queries", 100)? as usize)
        .with_jobs(jobs_for(flags)?);
    if let Some(seed) = flags.get("seed") {
        config = config.with_seed(seed.parse().map_err(|_| "--seed expects a number")?);
    }
    Ok(config)
}

fn parboil_for(name: &str) -> Result<Benchmark, String> {
    Benchmark::ALL
        .into_iter()
        .find(|b| b.name() == name)
        .ok_or_else(|| {
            format!(
                "unknown Parboil kernel `{name}` (one of: {})",
                Benchmark::ALL
                    .iter()
                    .map(|b| b.name())
                    .collect::<Vec<_>>()
                    .join(", ")
            )
        })
}

fn list() -> Result<(), String> {
    println!("LC services (Table II batch sizes):");
    for m in tacker_workloads::dnn::DnnModel::ALL {
        println!("  {:<10} batch {}", m.name(), m.table_ii_batch());
    }
    println!("\nBE applications:");
    for app in tacker_workloads::be_apps() {
        println!("  {:<8} {}", app.name(), app.intensity());
    }
    println!("\nParboil kernels (fusion partners):");
    for b in Benchmark::ALL {
        println!("  {}", b.name());
    }
    Ok(())
}

/// Milliseconds of an optional latency percentile (0 when no query
/// completed).
fn ms(t: Option<SimTime>) -> f64 {
    t.map_or(0.0, |t| t.as_millis_f64())
}

/// Runs a traced co-location and writes the Perfetto-compatible trace to
/// `path`; returns the report.
fn traced_colocation(
    device: &Arc<Device>,
    lc: &tacker_workloads::LcService,
    be: tacker_workloads::BeApp,
    policy: Policy,
    config: &ExperimentConfig,
    path: &str,
) -> Result<RunReport, String> {
    let ring = Arc::new(RingSink::unbounded());
    let report = ColocationRun::new(device, config, std::slice::from_ref(lc), &[be])
        .map_err(|e| e.to_string())?
        .policy(policy)
        .traced(ring.clone() as Arc<dyn tacker_trace::TraceSink>)
        .run()
        .map_err(|e| e.to_string())?;
    write_chrome_trace(&ring, path)?;
    Ok(report)
}

fn write_chrome_trace(ring: &RingSink, path: &str) -> Result<(), String> {
    let events = ring.events();
    std::fs::write(path, chrome_trace(&events)).map_err(|e| format!("writing {path}: {e}"))?;
    eprintln!(
        "wrote {} trace events to {path} (open in https://ui.perfetto.dev)",
        events.len()
    );
    Ok(())
}

fn colocate(flags: &Flags) -> Result<(), String> {
    let device = device_for(flags)?;
    let lc = tacker_workloads::lc_service(flags.require("lc")?, &device)
        .ok_or("unknown LC service (see `tacker list`)")?;
    let be = tacker_workloads::be_app(flags.require("be")?)
        .ok_or("unknown BE app (see `tacker list`)")?;
    let policy = policy_for(flags)?;
    let config = config_for(flags)?;
    let report = match flags.get("trace") {
        Some(path) => traced_colocation(&device, &lc, be, policy, &config, path)?,
        None => ColocationRun::new(&device, &config, std::slice::from_ref(&lc), &[be])
            .map_err(|e| e.to_string())?
            .policy(policy)
            .run()
            .map_err(|e| e.to_string())?,
    };
    if flags.has("json") {
        println!("{}", report_json(lc.name(), &report));
    } else {
        println!(
            "{} under {:?} on {}:",
            lc.name(),
            policy,
            device.spec().name
        );
        println!(
            "  queries {} | mean {:.2} ms | p99 {:.2} ms | QoS {}",
            report.query_count(),
            ms(report.mean_latency()),
            ms(report.p99_latency()),
            if report.qos_met() { "met" } else { "VIOLATED" }
        );
        println!(
            "  BE work rate {:.3} | {} BE kernels ({} fused, {} reordered)",
            report.be_work_rate(),
            report.be_kernels,
            report.fused_launches,
            report.reordered_launches
        );
    }
    Ok(())
}

/// `trace`: a traced co-location whose primary output is the Perfetto
/// JSON; prints a digest of the recorded events.
fn trace(flags: &Flags) -> Result<(), String> {
    let device = device_for(flags)?;
    let lc = tacker_workloads::lc_service(flags.require("lc")?, &device)
        .ok_or("unknown LC service (see `tacker list`)")?;
    let be = tacker_workloads::be_app(flags.require("be")?)
        .ok_or("unknown BE app (see `tacker list`)")?;
    let policy = policy_for(flags)?;
    let config = config_for(flags)?;
    let path = flags.get("out").unwrap_or("trace.json");
    let ring = Arc::new(RingSink::unbounded());
    let report = ColocationRun::new(&device, &config, std::slice::from_ref(&lc), &[be])
        .map_err(|e| e.to_string())?
        .policy(policy)
        .traced(ring.clone() as Arc<dyn tacker_trace::TraceSink>)
        .run()
        .map_err(|e| e.to_string())?;
    let events = ring.events();
    let count = |f: fn(&TraceEvent) -> bool| events.iter().filter(|e| f(e)).count();
    println!(
        "{} + {} under {:?}:",
        lc.name(),
        flags.require("be")?,
        policy
    );
    println!(
        "  {} events: {} decisions, {} fusion rejections, {} kernel retirements, {} queries",
        events.len(),
        count(|e| matches!(e, TraceEvent::Decision { .. })),
        count(|e| matches!(e, TraceEvent::FusionRejected { .. })),
        count(|e| matches!(e, TraceEvent::KernelRetired { .. })),
        count(|e| matches!(e, TraceEvent::QueryCompleted { .. })),
    );
    println!(
        "  p99 {:.2} ms | QoS {} | BE work rate {:.3}",
        ms(report.p99_latency()),
        if report.qos_met() { "met" } else { "VIOLATED" },
        report.be_work_rate()
    );
    print!("{}", report.metrics.render());
    write_chrome_trace(&ring, path)
}

fn multi(flags: &Flags) -> Result<(), String> {
    let device = device_for(flags)?;
    let names = flags.require("lc")?;
    let mut lcs = Vec::new();
    for name in names.split(',') {
        lcs.push(
            tacker_workloads::lc_service(name.trim(), &device)
                .ok_or_else(|| format!("unknown LC service `{name}`"))?,
        );
    }
    let be = tacker_workloads::be_app(flags.require("be")?)
        .ok_or("unknown BE app (see `tacker list`)")?;
    let config = config_for(flags)?;
    let report = match flags.get("trace") {
        Some(path) => {
            let ring = Arc::new(RingSink::unbounded());
            let report = ColocationRun::new(&device, &config, &lcs, &[be])
                .map_err(|e| e.to_string())?
                .traced(ring.clone() as Arc<dyn tacker_trace::TraceSink>)
                .run()
                .map_err(|e| e.to_string())?;
            write_chrome_trace(&ring, path)?;
            report
        }
        None => ColocationRun::new(&device, &config, &lcs, &[be])
            .map_err(|e| e.to_string())?
            .run()
            .map_err(|e| e.to_string())?,
    };
    for svc in report.per_service() {
        println!(
            "{:<10} mean {:.2} ms  p99 {:.2} ms  violations {}",
            svc.name,
            ms(svc.mean_latency()),
            ms(svc.p99_latency()),
            svc.qos_violations
        );
    }
    println!(
        "BE work rate {:.3}, fused launches {}",
        report.be_work_rate(),
        report.fused_launches
    );
    Ok(())
}

/// `serve`: the online serving runtime — streaming arrivals, optional
/// fault injection, optional adaptive QoS guard.
fn serve(flags: &Flags) -> Result<(), String> {
    let device = device_for(flags)?;
    let lc = tacker_workloads::lc_service(flags.require("lc")?, &device)
        .ok_or("unknown LC service (see `tacker list`)")?;
    let be = tacker_workloads::be_app(flags.require("be")?)
        .ok_or("unknown BE app (see `tacker list`)")?;
    let policy = policy_for(flags)?;
    let config = config_for(flags)?;
    let faults = tacker::FaultPlan::parse(flags.get("faults").unwrap_or("none"))
        .map_err(|e| e.to_string())?;
    let arrivals = match flags.get("arrivals").unwrap_or("poisson") {
        "poisson" => ArrivalSpec::Poisson,
        spec => match spec.split_once(':') {
            Some(("bursty", n)) => ArrivalSpec::Bursty {
                burst: n
                    .parse()
                    .map_err(|_| "--arrivals bursty:<N> expects a number")?,
            },
            _ => {
                return Err(format!(
                    "unknown arrival spec `{spec}` (poisson or bursty:N)"
                ))
            }
        },
    };
    let mut run = ColocationRun::new(&device, &config, std::slice::from_ref(&lc), &[be])
        .map_err(|e| e.to_string())?
        .policy(policy)
        .arrivals(arrivals)
        .faults(faults);
    if flags.has("guard") {
        run = run.guarded(GuardConfig::default());
    }
    // Windowed telemetry: on when a time-series output is requested or a
    // window width is given explicitly.
    let window_us = flags.get_u64("window-us", 1000)?.max(1);
    if flags.get("timeseries-out").is_some() || flags.get("window-us").is_some() {
        run = run.windowed(SimTime::from_micros(window_us));
    }
    let ring = flags.get("trace").map(|_| Arc::new(RingSink::unbounded()));
    if let Some(ring) = &ring {
        run = run.traced(Arc::clone(ring) as Arc<dyn tacker_trace::TraceSink>);
    }
    let report = run.run().map_err(|e| e.to_string())?;
    if let (Some(ring), Some(path)) = (&ring, flags.get("trace")) {
        write_chrome_trace(ring, path)?;
    }
    if let Some(path) = flags.get("metrics-out") {
        std::fs::write(path, tacker_trace::prometheus_text(&report.metrics))
            .map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("wrote Prometheus metrics to {path}");
    }
    if let Some(path) = flags.get("timeseries-out") {
        std::fs::write(path, tacker_trace::timeseries_jsonl(&report.windows))
            .map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!(
            "wrote {} telemetry windows ({window_us} us wide) to {path}",
            report.windows.len()
        );
    }
    if flags.has("json") {
        println!("{}", serve_json(lc.name(), &report));
    } else {
        println!(
            "{} served under {:?} on {}:",
            lc.name(),
            policy,
            device.spec().name
        );
        println!(
            "  queries {} | mean {:.2} ms | p99 {:.2} ms | violations {} | QoS {}",
            report.query_count(),
            ms(report.mean_latency()),
            ms(report.p99_latency()),
            report.qos_violations(),
            if report.qos_met() { "met" } else { "VIOLATED" }
        );
        println!(
            "  BE work rate {:.3} | {} BE kernels ({} fused, {} reordered)",
            report.be_work_rate(),
            report.be_kernels,
            report.fused_launches,
            report.reordered_launches
        );
        println!(
            "  faults injected {} | guard steps {}{}",
            report.faults_injected,
            report.guard_steps,
            report
                .guard_level
                .map(|l| format!(" | guard level {}", l.name()))
                .unwrap_or_default()
        );
        if !report.violation_log.is_empty() {
            println!(
                "  violations attributed {} (guard rung, faults in flight, BE co-runner, \
                 queue depth)",
                report.violation_log.len()
            );
        }
    }
    Ok(())
}

/// `cluster`: fleet-scale serving — N heterogeneous devices behind a
/// global dispatcher with a pluggable per-query routing policy.
fn cluster(flags: &Flags) -> Result<(), String> {
    // Service construction needs a device handle only for kernel
    // compilation; the fleet builds its own per-node devices.
    let scratch = Arc::new(Device::new(GpuSpec::rtx2080ti()));
    let mut lcs = Vec::new();
    for name in flags.require("lc")?.split(',') {
        lcs.push(
            tacker_workloads::lc_service(name.trim(), &scratch)
                .ok_or_else(|| format!("unknown LC service `{name}`"))?,
        );
    }
    let devices = (flags.get_u64("devices", 2)? as usize).max(1);
    let dispatch_policy = DispatchPolicy::parse(flags.get("policy").unwrap_or("round-robin"))
        .map_err(|e| e.to_string())?;
    let device_policy = parse_policy(flags.get("device-policy").unwrap_or("tacker"))?;
    let config = config_for(flags)?;
    let mut nodes = heterogeneous_fleet(devices);
    if let Some(name) = flags.get("be") {
        let be = tacker_workloads::be_app(name).ok_or("unknown BE app (see `tacker list`)")?;
        for node in &mut nodes {
            node.be.push(be.clone());
        }
    }
    let hop = SimTime::from_micros(flags.get_u64("dispatch-us", 0)?);
    let run = FleetRun::new(nodes, &config, &lcs)
        .map_err(|e| e.to_string())?
        .device_policy(device_policy)
        .dispatch_policy(dispatch_policy)
        .dispatch_model(DispatchModel::constant(hop));
    if flags.has("compare") {
        let rows = run
            .run_policies(&DispatchPolicy::ALL)
            .map_err(|e| e.to_string())?;
        if flags.has("json") {
            for (_, report) in &rows {
                println!("{}", fleet_json(report));
            }
        } else {
            println!(
                "{} queries over {devices} devices, per dispatch policy:",
                rows[0].1.query_count()
            );
            println!(
                "{:<18} {:>9} {:>9} {:>11} {:>6} {:>10}",
                "policy", "mean(ms)", "p99(ms)", "violations", "skew", "makespan"
            );
            for (policy, report) in &rows {
                println!(
                    "{:<18} {:>9.2} {:>9.2} {:>4} ({:>4.1}%) {:>6.2} {:>8.1}ms",
                    policy.name(),
                    ms(report.mean_latency()),
                    ms(report.p99_latency()),
                    report.qos_violations(),
                    100.0 * report.violation_rate(),
                    report.outstanding_skew(),
                    report.wall.as_millis_f64()
                );
            }
        }
        return Ok(());
    }
    let report = run.run().map_err(|e| e.to_string())?;
    if flags.has("json") {
        println!("{}", fleet_json(&report));
        return Ok(());
    }
    println!(
        "{} service(s) over {devices} devices, {} dispatch ({:?} on-device):",
        report.services.len(),
        report.dispatch_policy,
        report.device_policy
    );
    println!(
        "  queries {} | mean {:.2} ms | p99 {:.2} ms | violations {} ({:.1}%) | skew {:.2}",
        report.query_count(),
        ms(report.mean_latency()),
        ms(report.p99_latency()),
        report.qos_violations(),
        100.0 * report.violation_rate(),
        report.outstanding_skew()
    );
    println!(
        "  {:<8} {:<11} {:>8} {:>7} {:>10} {:>8}",
        "node", "gpu", "queries", "util", "q/s(sim)", "max-out"
    );
    for dev in &report.devices {
        println!(
            "  {:<8} {:<11} {:>8} {:>6.1}% {:>10.1} {:>8}",
            dev.id,
            dev.gpu,
            dev.queries,
            100.0 * dev.utilization(),
            dev.sim_queries_per_sec(),
            dev.max_outstanding
        );
    }
    println!(
        "  aggregate {:.1} q/s (sim) over a {:.1} ms makespan",
        report.sim_queries_per_sec(),
        report.wall.as_millis_f64()
    );
    Ok(())
}

/// `stats`: summarize a Prometheus text or telemetry JSONL export
/// produced by `serve --metrics-out` / `serve --timeseries-out`.
fn stats(flags: &Flags) -> Result<(), String> {
    let path = flags.require("in")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    print!("{}", tacker_trace::summarize(&text)?);
    Ok(())
}

/// `sweep`: every (LC, BE) pair of the given lists as one parallel grid,
/// fanned out over `--jobs` workers. Each cell's RNG seed is derived from
/// its coordinates, so any jobs count produces identical rows.
fn sweep(flags: &Flags) -> Result<(), String> {
    let device = device_for(flags)?;
    let mut lcs = Vec::new();
    for name in flags.require("lc")?.split(',') {
        lcs.push(
            tacker_workloads::lc_service(name.trim(), &device)
                .ok_or_else(|| format!("unknown LC service `{name}`"))?,
        );
    }
    let mut bes = Vec::new();
    for name in flags.require("be")?.split(',') {
        bes.push(
            tacker_workloads::be_app(name.trim())
                .ok_or_else(|| format!("unknown BE app `{name}`"))?,
        );
    }
    let policy = policy_for(flags)?;
    let config = config_for(flags)?;
    let jobs = config.jobs;
    let cells = tacker::run_pair_sweep(&device, &lcs, &bes, &[policy], &config, jobs)
        .map_err(|e| e.to_string())?;
    if flags.has("json") {
        for cell in &cells {
            println!(
                "{}",
                report_json(&format!("{}+{}", cell.lc, cell.be), &cell.report)
            );
        }
    } else {
        println!(
            "{} pairs under {:?} on {} (jobs {}):",
            cells.len(),
            policy,
            device.spec().name,
            tacker::sweep_jobs_used(jobs, &lcs, &bes, &[policy], &config),
        );
        println!(
            "{:<10} {:>8} {:>9} {:>9} {:>6} {:>8} {:>7}",
            "LC", "BE", "mean(ms)", "p99(ms)", "QoS", "BE-rate", "fused"
        );
        for cell in &cells {
            println!(
                "{:<10} {:>8} {:>9.2} {:>9.2} {:>6} {:>8.3} {:>7}",
                cell.lc,
                cell.be,
                ms(cell.report.mean_latency()),
                ms(cell.report.p99_latency()),
                if cell.report.qos_met() { "met" } else { "MISS" },
                cell.report.be_work_rate(),
                cell.report.fused_launches
            );
        }
        let (hits, misses) = device.cache_stats();
        let (fused_hits, fused_misses) = device.fused_cache_stats();
        println!(
            "device cache: {hits} hits / {misses} misses ({:.1}% hit rate); \
             fused launches: {fused_hits} hits / {fused_misses} misses ({:.1}% hit rate)",
            100.0 * device.cache_hit_rate(),
            100.0 * device.fused_cache_hit_rate()
        );
    }
    Ok(())
}

fn fuse(flags: &Flags) -> Result<(), String> {
    let device = device_for(flags)?;
    let spec = device.spec().clone();
    let bench = parboil_for(flags.require("cd")?)?;
    let shape = GemmShape::new(
        flags.get_u64("m", 4096)?,
        flags.get_u64("n", 4096)?,
        flags.get_u64("k", 512)?,
    );
    let tc = match flags.get("impl").unwrap_or("128") {
        "128" => gemm_workload(&tacker_workloads::dnn::compile::shared_gemm(), shape),
        "64" => gemm_workload_64(shape),
        other => return Err(format!("unknown GEMM implementation `{other}` (128 or 64)")),
    };
    let mut cd = bench.task()[0].clone();
    let t_tc = device
        .run_launch(&tc.launch())
        .map_err(|e| e.to_string())?
        .duration;
    let t_cd = device
        .run_launch(&cd.launch())
        .map_err(|e| e.to_string())?
        .duration;
    cd.grid = ((cd.grid as f64 * t_tc.ratio(t_cd)).round() as u64).max(1);
    let t_cd = device
        .run_launch(&cd.launch())
        .map_err(|e| e.to_string())?
        .duration;
    println!(
        "GEMM {}x{}x{} solo {t_tc}; {} solo {t_cd}; sequential {}",
        shape.m,
        shape.n,
        shape.k,
        bench.name(),
        t_tc + t_cd
    );
    println!(
        "{:>9} {:>5} {:>12} {:>9}",
        "config", "occ", "fused", "vs seq"
    );
    for cfg in enumerate_configs(&tc.def, &cd.def, &spec.sm, PackPriority::TensorFirst) {
        let fused = fuse_flexible(&tc.def, &cd.def, cfg, &spec.sm).map_err(|e| e.to_string())?;
        let launch = fused.launch(tc.grid, cd.grid, &tc.bindings, &cd.bindings);
        let plan = ExecutablePlan::from_launch(&spec, &launch).map_err(|e| e.to_string())?;
        let run = device.run_plan(&plan).map_err(|e| e.to_string())?;
        println!(
            "{:>9} {:>5} {:>12} {:>8.0}%",
            cfg.to_string(),
            plan.occupancy(&spec),
            run.duration.to_string(),
            100.0 * run.duration.ratio(t_tc + t_cd)
        );
    }
    Ok(())
}

fn codegen(flags: &Flags) -> Result<(), String> {
    let bench = parboil_for(flags.require("cd")?)?;
    let cd = bench.kernel();
    let ptb = to_ptb(&cd).map_err(|e| e.to_string())?;
    println!("// ===== PTB transform of {} =====", bench.name());
    println!("{}", tacker_kernel::source::render(&ptb));
    let ratio = flags.get("ratio").unwrap_or("1x1");
    let (a, b) = ratio
        .split_once('x')
        .ok_or("--ratio expects AxB, e.g. 2x1")?;
    let config = tacker_fuser::FusionConfig {
        tc_blocks: a.parse().map_err(|_| "bad ratio")?,
        cd_blocks: b.parse().map_err(|_| "bad ratio")?,
    };
    let gemm = tacker_workloads::gemm::gemm_kernel();
    let fused =
        fuse_flexible(&gemm, &cd, config, &GpuSpec::rtx2080ti().sm).map_err(|e| e.to_string())?;
    println!("// ===== fused GEMM + {} at {} =====", bench.name(), config);
    println!("{}", tacker_kernel::source::render(fused.def()));
    Ok(())
}

fn power(flags: &Flags) -> Result<(), String> {
    let device = device_for(flags)?;
    let lc =
        tacker_workloads::lc_service(flags.require("lc")?, &device).ok_or("unknown LC service")?;
    let profiler = KernelProfiler::new(Arc::clone(&device));
    let model = PowerModel::for_spec(device.spec());
    println!(
        "# §V-D power estimates for {} on {} (TDP {} W)",
        lc.name(),
        device.spec().name,
        model.tdp_w
    );
    let mut shown = std::collections::HashSet::new();
    for wk in lc.query_kernels() {
        if !shown.insert(wk.def.id()) {
            continue;
        }
        profiler.measure(wk).map_err(|e| e.to_string())?;
        let run = device.run_launch(&wk.launch()).map_err(|e| e.to_string())?;
        println!(
            "  {:<55} {:>6.0} W{}",
            wk.def.name(),
            model.estimate(device.spec(), &run),
            if model.at_limit(device.spec(), &run) {
                "  (at board limit)"
            } else {
                ""
            }
        );
    }
    Ok(())
}

fn model(flags: &Flags) -> Result<(), String> {
    use tacker_workloads::dnn::DnnModel;
    let name = flags.require("name")?;
    let m = DnnModel::ALL
        .into_iter()
        .find(|m| m.name() == name)
        .ok_or_else(|| format!("unknown model `{name}` (see `tacker list`)"))?;
    let batch = flags.get_u64("batch", m.table_ii_batch() as u64)?;
    let g = m.graph(batch);
    println!(
        "{} @ batch {batch}: {} layers, {} convolutions, {:.2} GMAC/query, {:.1} M params",
        m.name(),
        g.layers().len(),
        g.conv_count(),
        g.total_macs() as f64 / 1e9,
        g.total_params() as f64 / 1e6
    );
    println!("{:>4} {:<18} {:>16} {:>16}", "#", "layer", "in", "out");
    for (i, l) in g
        .layers()
        .iter()
        .enumerate()
        .take(flags.get_u64("rows", 24)? as usize)
    {
        println!(
            "{:>4} {:<18} {:>16} {:>16}",
            i,
            l.layer.to_string(),
            l.input.to_string(),
            l.output.to_string()
        );
    }
    if g.layers().len() > 24 {
        println!(
            "   … ({} more layers; pass --rows N for more)",
            g.layers().len() - 24
        );
    }
    Ok(())
}

fn report_json(lc: &str, r: &RunReport) -> String {
    format!(
        concat!(
            "{{\"lc\":\"{}\",\"policy\":\"{:?}\",\"queries\":{},",
            "\"mean_latency_ms\":{:.3},\"p99_latency_ms\":{:.3},",
            "\"qos_violations\":{},\"be_work_rate\":{:.4},",
            "\"be_kernels\":{},\"fused_launches\":{},\"reordered_launches\":{}}}"
        ),
        lc,
        r.policy,
        r.query_count(),
        ms(r.mean_latency()),
        ms(r.p99_latency()),
        r.qos_violations(),
        r.be_work_rate(),
        r.be_kernels,
        r.fused_launches,
        r.reordered_launches
    )
}

fn fleet_json(r: &FleetReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(512);
    let _ = write!(
        out,
        concat!(
            "{{\"dispatch_policy\":\"{}\",\"device_policy\":\"{:?}\",",
            "\"devices\":{},\"queries\":{},\"mean_latency_ms\":{:.3},",
            "\"p99_latency_ms\":{:.3},\"qos_violations\":{},",
            "\"violation_rate\":{:.4},\"dispatch_latency_ms\":{:.3},",
            "\"outstanding_skew\":{:.3},\"makespan_ms\":{:.3},",
            "\"sim_queries_per_sec\":{:.1},\"per_device\":["
        ),
        r.dispatch_policy,
        r.device_policy,
        r.devices.len(),
        r.query_count(),
        ms(r.mean_latency()),
        ms(r.p99_latency()),
        r.qos_violations(),
        r.violation_rate(),
        r.dispatch_latency.as_millis_f64(),
        r.outstanding_skew(),
        r.wall.as_millis_f64(),
        r.sim_queries_per_sec()
    );
    for (i, dev) in r.devices.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            concat!(
                "{{\"id\":\"{}\",\"gpu\":\"{}\",\"queries\":{},",
                "\"utilization\":{:.4},\"sim_queries_per_sec\":{:.1},",
                "\"max_outstanding\":{}}}"
            ),
            dev.id,
            dev.gpu,
            dev.queries,
            dev.utilization(),
            dev.sim_queries_per_sec(),
            dev.max_outstanding
        );
    }
    out.push_str("]}");
    out
}

fn serve_json(lc: &str, r: &RunReport) -> String {
    let base = report_json(lc, r);
    format!(
        concat!(
            "{},\"faults_injected\":{},\"guard_steps\":{},\"guard_level\":\"{}\",",
            "\"violations_attributed\":{},\"windows\":{}}}"
        ),
        base.trim_end_matches('}'),
        r.faults_injected,
        r.guard_steps,
        r.guard_level.map_or("off", |l| l.name()),
        r.violation_log.len(),
        r.windows.len()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn unknown_command_is_an_error() {
        assert!(dispatch(&argv("frobnicate")).is_err());
        assert!(dispatch(&[]).is_err());
    }

    #[test]
    fn list_works() {
        assert!(dispatch(&argv("list")).is_ok());
    }

    #[test]
    fn codegen_works() {
        assert!(dispatch(&argv("codegen --cd fft --ratio 1x2")).is_ok());
        assert!(dispatch(&argv("codegen --cd nope")).is_err());
        assert!(dispatch(&argv("codegen --cd fft --ratio bogus")).is_err());
    }

    #[test]
    fn fuse_explores_ratios() {
        assert!(dispatch(&argv("fuse --cd cutcp --m 2048 --n 1024 --k 256")).is_ok());
        assert!(dispatch(&argv("fuse --cd cutcp --m 2048 --n 1024 --k 256 --impl 64")).is_ok());
        assert!(dispatch(&argv("fuse --cd cutcp --impl 32")).is_err());
    }

    #[test]
    fn model_describes_architectures() {
        assert!(dispatch(&argv("model --name VGG16")).is_ok());
        assert!(dispatch(&argv("model --name VGG16 --batch 4 --rows 5")).is_ok());
        assert!(dispatch(&argv("model --name GPT5")).is_err());
    }

    #[test]
    fn bad_flags_are_reported() {
        assert!(dispatch(&argv("colocate --lc Resnet50")).is_err()); // missing --be
        assert!(dispatch(&argv("colocate --lc Resnet50 --be fft --gpu tpu")).is_err());
        assert!(dispatch(&argv("colocate --lc Resnet50 --be fft --policy magic")).is_err());
        assert!(dispatch(&argv("colocate --lc Resnet50 --be fft --jobs many")).is_err());
    }

    #[test]
    fn sweep_flags_are_validated() {
        assert!(dispatch(&argv("sweep --lc Resnet50")).is_err()); // missing --be
        assert!(dispatch(&argv("sweep --be fft,sgemm")).is_err()); // missing --lc
        assert!(dispatch(&argv("sweep --lc NopeNet --be fft")).is_err());
        assert!(dispatch(&argv("sweep --lc Resnet50 --be nope")).is_err());
        assert!(dispatch(&argv("sweep --lc Resnet50 --be fft --policy magic")).is_err());
    }

    #[test]
    fn serve_flags_are_validated() {
        assert!(dispatch(&argv("serve --lc Resnet50")).is_err()); // missing --be
        assert!(dispatch(&argv("serve --lc Resnet50 --be fft --faults bogus:1")).is_err());
        assert!(dispatch(&argv("serve --lc Resnet50 --be fft --arrivals sometimes")).is_err());
        assert!(dispatch(&argv("serve --lc Resnet50 --be fft --arrivals bursty:x")).is_err());
        assert!(dispatch(&argv("serve --lc Resnet50 --be fft --window-us x")).is_err());
    }

    #[test]
    fn cluster_flags_are_validated() {
        assert!(dispatch(&argv("cluster")).is_err()); // missing --lc
        assert!(dispatch(&argv("cluster --lc NopeNet")).is_err());
        assert!(dispatch(&argv("cluster --lc Resnet50 --policy fifo")).is_err());
        assert!(dispatch(&argv("cluster --lc Resnet50 --device-policy magic")).is_err());
        assert!(dispatch(&argv("cluster --lc Resnet50 --be nope")).is_err());
        assert!(dispatch(&argv("cluster --lc Resnet50 --devices x")).is_err());
        assert!(dispatch(&argv("cluster --lc Resnet50 --dispatch-us x")).is_err());
        // The dispatch hop must leave QoS budget (target is 50 ms).
        assert!(dispatch(&argv(
            "cluster --lc Resnet50 --queries 5 --dispatch-us 60000"
        ))
        .is_err());
    }

    #[test]
    fn cluster_serves_a_small_fleet() {
        assert!(dispatch(&argv(
            "cluster --lc Resnet50 --devices 2 --queries 8 --policy qos-headroom --json"
        ))
        .is_ok());
        assert!(dispatch(&argv(
            "cluster --lc Resnet50 --devices 2 --queries 8 --compare"
        ))
        .is_ok());
    }

    #[test]
    fn stats_summarizes_both_export_formats() {
        assert!(dispatch(&argv("stats")).is_err()); // missing --in
        assert!(dispatch(&argv("stats --in /nonexistent/tacker.prom")).is_err());
        let dir = std::env::temp_dir();
        // Prometheus text exposition.
        let registry = tacker_trace::MetricsRegistry::new();
        registry.counter("decisions").inc();
        registry.histogram("query_latency_us").observe(1234.0);
        let prom = dir.join("tacker_cli_stats_test.prom");
        std::fs::write(&prom, tacker_trace::prometheus_text(&registry)).unwrap();
        assert!(dispatch(&["stats".into(), "--in".into(), prom.display().to_string()]).is_ok());
        // Telemetry JSONL.
        let mut ws = tacker_trace::WindowSeries::new(SimTime::from_micros(100));
        let mut emit = |_: &tacker_trace::WindowRow| {};
        ws.on_arrivals(SimTime::from_micros(5), 2, &mut emit);
        let rows = ws.finish(&mut emit);
        let jsonl = dir.join("tacker_cli_stats_test.jsonl");
        std::fs::write(&jsonl, tacker_trace::timeseries_jsonl(&rows)).unwrap();
        assert!(dispatch(&["stats".into(), "--in".into(), jsonl.display().to_string()]).is_ok());
        // Neither format.
        let junk = dir.join("tacker_cli_stats_test.junk");
        std::fs::write(&junk, "not-an-export\n").unwrap();
        assert!(dispatch(&["stats".into(), "--in".into(), junk.display().to_string()]).is_err());
        for p in [prom, jsonl, junk] {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn json_shape() {
        // A real (tiny) run: RunReport is built by the engine only.
        let device = Arc::new(tacker_sim::Device::new(tacker_sim::GpuSpec::rtx2080ti()));
        let gemm = tacker_workloads::dnn::compile::shared_gemm();
        let lc = tacker_workloads::LcService::new(
            "tiny",
            4,
            vec![tacker_workloads::gemm::gemm_workload(
                &gemm,
                GemmShape::new(1024, 1024, 512),
            )],
        );
        let config = ExperimentConfig::default().with_queries(5);
        let r = ColocationRun::new(&device, &config, std::slice::from_ref(&lc), &[])
            .unwrap()
            .at(SimTime::from_millis(2))
            .run()
            .unwrap();
        let j = report_json("X", &r);
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"queries\":5"));
        assert!(j.contains("\"fused_launches\":0"));
        let s = serve_json("X", &r);
        assert!(s.ends_with('}'));
        assert!(s.contains("\"guard_level\":\"off\""));
        assert!(s.contains("\"faults_injected\":0"));
    }
}
