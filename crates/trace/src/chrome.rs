//! Chrome trace-event (Perfetto-compatible) exporter.
//!
//! [`chrome_trace`] converts a captured [`TraceEvent`] stream into the
//! JSON object format understood by `chrome://tracing` and
//! <https://ui.perfetto.dev>: the device timeline becomes `"X"` complete
//! slices on per-pipeline tracks, per-pipeline utilization becomes `"C"`
//! counter series, and every manager decision becomes an `"i"` instant
//! event on a scheduler track carrying its predicted (and, once the launch
//! retires, actual) duration.
//!
//! Field order within each emitted event object is fixed
//! (`name, cat, ph, ts, dur, pid, tid, args`) so the output is golden-test
//! stable.

use std::fmt::Write as _;

use crate::event::TraceEvent;
use crate::PIPELINE_ACTIVE_THRESHOLD;

/// The single emitted process id ("device").
const PID: u32 = 1;
/// Track for kernel slices with an active Tensor-Core pipeline.
const TID_TENSOR: u32 = 1;
/// Track for kernel slices with an active CUDA-Core pipeline.
const TID_CUDA: u32 = 2;
/// Track for manager-decision instant events.
const TID_SCHEDULER: u32 = 3;
/// Track for LC query-completion instant events.
const TID_QOS: u32 = 4;

struct ChromeEvent {
    name: String,
    cat: &'static str,
    ph: char,
    ts: f64,
    dur: Option<f64>,
    tid: u32,
    /// Pre-rendered JSON object body for `args` (without braces), in
    /// insertion order.
    args: Vec<(String, String)>,
}

impl ChromeEvent {
    fn render(&self, out: &mut String) {
        out.push_str("{\"name\":\"");
        escape(&self.name, out);
        let _ = write!(out, "\",\"cat\":\"{}\",\"ph\":\"{}\"", self.cat, self.ph);
        let _ = write!(out, ",\"ts\":{:.3}", self.ts);
        if let Some(dur) = self.dur {
            let _ = write!(out, ",\"dur\":{dur:.3}");
        }
        let _ = write!(out, ",\"pid\":{PID},\"tid\":{}", self.tid);
        if self.ph == 'i' {
            // Instant-event scope: thread.
            out.push_str(",\"s\":\"t\"");
        }
        out.push_str(",\"args\":{");
        for (i, (k, v)) in self.args.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            escape(k, out);
            out.push_str("\":");
            out.push_str(v);
        }
        out.push_str("}}");
    }
}

fn escape(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

fn jstr(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    escape(s, &mut out);
    out.push('"');
    out
}

fn jf(v: f64) -> String {
    format!("{v:.3}")
}

/// Renders a captured event stream as a Chrome trace-event JSON document.
///
/// Only device-timeline events ([`TraceEvent::KernelRetired`],
/// [`TraceEvent::Decision`], [`TraceEvent::QueryCompleted`]) land on the
/// timeline; engine-layer events (cycle-domain) are summarized into the
/// trace metadata counts. Timestamps are microseconds of simulated device
/// time, events are sorted by `ts`, and kernel slices appear on a pipeline
/// track only when that pipeline's utilization exceeds
/// [`PIPELINE_ACTIVE_THRESHOLD`].
pub fn chrome_trace(events: &[TraceEvent]) -> String {
    let mut out: Vec<ChromeEvent> = Vec::new();

    // Retirements, in stream order, for joining decisions to actuals.
    let retired: Vec<&TraceEvent> = events
        .iter()
        .filter(|e| matches!(e, TraceEvent::KernelRetired { .. }))
        .collect();
    let mut retired_used = vec![false; retired.len()];

    for ev in events {
        match ev {
            TraceEvent::KernelRetired {
                kernel,
                label,
                start,
                end,
                tc_util,
                cd_util,
                predicted,
                actual,
            } => {
                let ts = start.as_micros_f64();
                let dur = (end.saturating_sub(*start)).as_micros_f64();
                let mut tracks = Vec::new();
                if *tc_util > PIPELINE_ACTIVE_THRESHOLD {
                    tracks.push(TID_TENSOR);
                }
                if *cd_util > PIPELINE_ACTIVE_THRESHOLD {
                    tracks.push(TID_CUDA);
                }
                // A kernel below threshold on both pipelines still happened;
                // show it on whichever pipeline it used more.
                if tracks.is_empty() {
                    tracks.push(if tc_util >= cd_util {
                        TID_TENSOR
                    } else {
                        TID_CUDA
                    });
                }
                for tid in tracks {
                    out.push(ChromeEvent {
                        name: kernel.to_string(),
                        cat: "kernel",
                        ph: 'X',
                        ts,
                        dur: Some(dur),
                        tid,
                        args: vec![
                            ("label".into(), jstr(label)),
                            ("tc_util".into(), jf(*tc_util)),
                            ("cd_util".into(), jf(*cd_util)),
                            ("predicted_us".into(), jf(predicted.as_micros_f64())),
                            ("actual_us".into(), jf(actual.as_micros_f64())),
                        ],
                    });
                }
                // Utilization counter series sampled at each retirement.
                out.push(ChromeEvent {
                    name: "pipeline_utilization".into(),
                    cat: "utilization",
                    ph: 'C',
                    ts: end.as_micros_f64(),
                    dur: None,
                    tid: 0,
                    args: vec![
                        ("tensor".into(), jf(*tc_util)),
                        ("cuda".into(), jf(*cd_util)),
                    ],
                });
            }
            TraceEvent::Decision {
                at,
                kind,
                kernel,
                headroom,
                predicted,
                t_gain,
                ..
            } => {
                let mut args = vec![
                    ("kind".into(), jstr(kind.name())),
                    ("kernel".into(), jstr(kernel)),
                    ("headroom_us".into(), jf(headroom.as_micros_f64())),
                    ("predicted_us".into(), jf(predicted.as_micros_f64())),
                ];
                // Join with the first unconsumed retirement of the same
                // kernel at or after the decision: predicted vs. actual.
                if !kernel.is_empty() {
                    for (i, r) in retired.iter().enumerate() {
                        if retired_used[i] {
                            continue;
                        }
                        if let TraceEvent::KernelRetired {
                            kernel: rk,
                            start,
                            actual,
                            ..
                        } = r
                        {
                            if rk == kernel && *start >= *at {
                                args.push(("actual_us".into(), jf(actual.as_micros_f64())));
                                retired_used[i] = true;
                                break;
                            }
                        }
                    }
                }
                if let Some(g) = t_gain {
                    args.push(("t_gain_us".into(), jf(g.as_micros_f64())));
                }
                out.push(ChromeEvent {
                    name: format!("decide:{}", kind.name()),
                    cat: "scheduler",
                    ph: 'i',
                    ts: at.as_micros_f64(),
                    dur: None,
                    tid: TID_SCHEDULER,
                    args,
                });
            }
            TraceEvent::QueryCompleted {
                service,
                arrival,
                latency,
                violated,
            } => {
                out.push(ChromeEvent {
                    name: format!("query:{service}"),
                    cat: "qos",
                    ph: 'i',
                    ts: (*arrival + *latency).as_micros_f64(),
                    dur: None,
                    tid: TID_QOS,
                    args: vec![
                        ("latency_us".into(), jf(latency.as_micros_f64())),
                        ("violated".into(), violated.to_string()),
                    ],
                });
            }
            TraceEvent::GuardStep {
                at,
                from,
                to,
                reason,
                ewma_error,
                pressure,
            } => {
                out.push(ChromeEvent {
                    name: format!("guard:{from}->{to}"),
                    cat: "scheduler",
                    ph: 'i',
                    ts: at.as_micros_f64(),
                    dur: None,
                    tid: TID_SCHEDULER,
                    args: vec![
                        ("reason".into(), jstr(reason)),
                        ("ewma_error".into(), jf(*ewma_error)),
                        ("pressure".into(), jf(*pressure)),
                    ],
                });
            }
            TraceEvent::FaultInjected {
                at,
                kind,
                kernel,
                factor,
            } => {
                out.push(ChromeEvent {
                    name: format!("fault:{kind}"),
                    cat: "fault",
                    ph: 'i',
                    ts: at.as_micros_f64(),
                    dur: None,
                    tid: TID_SCHEDULER,
                    args: vec![
                        ("kernel".into(), jstr(kernel)),
                        ("factor".into(), jf(*factor)),
                    ],
                });
            }
            TraceEvent::QosViolation {
                at,
                service,
                latency,
                target,
            } => {
                out.push(ChromeEvent {
                    name: format!("violation:{service}"),
                    cat: "qos",
                    ph: 'i',
                    ts: at.as_micros_f64(),
                    dur: None,
                    tid: TID_QOS,
                    args: vec![
                        ("latency_us".into(), jf(latency.as_micros_f64())),
                        ("target_us".into(), jf(target.as_micros_f64())),
                    ],
                });
            }
            // Cycle-domain engine events don't map onto the device
            // wall-clock timeline.
            _ => {}
        }
    }

    out.sort_by(|a, b| a.ts.partial_cmp(&b.ts).unwrap_or(std::cmp::Ordering::Equal));

    let mut body = String::with_capacity(4096 + 160 * out.len());
    body.push_str("{\"traceEvents\":[");
    // Metadata first: process and thread names for the fixed tracks.
    let meta: [(u32, &str); 4] = [
        (TID_TENSOR, "Tensor Cores"),
        (TID_CUDA, "CUDA Cores"),
        (TID_SCHEDULER, "Scheduler"),
        (TID_QOS, "LC Queries"),
    ];
    body.push_str(&format!(
        "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{PID},\"args\":{{\"name\":\"Tacker device\"}}}}"
    ));
    for (tid, name) in meta {
        body.push_str(&format!(
            ",{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{PID},\"tid\":{tid},\"args\":{{\"name\":\"{name}\"}}}}"
        ));
    }
    for ev in &out {
        body.push(',');
        ev.render(&mut body);
    }
    body.push_str("],\"displayTimeUnit\":\"ms\"}");
    body
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::DecisionKind;
    use tacker_kernel::SimTime;

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::Decision {
                at: SimTime::from_micros(10),
                kind: DecisionKind::RunLc,
                kernel: "lc_k".into(),
                headroom: SimTime::from_micros(40),
                reorder_headroom: SimTime::from_micros(20),
                predicted: SimTime::from_micros(30),
                x_tc: None,
                x_cd: None,
                t_lc: None,
                t_gain: None,
            },
            TraceEvent::KernelRetired {
                kernel: "lc_k".into(),
                label: "LC".into(),
                start: SimTime::from_micros(10),
                end: SimTime::from_micros(42),
                tc_util: 0.8,
                cd_util: 0.02,
                predicted: SimTime::from_micros(30),
                actual: SimTime::from_micros(32),
            },
        ]
    }

    #[test]
    fn decision_instant_joins_actual_duration() {
        let json = chrome_trace(&sample_events());
        assert!(json.contains("\"decide:run_lc\""), "{json}");
        let decide = json.split("decide:run_lc").nth(1).unwrap();
        let decide = &decide[..decide.find('}').unwrap() + 1];
        assert!(decide.contains("\"predicted_us\":30.000"), "{decide}");
        assert!(decide.contains("\"actual_us\":32.000"), "{decide}");
    }

    #[test]
    fn slices_respect_activity_threshold() {
        let json = chrome_trace(&sample_events());
        // tc_util 0.8 > threshold → tensor track; cd_util 0.02 < threshold
        // → no CUDA slice, so exactly one "X" slice named lc_k.
        let slices = json.matches("\"ph\":\"X\"").count();
        assert_eq!(slices, 1, "{json}");
        assert!(json.contains("\"tid\":1"), "{json}");
    }
}
