//! Fixed-width simulated-time windows over the serving timeline.
//!
//! The serving runtime feeds every launch span, arrival, completion and
//! guard observation into a [`WindowSeries`]; the series slices them into
//! fixed-width windows of simulated time and produces one [`WindowRow`]
//! per *non-empty* window with:
//!
//! * SM busy time and per-pipeline (Tensor / CUDA) busy time, from which
//!   the row derives utilization fractions — launch spans that straddle a
//!   window boundary are apportioned by overlap;
//! * QoS headroom (Equation 8/9 margin): the *minimum* headroom observed
//!   at any scheduling point inside the window;
//! * the guard ladder level in effect at the window's close
//!   (last-write-wins inside the window);
//! * arrival / completion / violation counts and launch counts by kind
//!   (LC, BE, fused), plus fused-plan cache hit/miss deltas;
//! * the maximum queue depth seen at any admission in the window.
//!
//! Windows with no activity at all are **omitted** (the row index still
//! advances, so gaps are visible in the emitted series); this keeps long
//! idle tails free. Closed rows are handed to an emit callback — the
//! runtime forwards them as [`TraceEvent::WindowStats`](crate::TraceEvent)
//! through the active sink — and collected for the final report.

use tacker_kernel::SimTime;

use crate::event::{push_str_field, push_time_field};

/// What kind of launch a span records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// A solo latency-critical kernel.
    Lc,
    /// A solo best-effort kernel.
    Be,
    /// A fused (LC, BE) kernel.
    Fused,
}

/// One closed telemetry window.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowRow {
    /// Window index (`start = index * width`); indices of all-empty
    /// windows are skipped.
    pub index: u64,
    /// Window start instant (inclusive).
    pub start: SimTime,
    /// Window end instant (exclusive).
    pub end: SimTime,
    /// Time any kernel occupied the SM inside the window.
    pub busy: SimTime,
    /// Tensor-pipeline busy time inside the window (span duration scaled
    /// by the span's Tensor utilization).
    pub tc_busy: SimTime,
    /// CUDA-pipeline busy time inside the window.
    pub cd_busy: SimTime,
    /// Queries admitted inside the window.
    pub arrivals: u64,
    /// Queries completed inside the window.
    pub completions: u64,
    /// Completions that missed their QoS target.
    pub violations: u64,
    /// Solo LC launches started inside the window.
    pub lc_launches: u64,
    /// Solo BE launches started inside the window.
    pub be_launches: u64,
    /// Fused launches started inside the window.
    pub fused_launches: u64,
    /// Fused-plan cache hits accrued inside the window.
    pub fused_cache_hits: u64,
    /// Fused-plan cache misses accrued inside the window.
    pub fused_cache_misses: u64,
    /// Maximum queue depth observed at any admission inside the window.
    pub queue_depth_max: u64,
    /// Minimum Equation 8/9 QoS headroom observed at any scheduling point
    /// inside the window (`None` if no scheduling point fell here).
    pub headroom_min: Option<SimTime>,
    /// Guard ladder level in effect when the window closed (`None` when
    /// the guard is disarmed).
    pub guard_level: Option<&'static str>,
}

impl WindowRow {
    fn empty(index: u64, start: SimTime, end: SimTime) -> Self {
        WindowRow {
            index,
            start,
            end,
            busy: SimTime::ZERO,
            tc_busy: SimTime::ZERO,
            cd_busy: SimTime::ZERO,
            arrivals: 0,
            completions: 0,
            violations: 0,
            lc_launches: 0,
            be_launches: 0,
            fused_launches: 0,
            fused_cache_hits: 0,
            fused_cache_misses: 0,
            queue_depth_max: 0,
            headroom_min: None,
            guard_level: None,
        }
    }

    /// Whether anything at all was recorded in this window.
    pub fn has_activity(&self) -> bool {
        self.busy > SimTime::ZERO
            || self.arrivals > 0
            || self.completions > 0
            || self.violations > 0
            || self.lc_launches > 0
            || self.be_launches > 0
            || self.fused_launches > 0
            || self.fused_cache_hits > 0
            || self.fused_cache_misses > 0
            || self.headroom_min.is_some()
    }

    /// Window width.
    pub fn width(&self) -> SimTime {
        self.end.saturating_sub(self.start)
    }

    /// Fraction of the window any kernel occupied the SM.
    pub fn sm_utilization(&self) -> f64 {
        self.busy.ratio(self.width())
    }

    /// Tensor-pipeline utilization over the window.
    pub fn tc_utilization(&self) -> f64 {
        self.tc_busy.ratio(self.width())
    }

    /// CUDA-pipeline utilization over the window.
    pub fn cd_utilization(&self) -> f64 {
        self.cd_busy.ratio(self.width())
    }

    /// Fused-plan cache hit rate inside the window (`None` when the cache
    /// was not consulted).
    pub fn cache_hit_rate(&self) -> Option<f64> {
        let total = self.fused_cache_hits + self.fused_cache_misses;
        (total > 0).then(|| self.fused_cache_hits as f64 / total as f64)
    }

    /// Appends this row's fields (comma-first, stable order) to a JSON
    /// object under construction — shared by
    /// [`TraceEvent::WindowStats`](crate::TraceEvent) and the JSONL
    /// exporter.
    pub(crate) fn push_json_fields(&self, out: &mut String) {
        use std::fmt::Write as _;
        let _ = write!(out, ",\"index\":{}", self.index);
        push_time_field(out, "start", self.start);
        push_time_field(out, "end", self.end);
        push_time_field(out, "busy", self.busy);
        push_time_field(out, "tc_busy", self.tc_busy);
        push_time_field(out, "cd_busy", self.cd_busy);
        let _ = write!(
            out,
            ",\"sm_util\":{:.4},\"tc_util\":{:.4},\"cd_util\":{:.4}",
            self.sm_utilization(),
            self.tc_utilization(),
            self.cd_utilization()
        );
        let _ = write!(
            out,
            ",\"arrivals\":{},\"completions\":{},\"violations\":{}",
            self.arrivals, self.completions, self.violations
        );
        let _ = write!(
            out,
            ",\"lc_launches\":{},\"be_launches\":{},\"fused_launches\":{}",
            self.lc_launches, self.be_launches, self.fused_launches
        );
        let _ = write!(
            out,
            ",\"cache_hits\":{},\"cache_misses\":{}",
            self.fused_cache_hits, self.fused_cache_misses
        );
        let _ = write!(out, ",\"queue_depth_max\":{}", self.queue_depth_max);
        if let Some(h) = self.headroom_min {
            push_time_field(out, "headroom_min", h);
        }
        if let Some(level) = self.guard_level {
            push_str_field(out, "guard", level);
        }
    }

    /// This row as one standalone JSON object (the JSONL line format,
    /// identical to the `"ev":"window"` trace event).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("{\"ev\":\"window\"");
        self.push_json_fields(&mut out);
        out.push('}');
        out
    }
}

/// A stream slicer: feeds of spans and instants come in simulated-time
/// order; closed non-empty [`WindowRow`]s come out through the emit
/// callback passed to each feed method.
#[derive(Debug)]
pub struct WindowSeries {
    width: SimTime,
    rows: Vec<WindowRow>,
    cur: WindowRow,
    /// Pipeline busy time of the in-progress window, accumulated as f64
    /// nanoseconds and materialized into the row only when the window
    /// closes — per-span float↔integer round trips are measurable on the
    /// serving hot path.
    tc_acc: f64,
    cd_acc: f64,
    /// Guard level carried across window boundaries (the level persists
    /// until the guard steps again).
    guard_level: Option<&'static str>,
}

impl WindowSeries {
    /// A new series with the given window width (clamped to ≥ 1 ns).
    pub fn new(width: SimTime) -> Self {
        let width = width.max(SimTime::from_nanos(1));
        WindowSeries {
            width,
            rows: Vec::with_capacity(128),
            cur: WindowRow::empty(0, SimTime::ZERO, width),
            tc_acc: 0.0,
            cd_acc: 0.0,
            guard_level: None,
        }
    }

    /// Window width.
    pub fn width(&self) -> SimTime {
        self.width
    }

    fn window_index(&self, t: SimTime) -> u64 {
        t.as_nanos() / self.width.as_nanos()
    }

    fn open(&mut self, index: u64) {
        let start = SimTime::from_nanos(index * self.width.as_nanos());
        self.cur = WindowRow::empty(index, start, start + self.width);
        self.cur.guard_level = self.guard_level;
    }

    /// Materializes the f64 pipeline-busy accumulators into the current
    /// row and resets them.
    fn settle_busy(&mut self) {
        self.cur.tc_busy = SimTime::from_nanos(self.tc_acc as u64);
        self.cur.cd_busy = SimTime::from_nanos(self.cd_acc as u64);
        self.tc_acc = 0.0;
        self.cd_acc = 0.0;
    }

    fn close(&mut self, emit: &mut impl FnMut(&WindowRow)) {
        // Swap the fresh row in and move the closed one out — a clone here
        // would bill every window rotation for a redundant 160-byte copy.
        self.settle_busy();
        let next = self.cur.index + 1;
        let start = self.cur.end;
        let mut fresh = WindowRow::empty(next, start, start + self.width);
        fresh.guard_level = self.guard_level;
        let row = std::mem::replace(&mut self.cur, fresh);
        if row.has_activity() {
            emit(&row);
            self.rows.push(row);
        }
    }

    /// Advances the series so `t` falls inside the current window,
    /// closing (and emitting) every window that ends at or before `t`.
    /// All-empty windows between the current one and `t`'s are skipped
    /// without a row.
    pub fn seek(&mut self, t: SimTime, emit: &mut impl FnMut(&WindowRow)) {
        // Hot path: the instant falls in the current window — one compare,
        // no division. The serving engine seeks several times per launch.
        if t < self.cur.end {
            return;
        }
        let target = self.window_index(t);
        if target <= self.cur.index {
            return;
        }
        // Close the in-progress window, then jump straight to the target:
        // the windows in between saw nothing.
        self.close(emit);
        if self.cur.index < target {
            self.open(target);
        }
    }

    /// Records one launch span `[start, end)` with the given pipeline
    /// utilizations, apportioning busy time across every window the span
    /// overlaps and counting the launch in the window containing `start`.
    pub fn on_span(
        &mut self,
        start: SimTime,
        end: SimTime,
        tc_util: f64,
        cd_util: f64,
        kind: SpanKind,
        emit: &mut impl FnMut(&WindowRow),
    ) {
        self.seek(start, emit);
        match kind {
            SpanKind::Lc => self.cur.lc_launches += 1,
            SpanKind::Be => self.cur.be_launches += 1,
            SpanKind::Fused => self.cur.fused_launches += 1,
        }
        // One launch per engine iteration lands here — stay off the
        // checked/rounding SimTime arithmetic in the segment loop.
        let tc_util = tc_util.clamp(0.0, 1.0);
        let cd_util = cd_util.clamp(0.0, 1.0);
        let mut s = start.max(self.cur.start);
        while s < end {
            let seg_end = end.min(self.cur.end);
            let d = seg_end.saturating_sub(s);
            self.cur.busy += d;
            let d_ns = d.as_nanos() as f64;
            self.tc_acc += d_ns * tc_util;
            self.cd_acc += d_ns * cd_util;
            if seg_end < end {
                self.close(emit);
                s = self.cur.start;
            } else {
                break;
            }
        }
    }

    /// Records `n` query admissions at instant `t`.
    pub fn on_arrivals(&mut self, t: SimTime, n: u64, emit: &mut impl FnMut(&WindowRow)) {
        self.seek(t, emit);
        self.cur.arrivals += n;
    }

    /// Records one query completion at instant `t`.
    pub fn on_completion(&mut self, t: SimTime, violated: bool, emit: &mut impl FnMut(&WindowRow)) {
        self.seek(t, emit);
        self.cur.completions += 1;
        if violated {
            self.cur.violations += 1;
        }
    }

    /// Records the queue depth at an admission in the current window.
    pub fn on_queue_depth(&mut self, depth: u64) {
        self.cur.queue_depth_max = self.cur.queue_depth_max.max(depth);
    }

    /// Records the Equation 8/9 QoS headroom at a scheduling point.
    pub fn observe_headroom(
        &mut self,
        t: SimTime,
        headroom: SimTime,
        emit: &mut impl FnMut(&WindowRow),
    ) {
        self.seek(t, emit);
        self.cur.headroom_min = Some(match self.cur.headroom_min {
            Some(h) => h.min(headroom),
            None => headroom,
        });
    }

    /// Records the guard ladder level in effect (sticky across windows).
    pub fn set_guard(&mut self, level: Option<&'static str>) {
        self.guard_level = level;
        self.cur.guard_level = level;
    }

    /// Records fused-plan cache hit/miss deltas accrued since the last
    /// call, attributed to the current window.
    pub fn on_cache(&mut self, hits: u64, misses: u64) {
        self.cur.fused_cache_hits += hits;
        self.cur.fused_cache_misses += misses;
    }

    /// Closes the final in-progress window (if non-empty) and returns
    /// every collected row. Final rows keep the uniform window width.
    pub fn finish(mut self, emit: &mut impl FnMut(&WindowRow)) -> Vec<WindowRow> {
        self.settle_busy();
        if self.cur.has_activity() {
            emit(&self.cur);
            let row = self.cur.clone();
            self.rows.push(row);
        }
        self.rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(v: u64) -> SimTime {
        SimTime::from_micros(v)
    }

    #[test]
    fn spans_apportion_across_window_boundaries() {
        let mut ws = WindowSeries::new(us(100));
        let mut emitted = Vec::new();
        let mut emit = |r: &WindowRow| emitted.push(r.clone());
        // A 150us span starting at 50us: 50us in window 0, 100us in
        // window 1.
        ws.on_span(us(50), us(200), 0.5, 1.0, SpanKind::Fused, &mut emit);
        let rows = ws.finish(&mut emit);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].busy, us(50));
        assert_eq!(rows[0].tc_busy, us(25));
        assert_eq!(rows[0].cd_busy, us(50));
        assert_eq!(rows[0].fused_launches, 1);
        assert_eq!(rows[1].busy, us(100));
        assert_eq!(rows[1].fused_launches, 0, "launch counted once");
        assert!((rows[1].sm_utilization() - 1.0).abs() < 1e-12);
        assert_eq!(emitted, rows);
    }

    #[test]
    fn empty_windows_are_skipped_with_index_gap() {
        let mut ws = WindowSeries::new(us(10));
        let mut emit = |_: &WindowRow| {};
        ws.on_arrivals(us(5), 1, &mut emit);
        // Jump far ahead: windows 1..=99 are all empty.
        ws.on_arrivals(us(1000), 2, &mut emit);
        let rows = ws.finish(&mut emit);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].index, 0);
        assert_eq!(rows[1].index, 100);
        assert_eq!(rows[1].start, us(1000));
        assert_eq!(rows[1].arrivals, 2);
    }

    #[test]
    fn headroom_min_and_guard_are_tracked() {
        let mut ws = WindowSeries::new(us(100));
        let mut emit = |_: &WindowRow| {};
        ws.set_guard(Some("fuse"));
        ws.observe_headroom(us(10), us(500), &mut emit);
        ws.observe_headroom(us(20), us(200), &mut emit);
        ws.observe_headroom(us(30), us(900), &mut emit);
        // Guard persists into later windows until changed.
        ws.on_completion(us(150), true, &mut emit);
        let rows = ws.finish(&mut emit);
        assert_eq!(rows[0].headroom_min, Some(us(200)));
        assert_eq!(rows[0].guard_level, Some("fuse"));
        assert_eq!(rows[1].guard_level, Some("fuse"));
        assert_eq!(rows[1].violations, 1);
        assert_eq!(rows[1].completions, 1);
    }

    #[test]
    fn json_row_is_stable() {
        let mut ws = WindowSeries::new(us(100));
        let mut emit = |_: &WindowRow| {};
        ws.set_guard(Some("reorder_only"));
        ws.on_arrivals(us(1), 3, &mut emit);
        ws.on_queue_depth(7);
        ws.on_cache(4, 1);
        let rows = ws.finish(&mut emit);
        let json = rows[0].to_json();
        assert!(json.starts_with("{\"ev\":\"window\",\"index\":0"), "{json}");
        assert!(json.contains("\"arrivals\":3"), "{json}");
        assert!(json.contains("\"queue_depth_max\":7"), "{json}");
        assert!(
            json.contains("\"cache_hits\":4,\"cache_misses\":1"),
            "{json}"
        );
        assert!(json.contains("\"guard\":\"reorder_only\""), "{json}");
        assert!(json.ends_with('}'), "{json}");
    }

    #[test]
    fn totals_are_preserved_across_windows() {
        let mut ws = WindowSeries::new(us(7));
        let mut emit = |_: &WindowRow| {};
        let mut total_busy = SimTime::ZERO;
        for i in 0..40u64 {
            let start = us(i * 13);
            let end = start + us(9);
            total_busy += us(9);
            let kind = match i % 3 {
                0 => SpanKind::Lc,
                1 => SpanKind::Be,
                _ => SpanKind::Fused,
            };
            ws.on_span(start, end, 0.3, 0.6, kind, &mut emit);
        }
        let rows = ws.finish(&mut emit);
        let busy: u64 = rows.iter().map(|r| r.busy.as_nanos()).sum();
        assert_eq!(busy, total_busy.as_nanos());
        let launches: u64 = rows
            .iter()
            .map(|r| r.lc_launches + r.be_launches + r.fused_launches)
            .sum();
        assert_eq!(launches, 40);
    }
}
