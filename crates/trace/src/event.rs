//! The typed trace-event vocabulary.
//!
//! Events are plain data with manual JSON serialization (the workspace has
//! no serde): [`TraceEvent::to_json`] emits one stable-field-order object
//! per event, suitable for JSON-lines streams and the Chrome exporter.

use std::fmt::Write as _;

use tacker_kernel::{Name, SimTime};

/// A compute pipeline of the simulated SM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pipeline {
    /// The Tensor-Core pipeline.
    Tensor,
    /// The CUDA-Core pipeline.
    Cuda,
}

impl Pipeline {
    /// Stable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            Pipeline::Tensor => "tensor",
            Pipeline::Cuda => "cuda",
        }
    }
}

/// A FCFS server of the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServerKind {
    /// Tensor pipeline server.
    Tensor,
    /// CUDA pipeline server.
    Cuda,
    /// Instruction-issue slots.
    Issue,
    /// L1 cache bandwidth.
    L1,
    /// Shared-memory bandwidth.
    Shared,
    /// The SM's share of DRAM bandwidth.
    Dram,
}

impl ServerKind {
    /// Stable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            ServerKind::Tensor => "tensor",
            ServerKind::Cuda => "cuda",
            ServerKind::Issue => "issue",
            ServerKind::L1 => "l1",
            ServerKind::Shared => "shared",
            ServerKind::Dram => "dram",
        }
    }
}

/// What the manager decided at one scheduling point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecisionKind {
    /// Launch a fused (LC, BE) kernel.
    Fuse,
    /// Reorder a whole BE kernel into headroom.
    Reorder,
    /// Run the LC head kernel directly.
    RunLc,
    /// Run a BE kernel with no LC active.
    FreeBe,
    /// Nothing runnable.
    Idle,
}

impl DecisionKind {
    /// Stable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            DecisionKind::Fuse => "fuse",
            DecisionKind::Reorder => "reorder",
            DecisionKind::RunLc => "run_lc",
            DecisionKind::FreeBe => "free_be",
            DecisionKind::Idle => "idle",
        }
    }
}

/// Why a fusion candidate was rejected at a scheduling point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FusionRejectReason {
    /// The pair has no (Tensor, CUDA) orientation.
    NoOrientation,
    /// The library declined to prepare the pair (sequential won offline).
    NotPrepared,
    /// The pair is blacklisted after repeated online losses.
    Blacklisted,
    /// Equation 8's first condition failed: `T_tc + T_cd ≤ T_fuse`.
    ParallelLoses,
    /// Equation 8's second condition failed: `T_fuse − T_lc ≥ T_hr`.
    ExceedsHeadroom,
    /// Fusion would yield no throughput gain.
    NoGain,
}

impl FusionRejectReason {
    /// Stable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            FusionRejectReason::NoOrientation => "no_orientation",
            FusionRejectReason::NotPrepared => "not_prepared",
            FusionRejectReason::Blacklisted => "blacklisted",
            FusionRejectReason::ParallelLoses => "parallel_loses",
            FusionRejectReason::ExceedsHeadroom => "exceeds_headroom",
            FusionRejectReason::NoGain => "no_gain",
        }
    }
}

/// One structured trace event.
///
/// Engine events carry cycle timestamps local to one kernel simulation;
/// runtime events carry [`SimTime`] instants on the device wall clock.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    // ---- engine layer (tacker-sim) ----
    /// A merged busy interval of one compute pipeline, in cycles.
    PipelineInterval {
        /// The kernel being simulated.
        kernel: Name,
        /// Which pipeline.
        pipeline: Pipeline,
        /// Interval start, cycles.
        start_cycles: f64,
        /// Interval end, cycles.
        end_cycles: f64,
    },
    /// Aggregate FCFS-server statistics over one kernel simulation.
    ServerStats {
        /// The kernel being simulated.
        kernel: Name,
        /// Which server.
        server: ServerKind,
        /// Ops serviced.
        acquires: u64,
        /// Cycles the server was busy.
        busy_cycles: f64,
        /// Total cycles warps waited for the server.
        wait_cycles: f64,
        /// Maximum simultaneous outstanding requests observed.
        max_queue_depth: u32,
    },
    /// A warp arrived at a named barrier.
    BarrierArrival {
        /// The kernel being simulated.
        kernel: Name,
        /// Issued-block index.
        block: u64,
        /// Barrier id.
        barrier: u16,
        /// Warps arrived so far (including this one).
        arrived: u32,
        /// Warps the barrier expects.
        expected: u32,
        /// Arrival instant, cycles.
        at_cycles: f64,
    },
    /// A named barrier released its waiters.
    BarrierRelease {
        /// The kernel being simulated.
        kernel: Name,
        /// Issued-block index.
        block: u64,
        /// Barrier id.
        barrier: u16,
        /// Warps released.
        released: u32,
        /// Release instant, cycles.
        at_cycles: f64,
    },
    /// A simulation ended in deadlock: barriers that can never release.
    Deadlock {
        /// The kernel being simulated.
        kernel: Name,
        /// Barrier ids with parked waiters.
        pending_barriers: Vec<u16>,
        /// Warps that never finished.
        stuck_warps: u64,
    },
    /// One kernel simulation completed.
    KernelComplete {
        /// Kernel name.
        kernel: Name,
        /// Makespan in cycles.
        cycles: u64,
        /// Tensor-pipeline busy cycles.
        tc_busy_cycles: u64,
        /// CUDA-pipeline busy cycles.
        cd_busy_cycles: u64,
        /// Resident blocks per SM.
        occupancy: u32,
        /// Micro-events the engine processed (queue pops plus inline
        /// continuations) — invariant across engine configurations.
        events: u64,
    },

    // ---- runtime layer (tacker core) ----
    /// One manager scheduling decision, with its Equation-8 context.
    Decision {
        /// Device wall-clock instant of the decision.
        at: SimTime,
        /// What was decided.
        kind: DecisionKind,
        /// The kernel chosen to run (fused kernel name for `Fuse`), empty
        /// for `Idle`.
        kernel: Name,
        /// QoS headroom offered to fusion.
        headroom: SimTime,
        /// Budget-capped headroom offered to reordering.
        reorder_headroom: SimTime,
        /// Predicted duration of the chosen launch.
        predicted: SimTime,
        /// Equation 8: predicted solo duration of the Tensor component
        /// (`Fuse` only).
        x_tc: Option<SimTime>,
        /// Equation 8: predicted solo duration of the CUDA component
        /// (`Fuse` only).
        x_cd: Option<SimTime>,
        /// Predicted solo duration of the LC kernel (`Fuse` only).
        t_lc: Option<SimTime>,
        /// Predicted throughput gain `T_gain = T_be − (T_fuse − T_lc)`
        /// (`Fuse` only).
        t_gain: Option<SimTime>,
    },
    /// A fusion candidate was evaluated and rejected.
    FusionRejected {
        /// The LC head kernel.
        lc: Name,
        /// The BE head kernel.
        be: Name,
        /// Why the pair was rejected.
        reason: FusionRejectReason,
        /// Predicted solo Tensor duration, when it was computed.
        x_tc: Option<SimTime>,
        /// Predicted solo CUDA duration, when it was computed.
        x_cd: Option<SimTime>,
        /// Predicted fused duration, when it was computed.
        t_fuse: Option<SimTime>,
    },
    /// One kernel (or fused kernel) retired on the device timeline.
    KernelRetired {
        /// Kernel name.
        kernel: Name,
        /// Timeline label (`"LC"`, `"BE"`, `"FUSED"`).
        label: Name,
        /// Start instant on the device wall clock.
        start: SimTime,
        /// End instant on the device wall clock.
        end: SimTime,
        /// Tensor-pipeline utilization during the run.
        tc_util: f64,
        /// CUDA-pipeline utilization during the run.
        cd_util: f64,
        /// Duration the manager predicted for this launch.
        predicted: SimTime,
        /// Duration the device actually took.
        actual: SimTime,
    },
    /// Per-launch prediction accuracy of the profiler's models.
    PredictionError {
        /// Kernel name.
        kernel: Name,
        /// Predicted duration.
        predicted: SimTime,
        /// Measured duration.
        actual: SimTime,
        /// `|predicted − actual| / actual`.
        rel_error: f64,
    },
    /// An online model refresh was triggered (>10% error, §VI-C).
    ModelRefresh {
        /// The fused pair (or kernel) whose model was refit.
        kernel: Name,
        /// The relative error that triggered the refresh.
        rel_error: f64,
    },
    /// One LC query completed.
    QueryCompleted {
        /// Service name.
        service: Name,
        /// Arrival instant.
        arrival: SimTime,
        /// End-to-end latency.
        latency: SimTime,
        /// Whether the query missed the QoS target.
        violated: bool,
    },
    /// The adaptive QoS guard moved along its degradation ladder.
    GuardStep {
        /// Device wall-clock instant of the step.
        at: SimTime,
        /// Ladder level before the step (`"fuse"`, `"reorder_only"`,
        /// `"lc_only"`).
        from: Name,
        /// Ladder level after the step.
        to: Name,
        /// What tripped (or cleared) the step (`"error"`, `"pressure"`,
        /// `"recovered"`).
        reason: Name,
        /// Worst per-kernel EWMA relative prediction error at the step.
        ewma_error: f64,
        /// EWMA of the QoS-violation indicator at the step.
        pressure: f64,
    },
    /// A fault-plan perturbation was applied.
    FaultInjected {
        /// Device wall-clock instant of the injection.
        at: SimTime,
        /// Fault class (`"mispredict"`, `"straggler"`, `"be_flood"`,
        /// `"predictor_outage"`).
        kind: Name,
        /// The kernel affected (empty for window faults).
        kernel: Name,
        /// Perturbation factor applied (1.0 for window faults).
        factor: f64,
    },
    /// One LC query missed its QoS target.
    QosViolation {
        /// Device wall-clock instant the query completed.
        at: SimTime,
        /// Service name.
        service: Name,
        /// End-to-end latency of the violating query.
        latency: SimTime,
        /// The QoS target it missed.
        target: SimTime,
    },
    /// One closed telemetry window (fixed-width simulated-time
    /// aggregation of utilization, headroom, guard state and rates).
    WindowStats {
        /// The closed window row.
        row: crate::timeseries::WindowRow,
    },
    /// One fleet dispatcher routing decision: an LC query assigned to a
    /// device by the cluster-level serving layer.
    QueryDispatched {
        /// Fleet-level arrival instant of the query.
        at: SimTime,
        /// Service name.
        service: Name,
        /// Node id of the chosen device.
        device: Name,
        /// Dispatch latency added on top of the device-side latency.
        latency: SimTime,
        /// Dispatcher-model outstanding queries on the device after this
        /// assignment (load-balance observability).
        outstanding: u64,
    },
}

/// Escapes a string for embedding in a JSON string literal.
fn escape(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

pub(crate) fn push_str_field(out: &mut String, key: &str, value: &str) {
    let _ = write!(out, ",\"{key}\":\"");
    escape(value, out);
    out.push('"');
}

pub(crate) fn push_time_field(out: &mut String, key: &str, value: SimTime) {
    let _ = write!(out, ",\"{key}\":{}", value.as_nanos());
}

fn push_opt_time_field(out: &mut String, key: &str, value: Option<SimTime>) {
    if let Some(v) = value {
        push_time_field(out, key, v);
    }
}

impl TraceEvent {
    /// The stable event-type tag used as the JSON `"ev"` field.
    pub fn tag(&self) -> &'static str {
        match self {
            TraceEvent::PipelineInterval { .. } => "pipeline_interval",
            TraceEvent::ServerStats { .. } => "server_stats",
            TraceEvent::BarrierArrival { .. } => "barrier_arrival",
            TraceEvent::BarrierRelease { .. } => "barrier_release",
            TraceEvent::Deadlock { .. } => "deadlock",
            TraceEvent::KernelComplete { .. } => "kernel_complete",
            TraceEvent::Decision { .. } => "decision",
            TraceEvent::FusionRejected { .. } => "fusion_rejected",
            TraceEvent::KernelRetired { .. } => "kernel_retired",
            TraceEvent::PredictionError { .. } => "prediction_error",
            TraceEvent::ModelRefresh { .. } => "model_refresh",
            TraceEvent::QueryCompleted { .. } => "query_completed",
            TraceEvent::GuardStep { .. } => "guard_step",
            TraceEvent::FaultInjected { .. } => "fault_injected",
            TraceEvent::QosViolation { .. } => "qos_violation",
            TraceEvent::WindowStats { .. } => "window",
            TraceEvent::QueryDispatched { .. } => "dispatch",
        }
    }

    /// Serializes the event as one JSON object with stable field order:
    /// `"ev"` first, then the variant's fields in declaration order.
    /// Times are nanoseconds, cycle counts are cycles.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(128);
        let _ = write!(out, "{{\"ev\":\"{}\"", self.tag());
        match self {
            TraceEvent::PipelineInterval {
                kernel,
                pipeline,
                start_cycles,
                end_cycles,
            } => {
                push_str_field(&mut out, "kernel", kernel);
                push_str_field(&mut out, "pipeline", pipeline.name());
                let _ = write!(out, ",\"start_cycles\":{start_cycles:.1}");
                let _ = write!(out, ",\"end_cycles\":{end_cycles:.1}");
            }
            TraceEvent::ServerStats {
                kernel,
                server,
                acquires,
                busy_cycles,
                wait_cycles,
                max_queue_depth,
            } => {
                push_str_field(&mut out, "kernel", kernel);
                push_str_field(&mut out, "server", server.name());
                let _ = write!(out, ",\"acquires\":{acquires}");
                let _ = write!(out, ",\"busy_cycles\":{busy_cycles:.1}");
                let _ = write!(out, ",\"wait_cycles\":{wait_cycles:.1}");
                let _ = write!(out, ",\"max_queue_depth\":{max_queue_depth}");
            }
            TraceEvent::BarrierArrival {
                kernel,
                block,
                barrier,
                arrived,
                expected,
                at_cycles,
            } => {
                push_str_field(&mut out, "kernel", kernel);
                let _ = write!(
                    out,
                    ",\"block\":{block},\"barrier\":{barrier},\"arrived\":{arrived},\"expected\":{expected},\"at_cycles\":{at_cycles:.1}"
                );
            }
            TraceEvent::BarrierRelease {
                kernel,
                block,
                barrier,
                released,
                at_cycles,
            } => {
                push_str_field(&mut out, "kernel", kernel);
                let _ = write!(
                    out,
                    ",\"block\":{block},\"barrier\":{barrier},\"released\":{released},\"at_cycles\":{at_cycles:.1}"
                );
            }
            TraceEvent::Deadlock {
                kernel,
                pending_barriers,
                stuck_warps,
            } => {
                push_str_field(&mut out, "kernel", kernel);
                let ids: Vec<String> = pending_barriers.iter().map(|b| b.to_string()).collect();
                let _ = write!(
                    out,
                    ",\"pending_barriers\":[{}],\"stuck_warps\":{stuck_warps}",
                    ids.join(",")
                );
            }
            TraceEvent::KernelComplete {
                kernel,
                cycles,
                tc_busy_cycles,
                cd_busy_cycles,
                occupancy,
                events,
            } => {
                push_str_field(&mut out, "kernel", kernel);
                let _ = write!(
                    out,
                    ",\"cycles\":{cycles},\"tc_busy_cycles\":{tc_busy_cycles},\"cd_busy_cycles\":{cd_busy_cycles},\"occupancy\":{occupancy},\"events\":{events}"
                );
            }
            TraceEvent::Decision {
                at,
                kind,
                kernel,
                headroom,
                reorder_headroom,
                predicted,
                x_tc,
                x_cd,
                t_lc,
                t_gain,
            } => {
                push_time_field(&mut out, "at", *at);
                push_str_field(&mut out, "kind", kind.name());
                push_str_field(&mut out, "kernel", kernel);
                push_time_field(&mut out, "headroom", *headroom);
                push_time_field(&mut out, "reorder_headroom", *reorder_headroom);
                push_time_field(&mut out, "predicted", *predicted);
                push_opt_time_field(&mut out, "x_tc", *x_tc);
                push_opt_time_field(&mut out, "x_cd", *x_cd);
                push_opt_time_field(&mut out, "t_lc", *t_lc);
                push_opt_time_field(&mut out, "t_gain", *t_gain);
            }
            TraceEvent::FusionRejected {
                lc,
                be,
                reason,
                x_tc,
                x_cd,
                t_fuse,
            } => {
                push_str_field(&mut out, "lc", lc);
                push_str_field(&mut out, "be", be);
                push_str_field(&mut out, "reason", reason.name());
                push_opt_time_field(&mut out, "x_tc", *x_tc);
                push_opt_time_field(&mut out, "x_cd", *x_cd);
                push_opt_time_field(&mut out, "t_fuse", *t_fuse);
            }
            TraceEvent::KernelRetired {
                kernel,
                label,
                start,
                end,
                tc_util,
                cd_util,
                predicted,
                actual,
            } => {
                push_str_field(&mut out, "kernel", kernel);
                push_str_field(&mut out, "label", label);
                push_time_field(&mut out, "start", *start);
                push_time_field(&mut out, "end", *end);
                let _ = write!(out, ",\"tc_util\":{tc_util:.4},\"cd_util\":{cd_util:.4}");
                push_time_field(&mut out, "predicted", *predicted);
                push_time_field(&mut out, "actual", *actual);
            }
            TraceEvent::PredictionError {
                kernel,
                predicted,
                actual,
                rel_error,
            } => {
                push_str_field(&mut out, "kernel", kernel);
                push_time_field(&mut out, "predicted", *predicted);
                push_time_field(&mut out, "actual", *actual);
                let _ = write!(out, ",\"rel_error\":{rel_error:.6}");
            }
            TraceEvent::ModelRefresh { kernel, rel_error } => {
                push_str_field(&mut out, "kernel", kernel);
                let _ = write!(out, ",\"rel_error\":{rel_error:.6}");
            }
            TraceEvent::QueryCompleted {
                service,
                arrival,
                latency,
                violated,
            } => {
                push_str_field(&mut out, "service", service);
                push_time_field(&mut out, "arrival", *arrival);
                push_time_field(&mut out, "latency", *latency);
                let _ = write!(out, ",\"violated\":{violated}");
            }
            TraceEvent::GuardStep {
                at,
                from,
                to,
                reason,
                ewma_error,
                pressure,
            } => {
                push_time_field(&mut out, "at", *at);
                push_str_field(&mut out, "from", from);
                push_str_field(&mut out, "to", to);
                push_str_field(&mut out, "reason", reason);
                let _ = write!(out, ",\"ewma_error\":{ewma_error:.6}");
                let _ = write!(out, ",\"pressure\":{pressure:.6}");
            }
            TraceEvent::FaultInjected {
                at,
                kind,
                kernel,
                factor,
            } => {
                push_time_field(&mut out, "at", *at);
                push_str_field(&mut out, "kind", kind);
                push_str_field(&mut out, "kernel", kernel);
                let _ = write!(out, ",\"factor\":{factor:.4}");
            }
            TraceEvent::QosViolation {
                at,
                service,
                latency,
                target,
            } => {
                push_time_field(&mut out, "at", *at);
                push_str_field(&mut out, "service", service);
                push_time_field(&mut out, "latency", *latency);
                push_time_field(&mut out, "target", *target);
            }
            TraceEvent::WindowStats { row } => {
                row.push_json_fields(&mut out);
            }
            TraceEvent::QueryDispatched {
                at,
                service,
                device,
                latency,
                outstanding,
            } => {
                push_time_field(&mut out, "at", *at);
                push_str_field(&mut out, "service", service);
                push_str_field(&mut out, "device", device);
                push_time_field(&mut out, "latency", *latency);
                let _ = write!(out, ",\"outstanding\":{outstanding}");
            }
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_has_stable_tag_and_escaping() {
        let ev = TraceEvent::KernelRetired {
            kernel: "a\"b".into(),
            label: "LC".into(),
            start: SimTime::from_micros(1),
            end: SimTime::from_micros(3),
            tc_util: 0.5,
            cd_util: 0.0,
            predicted: SimTime::from_micros(2),
            actual: SimTime::from_micros(2),
        };
        let j = ev.to_json();
        assert!(j.starts_with("{\"ev\":\"kernel_retired\""), "{j}");
        assert!(j.contains("a\\\"b"), "{j}");
        assert!(j.ends_with('}'), "{j}");
    }

    #[test]
    fn optional_fields_are_omitted() {
        let ev = TraceEvent::Decision {
            at: SimTime::ZERO,
            kind: DecisionKind::RunLc,
            kernel: "k".into(),
            headroom: SimTime::ZERO,
            reorder_headroom: SimTime::ZERO,
            predicted: SimTime::from_micros(5),
            x_tc: None,
            x_cd: None,
            t_lc: None,
            t_gain: None,
        };
        let j = ev.to_json();
        assert!(!j.contains("x_tc"), "{j}");
        assert!(j.contains("\"kind\":\"run_lc\""), "{j}");
    }
}
