//! Metric exporters: Prometheus text exposition and JSONL time-series,
//! plus a summarizer for both (the `stats` CLI subcommand).
//!
//! Everything here is hand-rolled (the workspace has no serde) and
//! deterministic: metric families render in `BTreeMap` name order, window
//! rows render in timeline order, and all floating-point formatting uses
//! fixed precision — two identical runs produce byte-identical files.
//!
//! # Naming convention
//!
//! Registry metric names may carry a per-service suffix after the first
//! `.` (e.g. `query_latency_us.Resnet50`). The Prometheus renderer splits
//! that into family `tacker_query_latency_us` with a `service="Resnet50"`
//! label, so per-service series share one `# TYPE` family as Prometheus
//! requires. Histograms are exposed as summaries with
//! `quantile="0.5|0.9|0.99|0.999"` series plus `_sum`/`_count`.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::metrics::MetricsRegistry;
use crate::timeseries::WindowRow;

/// Quantiles every histogram family exposes.
const QUANTILES: [(f64, &str); 4] = [(0.5, "0.5"), (0.9, "0.9"), (0.99, "0.99"), (0.999, "0.999")];

/// Sanitizes a metric name into the Prometheus charset `[a-zA-Z0-9_:]`
/// and prefixes the exporter namespace.
fn family_name(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len() + 7);
    out.push_str("tacker_");
    for c in raw.chars() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Escapes a label value per the exposition format.
fn label_value(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    for c in raw.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Splits a registry name into `(family, service label)` at the first `.`.
fn split_service(raw: &str) -> (String, Option<String>) {
    match raw.split_once('.') {
        Some((family, svc)) => (family_name(family), Some(label_value(svc))),
        None => (family_name(raw), None),
    }
}

fn series_name(family: &str, service: &Option<String>, extra: Option<(&str, &str)>) -> String {
    let mut labels = Vec::new();
    if let Some(svc) = service {
        labels.push(format!("service=\"{svc}\""));
    }
    if let Some((k, v)) = extra {
        labels.push(format!("{k}=\"{v}\""));
    }
    if labels.is_empty() {
        family.to_string()
    } else {
        format!("{family}{{{}}}", labels.join(","))
    }
}

/// Renders the registry in the Prometheus text exposition format (v0.0.4):
/// counters and gauges as-is, histograms as summaries. Deterministic for
/// a given registry state.
pub fn prometheus_text(registry: &MetricsRegistry) -> String {
    let mut out = String::new();

    // Group (family -> series) so `# TYPE` renders once per family even
    // when per-service metrics share it.
    let mut counter_families: BTreeMap<String, Vec<String>> = BTreeMap::new();
    for (name, c) in registry.counters() {
        let (family, svc) = split_service(&name);
        let line = format!("{} {}", series_name(&family, &svc, None), c.get());
        counter_families.entry(family).or_default().push(line);
    }
    for (family, lines) in counter_families {
        let _ = writeln!(out, "# TYPE {family} counter");
        for line in lines {
            let _ = writeln!(out, "{line}");
        }
    }

    let mut gauge_families: BTreeMap<String, Vec<String>> = BTreeMap::new();
    for (name, g) in registry.gauges() {
        let (family, svc) = split_service(&name);
        let line = format!("{} {:.6}", series_name(&family, &svc, None), g.get());
        gauge_families.entry(family).or_default().push(line);
    }
    for (family, lines) in gauge_families {
        let _ = writeln!(out, "# TYPE {family} gauge");
        for line in lines {
            let _ = writeln!(out, "{line}");
        }
    }

    let mut summary_families: BTreeMap<String, Vec<String>> = BTreeMap::new();
    for (name, h) in registry.histograms() {
        let (family, svc) = split_service(&name);
        let mut lines = Vec::with_capacity(QUANTILES.len() + 2);
        for (q, tag) in QUANTILES {
            lines.push(format!(
                "{} {:.3}",
                series_name(&family, &svc, Some(("quantile", tag))),
                h.percentile(q)
            ));
        }
        lines.push(format!(
            "{} {:.3}",
            series_name(&format!("{family}_sum"), &svc, None),
            h.sum()
        ));
        lines.push(format!(
            "{} {}",
            series_name(&format!("{family}_count"), &svc, None),
            h.count()
        ));
        summary_families.entry(family).or_default().extend(lines);
    }
    for (family, lines) in summary_families {
        let _ = writeln!(out, "# TYPE {family} summary");
        for line in lines {
            let _ = writeln!(out, "{line}");
        }
    }

    out
}

/// Renders window rows as JSON lines, one row per line, in timeline
/// order — the `--timeseries-out` file format.
pub fn timeseries_jsonl(rows: &[WindowRow]) -> String {
    let mut out = String::new();
    for row in rows {
        out.push_str(&row.to_json());
        out.push('\n');
    }
    out
}

/// Extracts the numeric value following `"key":` in a JSON line produced
/// by [`WindowRow::to_json`] (self-produced format; no general parser
/// needed).
fn json_num(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let i = line.find(&pat)? + pat.len();
    let rest = &line[i..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '-' || c == '.' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Extracts the string value following `"key":"` in a JSON line (values
/// in our own output never contain escaped quotes for the keys we read).
fn json_str<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":\"");
    let i = line.find(&pat)? + pat.len();
    let rest = &line[i..];
    rest.find('"').map(|end| &rest[..end])
}

fn summarize_jsonl(text: &str) -> String {
    let mut windows = 0u64;
    let mut width_ns = 0.0f64;
    let mut span_start = f64::INFINITY;
    let mut span_end = 0.0f64;
    let mut arrivals = 0.0;
    let mut completions = 0.0;
    let mut violations = 0.0;
    let mut lc = 0.0;
    let mut be = 0.0;
    let mut fused = 0.0;
    let mut hits = 0.0;
    let mut misses = 0.0;
    let mut sm_sum = 0.0;
    let mut sm_peak = 0.0f64;
    let mut tc_sum = 0.0;
    let mut cd_sum = 0.0;
    let mut depth_max = 0.0f64;
    let mut headroom_min = f64::INFINITY;
    let mut guards: Vec<String> = Vec::new();
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        windows += 1;
        let start = json_num(line, "start").unwrap_or(0.0);
        let end = json_num(line, "end").unwrap_or(0.0);
        width_ns = end - start;
        span_start = span_start.min(start);
        span_end = span_end.max(end);
        arrivals += json_num(line, "arrivals").unwrap_or(0.0);
        completions += json_num(line, "completions").unwrap_or(0.0);
        violations += json_num(line, "violations").unwrap_or(0.0);
        lc += json_num(line, "lc_launches").unwrap_or(0.0);
        be += json_num(line, "be_launches").unwrap_or(0.0);
        fused += json_num(line, "fused_launches").unwrap_or(0.0);
        hits += json_num(line, "cache_hits").unwrap_or(0.0);
        misses += json_num(line, "cache_misses").unwrap_or(0.0);
        let sm = json_num(line, "sm_util").unwrap_or(0.0);
        sm_sum += sm;
        sm_peak = sm_peak.max(sm);
        tc_sum += json_num(line, "tc_util").unwrap_or(0.0);
        cd_sum += json_num(line, "cd_util").unwrap_or(0.0);
        depth_max = depth_max.max(json_num(line, "queue_depth_max").unwrap_or(0.0));
        if let Some(h) = json_num(line, "headroom_min") {
            headroom_min = headroom_min.min(h);
        }
        if let Some(g) = json_str(line, "guard") {
            if !guards.iter().any(|seen| seen == g) {
                guards.push(g.to_string());
            }
        }
    }
    if windows == 0 {
        return "timeseries: empty\n".to_string();
    }
    let n = windows as f64;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "timeseries: {windows} windows of {:.1} us covering {:.1} us",
        width_ns / 1e3,
        (span_end - span_start) / 1e3
    );
    let _ = writeln!(
        out,
        "queries: {arrivals:.0} arrived, {completions:.0} completed, {violations:.0} violations"
    );
    let _ = writeln!(
        out,
        "launches: {lc:.0} lc, {be:.0} be, {fused:.0} fused; fused-cache {hits:.0} hits / {misses:.0} misses"
    );
    let _ = writeln!(
        out,
        "utilization: sm mean {:.3} peak {:.3}, tc mean {:.3}, cd mean {:.3}",
        sm_sum / n,
        sm_peak,
        tc_sum / n,
        cd_sum / n
    );
    let _ = writeln!(out, "queue depth max: {depth_max:.0}");
    if headroom_min.is_finite() {
        let _ = writeln!(out, "min qos headroom: {:.1} us", headroom_min / 1e3);
    }
    if !guards.is_empty() {
        let _ = writeln!(out, "guard levels seen: {}", guards.join(", "));
    }
    out
}

fn summarize_prometheus(text: &str) -> String {
    let mut counters = 0u64;
    let mut gauges = 0u64;
    let mut summaries = 0u64;
    let mut lines_out = Vec::new();
    let mut current_kind = "";
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let _family = parts.next().unwrap_or("");
            current_kind = match parts.next() {
                Some("counter") => {
                    counters += 1;
                    "counter"
                }
                Some("gauge") => {
                    gauges += 1;
                    "gauge"
                }
                Some("summary") => {
                    summaries += 1;
                    "summary"
                }
                _ => "",
            };
            continue;
        }
        if line.trim().is_empty() || line.starts_with('#') {
            continue;
        }
        // Echo counters/gauges verbatim and the interesting summary
        // series (p50/p99/count).
        let keep = match current_kind {
            "counter" | "gauge" => true,
            "summary" => {
                line.contains("quantile=\"0.5\"")
                    || line.contains("quantile=\"0.99\"")
                    || line.contains("_count")
            }
            _ => false,
        };
        if keep {
            lines_out.push(line.to_string());
        }
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "prometheus: {counters} counter, {gauges} gauge, {summaries} summary families"
    );
    for line in lines_out {
        let _ = writeln!(out, "  {line}");
    }
    out
}

/// Summarizes a metrics artifact: auto-detects JSONL time-series (first
/// non-empty line starts with `{`) versus Prometheus text exposition.
pub fn summarize(text: &str) -> Result<String, String> {
    let first = text.lines().find(|l| !l.trim().is_empty());
    match first {
        None => Err("empty input".to_string()),
        Some(l) if l.trim_start().starts_with('{') => Ok(summarize_jsonl(text)),
        Some(l) if l.starts_with('#') || l.contains(' ') => Ok(summarize_prometheus(text)),
        Some(l) => Err(format!(
            "unrecognized metrics format (first line {:?})",
            &l[..l.len().min(40)]
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timeseries::{SpanKind, WindowSeries};
    use tacker_kernel::SimTime;

    #[test]
    fn prometheus_families_group_services() {
        let reg = MetricsRegistry::new();
        reg.counter("qos_violations.svcB").add(2);
        reg.counter("qos_violations.svcA").inc();
        reg.gauge("be_work_rate").set(0.25);
        reg.histogram("query_latency_us.svcA").observe(100.0);
        reg.histogram("query_latency_us.svcA").observe(200.0);
        let text = prometheus_text(&reg);
        // One TYPE line per family even with two services.
        assert_eq!(
            text.matches("# TYPE tacker_qos_violations counter").count(),
            1
        );
        assert!(
            text.contains("tacker_qos_violations{service=\"svcA\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("tacker_qos_violations{service=\"svcB\"} 2"),
            "{text}"
        );
        assert!(text.contains("# TYPE tacker_be_work_rate gauge"), "{text}");
        assert!(
            text.contains("# TYPE tacker_query_latency_us summary"),
            "{text}"
        );
        assert!(
            text.contains("tacker_query_latency_us{service=\"svcA\",quantile=\"0.99\"}"),
            "{text}"
        );
        assert!(
            text.contains("tacker_query_latency_us_count{service=\"svcA\"} 2"),
            "{text}"
        );
        // Deterministic: rendering twice is byte-identical.
        assert_eq!(text, prometheus_text(&reg));
    }

    #[test]
    fn summarize_roundtrips_both_formats() {
        let mut ws = WindowSeries::new(SimTime::from_micros(100));
        let mut emit = |_: &crate::timeseries::WindowRow| {};
        ws.on_arrivals(SimTime::from_micros(5), 4, &mut emit);
        ws.on_span(
            SimTime::from_micros(10),
            SimTime::from_micros(60),
            0.5,
            0.5,
            SpanKind::Lc,
            &mut emit,
        );
        ws.on_completion(SimTime::from_micros(150), false, &mut emit);
        let rows = ws.finish(&mut emit);
        let jsonl = timeseries_jsonl(&rows);
        let summary = summarize(&jsonl).expect("jsonl summary");
        assert!(summary.contains("2 windows"), "{summary}");
        assert!(summary.contains("4 arrived, 1 completed"), "{summary}");

        let reg = MetricsRegistry::new();
        reg.counter("decisions").add(9);
        let prom = prometheus_text(&reg);
        let summary = summarize(&prom).expect("prom summary");
        assert!(summary.contains("1 counter"), "{summary}");
        assert!(summary.contains("tacker_decisions 9"), "{summary}");

        assert!(summarize("").is_err());
    }
}
