//! The one quantile module: nearest-rank definition and the streaming
//! quantile sketch.
//!
//! Two percentile implementations grew up independently in this
//! workspace — the exact sample-sorting nearest-rank percentile in
//! `tacker::metrics` and the log-bucket walk in
//! [`Histogram::percentile`](crate::Histogram::percentile) — with the rank
//! arithmetic duplicated in both. This module is now the single source of
//! truth:
//!
//! * [`nearest_rank`] pins the rank definition (`⌈p·n⌉`-th smallest,
//!   clamped to `[1, n]`) shared by the exact percentile, the histogram
//!   walk, and the sketch below;
//! * [`QuantileSketch`] is a DDSketch-style mergeable quantile sketch over
//!   integer nanosecond samples with a **fixed bucket budget** — O(1)
//!   memory at any sample count — whose quantile estimates stay within
//!   [`QuantileSketch::RELATIVE_ERROR`] (≈0.5%) relative error of the
//!   exact nearest-rank value.
//!
//! # Determinism
//!
//! The sketch is bit-reproducible: bucket indices are pure functions of
//! the sample value, and every accumulator (bucket counts, count, sum,
//! min, max) is an integer, so [`QuantileSketch::merge`] is commutative
//! and associative — merging per-service sketches in **any order** yields
//! exactly the sketch of the union stream. This is what lets the serving
//! runtime keep one sketch per service plus an all-service aggregate and
//! have the two views agree bit for bit.

/// The nearest-rank of quantile `p ∈ [0, 1]` over `n` samples: the
/// `⌈p·n⌉`-th smallest sample, clamped into `[1, n]`. Returns 0 only when
/// `n == 0`. This is the rank definition every percentile in the
/// workspace uses (exact, histogram, and sketch).
pub fn nearest_rank(n: u64, p: f64) -> u64 {
    if n == 0 {
        return 0;
    }
    let p = p.clamp(0.0, 1.0);
    ((p * n as f64).ceil() as u64).clamp(1, n)
}

/// Fixed bucket budget of the sketch: buckets cover `[1, γ^BUCKETS)`
/// nanoseconds ≈ 19 years, far beyond any simulated latency.
const BUCKETS: usize = 4096;

/// Bucket-width parameter `γ = (1 + α) / (1 − α)` with `α = 0.005`:
/// bucket `i` holds values in `[γ^i, γ^(i+1))`, so the geometric midpoint
/// is within `√γ − 1 ≈ 0.5%` of any value in the bucket.
const GAMMA: f64 = 1.005 / 0.995;

/// A mergeable, deterministic, fixed-memory quantile sketch over
/// non-negative integer samples (nanoseconds, by convention).
///
/// DDSketch-style log buckets with a fixed budget ([`BUCKETS`] = 4096
/// `u64` counts ≈ 32 KiB, [`QuantileSketch::memory_bytes`]): values below
/// 1 clamp into the first bucket, values beyond the last bucket clamp into
/// it. Count, sum, min and max are exact integers; quantiles return the
/// holding bucket's geometric midpoint clamped into the observed
/// `[min, max]`, and the top rank returns the exact maximum — mirroring
/// [`Histogram::percentile`](crate::Histogram::percentile).
#[derive(Clone, PartialEq, Eq)]
pub struct QuantileSketch {
    counts: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for QuantileSketch {
    fn default() -> Self {
        QuantileSketch::new()
    }
}

impl std::fmt::Debug for QuantileSketch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QuantileSketch")
            .field("count", &self.count)
            .field("min", &self.min)
            .field("max", &self.max)
            .field("p99", &self.percentile(0.99))
            .finish()
    }
}

impl QuantileSketch {
    /// Worst-case relative error of a quantile estimate versus the exact
    /// nearest-rank sample: one bucket's half-width, `√γ − 1`.
    pub const RELATIVE_ERROR: f64 = 0.005_013;

    /// An empty sketch.
    pub fn new() -> Self {
        QuantileSketch {
            counts: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// The bucket holding `value`: `⌊ln(v) / ln(γ)⌋`, clamped into the
    /// budget. A pure function of the value — the cornerstone of
    /// merge-order invariance.
    fn bucket_index(value: u64) -> usize {
        if value <= 1 {
            return 0;
        }
        let idx = ((value as f64).ln() / GAMMA.ln()).floor() as isize;
        idx.clamp(0, BUCKETS as isize - 1) as usize
    }

    /// Geometric midpoint of bucket `i`, the representative a quantile
    /// query returns.
    fn bucket_mid(i: usize) -> f64 {
        ((i as f64 + 0.5) * GAMMA.ln()).exp()
    }

    /// Records one sample.
    pub fn observe(&mut self, value: u64) {
        self.counts[Self::bucket_index(value)] += 1;
        self.count += 1;
        self.sum += u128::from(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of all samples.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Exact mean, rounded down (`None` when empty).
    pub fn mean(&self) -> Option<u64> {
        (self.count > 0)
            .then(|| u64::try_from(self.sum / u128::from(self.count)).unwrap_or(u64::MAX))
    }

    /// Exact minimum sample (`None` when empty).
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Exact maximum sample (`None` when empty).
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Nearest-rank quantile estimate for `p ∈ [0, 1]` (`None` when
    /// empty): walks the cumulative bucket counts to the holding bucket
    /// and returns its geometric midpoint clamped into `[min, max]`;
    /// the top rank returns the exact maximum. Within
    /// [`QuantileSketch::RELATIVE_ERROR`] of the exact sample quantile.
    pub fn percentile(&self, p: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = nearest_rank(self.count, p);
        if rank >= self.count {
            return Some(self.max);
        }
        let mut seen = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let mid = Self::bucket_mid(i).round() as u64;
                return Some(mid.clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Folds `other` into `self`. Bucket-wise integer addition:
    /// commutative, associative, and bit-identical to having observed the
    /// union stream in any order.
    pub fn merge(&mut self, other: &QuantileSketch) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Fixed memory footprint of the bucket array plus scalars —
    /// independent of how many samples were observed.
    pub fn memory_bytes(&self) -> usize {
        BUCKETS * std::mem::size_of::<u64>() + std::mem::size_of::<Self>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exact_nearest_rank(samples: &[u64], p: f64) -> u64 {
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        sorted[nearest_rank(sorted.len() as u64, p) as usize - 1]
    }

    #[test]
    fn rank_definition() {
        assert_eq!(nearest_rank(0, 0.5), 0);
        assert_eq!(nearest_rank(10, 0.0), 1);
        assert_eq!(nearest_rank(10, 0.5), 5);
        assert_eq!(nearest_rank(10, 0.99), 10);
        assert_eq!(nearest_rank(10, 1.0), 10);
        assert_eq!(nearest_rank(1000, 0.999), 999);
    }

    #[test]
    fn relative_error_bound_covers_one_bucket() {
        // The documented constant must dominate the actual half-width.
        assert!(GAMMA.sqrt() - 1.0 <= QuantileSketch::RELATIVE_ERROR);
    }

    #[test]
    fn empty_sketch() {
        let s = QuantileSketch::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.percentile(0.99), None);
        assert_eq!(s.mean(), None);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn exact_scalars_and_bounded_quantiles() {
        let samples: Vec<u64> = (1..=1000).map(|i| i * 37 % 100_000 + 1).collect();
        let mut s = QuantileSketch::new();
        for &v in &samples {
            s.observe(v);
        }
        assert_eq!(s.count(), 1000);
        assert_eq!(s.sum(), samples.iter().map(|&v| u128::from(v)).sum());
        assert_eq!(s.min(), samples.iter().copied().min());
        assert_eq!(s.max(), samples.iter().copied().max());
        for p in [0.01, 0.5, 0.9, 0.99, 0.999] {
            let exact = exact_nearest_rank(&samples, p);
            let est = s.percentile(p).unwrap();
            let rel = (est as f64 - exact as f64).abs() / exact as f64;
            assert!(
                rel <= QuantileSketch::RELATIVE_ERROR + 1e-9,
                "p={p}: est={est} exact={exact} rel={rel}"
            );
        }
        // The top rank is the exact maximum.
        assert_eq!(s.percentile(1.0), s.max());
    }

    #[test]
    fn merge_equals_union_in_any_order() {
        let a_samples = [5u64, 900, 42, 1_000_000, 7];
        let b_samples = [1u64, 3_000_000_000, 65, 65, 65];
        let mut a = QuantileSketch::new();
        let mut b = QuantileSketch::new();
        let mut union = QuantileSketch::new();
        for &v in &a_samples {
            a.observe(v);
            union.observe(v);
        }
        for &v in &b_samples {
            b.observe(v);
            union.observe(v);
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, union);
        assert_eq!(ba, union);
    }

    #[test]
    fn extremes_clamp_into_the_budget() {
        let mut s = QuantileSketch::new();
        s.observe(0);
        s.observe(u64::MAX);
        assert_eq!(s.count(), 2);
        assert_eq!(s.min(), Some(0));
        assert_eq!(s.max(), Some(u64::MAX));
        // Quantiles stay inside the observed range even for clamped
        // buckets: rank 1 of {0, MAX} is bucket 0's midpoint (≈1), and
        // the top rank returns the exact maximum.
        assert_eq!(s.percentile(0.5), Some(1));
        assert_eq!(s.percentile(1.0), Some(u64::MAX));
    }

    #[test]
    fn memory_is_fixed() {
        let mut s = QuantileSketch::new();
        let before = s.memory_bytes();
        for i in 0..100_000u64 {
            s.observe(i * 131 + 1);
        }
        assert_eq!(s.memory_bytes(), before);
    }
}
