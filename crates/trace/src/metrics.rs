//! A small metrics registry: named counters, gauges, and log-bucketed
//! streaming histograms.
//!
//! The histogram exists so latency distributions no longer require
//! retaining and sorting every sample (`RunReport` keeps its exact
//! nearest-rank percentiles for QoS *gating*; the histogram is the
//! streaming, bounded-memory view for observability). Buckets are
//! logarithmic with [`SUB_BUCKETS_PER_OCTAVE`] sub-buckets per power of
//! two, so any quantile estimate is within one bucket's relative width
//! ([`Histogram::RELATIVE_ERROR`]) of the exact sample quantile. The rank
//! definition itself lives in [`crate::quantile`], shared with the exact
//! percentile in `tacker::metrics` and the finer-grained
//! [`QuantileSketch`](crate::QuantileSketch).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Log-histogram resolution: sub-buckets per power-of-two octave.
pub const SUB_BUCKETS_PER_OCTAVE: u32 = 8;

/// Octaves covered: values in `[1, 2^OCTAVES)` resolve exactly; smaller
/// values clamp into the first bucket and larger into the last.
const OCTAVES: u32 = 64;

const BUCKETS: usize = (OCTAVES * SUB_BUCKETS_PER_OCTAVE) as usize;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A last-write-wins instantaneous value.
#[derive(Debug, Default)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, value: f64) {
        self.bits.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Current value (0.0 if never set).
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

fn atomic_f64_add(cell: &AtomicU64, delta: f64) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let next = (f64::from_bits(cur) + delta).to_bits();
        match cell.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(seen) => cur = seen,
        }
    }
}

fn atomic_f64_min(cell: &AtomicU64, value: f64) {
    let mut cur = cell.load(Ordering::Relaxed);
    while value < f64::from_bits(cur) {
        match cell.compare_exchange_weak(cur, value.to_bits(), Ordering::Relaxed, Ordering::Relaxed)
        {
            Ok(_) => return,
            Err(seen) => cur = seen,
        }
    }
}

fn atomic_f64_max(cell: &AtomicU64, value: f64) {
    let mut cur = cell.load(Ordering::Relaxed);
    while value > f64::from_bits(cur) {
        match cell.compare_exchange_weak(cur, value.to_bits(), Ordering::Relaxed, Ordering::Relaxed)
        {
            Ok(_) => return,
            Err(seen) => cur = seen,
        }
    }
}

/// A streaming histogram with logarithmic buckets
/// ([`SUB_BUCKETS_PER_OCTAVE`] per power of two) over non-negative
/// samples. Count, sum, min, and max are exact; quantiles are bucketed.
pub struct Histogram {
    counts: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .field("mean", &self.mean())
            .field("min", &self.min())
            .field("max", &self.max())
            .finish()
    }
}

impl Histogram {
    /// Worst-case relative error of a quantile estimate: the multiplicative
    /// width of one bucket, `2^(1/SUB_BUCKETS_PER_OCTAVE) − 1`.
    pub const RELATIVE_ERROR: f64 = 0.090_507_732_665_257_66; // 2^(1/8) − 1

    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0f64.to_bits()),
            min: AtomicU64::new(f64::INFINITY.to_bits()),
            max: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
        }
    }

    fn bucket_index(value: f64) -> usize {
        // `observe` sanitizes samples to finite non-negative values first.
        if value <= 1.0 {
            return 0;
        }
        let idx = (value.log2() * SUB_BUCKETS_PER_OCTAVE as f64).floor() as isize;
        idx.clamp(0, BUCKETS as isize - 1) as usize
    }

    /// Lower bound of bucket `i`: `2^(i / SUB_BUCKETS_PER_OCTAVE)`.
    fn bucket_low(i: usize) -> f64 {
        2f64.powf(i as f64 / SUB_BUCKETS_PER_OCTAVE as f64)
    }

    /// Geometric midpoint of bucket `i`, the representative value quantile
    /// queries return.
    fn bucket_mid(i: usize) -> f64 {
        2f64.powf((i as f64 + 0.5) / SUB_BUCKETS_PER_OCTAVE as f64)
    }

    /// Records one non-negative sample (negative samples clamp to 0).
    pub fn observe(&self, value: f64) {
        let value = if value.is_finite() {
            value.max(0.0)
        } else {
            0.0
        };
        let idx = Self::bucket_index(value);
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        atomic_f64_add(&self.sum, value);
        atomic_f64_min(&self.min, value);
        atomic_f64_max(&self.max, value);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Exact sum of samples.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum.load(Ordering::Relaxed))
    }

    /// Exact mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() / n as f64
        }
    }

    /// Exact minimum sample (0.0 when empty).
    pub fn min(&self) -> f64 {
        let v = f64::from_bits(self.min.load(Ordering::Relaxed));
        if v.is_finite() {
            v
        } else {
            0.0
        }
    }

    /// Exact maximum sample (0.0 when empty).
    pub fn max(&self) -> f64 {
        let v = f64::from_bits(self.max.load(Ordering::Relaxed));
        if v.is_finite() {
            v
        } else {
            0.0
        }
    }

    /// Nearest-rank quantile estimate for `p` in `[0, 1]`: walks the
    /// cumulative bucket counts and returns the holding bucket's geometric
    /// midpoint, clamped into the exact observed `[min, max]` range.
    /// Within [`Histogram::RELATIVE_ERROR`] of the exact sample quantile.
    /// The rank definition is [`crate::quantile::nearest_rank`].
    pub fn percentile(&self, p: f64) -> f64 {
        let n = self.count();
        if n == 0 {
            return 0.0;
        }
        let rank = crate::quantile::nearest_rank(n, p);
        if rank >= n {
            // The n-th smallest sample is the maximum, which is tracked
            // exactly.
            return self.max();
        }
        let mut seen = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            seen += c.load(Ordering::Relaxed);
            if seen >= rank {
                return Self::bucket_mid(i).clamp(self.min(), self.max());
            }
        }
        self.max()
    }

    /// Non-empty buckets as `(lower_bound, count)`, ascending.
    pub fn buckets(&self) -> Vec<(f64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter_map(|(i, c)| {
                let n = c.load(Ordering::Relaxed);
                (n > 0).then(|| (Self::bucket_low(i), n))
            })
            .collect()
    }
}

/// A registry of named metrics. Cloning is cheap and shares the
/// underlying metrics (tests and exporters read what hot paths write).
#[derive(Clone, Default)]
pub struct MetricsRegistry {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsRegistry")
            .field("counters", &self.inner.counters.lock().unwrap().len())
            .field("gauges", &self.inner.gauges.lock().unwrap().len())
            .field("histograms", &self.inner.histograms.lock().unwrap().len())
            .finish()
    }
}

#[derive(Default)]
struct Inner {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.inner.counters.lock().unwrap();
        map.entry(name.to_string()).or_default().clone()
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.inner.gauges.lock().unwrap();
        map.entry(name.to_string()).or_default().clone()
    }

    /// The histogram named `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.inner.histograms.lock().unwrap();
        map.entry(name.to_string()).or_default().clone()
    }

    /// Snapshot of every counter as `(name, handle)`, sorted by name.
    pub fn counters(&self) -> Vec<(String, Arc<Counter>)> {
        let map = self.inner.counters.lock().unwrap();
        map.iter().map(|(n, c)| (n.clone(), c.clone())).collect()
    }

    /// Snapshot of every gauge as `(name, handle)`, sorted by name.
    pub fn gauges(&self) -> Vec<(String, Arc<Gauge>)> {
        let map = self.inner.gauges.lock().unwrap();
        map.iter().map(|(n, g)| (n.clone(), g.clone())).collect()
    }

    /// Snapshot of every histogram as `(name, handle)`, sorted by name.
    pub fn histograms(&self) -> Vec<(String, Arc<Histogram>)> {
        let map = self.inner.histograms.lock().unwrap();
        map.iter().map(|(n, h)| (n.clone(), h.clone())).collect()
    }

    /// A plain-text snapshot of every metric, one line each, sorted by
    /// name within each kind.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (name, c) in self.inner.counters.lock().unwrap().iter() {
            out.push_str(&format!("counter {name} {}\n", c.get()));
        }
        for (name, g) in self.inner.gauges.lock().unwrap().iter() {
            out.push_str(&format!("gauge {name} {:.6}\n", g.get()));
        }
        for (name, h) in self.inner.histograms.lock().unwrap().iter() {
            out.push_str(&format!(
                "histogram {name} count={} mean={:.3} p50={:.3} p99={:.3} max={:.3}\n",
                h.count(),
                h.mean(),
                h.percentile(0.50),
                h.percentile(0.99),
                h.max(),
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let reg = MetricsRegistry::new();
        reg.counter("decisions").inc();
        reg.counter("decisions").add(4);
        assert_eq!(reg.counter("decisions").get(), 5);
        reg.gauge("depth").set(3.5);
        assert_eq!(reg.gauge("depth").get(), 3.5);
        let text = reg.render();
        assert!(text.contains("counter decisions 5"), "{text}");
    }

    #[test]
    fn histogram_exact_stats() {
        let h = Histogram::new();
        for v in [1.0, 2.0, 3.0, 10.0] {
            h.observe(v);
        }
        assert_eq!(h.count(), 4);
        assert!((h.sum() - 16.0).abs() < 1e-9);
        assert!((h.mean() - 4.0).abs() < 1e-9);
        assert_eq!(h.min(), 1.0);
        assert_eq!(h.max(), 10.0);
    }

    #[test]
    fn histogram_percentile_within_bucket_error() {
        let h = Histogram::new();
        let mut samples = Vec::new();
        for i in 1..=1000u64 {
            let v = (i * 37 % 100_000) as f64 + 1.0;
            samples.push(v);
            h.observe(v);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for p in [0.5, 0.9, 0.99] {
            let rank = ((p * samples.len() as f64).ceil() as usize).max(1);
            let exact = samples[rank - 1];
            let est = h.percentile(p);
            let rel = (est - exact).abs() / exact;
            assert!(
                rel <= Histogram::RELATIVE_ERROR + 1e-9,
                "p={p}: est={est} exact={exact} rel={rel}"
            );
        }
    }

    #[test]
    fn histogram_p100_and_p0_clamp_to_observed_range() {
        let h = Histogram::new();
        h.observe(7.0);
        h.observe(700.0);
        assert_eq!(h.percentile(1.0), 700.0);
        assert!(h.percentile(0.0) >= 7.0);
    }

    #[test]
    fn empty_histogram_is_all_zeroes() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.percentile(0.99), 0.0);
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.max(), 0.0);
    }
}
