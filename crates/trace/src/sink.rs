//! Trace sinks: where [`TraceEvent`]s go.
//!
//! Emission sites are expected to hoist [`TraceSink::enabled`] into a local
//! `bool` once (at engine/manager construction) and branch on it before
//! building any event, so the disabled path costs one predictable branch —
//! never an allocation or a virtual call per operation.

use std::collections::VecDeque;
use std::io::Write;
use std::sync::Mutex;

use crate::event::TraceEvent;

/// A consumer of trace events. Implementations must be cheap to call and
/// thread-safe; `record` may be invoked from hot simulation loops.
pub trait TraceSink: Send + Sync {
    /// Whether this sink wants events at all. Emission sites hoist this
    /// into a bool and skip event construction entirely when `false`.
    fn enabled(&self) -> bool {
        true
    }

    /// Consume one event.
    fn record(&self, event: TraceEvent);

    /// Flush any buffered output (no-op for in-memory sinks).
    fn flush(&self) {}
}

/// The zero-overhead default: reports `enabled() == false` and drops
/// anything recorded anyway.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopSink;

impl TraceSink for NoopSink {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&self, _event: TraceEvent) {}
}

/// An in-memory ring buffer keeping the most recent `capacity` events.
/// The workhorse for tests and for the Chrome exporter, which needs the
/// whole event stream in memory anyway.
pub struct RingSink {
    capacity: usize,
    events: Mutex<VecDeque<TraceEvent>>,
}

impl RingSink {
    /// A ring that keeps the last `capacity` events (oldest evicted first).
    pub fn new(capacity: usize) -> Self {
        RingSink {
            capacity: capacity.max(1),
            events: Mutex::new(VecDeque::new()),
        }
    }

    /// A ring large enough for any single-run trace in this repo.
    pub fn unbounded() -> Self {
        RingSink::new(usize::MAX)
    }

    /// Snapshot of the buffered events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.events.lock().unwrap().iter().cloned().collect()
    }

    /// Drains and returns the buffered events, oldest first.
    pub fn drain(&self) -> Vec<TraceEvent> {
        self.events.lock().unwrap().drain(..).collect()
    }

    /// Number of events currently buffered.
    pub fn len(&self) -> usize {
        self.events.lock().unwrap().len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl TraceSink for RingSink {
    fn record(&self, event: TraceEvent) {
        let mut q = self.events.lock().unwrap();
        if q.len() == self.capacity {
            q.pop_front();
        }
        q.push_back(event);
    }
}

/// Streams each event as one JSON line to an arbitrary writer.
pub struct JsonLinesSink {
    out: Mutex<Box<dyn Write + Send>>,
}

impl JsonLinesSink {
    /// Wraps `out`; each recorded event becomes one `\n`-terminated JSON
    /// object (see [`TraceEvent::to_json`]).
    pub fn new(out: Box<dyn Write + Send>) -> Self {
        JsonLinesSink {
            out: Mutex::new(out),
        }
    }
}

impl TraceSink for JsonLinesSink {
    fn record(&self, event: TraceEvent) {
        let mut line = event.to_json();
        line.push('\n');
        let mut out = self.out.lock().unwrap();
        let _ = out.write_all(line.as_bytes());
    }

    fn flush(&self) {
        let _ = self.out.lock().unwrap().flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn ev(name: &str) -> TraceEvent {
        TraceEvent::ModelRefresh {
            kernel: name.into(),
            rel_error: 0.2,
        }
    }

    #[test]
    fn noop_is_disabled() {
        assert!(!NoopSink.enabled());
        NoopSink.record(ev("x"));
    }

    #[test]
    fn ring_evicts_oldest() {
        let ring = RingSink::new(2);
        ring.record(ev("a"));
        ring.record(ev("b"));
        ring.record(ev("c"));
        let names: Vec<String> = ring
            .events()
            .into_iter()
            .map(|e| match e {
                TraceEvent::ModelRefresh { kernel, .. } => kernel.to_string(),
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(names, ["b", "c"]);
        assert_eq!(ring.drain().len(), 2);
        assert!(ring.is_empty());
    }

    #[test]
    fn json_lines_sink_writes_one_line_per_event() {
        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let buf = Arc::new(Mutex::new(Vec::new()));
        let sink = JsonLinesSink::new(Box::new(Shared(buf.clone())));
        sink.record(ev("a"));
        sink.record(ev("b"));
        sink.flush();
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.trim_end().lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            assert!(line.starts_with("{\"ev\":\"model_refresh\""), "{line}");
            assert!(line.ends_with('}'), "{line}");
        }
    }
}
