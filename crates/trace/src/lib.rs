//! Structured tracing and metrics for the Tacker reproduction.
//!
//! The paper's core claims are *observability* claims: Figs. 1/2/15 exist
//! to expose "false high utilization" and fused-kernel pipeline overlap,
//! and §VII's manager is judged by predicted-vs-actual duration error.
//! This crate is the cross-cutting layer that makes those signals
//! first-class instead of post-hoc:
//!
//! * [`TraceSink`] — where typed [`TraceEvent`]s go. [`NoopSink`] is the
//!   zero-overhead default (emission sites hoist `enabled()` into a bool
//!   checked before constructing any event), [`RingSink`] keeps the last N
//!   events in memory for tests and exporters, [`JsonLinesSink`] streams
//!   events as JSON lines to any writer.
//! * [`TraceEvent`] — the event vocabulary of the three layers that
//!   matter: the discrete-event engine (pipeline busy intervals, FCFS
//!   server queue/wait statistics, barrier arrivals and releases, deadlock
//!   context), the QoS manager (every fuse/reorder/LC decision with its
//!   headroom, Equation-8 inputs, predicted `T_fuse` and `T_gain`), and
//!   the profiler (prediction error per kernel, model-refresh triggers).
//! * [`MetricsRegistry`] — named [`Counter`]s, [`Gauge`]s and log-bucketed
//!   streaming [`Histogram`]s, so latency distributions no longer require
//!   retaining and sorting every sample.
//! * [`chrome`] — a Chrome trace-event (Perfetto-compatible) exporter
//!   rendering the device timeline, per-pipeline utilization counters, and
//!   scheduler decisions as instant events.

pub mod chrome;
pub mod event;
pub mod metrics;
pub mod sink;

pub use chrome::chrome_trace;
pub use event::{DecisionKind, FusionRejectReason, Pipeline, ServerKind, TraceEvent};
pub use metrics::{Counter, Gauge, Histogram, MetricsRegistry};
pub use sink::{JsonLinesSink, NoopSink, RingSink, TraceSink};

/// Utilization above which a pipeline counts as *active* on a timeline
/// entry. Shared by `tacker-sim`'s [`TimelineEntry`] activity queries and
/// the [`chrome`] exporter so both agree on what lands on a pipeline
/// track (Figs. 1/2/15's notion of a busy pipeline).
///
/// [`TimelineEntry`]: https://docs.rs/tacker-sim
pub const PIPELINE_ACTIVE_THRESHOLD: f64 = 0.05;
