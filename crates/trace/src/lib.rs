//! Structured tracing and metrics for the Tacker reproduction.
//!
//! The paper's core claims are *observability* claims: Figs. 1/2/15 exist
//! to expose "false high utilization" and fused-kernel pipeline overlap,
//! and §VII's manager is judged by predicted-vs-actual duration error.
//! This crate is the cross-cutting layer that makes those signals
//! first-class instead of post-hoc:
//!
//! * [`TraceSink`] — where typed [`TraceEvent`]s go. [`NoopSink`] is the
//!   zero-overhead default (emission sites hoist `enabled()` into a bool
//!   checked before constructing any event), [`RingSink`] keeps the last N
//!   events in memory for tests and exporters, [`JsonLinesSink`] streams
//!   events as JSON lines to any writer.
//! * [`TraceEvent`] — the event vocabulary of the three layers that
//!   matter: the discrete-event engine (pipeline busy intervals, FCFS
//!   server queue/wait statistics, barrier arrivals and releases, deadlock
//!   context), the QoS manager (every fuse/reorder/LC decision with its
//!   headroom, Equation-8 inputs, predicted `T_fuse` and `T_gain`), and
//!   the profiler (prediction error per kernel, model-refresh triggers).
//! * [`MetricsRegistry`] — named [`Counter`]s, [`Gauge`]s and log-bucketed
//!   streaming [`Histogram`]s, so latency distributions no longer require
//!   retaining and sorting every sample.
//! * [`chrome`] — a Chrome trace-event (Perfetto-compatible) exporter
//!   rendering the device timeline, per-pipeline utilization counters, and
//!   scheduler decisions as instant events.
//! * [`quantile`] — the workspace's single rank definition plus
//!   [`QuantileSketch`], a mergeable fixed-memory DDSketch-style quantile
//!   sketch that backs `LatencyStats` in the serving runtime.
//! * [`timeseries`] — fixed-width simulated-time windows aggregating
//!   pipeline utilization, QoS headroom, guard state, arrival/completion
//!   rates and fused-cache hit rate, emitted as [`TraceEvent::WindowStats`].
//! * [`export`] — Prometheus text exposition of a [`MetricsRegistry`] and
//!   JSONL rendering of window rows, plus a summarizer for both formats
//!   (the `stats` CLI subcommand).

pub mod chrome;
pub mod event;
pub mod export;
pub mod metrics;
pub mod quantile;
pub mod sink;
pub mod timeseries;

pub use chrome::chrome_trace;
pub use event::{DecisionKind, FusionRejectReason, Pipeline, ServerKind, TraceEvent};
pub use export::{prometheus_text, summarize, timeseries_jsonl};
pub use metrics::{Counter, Gauge, Histogram, MetricsRegistry};
pub use quantile::{nearest_rank, QuantileSketch};
pub use sink::{JsonLinesSink, NoopSink, RingSink, TraceSink};
pub use timeseries::{SpanKind, WindowRow, WindowSeries};

/// Utilization above which a pipeline counts as *active* on a timeline
/// entry. Shared by `tacker-sim`'s [`TimelineEntry`] activity queries and
/// the [`chrome`] exporter so both agree on what lands on a pipeline
/// track (Figs. 1/2/15's notion of a busy pipeline).
///
/// [`TimelineEntry`]: https://docs.rs/tacker-sim
pub const PIPELINE_ACTIVE_THRESHOLD: f64 = 0.05;
