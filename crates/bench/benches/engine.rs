//! Criterion benches for the discrete-event engine: solo and fused kernel
//! simulation throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use tacker_fuser::{fuse_flexible, FusionConfig};
use tacker_sim::{simulate, ExecutablePlan, GpuSpec};
use tacker_workloads::gemm::{gemm_workload, GemmShape};
use tacker_workloads::parboil::Benchmark;

fn bench_engine(c: &mut Criterion) {
    let spec = GpuSpec::rtx2080ti();
    let gemm_def = tacker_workloads::dnn::compile::shared_gemm();
    let tc = gemm_workload(&gemm_def, GemmShape::new(4096, 4096, 512));
    let plan = ExecutablePlan::from_launch(&spec, &tc.launch()).expect("plan");
    c.bench_function("simulate_gemm_4096", |b| {
        b.iter(|| simulate(&spec, &plan).expect("run"))
    });

    let cd = Benchmark::Fft.task()[0].clone();
    let cd_plan = ExecutablePlan::from_launch(&spec, &cd.launch()).expect("plan");
    c.bench_function("simulate_fft", |b| {
        b.iter(|| simulate(&spec, &cd_plan).expect("run"))
    });

    let fused = fuse_flexible(
        &tc.def,
        &cd.def,
        FusionConfig {
            tc_blocks: 1,
            cd_blocks: 2,
        },
        &spec.sm,
    )
    .expect("fuse");
    let launch = fused.launch(tc.grid, cd.grid, &tc.bindings, &cd.bindings);
    let fused_plan = ExecutablePlan::from_launch(&spec, &launch).expect("plan");
    c.bench_function("simulate_fused_gemm_fft", |b| {
        b.iter(|| simulate(&spec, &fused_plan).expect("run"))
    });
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
