//! Criterion benches for the §VIII-I overhead claims: online scheduling
//! decision latency with and without fusion, plus the tracing-layer
//! overhead gate (disabled tracing must stay within 2% of the untraced
//! entry point).

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use tacker::library::FusionLibrary;
use tacker::manager::{KernelManager, Policy};
use tacker::profile::KernelProfiler;
use tacker::serve::ColocationRun;
use tacker::{ExperimentConfig, RunReport};
use tacker_bench::cpu_time_ticks;
use tacker_kernel::SimTime;
use tacker_sim::{Device, GpuSpec};
use tacker_trace::{NoopSink, RingSink, TraceSink};
use tacker_workloads::gemm::{gemm_workload, GemmShape};
use tacker_workloads::parboil::Benchmark;

fn setup(
    policy: Policy,
) -> (
    KernelManager,
    tacker_workloads::WorkloadKernel,
    Vec<Option<tacker_workloads::WorkloadKernel>>,
) {
    let device = Arc::new(Device::new(GpuSpec::rtx2080ti()));
    let profiler = Arc::new(KernelProfiler::new(device));
    let library = Arc::new(FusionLibrary::new(Arc::clone(&profiler)));
    let manager = KernelManager::new(Arc::clone(&profiler), library, policy);
    let gemm_def = tacker_workloads::dnn::compile::shared_gemm();
    let lc = gemm_workload(&gemm_def, GemmShape::new(4096, 4096, 512));
    let be_heads: Vec<Option<tacker_workloads::WorkloadKernel>> = (0..50)
        .map(|i| {
            let b = Benchmark::BE_APPS[i % Benchmark::BE_APPS.len()];
            let mut wk = b.task()[0].clone();
            wk.grid += i as u64;
            Some(wk)
        })
        .collect();
    let hr = SimTime::from_millis(20);
    manager
        .decide(Some(&lc), hr, hr, &be_heads, false)
        .expect("warmup");
    (manager, lc, be_heads)
}

fn bench_decisions(c: &mut Criterion) {
    let hr = SimTime::from_millis(20);
    let (tacker, lc, be) = setup(Policy::Tacker);
    c.bench_function("online_fuse_decision_50_pairs", |b| {
        b.iter(|| {
            tacker
                .decide(Some(&lc), hr, hr, &be, false)
                .expect("decide")
        })
    });
    let (baymax, lc, be) = setup(Policy::Baymax);
    c.bench_function("static_schedule_decision_50_kernels", |b| {
        b.iter(|| {
            baymax
                .decide(Some(&lc), hr, hr, &be, false)
                .expect("decide")
        })
    });
}

/// The tracing overhead gate: a full co-location run through the plain
/// entry point versus the traced entry point with a `NoopSink` (tracing
/// compiled in but disabled) and with a `RingSink` (everything recorded).
///
/// The disabled path must stay within 2% of the plain path; the ring
/// number is informational — it is the price of `--trace`.
fn bench_trace_overhead(c: &mut Criterion) {
    let device = Arc::new(Device::new(GpuSpec::rtx2080ti()));
    let lc = tacker_workloads::lc_service("Resnet50", &device).expect("service");
    let bes = [tacker_workloads::be_app("sgemm").expect("app")];
    let config = ExperimentConfig::default().with_queries(20);
    let run_plain = |device, lc: &_, bes: &[_], config| -> RunReport {
        ColocationRun::new(device, config, std::slice::from_ref(lc), bes)
            .expect("run")
            .policy(Policy::Tacker)
            .run()
            .expect("run")
    };
    let run_traced = |device, lc: &_, bes: &[_], config, sink| -> RunReport {
        ColocationRun::new(device, config, std::slice::from_ref(lc), bes)
            .expect("run")
            .policy(Policy::Tacker)
            .traced(sink)
            .run()
            .expect("run")
    };
    // Warm the device's memoized simulations so no path pays them.
    run_plain(&device, &lc, &bes, &config);
    c.bench_function("colocate_untraced", |b| {
        b.iter(|| run_plain(&device, &lc, &bes, &config))
    });
    c.bench_function("colocate_noop_sink", |b| {
        b.iter(|| {
            let sink: Arc<dyn TraceSink> = Arc::new(NoopSink);
            run_traced(&device, &lc, &bes, &config, sink)
        })
    });
    c.bench_function("colocate_ring_sink", |b| {
        b.iter(|| {
            let sink: Arc<dyn TraceSink> = Arc::new(RingSink::unbounded());
            run_traced(&device, &lc, &bes, &config, sink)
        })
    });
    // The gate. One co-location run is tens of milliseconds, and on a
    // shared machine wall-clock carries bursty preemption/steal noise far
    // above 2%. Charge each path its *CPU time* over interleaved batches
    // instead: preemption doesn't bill to the process, and the batch is
    // long enough (seconds) for the 10 ms tick granularity.
    let run_untraced = || {
        run_plain(&device, &lc, &bes, &config);
    };
    let run_noop = || {
        let sink: Arc<dyn TraceSink> = Arc::new(NoopSink);
        run_traced(&device, &lc, &bes, &config, sink);
    };
    let cpu_batch = |f: &dyn Fn(), runs: u32| {
        let start = cpu_time_ticks();
        for _ in 0..runs {
            f();
        }
        (cpu_time_ticks() - start) as f64
    };
    // Many short alternating batches: machine noise here is low-frequency
    // (load and frequency drift over seconds), which cancels when both
    // sides sample every drift period, not in two big blocks. Zero-copy
    // cache hits cut one run to ~10 ms, so the round count is sized to
    // keep each side at several seconds of CPU time — below that, the
    // 10 ms tick granularity plus drift swings the estimate by ±5-8%.
    const BATCH: u32 = 8;
    const ROUNDS: u32 = 60;
    let mut untraced_ticks = 0.0;
    let mut noop_ticks = 0.0;
    for round in 0..ROUNDS {
        if round % 2 == 0 {
            untraced_ticks += cpu_batch(&run_untraced, BATCH);
            noop_ticks += cpu_batch(&run_noop, BATCH);
        } else {
            noop_ticks += cpu_batch(&run_noop, BATCH);
            untraced_ticks += cpu_batch(&run_untraced, BATCH);
        }
    }
    let noop_overhead = 100.0 * (noop_ticks - untraced_ticks) / untraced_ticks;
    println!(
        "NoopSink overhead vs untraced (CPU time, {} runs/side): {noop_overhead:+.2}% (gate: < 2%)",
        ROUNDS * BATCH
    );
    assert!(
        noop_overhead < 2.0,
        "disabled-tracing path exceeded the 2% overhead budget: {noop_overhead:+.2}%"
    );
}

criterion_group!(benches, bench_decisions, bench_trace_overhead);
criterion_main!(benches);
