//! Criterion benches for the §VIII-I overhead claims: online scheduling
//! decision latency with and without fusion.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use tacker::library::FusionLibrary;
use tacker::manager::{KernelManager, Policy};
use tacker::profile::KernelProfiler;
use tacker_kernel::SimTime;
use tacker_sim::{Device, GpuSpec};
use tacker_workloads::gemm::{gemm_workload, GemmShape};
use tacker_workloads::parboil::Benchmark;

fn setup(policy: Policy) -> (KernelManager, tacker_workloads::WorkloadKernel, Vec<Option<tacker_workloads::WorkloadKernel>>) {
    let device = Arc::new(Device::new(GpuSpec::rtx2080ti()));
    let profiler = Arc::new(KernelProfiler::new(device));
    let library = Arc::new(FusionLibrary::new(Arc::clone(&profiler)));
    let manager = KernelManager::new(Arc::clone(&profiler), library, policy);
    let gemm_def = tacker_workloads::dnn::compile::shared_gemm();
    let lc = gemm_workload(&gemm_def, GemmShape::new(4096, 4096, 512));
    let be_heads: Vec<Option<tacker_workloads::WorkloadKernel>> = (0..50)
        .map(|i| {
            let b = Benchmark::BE_APPS[i % Benchmark::BE_APPS.len()];
            let mut wk = b.task()[0].clone();
            wk.grid += i as u64;
            Some(wk)
        })
        .collect();
    let hr = SimTime::from_millis(20);
    manager.decide(Some(&lc), hr, hr, &be_heads, false).expect("warmup");
    (manager, lc, be_heads)
}

fn bench_decisions(c: &mut Criterion) {
    let hr = SimTime::from_millis(20);
    let (tacker, lc, be) = setup(Policy::Tacker);
    c.bench_function("online_fuse_decision_50_pairs", |b| {
        b.iter(|| tacker.decide(Some(&lc), hr, hr, &be, false).expect("decide"))
    });
    let (baymax, lc, be) = setup(Policy::Baymax);
    c.bench_function("static_schedule_decision_50_kernels", |b| {
        b.iter(|| baymax.decide(Some(&lc), hr, hr, &be, false).expect("decide"))
    });
}

criterion_group!(benches, bench_decisions);
criterion_main!(benches);
