//! Criterion benches for model fitting and prediction (the paper's "model
//! training completes in 20 ms" claim).

use criterion::{criterion_group, criterion_main, Criterion};
use tacker_kernel::SimTime;
use tacker_predictor::{FusedPairModel, KernelDurationModel, LinReg, MultiLinReg};

fn bench_predictor(c: &mut Criterion) {
    let samples: Vec<(f64, f64)> = (1..=40)
        .map(|i| {
            let r = i as f64 * 0.05;
            (
                r,
                if r < 1.0 {
                    1.0 + 0.1 * r
                } else {
                    1.1 + (r - 1.0)
                },
            )
        })
        .collect();
    c.bench_function("fit_two_stage_model_40pts", |b| {
        b.iter(|| FusedPairModel::fit("p", &samples).expect("fit"))
    });
    c.bench_function("fit_linreg_40pts", |b| {
        b.iter(|| LinReg::fit(&samples).expect("fit"))
    });

    let rows: Vec<Vec<f64>> = (0..24).map(|i| vec![(i * 64) as f64, i as f64]).collect();
    let ys: Vec<f64> = rows
        .iter()
        .map(|r| 3.0 * r[0] + 100.0 * r[1] + 5.0)
        .collect();
    c.bench_function("fit_multilinreg_24pts", |b| {
        b.iter(|| MultiLinReg::fit(&rows, &ys).expect("fit"))
    });

    let profile: Vec<(u64, SimTime)> = (1..=8)
        .map(|i| (i * 128, SimTime::from_micros(10 * i)))
        .collect();
    let model = KernelDurationModel::fit_blocks("k", &profile).expect("fit");
    c.bench_function("predict_kernel_duration", |b| {
        b.iter(|| model.predict(640.0))
    });
    let fused = FusedPairModel::fit("p", &samples).expect("fit");
    c.bench_function("predict_fused_duration", |b| {
        b.iter(|| fused.predict(SimTime::from_micros(100), SimTime::from_micros(70)))
    });
}

criterion_group!(benches, bench_predictor);
criterion_main!(benches);
