//! Criterion benches for the source-to-source transforms (the paper's
//! "compiling a fused kernel takes 0.9 s" — dominated there by nvcc; here
//! the structural transform itself is measured).

use criterion::{criterion_group, criterion_main, Criterion};
use tacker_fuser::{enumerate_configs, fuse_flexible, to_ptb, FusionConfig, PackPriority};
use tacker_kernel::SmCapacity;
use tacker_workloads::parboil::Benchmark;

fn bench_fuser(c: &mut Criterion) {
    let gemm = tacker_workloads::gemm::gemm_kernel();
    let fft = Benchmark::Fft.kernel();
    let sm = SmCapacity::TURING;
    c.bench_function("ptb_transform", |b| b.iter(|| to_ptb(&fft).expect("ptb")));
    c.bench_function("enumerate_fusion_configs", |b| {
        b.iter(|| enumerate_configs(&gemm, &fft, &sm, PackPriority::TensorFirst))
    });
    c.bench_function("fuse_flexible_2to1", |b| {
        b.iter(|| {
            fuse_flexible(
                &gemm,
                &fft,
                FusionConfig {
                    tc_blocks: 2,
                    cd_blocks: 1,
                },
                &sm,
            )
            .expect("fuse")
        })
    });
    let fused = fuse_flexible(&gemm, &fft, FusionConfig::ONE_TO_ONE, &sm).expect("fuse");
    c.bench_function("render_fused_cuda_source", |b| {
        b.iter(|| tacker_kernel::source::render(fused.def()))
    });
}

criterion_group!(benches, bench_fuser);
criterion_main!(benches);
