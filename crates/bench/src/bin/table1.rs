//! Table I: the motivation microbenchmarks.
//!
//! Bench-A fuses the Tensor microkernel Kt with the CUDA microkernel Kc
//! (equal solo durations): the fused kernel takes ≈1.03× one solo run.
//! Bench-B (Kt+Kt) and Bench-C (Kc+Kc) take 2× — same-pipeline fusion
//! buys nothing.

use std::sync::Arc;
use tacker_bench::rtx2080ti;
use tacker_fuser::{fuse_flexible, FusionConfig};
use tacker_sim::ExecutablePlan;
use tacker_workloads::microbench::{kc, kt, micro_launch};

fn main() {
    let device = rtx2080ti();
    let spec = device.spec().clone();
    let kt_def = Arc::new(kt());
    let kc_def = Arc::new(kc());
    let iters = 256;
    let blocks_per_sm = 2;

    let solo = |def: &Arc<tacker_kernel::KernelDef>| {
        let wk = micro_launch(def, blocks_per_sm, iters);
        device.run_launch(&wk.launch()).expect("solo run").duration
    };
    let t_kt = solo(&kt_def);
    let t_kc = solo(&kc_def);
    println!("# Table I: microbenchmark durations (normalized to Kt solo)");
    println!(
        "Kt solo: {t_kt}; Kc solo: {t_kc} (tuned equal: ratio {:.3})",
        t_kc.ratio(t_kt)
    );

    // Bench-A: Kt fused with Kc at 1:1.
    let fused_a =
        fuse_flexible(&kt_def, &kc_def, FusionConfig::ONE_TO_ONE, &spec.sm).expect("bench-a fuses");
    let wk_t = micro_launch(&kt_def, blocks_per_sm, iters);
    let wk_c = micro_launch(&kc_def, blocks_per_sm, iters);
    let launch = fused_a.launch(wk_t.grid, wk_c.grid, &wk_t.bindings, &wk_c.bindings);
    let plan = ExecutablePlan::from_launch(&spec, &launch).expect("plan");
    let t_a = device.run_plan(&plan).expect("bench-a").duration;

    // Bench-B: two Kt back to back (same pipeline — fusing buys nothing,
    // measure sequential execution of twice the work).
    let wk_t2 = micro_launch(&kt_def, 2 * blocks_per_sm, iters);
    let t_b = device
        .run_launch(&wk_t2.launch())
        .expect("bench-b")
        .duration;
    // Bench-C: two Kc.
    let wk_c2 = micro_launch(&kc_def, 2 * blocks_per_sm, iters);
    let t_c = device
        .run_launch(&wk_c2.launch())
        .expect("bench-c")
        .duration;

    let norm = |t: tacker_kernel::SimTime| t.ratio(t_kt);
    println!();
    println!(
        "{:<10} {:>10} {:>12} {:>8}",
        "bench", "1st half", "2nd half", "norm"
    );
    println!(
        "{:<10} {:>10} {:>12} {:>8.2}",
        "Bench-A",
        "Kt",
        "Kc",
        norm(t_a)
    );
    println!(
        "{:<10} {:>10} {:>12} {:>8.2}",
        "Bench-B",
        "Kt",
        "Kt",
        norm(t_b)
    );
    println!(
        "{:<10} {:>10} {:>12} {:>8.2}",
        "Bench-C",
        "Kc",
        "Kc",
        norm(t_c)
    );
    println!();
    println!("paper: Bench-A 1.03, Bench-B 2.00, Bench-C 2.00");
    assert!(
        norm(t_a) < 1.25,
        "Bench-A should be near 1.0, got {:.2}",
        norm(t_a)
    );
    assert!(
        (norm(t_b) - 2.0).abs() < 0.25,
        "Bench-B should be ≈2, got {:.2}",
        norm(t_b)
    );
    assert!(
        (norm(t_c) - 2.0).abs() < 0.25,
        "Bench-C should be ≈2, got {:.2}",
        norm(t_c)
    );
}
