//! Wall-clock benchmark of fleet-scale serving: the same workload served
//! by one device and by two devices, timed in host wall-clock, plus a
//! per-dispatch-policy comparison in the simulated domain. Seeds the
//! repo's perf trajectory as `results/BENCH_cluster.json`.
//!
//! Methodology:
//!
//! * **Identity gate** (always asserted): a fleet of one node with zero
//!   dispatch latency must reproduce the single-device `ColocationRun`
//!   bit for bit — same latencies, wall, busy time and BE accounting.
//!   The scaling numbers are only meaningful on top of that equivalence.
//! * **Scaling**: the same two-service workload is served by one and by
//!   two identical RTX 2080 Ti nodes. Total queries are fixed, so the
//!   host-wall ratio *is* the aggregate warm-query throughput ratio
//!   (queries per second of host time). Each configuration is timed
//!   twice after a calibration warm-up and the minimum is kept.
//! * **Serial fallback**: per-device engines fan out over the
//!   `tacker-par` pool; on a single-core host (or `jobs = 1`) both
//!   configurations execute serially, the ratio would only measure
//!   noise, and the speedup is reported as `1.0` by construction with
//!   `serial_fallback: true` recorded in the artifact — mirroring
//!   `sweep_bench`.
//! * **Policy comparison**: a heterogeneous four-node fleet (2080 Ti /
//!   V100 alternating) runs once per dispatch policy over identical
//!   arrival streams; the JSON records violation rate, p99, load-balance
//!   skew and per-device utilization per policy. These are simulated-
//!   domain numbers — host timing plays no part.
//!
//! Provenance: the JSON records `host_cores`, the requested and used
//! worker counts, and the fallback flag, so the artifact explains its
//! own gate.
//!
//! Usage: `cargo run --release -p tacker-bench --bin cluster_bench
//! [-- <out.json>] [-- --check]` (default `results/BENCH_cluster.json`).
//! `--check` exits non-zero if the identity gate fails or the 1→2 device
//! throughput ratio misses the floor for the host class (≥ 1.8 at 4+
//! cores, ≥ 1.0 below — always met under the serial fallback).

use std::sync::Arc;
use std::time::Instant;

use tacker::fleet::{heterogeneous_fleet, DispatchPolicy, FleetNode, FleetReport, FleetRun};
use tacker::prelude::*;
use tacker_sim::{Device, GpuSpec};
use tacker_workloads::LcService;

const LC_NAMES: [&str; 2] = ["Resnet50", "VGG16"];
const QUERIES: usize = 30;
const SEED: u64 = 0x7ac4e2;

fn services() -> Vec<LcService> {
    let device = Arc::new(Device::new(GpuSpec::rtx2080ti()));
    LC_NAMES
        .iter()
        .map(|n| tacker_workloads::lc_service(n, &device).expect("LC service"))
        .collect()
}

fn config(jobs: usize) -> ExperimentConfig {
    ExperimentConfig::default()
        .with_queries(QUERIES)
        .with_seed(SEED)
        .with_jobs(jobs)
}

fn homogeneous(n: usize) -> Vec<FleetNode> {
    (0..n)
        .map(|i| FleetNode::new(format!("gpu-{i}"), GpuSpec::rtx2080ti()))
        .collect()
}

fn run_fleet(devices: usize, jobs: usize, lcs: &[LcService]) -> (FleetReport, f64) {
    let start = Instant::now();
    let report = FleetRun::new(homogeneous(devices), &config(jobs), lcs)
        .expect("fleet")
        .run()
        .expect("fleet");
    (report, start.elapsed().as_secs_f64() * 1e3)
}

/// The identity gate: fleet-of-1 with zero dispatch latency reproduces
/// the single-device serving runtime bit for bit.
fn identity_gate(lcs: &[LcService]) {
    let device = Arc::new(Device::new(GpuSpec::rtx2080ti()));
    let solo = ColocationRun::new(&device, &config(1), lcs, &[])
        .expect("solo")
        .run()
        .expect("solo");
    let fleet = FleetRun::new(homogeneous(1), &config(1), lcs)
        .expect("fleet")
        .run()
        .expect("fleet");
    let dev = fleet.devices[0].report.as_ref().expect("device ran");
    assert_eq!(
        dev.query_latencies(),
        solo.query_latencies(),
        "identity gate: fleet-of-1 latencies diverged from single-device serve"
    );
    assert_eq!(dev.qos_violations(), solo.qos_violations());
    assert_eq!(dev.wall, solo.wall);
    assert_eq!(dev.busy, solo.busy);
    assert_eq!(dev.fused_launches, solo.fused_launches);
    assert_eq!(fleet.mean_latency(), solo.mean_latency());
    assert_eq!(fleet.p99_latency(), solo.p99_latency());
}

fn policy_rows(lcs: &[LcService], jobs: usize) -> Vec<String> {
    let run = FleetRun::new(heterogeneous_fleet(4), &config(jobs), lcs).expect("fleet");
    let rows = run.run_policies(&DispatchPolicy::ALL).expect("policies");
    rows.iter()
        .map(|(policy, r)| {
            let per_device: Vec<String> = r
                .devices
                .iter()
                .map(|d| {
                    format!(
                        "{{\"id\": \"{}\", \"gpu\": \"{}\", \"queries\": {}, \
                         \"utilization\": {:.4}, \"sim_qps\": {:.1}}}",
                        d.id,
                        d.gpu,
                        d.queries,
                        d.utilization(),
                        d.sim_queries_per_sec()
                    )
                })
                .collect();
            format!(
                "    {{\"policy\": \"{}\", \"violation_rate\": {:.4}, \
                 \"p99_ms\": {:.3}, \"skew\": {:.3}, \"max_outstanding\": {}, \
                 \"sim_qps\": {:.1}, \"devices\": [{}]}}",
                policy.name(),
                r.violation_rate(),
                r.p99_latency().map_or(0.0, |t| t.as_millis_f64()),
                r.outstanding_skew(),
                r.outstanding_max,
                r.sim_queries_per_sec(),
                per_device.join(", ")
            )
        })
        .collect()
}

fn main() {
    let mut out = "results/BENCH_cluster.json".to_string();
    let mut check = false;
    for arg in std::env::args().skip(1) {
        if arg == "--check" {
            check = true;
        } else {
            out = arg;
        }
    }
    let host_cores = tacker_par::available_jobs();
    let jobs_requested = host_cores.max(2);
    // Two device tasks at most: the pool runs min(jobs, cores, devices)
    // workers, so a single-core host executes both configurations on the
    // identical serial path.
    let jobs_used = jobs_requested.min(host_cores).min(2);
    let serial_fallback = jobs_used <= 1;

    let lcs = services();

    eprintln!("identity gate (fleet-of-1 == single device) ...");
    identity_gate(&lcs);

    // Warm-up: populate the process-global calibration cache so neither
    // timed configuration pays it for the other.
    eprintln!("warm-up (calibration) ...");
    let _ = run_fleet(2, jobs_requested, &lcs);

    eprintln!("timing 1 device ...");
    let (report_1, ms_1a) = run_fleet(1, jobs_requested, &lcs);
    let (_, ms_1b) = run_fleet(1, jobs_requested, &lcs);
    let wall_1 = ms_1a.min(ms_1b);
    eprintln!("timing 2 devices (jobs used: {jobs_used}) ...");
    let (report_2, ms_2a) = run_fleet(2, jobs_requested, &lcs);
    let (_, ms_2b) = run_fleet(2, jobs_requested, &lcs);
    let wall_2 = ms_2a.min(ms_2b);

    let total_queries = report_1.query_count();
    assert_eq!(
        total_queries,
        report_2.query_count(),
        "both configurations must serve the same workload"
    );
    // Same total queries in both configurations: the host-wall ratio is
    // the aggregate warm-query throughput ratio. 1.0 by construction
    // under the serial fallback (both configs ran the same serial path).
    let throughput_ratio = if serial_fallback {
        1.0
    } else {
        wall_1 / wall_2.max(1e-9)
    };
    let qps_1 = total_queries as f64 / (wall_1 / 1e3).max(1e-9);
    let qps_2 = total_queries as f64 / (wall_2 / 1e3).max(1e-9);

    eprintln!("policy comparison (4-device heterogeneous fleet) ...");
    let policies = policy_rows(&lcs, jobs_requested);

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"cluster_serve\",\n",
            "  \"workload\": {{\"lc\": {lc:?}, \"queries_per_service\": {queries}, ",
            "\"seed\": {seed}}},\n",
            "  \"host_cores\": {cores},\n",
            "  \"jobs_requested\": {requested},\n",
            "  \"jobs_used\": {used},\n",
            "  \"serial_fallback\": {fallback},\n",
            "  \"identity_gate\": \"passed\",\n",
            "  \"wall_ms_1_device\": {w1:.1},\n",
            "  \"wall_ms_2_devices\": {w2:.1},\n",
            "  \"host_queries_per_sec_1_device\": {qps1:.1},\n",
            "  \"host_queries_per_sec_2_devices\": {qps2:.1},\n",
            "  \"throughput_ratio_1_to_2\": {ratio:.2},\n",
            "  \"policies\": [\n{policies}\n  ]\n",
            "}}\n"
        ),
        lc = LC_NAMES,
        queries = QUERIES,
        seed = SEED,
        cores = host_cores,
        requested = jobs_requested,
        used = jobs_used,
        fallback = serial_fallback,
        w1 = wall_1,
        w2 = wall_2,
        qps1 = qps_1,
        qps2 = qps_2,
        ratio = throughput_ratio,
        policies = policies.join(",\n"),
    );
    std::fs::write(&out, &json).expect("write BENCH_cluster.json");
    print!("{json}");
    eprintln!(
        "1 device: {wall_1:.0} ms, 2 devices: {wall_2:.0} ms \
         ({throughput_ratio:.2}x throughput on {host_cores} core(s)); wrote {out}"
    );

    if check {
        let floor = if host_cores >= 4 { 1.8 } else { 1.0 };
        assert!(
            throughput_ratio >= floor,
            "--check: 1→2 device throughput ratio {throughput_ratio:.2} is under the \
             {floor:.1}x floor for a {host_cores}-core host"
        );
        eprintln!(
            "--check passed: identity gate ok, throughput ratio {throughput_ratio:.2} >= \
             {floor:.1} on {host_cores} core(s)"
        );
    }
}
