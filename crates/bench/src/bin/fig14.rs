//! Figure 14: BE throughput improvement of Tacker over Baymax for all
//! 6 LC × 12 BE co-location pairs on the RTX 2080Ti.
//!
//! Paper: average 18.6%, up to 41.1%; compute-intensive BE applications
//! gain more than memory-intensive ones.

use tacker_bench::{eval_config, pair_improvement, rtx2080ti};
use tacker_workloads::Intensity;

fn main() {
    let device = rtx2080ti();
    let config = eval_config();
    let be_apps = tacker_workloads::be_apps();
    let mut all = Vec::new();
    let mut compute = Vec::new();
    let mut memory = Vec::new();

    println!("# Figure 14: BE throughput improvement over Baymax (2080Ti)");
    print!("{:<10}", "LC \\ BE");
    for be in &be_apps {
        print!("{:>9}", be.name());
    }
    println!();
    for lc_name in [
        "Resnet50",
        "ResNext",
        "VGG16",
        "VGG19",
        "Inception",
        "Densenet",
    ] {
        let lc = tacker_workloads::lc_service(lc_name, &device).expect("known LC service");
        print!("{lc_name:<10}");
        for be in &be_apps {
            let (imp, _, tacker) = pair_improvement(&device, &lc, be, &config);
            assert!(
                tacker.p99_latency() <= config.qos_target.mul_f64(1.02),
                "{lc_name}+{}: p99 {} exceeds QoS",
                be.name(),
                tacker.p99_latency()
            );
            print!("{:>8.1}%", imp);
            all.push(imp);
            match be.intensity() {
                Intensity::Compute => compute.push(imp),
                Intensity::Memory => memory.push(imp),
            }
        }
        println!();
    }
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let max = all.iter().cloned().fold(f64::MIN, f64::max);
    println!();
    println!("pairs: {}", all.len());
    println!("average improvement: {:.1}%   (paper: 18.6%)", avg(&all));
    println!("max improvement:     {:.1}%   (paper: 41.1%)", max);
    println!(
        "compute-intensive avg: {:.1}%  >  memory-intensive avg: {:.1}%  (paper: compute > memory)",
        avg(&compute),
        avg(&memory)
    );
}
