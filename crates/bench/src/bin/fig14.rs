//! Figure 14: BE throughput improvement of Tacker over Baymax for all
//! 6 LC × 12 BE co-location pairs on the RTX 2080Ti.
//!
//! Paper: average 18.6%, up to 41.1%; compute-intensive BE applications
//! gain more than memory-intensive ones.
//!
//! The 72 pairs fan out over the `tacker-par` work pool (set `TACKER_JOBS`
//! to pin the worker count); results are joined in grid order, so the
//! table below is byte-identical at any jobs count.

use tacker_bench::{bench_jobs, eval_config, eval_lc_services, rtx2080ti};
use tacker_workloads::Intensity;

fn main() {
    let device = rtx2080ti();
    let config = eval_config();
    let be_apps = tacker_workloads::be_apps();
    let lcs = eval_lc_services(&device);
    let results = tacker::run_improvement_sweep(&device, &lcs, &be_apps, &config, bench_jobs())
        .expect("sweep");

    let mut all = Vec::new();
    let mut compute = Vec::new();
    let mut memory = Vec::new();

    println!("# Figure 14: BE throughput improvement over Baymax (2080Ti)");
    print!("{:<10}", "LC \\ BE");
    for be in &be_apps {
        print!("{:>9}", be.name());
    }
    println!();
    let mut rows = results.iter();
    for lc in &lcs {
        print!("{:<10}", lc.name());
        for be in &be_apps {
            let (_, _, imp, _, tacker) = rows.next().expect("one row per pair");
            let p99 = tacker.p99_latency().expect("queries completed");
            assert!(
                p99 <= config.qos_target.mul_f64(1.02),
                "{}+{}: p99 {} exceeds QoS",
                lc.name(),
                be.name(),
                p99
            );
            print!("{:>8.1}%", imp);
            all.push(*imp);
            match be.intensity() {
                Intensity::Compute => compute.push(*imp),
                Intensity::Memory => memory.push(*imp),
            }
        }
        println!();
    }
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let max = all.iter().cloned().fold(f64::MIN, f64::max);
    println!();
    println!("pairs: {}", all.len());
    println!("average improvement: {:.1}%   (paper: 18.6%)", avg(&all));
    println!("max improvement:     {:.1}%   (paper: 41.1%)", max);
    println!(
        "compute-intensive avg: {:.1}%  >  memory-intensive avg: {:.1}%  (paper: compute > memory)",
        avg(&compute),
        avg(&memory)
    );
}
