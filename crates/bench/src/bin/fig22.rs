//! Figure 22: the cuDNN convolution kernel naming convention — decoded
//! for every implementation in the Table III catalog.
//!
//! Paper: `<arch>_h<884|1688>cudnn_<tile>_…_<size class>_…`, where the
//! architecture prefix, the HMMA shape (Tensor-Core use) and the
//! input-shape-related size class are the semantically meaningful parts.

use tacker_workloads::dnn::cudnn::{parse_kernel_name, TURING_IMPLS, VOLTA_IMPLS};

fn main() {
    println!("# Figure 22: cuDNN kernel name decoding");
    println!(
        "{:<5} {:>7} {:>6} {:>9} {:>9}  name",
        "impl", "arch", "hmma", "tile", "class"
    );
    for ci in TURING_IMPLS.iter().chain(VOLTA_IMPLS.iter()) {
        let d = parse_kernel_name(ci.name).expect("catalog names decode");
        println!(
            "{:<5} {:>7} {:>6} {:>4}x{:<4} {:>9}  {}",
            ci.short, d.arch, d.hmma, d.tile.0, d.tile.1, d.size_class, ci.name
        );
        // Fig. 22's annotation: 884 or 1688 indicate Tensor-Core use.
        assert!(d.hmma == "884" || d.hmma == "1688");
    }
    println!();
    println!("All 12 implementations use HMMA (Tensor Cores) — and none exposes");
    println!("source, which is why the im2col+GEMM transformation exists (§VIII-H).");
}
