//! Figure 2: stacked Tensor-kernel and CUDA-kernel active time under
//! Baymax for 6 LC services × 5 BE applications, normalized to the QoS
//! target.
//!
//! Paper: the two stacked parts sum to ≈ the QoS target for every pair —
//! the cores are busy all the time, but never simultaneously.

use tacker::prelude::*;
use tacker_bench::rtx2080ti;

fn main() {
    let device = rtx2080ti();
    let config = tacker_bench::eval_config().with_queries(40).with_timeline();
    println!("# Figure 2: TC/CD kernel active time under Baymax (normalized to QoS window)");
    println!(
        "{:<10} {:>7} {:>9} {:>9} {:>9} {:>8}",
        "LC", "BE", "TC part", "CD part", "sum", "overlap"
    );
    for lc_name in [
        "Resnet50",
        "ResNext",
        "VGG16",
        "VGG19",
        "Inception",
        "Densenet",
    ] {
        let lc = tacker_workloads::lc_service(lc_name, &device).expect("LC service");
        for be_name in ["sgemm", "fft", "lbm", "cutcp", "mriq"] {
            let be = vec![tacker_workloads::be_app(be_name).expect("BE app")];
            let report = ColocationRun::new(&device, &config, std::slice::from_ref(&lc), &be)
                .expect("baymax run")
                .policy(Policy::Baymax)
                .run()
                .expect("baymax run");
            let tl = report.timeline.expect("timeline");
            // Normalize active times to the total busy window.
            let busy = tl.tc_active_time() + tl.cd_active_time();
            let tc = tl.tc_active_time().ratio(busy);
            let cd = tl.cd_active_time().ratio(busy);
            let overlap = tl.both_active_time();
            println!(
                "{:<10} {:>7} {:>8.2} {:>9.2} {:>9.2} {:>8}",
                lc_name,
                be_name,
                tc,
                cd,
                tc + cd,
                overlap
            );
            assert_eq!(overlap.as_nanos(), 0);
        }
    }
    println!();
    println!("Every row: TC part + CD part = 1.00 of the busy window, overlap = 0 —");
    println!("the false high utilization problem (paper: same conclusion).");
}
