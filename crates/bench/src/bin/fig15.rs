//! Figure 15: active timelines of the two core types *with Tacker* for
//! Resnet50+sgemm and Resnet50+fft.
//!
//! Paper: Tacker's fused kernels keep both core types active at once, and
//! the compute-intensive partner (fft) overlaps for longer than the
//! memory-intensive one (sgemm).

use tacker::prelude::*;
use tacker_bench::rtx2080ti;
use tacker_kernel::SimTime;

fn main() {
    let device = rtx2080ti();
    let config = tacker_bench::eval_config().with_queries(40).with_timeline();
    let lc = tacker_workloads::lc_service("Resnet50", &device).expect("LC service");
    println!("# Figure 15: active timelines with Tacker");
    let be_names = ["sgemm", "fft"];
    // The two co-locations are independent runs; execute them on the pool
    // and print in name order.
    let reports = tacker_bench::par_map(tacker_bench::bench_jobs(), &be_names, |_, be_name| {
        let be = vec![tacker_workloads::be_app(be_name).expect("BE app")];
        ColocationRun::new(&device, &config, std::slice::from_ref(&lc), &be)
            .expect("tacker run")
            .policy(Policy::Tacker)
            .run()
            .expect("tacker run")
    });
    let mut overlaps: Vec<(String, SimTime)> = Vec::new();
    for (be_name, report) in be_names.iter().zip(reports) {
        let tl = report.timeline.expect("timeline recorded");
        println!(
            "\n## Resnet50 + {be_name} (fused launches: {})",
            report.fused_launches
        );
        print!("{}", tl.render_ascii(100));
        let both = tl.both_active_time();
        println!("both core types active simultaneously: {both}");
        overlaps.push((be_name.to_string(), both));
    }
    println!();
    assert!(overlaps.iter().all(|(_, t)| t.as_nanos() > 0));
    assert!(
        overlaps[1].1 > overlaps[0].1,
        "fft (compute-intensive) should co-run longer than sgemm (paper §VIII-C)"
    );
    println!(
        "co-run time: fft {} > sgemm {}  (paper: same ordering)",
        overlaps[1].1, overlaps[0].1
    );
}
