//! Figure 20: overlap rate of Tacker's kernel fusion versus MPS+PTB and
//! Stream+PTB across GEMM × Parboil pairs.
//!
//! Paper: Tacker achieves the highest overlap in every pair; MPS is poor
//! in many cases and Stream is unstable on several benchmarks.

use std::sync::Arc;
use tacker::baselines::{overlap_experiment, CorunInterface};
use tacker::profile::KernelProfiler;
use tacker_bench::rtx2080ti;
use tacker_workloads::gemm::{gemm_workload, gemm_workload_64, GemmShape};
use tacker_workloads::parboil::Benchmark;

fn main() {
    let device = rtx2080ti();
    let profiler = Arc::new(KernelProfiler::new(Arc::clone(&device)));
    let gemm_def = tacker_workloads::dnn::compile::shared_gemm();
    // Two NVIDIA GEMM implementations, as in the paper: the 128-tile
    // CUTLASS-style kernel and the 64-tile cudaTensorCoreGemm-style one.
    let gemms = [
        ("gemm1", GemmShape::new(4096, 4096, 512), false),
        ("gemm2", GemmShape::new(2048, 2048, 2048), true),
    ];
    let kernels = [
        Benchmark::Mriq,
        Benchmark::Fft,
        Benchmark::Mrif,
        Benchmark::Cutcp,
        Benchmark::Cp,
        Benchmark::Sgemm,
        Benchmark::Lbm,
        Benchmark::Stencil,
        Benchmark::Tpacf,
        Benchmark::Regtile,
    ];
    println!("# Figure 20: overlap rate (Equation 11) by co-running interface");
    println!(
        "{:<12} {:>16} {:>16} {:>8}",
        "pair", "Stream+PTB", "MPS+PTB", "Tacker"
    );
    let mut wins = 0;
    let mut total = 0;
    let mut black_box_spread = Vec::new();
    for (gname, shape, use_64) in gemms {
        for b in kernels {
            let tc = if use_64 {
                gemm_workload_64(shape)
            } else {
                gemm_workload(&gemm_def, shape)
            };
            // Tune the CD kernel's solo time to match the GEMM's (paper
            // tunes for the highest possible overlap rate).
            let mut cd = b.task()[0].clone();
            let t_tc = profiler.measure(&tc).expect("tc");
            let t_cd = profiler.measure(&cd).expect("cd");
            cd.grid = ((cd.grid as f64 * t_tc.ratio(t_cd)).round() as u64).max(1);
            // The black-box interfaces are *unstable*: sample several runs
            // and report mean ± spread. Tacker's fusion is deterministic.
            let sample = |interface| -> (f64, f64) {
                let overlaps: Vec<f64> = (0..5)
                    .map(|seed| {
                        overlap_experiment(&device, &tc, &cd, interface, 17 + seed)
                            .expect("corun")
                            .overlap
                    })
                    .collect();
                let mean = overlaps.iter().sum::<f64>() / overlaps.len() as f64;
                let spread = overlaps
                    .iter()
                    .cloned()
                    .fold(0.0f64, |m, v| m.max((v - mean).abs()));
                (mean, spread)
            };
            let (stream, stream_spread) = sample(CorunInterface::StreamPtb);
            let (mps, mps_spread) = sample(CorunInterface::MpsPtb);
            let tacker = overlap_experiment(&device, &tc, &cd, CorunInterface::TackerFusion, 17)
                .expect("tacker");
            println!(
                "{:<12} {:>8.1}% ±{:>4.1}% {:>8.1}% ±{:>4.1}% {:>7.1}%",
                format!("{}:{}", b.name(), gname),
                100.0 * stream,
                100.0 * stream_spread,
                100.0 * mps,
                100.0 * mps_spread,
                100.0 * tacker.overlap
            );
            total += 1;
            if tacker.overlap >= mps + mps_spread - 1e-9
                && tacker.overlap >= stream + stream_spread - 1e-9
            {
                wins += 1;
            }
            black_box_spread.push(stream_spread.max(mps_spread));
        }
    }
    println!();
    let avg_spread = 100.0 * black_box_spread.iter().sum::<f64>() / black_box_spread.len() as f64;
    println!("Tacker highest in {wins}/{total} pairs (paper: all pairs)");
    println!("black-box interfaces vary by ±{avg_spread:.1}% across runs; Tacker is deterministic");
    println!("(paper: \"not suitable … due to the unstable performance\")");
    assert!(
        wins * 10 >= total * 9,
        "Tacker should win (almost) everywhere"
    );
}
