//! Extension experiment (§VII-B-2 at service granularity): two LC services
//! co-located with one BE application. Equation 9 reserves the remaining
//! GPU time of every active query across services, so both keep their QoS
//! while Tacker still fuses.

use tacker::prelude::*;
use tacker_bench::rtx2080ti;

fn main() {
    let device = rtx2080ti();
    let config = tacker_bench::eval_config().with_queries(100);
    let lcs = vec![
        tacker_workloads::lc_service("Resnet50", &device).expect("LC"),
        tacker_workloads::lc_service("Densenet", &device).expect("LC"),
    ];
    let be = vec![tacker_workloads::be_app("mriq").expect("BE")];
    println!("# Multiple LC services: Resnet50 + Densenet, with mriq as BE");
    let mut rates = Vec::new();
    for policy in [Policy::Baymax, Policy::Tacker] {
        let r = ColocationRun::new(&device, &config, &lcs, &be)
            .expect("run")
            .policy(policy)
            .run()
            .expect("run");
        println!("## {policy:?}");
        for svc in r.per_service() {
            let p99 = svc.p99_latency().expect("queries completed");
            println!(
                "  {:<10} mean {:>7.2} ms  p99 {:>7.2} ms  violations {}",
                svc.name,
                svc.mean_latency()
                    .expect("queries completed")
                    .as_millis_f64(),
                p99.as_millis_f64(),
                svc.qos_violations
            );
            // Cross-service bursts are invisible to each service's own
            // calibration; require the p99 to meet QoS and at most 1%
            // stragglers.
            assert!(
                p99 <= config.qos_target,
                "{} p99 {} exceeds QoS",
                svc.name,
                p99
            );
            assert!(svc.qos_violations <= config.queries / 100 + 1);
        }
        println!(
            "  BE work rate {:.3}, fused {}",
            r.be_work_rate(),
            r.fused_launches
        );
        rates.push(r.be_work_rate());
    }
    println!();
    println!(
        "Tacker improves BE throughput by {:.1}% with both services' QoS intact.",
        100.0 * (rates[1] / rates[0] - 1.0)
    );
    assert!(rates[1] >= rates[0]);
}
