//! Figure 21: normalized performance of the im2col+GEMM implementation
//! over the cuDNN convolution kernels of Resnet50.
//!
//! Paper: the gap is below 15% for 39.6% of Resnet50's convolutions;
//! transforming only those keeps the end-to-end slowdown under 2%.

use tacker_bench::rtx2080ti;
use tacker_workloads::dnn::compile::{compile, ConvPolicy};
use tacker_workloads::dnn::DnnModel;

fn main() {
    let device = rtx2080ti();
    let model = DnnModel::Resnet50;
    let graph = model.graph(model.table_ii_batch() as u64);
    let compiled = compile(&graph, &device, ConvPolicy::Profitable(0.15));

    println!("# Figure 21: im2col+GEMM vs cuDNN per Resnet50 convolution");
    println!(
        "{:>5} {:>9} {:>7} {:>7} {:>10} {:>12}",
        "conv", "M", "N", "K", "rel perf", "transformed"
    );
    for r in &compiled.convs {
        println!(
            "{:>5} {:>9} {:>7} {:>7} {:>10.3} {:>12}",
            r.index,
            r.gemm.m,
            r.gemm.n,
            r.gemm.k,
            r.rel_perf,
            if r.transformed { "yes" } else { "" }
        );
    }
    let within_15 = compiled
        .convs
        .iter()
        .filter(|r| r.rel_perf >= 1.0 / 1.15)
        .count();
    let frac = 100.0 * within_15 as f64 / compiled.convs.len() as f64;
    println!();
    println!(
        "convs with <15% gap: {}/{} = {:.1}%  (paper: 39.6%)",
        within_15,
        compiled.convs.len(),
        frac
    );
    println!(
        "transformed fraction: {:.1}%  (paper: 55.4% of TC kernels usable for fusion)",
        100.0 * compiled.transformed_fraction()
    );

    // End-to-end cost of the transformation (paper: <2%).
    let all_cudnn = compile(&graph, &device, ConvPolicy::Cudnn);
    let total = |c: &tacker_workloads::dnn::compile::CompiledModel| -> f64 {
        c.kernels
            .iter()
            .map(|k| {
                device
                    .run_launch(&k.launch())
                    .expect("kernel runs")
                    .duration
                    .as_nanos() as f64
            })
            .sum()
    };
    let loss = total(&compiled) / total(&all_cudnn) - 1.0;
    println!(
        "end-to-end slowdown from transformation: {:+.2}%  (paper: <2%)",
        100.0 * loss
    );
    assert!(loss < 0.05, "transformation must be nearly free end-to-end");
    assert!(
        (20.0..=90.0).contains(&frac),
        "a real fraction of convs must convert well"
    );
}
