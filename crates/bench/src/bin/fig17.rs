//! Figure 17: duration prediction error of the per-kernel LR models on
//! single PTB kernels.
//!
//! Paper: at most 3% error, below 2% on average, across the Parboil
//! kernels and the DNN operator kernels (ReLU, Scale, BN, Pooling).

use std::sync::Arc;
use tacker::profile::KernelProfiler;
use tacker_bench::rtx2080ti;
use tacker_workloads::dnn::elementwise as ew;
use tacker_workloads::parboil::Benchmark;
use tacker_workloads::WorkloadKernel;

fn main() {
    let device = rtx2080ti();
    let profiler = Arc::new(KernelProfiler::new(Arc::clone(&device)));
    println!("# Figure 17: PTB-kernel duration prediction error (held-out launches)");
    println!("{:>9} {:>10}", "kernel", "error");
    // Assemble every (train, held-out) case, then evaluate the cases on
    // the work pool — each is an independent model fit + error probe — and
    // print in case order.
    let mut cases: Vec<(String, WorkloadKernel, Vec<WorkloadKernel>)> = Vec::new();
    for b in Benchmark::ALL {
        let held = [3u32, 5, 7]
            .iter()
            .map(|&s| b.task_scaled(s)[0].clone())
            .collect();
        cases.push((b.name().to_string(), b.task()[0].clone(), held));
    }
    // The four DNN operator kernels the paper calls out.
    for (name, def) in [
        ("ReLU", ew::relu()),
        ("Scale", ew::scale()),
        ("BN", ew::batch_norm()),
    ] {
        let train = ew::elementwise_workload(&def, 4_000_000);
        let held = [1_000_000u64, 9_000_000, 17_000_000]
            .iter()
            .map(|&n| ew::elementwise_workload(&def, n))
            .collect();
        cases.push((name.to_string(), train, held));
    }
    cases.push((
        "Pooling".to_string(),
        ew::pool_workload(2_000_000, 9),
        vec![
            ew::pool_workload(6_000_000, 9),
            ew::pool_workload(3_000_000, 18),
        ],
    ));
    let errors: Vec<f64> =
        tacker_bench::par_map(tacker_bench::bench_jobs(), &cases, |_, (_, train, held)| {
            profiler.ensure_model(train).expect("profiling");
            let mut worst = 0.0f64;
            for wk in held {
                let e = profiler.prediction_error(wk).expect("error");
                worst = worst.max(e);
            }
            worst
        });
    for ((name, _, _), worst) in cases.iter().zip(&errors) {
        println!("{name:>9} {:>9.2}%", 100.0 * worst);
    }

    let avg = errors.iter().sum::<f64>() / errors.len() as f64;
    let max = errors.iter().cloned().fold(0.0, f64::max);
    println!();
    println!("average error: {:.2}%  (paper: <2%)", 100.0 * avg);
    println!("max error:     {:.2}%  (paper: ≤3%)", 100.0 * max);
    assert!(avg < 0.04, "average prediction error too high: {avg}");
    assert!(max < 0.08, "max prediction error too high: {max}");
}
