//! §VIII-C batch-size sensitivity: with batch size 1 the LC kernels are
//! tiny, so the co-located BE application gets more raw throughput (more
//! idle + headroom) but the *fusion technique's* gain over Baymax shrinks
//! (the LC duration bounds the fusion potential).
//!
//! Paper: +17.4% more BE throughput at batch 1, but only +5.5% improvement
//! over Baymax (vs the batch-32 gain).

use tacker::prelude::*;
use tacker::server::calibrate_peak_interarrival;
use tacker_bench::rtx2080ti;
use tacker_workloads::dnn::compile::{compile, ConvPolicy};
use tacker_workloads::dnn::DnnModel;
use tacker_workloads::LcService;

fn main() {
    let device = rtx2080ti();
    let config = tacker_bench::eval_config().with_queries(100);
    let be = vec![tacker_workloads::be_app("mriq").expect("BE")];
    println!("# Batch-size sensitivity (Resnet50 + mriq)");
    println!(
        "{:>6} {:>12} {:>12} {:>12}",
        "batch", "baymax rate", "tacker rate", "improvement"
    );
    // The paper varies the batch size at a fixed query rate: calibrate the
    // load once for the Table II batch (32) and reuse it.
    let reference = tacker_workloads::lc_service("Resnet50", &device).expect("LC");
    let interarrival = calibrate_peak_interarrival(&device, &reference, &config)
        .expect("calibration")
        .mul_f64(1.0 / config.load_factor);
    let mut rows = Vec::new();
    for batch in [1u32, 8, 32] {
        let graph = DnnModel::Resnet50.graph(batch as u64);
        let compiled = compile(&graph, &device, ConvPolicy::Profitable(0.15));
        let lc = LcService::new(format!("Resnet50-b{batch}"), batch, compiled.kernels);
        let baymax = ColocationRun::new(&device, &config, std::slice::from_ref(&lc), &be)
            .expect("baymax")
            .policy(Policy::Baymax)
            .at(interarrival)
            .run()
            .expect("baymax");
        let tacker = ColocationRun::new(&device, &config, std::slice::from_ref(&lc), &be)
            .expect("tacker")
            .policy(Policy::Tacker)
            .at(interarrival)
            .run()
            .expect("tacker");
        assert!(tacker.qos_met(), "batch {batch}: QoS violated");
        let imp = 100.0 * (tacker.be_work_rate() / baymax.be_work_rate() - 1.0);
        println!(
            "{:>6} {:>12.3} {:>12.3} {:>11.1}%",
            batch,
            baymax.be_work_rate(),
            tacker.be_work_rate(),
            imp
        );
        rows.push((batch, baymax.be_work_rate(), imp));
    }
    println!();
    // Smaller batches → more raw BE throughput; fusion's edge shrinks.
    assert!(
        rows[0].1 > rows[2].1,
        "batch 1 should leave more raw BE throughput than batch 32"
    );
    assert!(
        rows[0].2 < rows[2].2 + 1e-9,
        "fusion's improvement should shrink at batch 1 (paper: 5.5% vs larger)"
    );
    println!("batch 1 has more raw BE throughput but a smaller fusion gain (paper: same).");
}
