//! Figure 10: fused-kernel duration versus load ratio at fixed Tensor-part
//! work — the two-stage linear curve with an inflection.
//!
//! Paper: below the opportune load ratio the duration grows with a shallow
//! slope (the co-run absorbs extra CUDA work); beyond it the slope
//! steepens to ≈1 (the CUDA part solo-runs after the co-run).

use std::sync::Arc;
use tacker::library::FusionLibrary;
use tacker::profile::KernelProfiler;
use tacker_bench::rtx2080ti;
use tacker_predictor::FusedPairModel;
use tacker_sim::ExecutablePlan;
use tacker_workloads::gemm::{gemm_workload, GemmShape};
use tacker_workloads::parboil::Benchmark;

fn main() {
    let device = rtx2080ti();
    let profiler = Arc::new(KernelProfiler::new(Arc::clone(&device)));
    let library = FusionLibrary::new(Arc::clone(&profiler));
    let gemm_def = tacker_workloads::dnn::compile::shared_gemm();
    let tc = gemm_workload(&gemm_def, GemmShape::new(4096, 4096, 512));
    let cd = Benchmark::Fft.task()[0].clone();
    let entry = library
        .prepare(&tc, &cd)
        .expect("prepare")
        .expect("GEMM+fft fuses");
    let x_tc = profiler.measure(&tc).expect("tc solo");
    let t_cd_unit = profiler.measure(&cd).expect("cd solo");

    println!("# Figure 10: fused duration vs load ratio (GEMM + fft, X_tc fixed = {x_tc})");
    println!("{:>6} {:>12} {:>10}", "ratio", "T_fuse(us)", "T/X_tc");
    // The 20 load points are independent measurements: fan them out over
    // the work pool and join in ratio order.
    let ratios: Vec<f64> = (1..=20).map(|i| i as f64 * 0.1).collect();
    let durations = tacker_bench::par_map(tacker_bench::bench_jobs(), &ratios, |_, &r| {
        let cd_grid = ((cd.grid as f64 * r * x_tc.ratio(t_cd_unit)).round() as u64).max(1);
        let launch = {
            let e = entry.lock().expect("entry");
            e.fused.launch(tc.grid, cd_grid, &tc.bindings, &cd.bindings)
        };
        let plan = ExecutablePlan::from_launch(device.spec(), &launch).expect("plan");
        device.run_plan(&plan).expect("fused").duration
    });
    let mut points = Vec::new();
    for (&r, t) in ratios.iter().zip(&durations) {
        let norm = t.ratio(x_tc);
        println!("{:>6.2} {:>12.1} {:>10.3}", r, t.as_micros_f64(), norm);
        points.push((r, norm));
    }
    // Fit a fresh two-stage model on the sweep and report the inflection.
    let model = FusedPairModel::fit("sweep", &points).expect("fit");
    let (before, after) = model.lines();
    println!();
    println!(
        "two-stage fit: slope {:.3} before inflection, {:.3} after; inflection at ratio {:.2}",
        before.slope(),
        after.slope(),
        model.opportune_load_ratio()
    );
    println!("paper: shallow slope, then slope ≈ 1 past the opportune load ratio");
    assert!(
        after.slope() > before.slope() + 0.2,
        "the post-inflection slope must be sharper"
    );
    assert!(
        (0.2..=1.9).contains(&model.opportune_load_ratio()),
        "inflection in range, got {}",
        model.opportune_load_ratio()
    );
}
