//! Table III: resource usage of the cuDNN convolution implementations
//! (black-box kernels profiled by the paper; reproduced verbatim as the
//! catalog that drives our cuDNN kernel models).

use tacker_workloads::dnn::cudnn::{TURING_IMPLS, VOLTA_IMPLS};

fn main() {
    println!("# Table III: cuDNN convolution kernel resource usage");
    println!(
        "{:<5} {:>10} {:>12} {:>10} {:>7}  kernel name (Fig. 22 convention)",
        "impl", "reg (%)", "smem (%)", "DRAM (%)", "FP32(%)"
    );
    for ci in TURING_IMPLS.iter().chain(VOLTA_IMPLS.iter()) {
        println!(
            "{:<5} {:>10.1} {:>12.1} {:>10.1} {:>7.2}  {}",
            ci.short, ci.register_pct, ci.shared_pct, ci.dram_pct, ci.fp32_pct, ci.name
        );
    }
    println!();
    println!("All implementations leave DRAM bandwidth below 71% and the FP32");
    println!("pipeline essentially unused — the idle resources Tacker exploits");
    println!("(paper: same observation).");
}
