//! Engine hot-path and fused-plan cache benchmark.
//!
//! Three measurements, emitted as `results/BENCH_engine.json`:
//!
//! * **Engine throughput (A/B)** — micro-events processed per second by
//!   the DES engine on uncached simulations of representative plans (a
//!   compute-bound kernel, a fused-shape two-role kernel with named
//!   barriers, and a memory-bound kernel), measured once per engine
//!   configuration: the reference binary heap without macro-stepping,
//!   and the calendar queue with macro-stepping (the default). The
//!   micro-event count is invariant across configurations, so the two
//!   rates divide into an honest in-process speedup.
//! * **Coalescing stats** — one deterministic pass over the same plans
//!   under the default engine, recording events, queue pops, and
//!   macro-runs; the coalesce ratio `(events - pops) / events` is the
//!   fraction of heap transactions macro-stepping eliminated.
//! * **Repeated-sweep wall-clock** — the reduced LC × BE sweep
//!   (`Resnet50 × {fft, cutcp}`, Baymax + Tacker, 30 queries) run twice on
//!   one device. The second, identical run replays every launch — fused
//!   launches included — from the sharded execution cache.
//!
//! Methodology mirrors `sweep_bench`: a warm-up sweep on a throwaway
//! device populates the process-global peak-load calibration cache, so the
//! timed runs isolate sweep execution itself.
//!
//! Usage: `cargo run --release -p tacker-bench --bin engine_bench
//! [-- --jobs N] [--queue heap|calendar|both] [--check]
//! [--out results/BENCH_engine.json]`
//!
//! `--check` exits non-zero unless (a) the repeated sweep's fused-launch
//! cache hit rate is at least 0.5, (b) the default engine's events/s is
//! at least `CHECK_THROUGHPUT_FLOOR` × the pinned baseline (an absolute
//! backstop), (c) the same-window heap-vs-calendar speedup is at least
//! `CHECK_HEAP_SPEEDUP_FLOOR` (the noise-robust engine gate), and (d)
//! the deterministic coalesce ratio is at least `CHECK_COALESCE_FLOOR`.

use std::sync::Arc;
use std::time::Instant;

use tacker::prelude::*;
use tacker_kernel::ast::{ComputeUnit, MemDir, MemSpace};
use tacker_kernel::{BlockProgram, Op, ResourceUsage, WarpProgram, WarpRole};
use tacker_sim::{
    simulate_with_options, Device, EngineOptions, ExecutablePlan, GpuSpec, QueueKind,
};
use tacker_trace::NoopSink;
use tacker_workloads::{BeApp, LcService};

/// Pre-change baseline, pinned at commit 986d3c1 (calendar queue +
/// macro-stepping as shipped before the occupancy bitmap, bucket-width
/// retune, and persistent-pool work). The numbers were re-measured by
/// rebuilding 986d3c1 in a worktree and running it back-to-back with
/// HEAD on the same host in the same window: 26.74 M events/s on the
/// throughput microbench and ~48.3 ms for the repeated sweep at
/// `jobs = 1` (best of 5). The original pin (36.78 M ev/s / 31.3 ms)
/// was taken on a faster container and is no longer reproducible here —
/// keeping it would report a phantom regression, so the pin tracks the
/// same commit re-measured under current conditions. The A/B delta is
/// what matters: HEAD's repeated sweep runs ~22 % faster than 986d3c1
/// like-for-like. (The previous pin, commit 5d71b09 with the
/// binary-heap engine, measured 12.43 M ev/s — see `results/README.md`
/// for the full trajectory and the pin history.)
const BASELINE_COMMIT: &str = "986d3c1";
const BASELINE_EVENTS_PER_SEC: f64 = 26_739_882.0;
const BASELINE_REPEATED_MS: f64 = 48.3;

const LC_NAMES: [&str; 1] = ["Resnet50"];
const BE_NAMES: [&str; 2] = ["fft", "cutcp"];
const QUERIES: usize = 30;

/// Fused-launch cache hit-rate floor enforced by `--check`.
const CHECK_FUSED_HIT_FLOOR: f64 = 0.5;
/// Absolute-throughput backstop enforced by `--check`: the default
/// engine must process at least this multiple of
/// `BASELINE_EVENTS_PER_SEC`. The aspirational target for this tuning
/// round was 2× (≈74 M ev/s); the bucket-width retune plus occupancy
/// bitmap measure 1.19× in a quiet window on this container (43.8 M
/// ev/s best-of-N), and ±15–40 % window variance from background load
/// has been observed here — absolute rates are simply not stable enough
/// on shared hosts to gate tightly, so this floor only catches
/// catastrophic regressions and the ratio floor below does the real
/// guarding.
const CHECK_THROUGHPUT_FLOOR: f64 = 0.9;
/// Repeated-sweep regression floor enforced by `--check`:
/// `improvement_vs_baseline` (1 − repeated_ms / BASELINE_REPEATED_MS)
/// must not go negative, i.e. the `jobs = 1` repeated sweep must run at
/// least as fast as the pinned baseline commit re-measured on this
/// host. HEAD currently measures ~+0.22, leaving headroom for window
/// noise without masking a real regression.
const CHECK_IMPROVEMENT_FLOOR: f64 = 0.0;
/// In-process heap-vs-calendar speedup floor enforced by `--check`.
/// Both engines are measured back-to-back in the same window, so host
/// noise mostly cancels and the ratio is stable where absolute rates
/// are not: across windows whose absolute rates swung 37–44 M ev/s,
/// this ratio held at 1.32–1.46×. The engine shipped before this tuning
/// round measured 1.19× — a regression to it trips this gate.
const CHECK_HEAP_SPEEDUP_FLOOR: f64 = 1.25;
/// Floor on the deterministic coalesce ratio `(events - pops) / events`
/// enforced by `--check`.
const CHECK_COALESCE_FLOOR: f64 = 0.5;

/// Reference configuration: the pre-change engine (heap, event-by-event).
const REFERENCE: EngineOptions = EngineOptions {
    queue: QueueKind::Heap,
    macro_step: false,
};

fn role(name: &str, warps: u32, ops: Vec<Op>, original_blocks: u64) -> WarpRole {
    WarpRole {
        name: name.into(),
        warps,
        program: WarpProgram::new(ops),
        original_blocks,
    }
}

fn plan_of(name: &str, roles: Vec<WarpRole>, issued: u64) -> ExecutablePlan {
    let block = BlockProgram::new(roles);
    let threads = block.threads();
    ExecutablePlan::assemble(
        name,
        false,
        block,
        issued,
        ResourceUsage::new(32, 0),
        threads,
        None,
    )
}

/// Representative plans for the throughput microbench: compute-bound,
/// fused-shape (two roles + a named barrier on the loop), memory-bound,
/// and an occupancy-tail phase (a lone long-running warp, the regime
/// where warp macro-stepping collapses whole runs of events inline).
fn engine_plans() -> Vec<ExecutablePlan> {
    let compute = plan_of(
        "bench_cd",
        vec![role(
            "cd",
            8,
            vec![Op::Compute {
                unit: ComputeUnit::Cuda,
                ops: 4_096,
            }],
            68 * 64,
        )],
        68 * 4,
    );
    let fused = plan_of(
        "bench_fused",
        vec![
            role(
                "tc",
                4,
                vec![
                    Op::Compute {
                        unit: ComputeUnit::Tensor,
                        ops: 32_768,
                    },
                    Op::Barrier { id: 1 },
                ],
                68 * 32,
            ),
            role(
                "cd",
                4,
                vec![Op::Compute {
                    unit: ComputeUnit::Cuda,
                    ops: 4_096,
                }],
                68 * 32,
            ),
        ],
        68 * 4,
    );
    let memory = plan_of(
        "bench_mem",
        vec![role(
            "mem",
            8,
            vec![Op::Memory {
                dir: MemDir::Read,
                space: MemSpace::Global,
                bytes: 4 * 1024,
                locality: 0.5,
            }],
            68 * 32,
        )],
        68 * 4,
    );
    // Serial tail: one warp, one block, a mixed program iterated many
    // times — models the low-occupancy phases (kernel tails, serial LC
    // stages) where the event queue holds a single pending event.
    let tail = plan_of(
        "bench_tail",
        vec![role(
            "tail",
            1,
            vec![
                Op::Compute {
                    unit: ComputeUnit::Cuda,
                    ops: 512,
                },
                Op::Memory {
                    dir: MemDir::Read,
                    space: MemSpace::Shared,
                    bytes: 1024,
                    locality: 0.0,
                },
                Op::Memory {
                    dir: MemDir::Read,
                    space: MemSpace::Global,
                    bytes: 2 * 1024,
                    locality: 0.9,
                },
            ],
            512,
        )],
        1,
    );
    vec![compute, fused, memory, tail]
}

/// Simulates the microbench plans round-robin under `options` for
/// `rounds` independent windows of at least `min_secs` wall clock each,
/// and returns the best round's (events, wall_seconds). The workload is
/// deterministic, so spread between rounds is pure host noise and the
/// fastest round (the minimum-time / maximum-rate estimator) is the
/// standard noise-robust choice. `events` counts micro-events, which are
/// invariant across options, so rates from different options are
/// directly comparable.
fn measure_engine_throughput(min_secs: f64, rounds: usize, options: EngineOptions) -> (u64, f64) {
    let spec = GpuSpec::rtx2080ti();
    let plans = engine_plans();
    // One untimed pass warms page tables and branch predictors.
    for plan in &plans {
        let _ = simulate_with_options(&spec, plan, spec.sm_count, &NoopSink, options)
            .expect("bench plan simulates");
    }
    let mut best: Option<(u64, f64)> = None;
    for _ in 0..rounds.max(1) {
        let mut events = 0u64;
        let start = Instant::now();
        loop {
            for plan in &plans {
                events += simulate_with_options(&spec, plan, spec.sm_count, &NoopSink, options)
                    .expect("bench plan simulates")
                    .events;
            }
            if start.elapsed().as_secs_f64() >= min_secs {
                break;
            }
        }
        let secs = start.elapsed().as_secs_f64();
        let better = match best {
            None => true,
            Some((ev, s)) => events as f64 / secs > ev as f64 / s,
        };
        if better {
            best = Some((events, secs));
        }
    }
    best.expect("at least one round ran")
}

/// Deterministic coalescing stats: one pass over the microbench plans
/// under the default engine (calendar + macro-stepping).
struct CoalesceStats {
    events: u64,
    pops: u64,
    macro_runs: u64,
    ratio: f64,
}

fn measure_coalescing() -> CoalesceStats {
    let spec = GpuSpec::rtx2080ti();
    let (mut events, mut pops, mut macro_runs) = (0u64, 0u64, 0u64);
    for plan in &engine_plans() {
        let run = simulate_with_options(
            &spec,
            plan,
            spec.sm_count,
            &NoopSink,
            EngineOptions::default(),
        )
        .expect("bench plan simulates");
        events += run.events;
        pops += run.pops;
        macro_runs += run.macro_runs;
    }
    let ratio = if events == 0 {
        0.0
    } else {
        (events - pops) as f64 / events as f64
    };
    CoalesceStats {
        events,
        pops,
        macro_runs,
        ratio,
    }
}

fn grid(device: &Arc<Device>) -> (Vec<LcService>, Vec<BeApp>) {
    let lcs = LC_NAMES
        .iter()
        .map(|n| tacker_workloads::lc_service(n, device).expect("LC service"))
        .collect();
    let bes = BE_NAMES
        .iter()
        .map(|n| tacker_workloads::be_app(n).expect("BE app"))
        .collect();
    (lcs, bes)
}

fn sweep_once(device: &Arc<Device>, config: &ExperimentConfig, jobs: usize) -> f64 {
    let (lcs, bes) = grid(device);
    let start = Instant::now();
    run_pair_sweep(
        device,
        &lcs,
        &bes,
        &[Policy::Baymax, Policy::Tacker],
        config,
        jobs,
    )
    .expect("sweep");
    start.elapsed().as_secs_f64() * 1e3
}

struct SweepTiming {
    cold_ms: f64,
    repeated_ms: f64,
    hits: u64,
    misses: u64,
    hit_rate: f64,
    fused_hits: u64,
    fused_misses: u64,
    fused_hit_rate: f64,
}

/// Best-of-5 [`measure_repeated_sweep_once`], matching the throughput
/// window's minimum-time estimator: the sweep is deterministic, so host
/// noise only ever inflates a measurement and the fastest pass (by the
/// repeated, cache-replay leg) is the noise-robust estimate. Best-of-2
/// left the published improvement-vs-baseline number dominated by host
/// scheduling jitter rather than engine changes.
fn measure_repeated_sweep(config: &ExperimentConfig, jobs: usize) -> SweepTiming {
    let mut best = measure_repeated_sweep_once(config, jobs);
    for _ in 1..5 {
        let t = measure_repeated_sweep_once(config, jobs);
        if t.repeated_ms < best.repeated_ms {
            best = t;
        }
    }
    best
}

/// Cold + repeated sweep on one fresh device (calibration already warm).
fn measure_repeated_sweep_once(config: &ExperimentConfig, jobs: usize) -> SweepTiming {
    let device = Arc::new(Device::new(GpuSpec::rtx2080ti()));
    let cold_ms = sweep_once(&device, config, jobs);
    let (h0, m0) = device.cache_stats();
    let (fh0, fm0) = device.fused_cache_stats();
    let repeated_ms = sweep_once(&device, config, jobs);
    let (h1, m1) = device.cache_stats();
    let (fh1, fm1) = device.fused_cache_stats();
    let (hits, misses) = (h1 - h0, m1 - m0);
    let (fused_hits, fused_misses) = (fh1 - fh0, fm1 - fm0);
    let rate = |h: u64, m: u64| {
        if h + m == 0 {
            0.0
        } else {
            h as f64 / (h + m) as f64
        }
    };
    SweepTiming {
        cold_ms,
        repeated_ms,
        hits,
        misses,
        hit_rate: rate(hits, misses),
        fused_hits,
        fused_misses,
        fused_hit_rate: rate(fused_hits, fused_misses),
    }
}

fn main() {
    let mut check = false;
    let mut jobs: usize = 1;
    let mut queue = "both".to_string();
    let mut out = "results/BENCH_engine.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => check = true,
            "--jobs" => {
                jobs = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--jobs needs a positive integer");
            }
            "--queue" => {
                queue = args.next().expect("--queue needs heap|calendar|both");
                assert!(
                    matches!(queue.as_str(), "heap" | "calendar" | "both"),
                    "--queue needs heap|calendar|both, got {queue}"
                );
            }
            "--out" => out = args.next().expect("--out needs a path"),
            other => panic!("unknown argument: {other}"),
        }
    }

    if check {
        // Engine floors need no sweep warm-up; run them first and fast.
        eprintln!("check: timing engine A/B (best of 5 × 0.3 s) ...");
        let (ref_events, ref_secs) = measure_engine_throughput(0.3, 5, REFERENCE);
        let (new_events, new_secs) = measure_engine_throughput(0.3, 5, EngineOptions::default());
        let ref_eps = ref_events as f64 / ref_secs;
        let new_eps = new_events as f64 / new_secs;
        let gain = new_eps / BASELINE_EVENTS_PER_SEC;
        let heap_speedup = new_eps / ref_eps.max(1e-9);
        let coalesce = measure_coalescing();
        eprintln!(
            "check: heap {ref_eps:.0} ev/s, calendar+macro {new_eps:.0} ev/s \
             ({gain:.2}x pinned baseline {BASELINE_EVENTS_PER_SEC:.0}, floor \
             {CHECK_THROUGHPUT_FLOOR}x; in-process speedup {heap_speedup:.2}x, \
             floor {CHECK_HEAP_SPEEDUP_FLOOR}x); \
             coalesce ratio {:.3} (floor {CHECK_COALESCE_FLOOR})",
            coalesce.ratio,
        );
        let mut failed = false;
        if gain < CHECK_THROUGHPUT_FLOOR {
            eprintln!("FAIL: engine throughput below backstop floor");
            failed = true;
        }
        if heap_speedup < CHECK_HEAP_SPEEDUP_FLOOR {
            eprintln!("FAIL: in-process heap-vs-calendar speedup below floor");
            failed = true;
        }
        if coalesce.ratio < CHECK_COALESCE_FLOOR {
            eprintln!("FAIL: coalesce ratio below floor");
            failed = true;
        }

        let config = ExperimentConfig::default().with_queries(QUERIES);
        {
            let device = Arc::new(Device::new(GpuSpec::rtx2080ti()));
            let _ = sweep_once(&device, &config, jobs);
        }
        let serial = measure_repeated_sweep(&config, 1);
        let rate = serial.fused_hit_rate;
        eprintln!(
            "check: fused cache {}/{} hits on repeated sweep (rate {rate:.3}, floor {CHECK_FUSED_HIT_FLOOR})",
            serial.fused_hits,
            serial.fused_hits + serial.fused_misses,
        );
        if rate < CHECK_FUSED_HIT_FLOOR {
            eprintln!("FAIL: fused-launch cache hit rate below floor");
            failed = true;
        }
        let improvement = 1.0 - serial.repeated_ms / BASELINE_REPEATED_MS;
        eprintln!(
            "check: repeated sweep {:.1} ms vs pinned baseline {BASELINE_REPEATED_MS:.1} ms \
             (improvement {improvement:+.3}, floor {CHECK_IMPROVEMENT_FLOOR:+.1})",
            serial.repeated_ms,
        );
        if improvement < CHECK_IMPROVEMENT_FLOOR {
            eprintln!("FAIL: repeated sweep regressed past the pinned baseline");
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
        eprintln!("OK");
        return;
    }

    let config = ExperimentConfig::default().with_queries(QUERIES);
    // Warm-up: populate the process-global peak-load calibration cache on
    // a throwaway device so the timed runs pay zero calibration.
    eprintln!("warm-up (calibration) ...");
    {
        let device = Arc::new(Device::new(GpuSpec::rtx2080ti()));
        let _ = sweep_once(&device, &config, jobs);
    }

    eprintln!("timing repeated sweep (jobs={jobs}) ...");
    let serial = measure_repeated_sweep(&config, 1);
    let parallel = (jobs > 1).then(|| measure_repeated_sweep(&config, jobs));

    eprintln!("timing engine throughput ({queue}, best of 3 × 1 s) ...");
    let heap = (queue != "calendar").then(|| measure_engine_throughput(1.0, 3, REFERENCE));
    let calendar =
        (queue != "heap").then(|| measure_engine_throughput(1.0, 3, EngineOptions::default()));
    let coalesce = measure_coalescing();

    let eps = |m: &Option<(u64, f64)>| m.map(|(ev, s)| ev as f64 / s);
    let heap_eps = eps(&heap);
    let calendar_eps = eps(&calendar);
    // The headline events/s is the default engine's (calendar + macro).
    let events_per_sec = calendar_eps.or(heap_eps).unwrap_or(0.0);
    let speedup_vs_heap = match (heap_eps, calendar_eps) {
        (Some(h), Some(c)) if h > 0.0 => Some(c / h),
        _ => None,
    };

    let improvement = 1.0 - serial.repeated_ms / BASELINE_REPEATED_MS;
    let throughput_gain = events_per_sec / BASELINE_EVENTS_PER_SEC;
    let sweep_json = |t: &SweepTiming, jobs: usize| {
        format!(
            concat!(
                "{{\"jobs\": {jobs}, \"cold_ms\": {cold:.1}, \"repeated_ms\": {rep:.1}, ",
                "\"device_cache\": {{\"hits\": {h}, \"misses\": {m}, \"hit_rate\": {hr:.4}}}, ",
                "\"fused_cache\": {{\"hits\": {fh}, \"misses\": {fm}, \"hit_rate\": {fhr:.4}}}}}"
            ),
            jobs = jobs,
            cold = t.cold_ms,
            rep = t.repeated_ms,
            h = t.hits,
            m = t.misses,
            hr = t.hit_rate,
            fh = t.fused_hits,
            fm = t.fused_misses,
            fhr = t.fused_hit_rate,
        )
    };
    let queue_json = |label: &str, m: &Option<(u64, f64)>| {
        m.map(|(ev, s)| {
            format!(
                "    \"{label}\": {{\"events\": {ev}, \"wall_s\": {s:.3}, \"events_per_sec\": {:.0}}},\n",
                ev as f64 / s
            )
        })
        .unwrap_or_default()
    };
    let speedup_line = speedup_vs_heap
        .map(|s| format!("    \"speedup_vs_heap\": {s:.3},\n"))
        .unwrap_or_default();
    let parallel_line = parallel
        .as_ref()
        .map(|t| format!("  \"repeated_sweep_parallel\": {},\n", sweep_json(t, jobs)))
        .unwrap_or_default();
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"engine\",\n",
            "  \"engine\": {{\n",
            "{heap_json}",
            "{calendar_json}",
            "{speedup_line}",
            "    \"events_per_sec\": {eps:.0},\n",
            "    \"coalesce\": {{\"events\": {cev}, \"pops\": {cpops}, ",
            "\"macro_runs\": {cruns}, \"ratio\": {cratio:.4}}}\n",
            "  }},\n",
            "  \"sweep_grid\": {{\"lc\": {lc:?}, \"be\": {be:?}, ",
            "\"policies\": [\"Baymax\", \"Tacker\"], \"queries\": {queries}}},\n",
            "  \"repeated_sweep\": {serial},\n",
            "{parallel_line}",
            "  \"baseline\": {{\"commit\": \"{bcommit}\", ",
            "\"events_per_sec\": {beps:.0}, \"repeated_ms\": {bms:.1}}},\n",
            "  \"throughput_vs_baseline\": {tgain:.3},\n",
            "  \"improvement_vs_baseline\": {imp:.3}\n",
            "}}\n"
        ),
        heap_json = queue_json("heap", &heap),
        calendar_json = queue_json("calendar_macro", &calendar),
        speedup_line = speedup_line,
        eps = events_per_sec,
        cev = coalesce.events,
        cpops = coalesce.pops,
        cruns = coalesce.macro_runs,
        cratio = coalesce.ratio,
        lc = LC_NAMES,
        be = BE_NAMES,
        queries = QUERIES,
        serial = sweep_json(&serial, 1),
        parallel_line = parallel_line,
        bcommit = BASELINE_COMMIT,
        beps = BASELINE_EVENTS_PER_SEC,
        bms = BASELINE_REPEATED_MS,
        tgain = throughput_gain,
        imp = improvement,
    );
    std::fs::write(&out, &json).expect("write BENCH_engine.json");
    print!("{json}");
    eprintln!(
        "engine: {events_per_sec:.0} events/s ({throughput_gain:.2}x baseline \
         {BASELINE_EVENTS_PER_SEC:.0}); coalesce ratio {:.3}; repeated sweep {:.1} ms \
         (baseline {BASELINE_REPEATED_MS} ms, {:.0}% faster); wrote {out}",
        coalesce.ratio,
        serial.repeated_ms,
        100.0 * improvement,
    );
}
