//! Engine hot-path and fused-plan cache benchmark.
//!
//! Two measurements, emitted as `results/BENCH_engine.json`:
//!
//! * **Engine throughput** — discrete events processed per second by the
//!   DES engine on uncached simulations of representative plans (a
//!   compute-bound kernel, a fused-shape two-role kernel with named
//!   barriers, and a memory-bound kernel). This is the allocation-sensitive
//!   number: per-step op clones, per-release waiter-list allocations and
//!   per-event name clones all land here.
//! * **Repeated-sweep wall-clock** — the reduced LC × BE sweep
//!   (`Resnet50 × {fft, cutcp}`, Baymax + Tacker, 30 queries) run twice on
//!   one device. The second, identical run is where content-derived kernel
//!   ids pay off: every launch — fused launches included — replays from the
//!   sharded execution cache. Before kernel ids were content-derived,
//!   fused `KernelDef`s were rebuilt per run with fresh ids, so fused
//!   launches *never* hit the cache across runs (see `baseline` in the
//!   JSON).
//!
//! Methodology mirrors `sweep_bench`: a warm-up sweep on a throwaway
//! device populates the process-global peak-load calibration cache, so the
//! timed runs isolate sweep execution itself.
//!
//! Usage: `cargo run --release -p tacker-bench --bin engine_bench
//! [-- --jobs N] [--check] [--out results/BENCH_engine.json]`
//!
//! `--check` exits non-zero unless the repeated sweep's fused-launch cache
//! hit rate is at least 0.5 — the CI smoke floor for the cross-run reuse
//! this benchmark exists to demonstrate.

use std::sync::Arc;
use std::time::Instant;

use tacker::prelude::*;
use tacker_kernel::ast::{ComputeUnit, MemDir, MemSpace};
use tacker_kernel::{BlockProgram, Op, ResourceUsage, WarpProgram, WarpRole};
use tacker_sim::{simulate, Device, ExecutablePlan, GpuSpec};
use tacker_workloads::{BeApp, LcService};

/// Pre-change baseline for the repeated-sweep scenario, measured at commit
/// 618aa3d (counter-derived kernel ids): the second identical sweep still
/// re-simulated every fused launch (85 cache misses) and took ~87.3 ms at
/// `jobs = 1` on the reference container. Kept here so the committed JSON
/// records the improvement against a pinned number.
const BASELINE_COMMIT: &str = "618aa3d";
const BASELINE_REPEATED_MS: f64 = 87.3;
const BASELINE_FUSED_HIT_RATE: f64 = 0.0;

const LC_NAMES: [&str; 1] = ["Resnet50"];
const BE_NAMES: [&str; 2] = ["fft", "cutcp"];
const QUERIES: usize = 30;

/// Fused-launch cache hit-rate floor enforced by `--check`.
const CHECK_FUSED_HIT_FLOOR: f64 = 0.5;

fn role(name: &str, warps: u32, ops: Vec<Op>, original_blocks: u64) -> WarpRole {
    WarpRole {
        name: name.into(),
        warps,
        program: WarpProgram::new(ops),
        original_blocks,
    }
}

fn plan_of(name: &str, roles: Vec<WarpRole>, issued: u64) -> ExecutablePlan {
    let block = BlockProgram::new(roles);
    let threads = block.threads();
    ExecutablePlan {
        name: name.into(),
        fused: false,
        block,
        issued_blocks: issued,
        resources: ResourceUsage::new(32, 0),
        threads_per_block: threads,
        fingerprint: None,
    }
}

/// Representative plans for the throughput microbench: compute-bound,
/// fused-shape (two roles + a named barrier on the loop), memory-bound.
fn engine_plans() -> Vec<ExecutablePlan> {
    let compute = plan_of(
        "bench_cd",
        vec![role(
            "cd",
            8,
            vec![Op::Compute {
                unit: ComputeUnit::Cuda,
                ops: 4_096,
            }],
            68 * 64,
        )],
        68 * 4,
    );
    let fused = plan_of(
        "bench_fused",
        vec![
            role(
                "tc",
                4,
                vec![
                    Op::Compute {
                        unit: ComputeUnit::Tensor,
                        ops: 32_768,
                    },
                    Op::Barrier { id: 1 },
                ],
                68 * 32,
            ),
            role(
                "cd",
                4,
                vec![Op::Compute {
                    unit: ComputeUnit::Cuda,
                    ops: 4_096,
                }],
                68 * 32,
            ),
        ],
        68 * 4,
    );
    let memory = plan_of(
        "bench_mem",
        vec![role(
            "mem",
            8,
            vec![Op::Memory {
                dir: MemDir::Read,
                space: MemSpace::Global,
                bytes: 4 * 1024,
                locality: 0.5,
            }],
            68 * 32,
        )],
        68 * 4,
    );
    vec![compute, fused, memory]
}

/// Simulates the microbench plans round-robin until `min_secs` of wall
/// clock have elapsed; returns (events, wall_seconds).
fn measure_engine_throughput(min_secs: f64) -> (u64, f64) {
    let spec = GpuSpec::rtx2080ti();
    let plans = engine_plans();
    // One untimed pass warms page tables and branch predictors.
    for plan in &plans {
        let _ = simulate(&spec, plan).expect("bench plan simulates");
    }
    let mut events = 0u64;
    let start = Instant::now();
    loop {
        for plan in &plans {
            events += simulate(&spec, plan).expect("bench plan simulates").events;
        }
        if start.elapsed().as_secs_f64() >= min_secs {
            break;
        }
    }
    (events, start.elapsed().as_secs_f64())
}

fn grid(device: &Arc<Device>) -> (Vec<LcService>, Vec<BeApp>) {
    let lcs = LC_NAMES
        .iter()
        .map(|n| tacker_workloads::lc_service(n, device).expect("LC service"))
        .collect();
    let bes = BE_NAMES
        .iter()
        .map(|n| tacker_workloads::be_app(n).expect("BE app"))
        .collect();
    (lcs, bes)
}

fn sweep_once(device: &Arc<Device>, config: &ExperimentConfig, jobs: usize) -> f64 {
    let (lcs, bes) = grid(device);
    let start = Instant::now();
    run_pair_sweep(
        device,
        &lcs,
        &bes,
        &[Policy::Baymax, Policy::Tacker],
        config,
        jobs,
    )
    .expect("sweep");
    start.elapsed().as_secs_f64() * 1e3
}

struct SweepTiming {
    cold_ms: f64,
    repeated_ms: f64,
    hits: u64,
    misses: u64,
    hit_rate: f64,
    fused_hits: u64,
    fused_misses: u64,
    fused_hit_rate: f64,
}

/// Cold + repeated sweep on one fresh device (calibration already warm).
fn measure_repeated_sweep(config: &ExperimentConfig, jobs: usize) -> SweepTiming {
    let device = Arc::new(Device::new(GpuSpec::rtx2080ti()));
    let cold_ms = sweep_once(&device, config, jobs);
    let (h0, m0) = device.cache_stats();
    let (fh0, fm0) = device.fused_cache_stats();
    let repeated_ms = sweep_once(&device, config, jobs);
    let (h1, m1) = device.cache_stats();
    let (fh1, fm1) = device.fused_cache_stats();
    let (hits, misses) = (h1 - h0, m1 - m0);
    let (fused_hits, fused_misses) = (fh1 - fh0, fm1 - fm0);
    let rate = |h: u64, m: u64| {
        if h + m == 0 {
            0.0
        } else {
            h as f64 / (h + m) as f64
        }
    };
    SweepTiming {
        cold_ms,
        repeated_ms,
        hits,
        misses,
        hit_rate: rate(hits, misses),
        fused_hits,
        fused_misses,
        fused_hit_rate: rate(fused_hits, fused_misses),
    }
}

fn main() {
    let mut check = false;
    let mut jobs: usize = 1;
    let mut out = "results/BENCH_engine.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => check = true,
            "--jobs" => {
                jobs = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--jobs needs a positive integer");
            }
            "--out" => out = args.next().expect("--out needs a path"),
            other => panic!("unknown argument: {other}"),
        }
    }

    let config = ExperimentConfig::default().with_queries(QUERIES);
    // Warm-up: populate the process-global peak-load calibration cache on
    // a throwaway device so the timed runs pay zero calibration.
    eprintln!("warm-up (calibration) ...");
    {
        let device = Arc::new(Device::new(GpuSpec::rtx2080ti()));
        let _ = sweep_once(&device, &config, jobs);
    }

    eprintln!("timing repeated sweep (jobs={jobs}) ...");
    let serial = measure_repeated_sweep(&config, 1);
    let parallel = (jobs > 1).then(|| measure_repeated_sweep(&config, jobs));

    if check {
        let rate = serial.fused_hit_rate;
        eprintln!(
            "check: fused cache {}/{} hits on repeated sweep (rate {rate:.3}, floor {CHECK_FUSED_HIT_FLOOR})",
            serial.fused_hits,
            serial.fused_hits + serial.fused_misses,
        );
        if rate < CHECK_FUSED_HIT_FLOOR {
            eprintln!("FAIL: fused-launch cache hit rate below floor");
            std::process::exit(1);
        }
        eprintln!("OK");
        return;
    }

    eprintln!("timing engine throughput ...");
    let (events, secs) = measure_engine_throughput(1.0);
    let events_per_sec = events as f64 / secs;

    let improvement = 1.0 - serial.repeated_ms / BASELINE_REPEATED_MS;
    let sweep_json = |t: &SweepTiming, jobs: usize| {
        format!(
            concat!(
                "{{\"jobs\": {jobs}, \"cold_ms\": {cold:.1}, \"repeated_ms\": {rep:.1}, ",
                "\"device_cache\": {{\"hits\": {h}, \"misses\": {m}, \"hit_rate\": {hr:.4}}}, ",
                "\"fused_cache\": {{\"hits\": {fh}, \"misses\": {fm}, \"hit_rate\": {fhr:.4}}}}}"
            ),
            jobs = jobs,
            cold = t.cold_ms,
            rep = t.repeated_ms,
            h = t.hits,
            m = t.misses,
            hr = t.hit_rate,
            fh = t.fused_hits,
            fm = t.fused_misses,
            fhr = t.fused_hit_rate,
        )
    };
    let parallel_line = parallel
        .as_ref()
        .map(|t| format!("  \"repeated_sweep_parallel\": {},\n", sweep_json(t, jobs)))
        .unwrap_or_default();
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"engine\",\n",
            "  \"engine\": {{\"events\": {events}, \"wall_s\": {secs:.3}, ",
            "\"events_per_sec\": {eps:.0}}},\n",
            "  \"sweep_grid\": {{\"lc\": {lc:?}, \"be\": {be:?}, ",
            "\"policies\": [\"Baymax\", \"Tacker\"], \"queries\": {queries}}},\n",
            "  \"repeated_sweep\": {serial},\n",
            "{parallel_line}",
            "  \"baseline\": {{\"commit\": \"{bcommit}\", ",
            "\"repeated_ms\": {bms:.1}, \"fused_hit_rate\": {bfhr:.1}}},\n",
            "  \"improvement_vs_baseline\": {imp:.3}\n",
            "}}\n"
        ),
        events = events,
        secs = secs,
        eps = events_per_sec,
        lc = LC_NAMES,
        be = BE_NAMES,
        queries = QUERIES,
        serial = sweep_json(&serial, 1),
        parallel_line = parallel_line,
        bcommit = BASELINE_COMMIT,
        bms = BASELINE_REPEATED_MS,
        bfhr = BASELINE_FUSED_HIT_RATE,
        imp = improvement,
    );
    std::fs::write(&out, &json).expect("write BENCH_engine.json");
    print!("{json}");
    eprintln!(
        "engine: {events_per_sec:.0} events/s; repeated sweep {:.1} ms \
         (baseline {BASELINE_REPEATED_MS} ms, {:.0}% faster); wrote {out}",
        serial.repeated_ms,
        100.0 * improvement,
    );
}
