//! Figure 3: *direct* (1:1, input-specific) fusion of the Tensor-Core GEMM
//! with each Parboil kernel.
//!
//! Paper: most directly fused kernels take ≈2× (no parallel-utilization
//! win), because naive fusion halves occupancy and contends for
//! resources — the motivation for flexible PTB fusion.

use tacker_bench::rtx2080ti;
use tacker_fuser::fuse_direct;
use tacker_sim::ExecutablePlan;
use tacker_workloads::gemm::{gemm_workload, GemmShape};
use tacker_workloads::parboil::Benchmark;

fn main() {
    let device = rtx2080ti();
    let spec = device.spec().clone();
    let gemm_def = tacker_workloads::dnn::compile::shared_gemm();
    let gemm_wk = gemm_workload(&gemm_def, GemmShape::new(4096, 4096, 512));
    let t_gemm = device.run_launch(&gemm_wk.launch()).expect("gemm").duration;

    println!("# Figure 3: direct kernel fusion of GEMM with Parboil kernels");
    println!("(durations normalized so each kernel's solo run = 1; sequential = 2)");
    println!(
        "{:<9} {:>9} {:>9} {:>10}",
        "kernel", "solo(us)", "fused(us)", "norm"
    );
    let mut norms = Vec::new();
    for b in [
        Benchmark::Sgemm,
        Benchmark::Cutcp,
        Benchmark::Mriq,
        Benchmark::Fft,
        Benchmark::Lbm,
        Benchmark::Mrif,
        Benchmark::Stencil,
        Benchmark::Regtile,
        Benchmark::Cp,
    ] {
        let mut cd = b.task()[0].clone();
        // Tune the CD workload to the GEMM's duration (paper normalizes
        // both components to equal solo runs).
        let t_unit = device.run_launch(&cd.launch()).expect("cd").duration;
        cd.grid = ((cd.grid as f64 * t_gemm.ratio(t_unit)).round() as u64).max(1);
        let t_cd = device.run_launch(&cd.launch()).expect("cd scaled").duration;

        match fuse_direct(&gemm_def, &cd.def, gemm_wk.grid, cd.grid, &spec.sm) {
            Ok(fused) => {
                let launch = fused.launch(&gemm_wk.bindings, &cd.bindings);
                let plan = ExecutablePlan::from_launch(&spec, &launch).expect("plan");
                let t_fused = device.run_plan(&plan).expect("fused run").duration;
                // Normalize to the mean solo duration, as in the figure.
                let norm =
                    2.0 * t_fused.as_nanos() as f64 / (t_gemm.as_nanos() + t_cd.as_nanos()) as f64;
                println!(
                    "{:<9} {:>9.0} {:>9.0} {:>10.2}",
                    b.name(),
                    t_cd.as_micros_f64(),
                    t_fused.as_micros_f64(),
                    norm
                );
                norms.push(norm);
            }
            Err(e) => {
                // Resource overflow = cannot even fuse directly: counts as
                // sequential (2.0).
                println!(
                    "{:<9} {:>9.0} {:>9} {:>10}",
                    b.name(),
                    t_cd.as_micros_f64(),
                    "-",
                    "2.00*"
                );
                println!("          (*{e})");
                norms.push(2.0);
            }
        }
    }
    let avg = norms.iter().sum::<f64>() / norms.len() as f64;
    println!();
    println!(
        "average normalized duration: {avg:.2}  (paper: ~1.8-2.0 — direct fusion is inefficient)"
    );
    assert!(
        avg > 1.4,
        "direct fusion should show poor efficiency, got {avg:.2}"
    );
}
