//! Serving-runtime fault drill: the adaptive QoS guard must earn its keep.
//!
//! The drill co-locates Resnet50 with fft at high load and injects a
//! duration-misprediction fault (predictions low by 1.5x on 20% of the LC
//! kernels — the §V-B failure mode Tacker's gate is most sensitive to).
//! Mispredictions make the Equation 8/9 headroom check optimistic, so the
//! unguarded runtime keeps fusing into headroom it does not have and
//! violates QoS. The guard watches the predicted-vs-actual error per
//! kernel, inflates its safety margin, and steps down the degradation
//! ladder (fuse → reorder-only → LC-only) until pressure subsides.
//!
//! ```sh
//! cargo run --release -p tacker-bench --bin serve_bench [out.json] [--check]
//! ```
//!
//! `--check` exits non-zero unless (a) the guarded violation rate is
//! strictly below the unguarded rate under the fault plan, (b) the guard
//! actually stepped and faults were actually injected (the drill is
//! meaningless otherwise), (c) a zero-fault serve reproduces the batch
//! run bit for bit, (d) every QoS violation carries an attribution
//! record, (e) the sketch-mode p99 stays within 1% of the exact p99 on
//! the drill workload, (f) sketch-mode peak latency-sample memory stays
//! flat (±10%) while the replayed query count grows 100×, (g) the
//! telemetry-on path (windows + sketch + exporters) stays under 3% CPU
//! overhead versus the plain NoopSink run, (h) steady-state serve
//! throughput clears 3× the pinned pre-fast-path baseline, and (i) the
//! process RSS high-water mark stays flat (±10%) when the steady-state
//! query count grows 100×.

use std::sync::Arc;

use tacker::prelude::*;
use tacker_bench::rtx2080ti;
use tacker_kernel::SimTime;
use tacker_trace::{prometheus_text, timeseries_jsonl, RingSink, TraceEvent, TraceSink};
use tacker_workloads::{BeApp, LcService};

const QUERIES: usize = 60;
const SEEDS: [u64; 3] = [11, 29, 47];
const MISPREDICT_MULTIPLIER: f64 = 1.5;
const MISPREDICT_FRACTION: f64 = 0.2;
const LOAD: f64 = 0.95;
/// The telemetry overhead gate (per cent of the plain run's CPU time).
const TELEMETRY_OVERHEAD_GATE_PCT: f64 = 3.0;
/// The sketch-vs-exact p99 gate (relative error).
const SKETCH_P99_GATE: f64 = 0.01;
/// Pinned pre-fast-path steady-state throughput (queries/s): best of
/// three invocations of this exact scenario (tiny two-kernel service,
/// 700µs spacing, sketch-mode latency, no BE) at commit 905ea47 on the
/// reference host. The best observed run is pinned — a conservative
/// floor for the speedup gate.
const BASELINE_STEADY_QPS: f64 = 603_191.0;
/// Steady-state throughput must clear this multiple of the baseline.
const STEADY_SPEEDUP_FLOOR: f64 = 3.0;

struct Drill {
    violations: usize,
    queries: usize,
    guard_steps: u64,
    faults_injected: u64,
    guard_level: String,
    guard_step_events: usize,
    fault_events: usize,
    violation_events: usize,
    /// One attribution record per violation, serialized.
    attribution: Vec<String>,
}

fn drill(
    device: &Arc<tacker_sim::Device>,
    lc: &LcService,
    be: &[BeApp],
    seed: u64,
    guarded: bool,
) -> Drill {
    let config = tacker_bench::eval_config()
        .with_queries(QUERIES)
        .with_seed(seed)
        .with_load(LOAD);
    let plan = FaultPlan::mispredicting(MISPREDICT_MULTIPLIER, MISPREDICT_FRACTION).with_seed(seed);
    let ring = Arc::new(RingSink::unbounded());
    let mut run = ColocationRun::new(device, &config, std::slice::from_ref(lc), be)
        .expect("drill")
        .policy(Policy::Tacker)
        .faults(plan)
        .traced(ring.clone() as Arc<dyn TraceSink>);
    if guarded {
        run = run.guarded(GuardConfig::default());
    }
    let report = run.run().expect("drill");
    let events = ring.events();
    let count = |pred: fn(&TraceEvent) -> bool| events.iter().filter(|e| pred(e)).count();
    Drill {
        violations: report.qos_violations(),
        queries: report.query_count(),
        guard_steps: report.guard_steps,
        faults_injected: report.faults_injected,
        guard_level: report
            .guard_level
            .map_or_else(|| "off".to_string(), |l| l.name().to_string()),
        guard_step_events: count(|e| matches!(e, TraceEvent::GuardStep { .. })),
        fault_events: count(|e| matches!(e, TraceEvent::FaultInjected { .. })),
        violation_events: count(|e| matches!(e, TraceEvent::QosViolation { .. })),
        attribution: report
            .violation_log
            .iter()
            .map(tacker::ViolationRecord::to_json)
            .collect(),
    }
}

/// Relative error of the sketch-mode p99 versus the exact p99 on the
/// faulted drill workload (guard off, first drill seed).
fn sketch_p99_rel_error(device: &Arc<tacker_sim::Device>, lc: &LcService, be: &[BeApp]) -> f64 {
    let config = tacker_bench::eval_config()
        .with_queries(QUERIES)
        .with_seed(SEEDS[0])
        .with_load(LOAD);
    let plan =
        FaultPlan::mispredicting(MISPREDICT_MULTIPLIER, MISPREDICT_FRACTION).with_seed(SEEDS[0]);
    let run = |exact_limit: usize| {
        ColocationRun::new(device, &config, std::slice::from_ref(lc), be)
            .expect("accuracy run")
            .policy(Policy::Tacker)
            .faults(plan.clone())
            .latency_exact_limit(exact_limit)
            .run()
            .expect("accuracy run")
    };
    let exact = run(usize::MAX).p99_latency().expect("p99").as_nanos() as f64;
    let sketched = run(0).p99_latency().expect("p99").as_nanos() as f64;
    (sketched - exact).abs() / exact
}

/// Peak latency-sample memory of a sketch-mode serve over `n` uniformly
/// replayed queries (one tiny two-kernel service, memoized simulations).
fn sketch_peak_bytes(device: &Arc<tacker_sim::Device>, lc: &LcService, n: usize) -> usize {
    let arrivals: Vec<SimTime> = (0..n)
        .map(|i| SimTime::from_micros(1 + 700 * i as u64))
        .collect();
    let config = tacker_bench::eval_config().with_queries(n).with_seed(5);
    let report = ColocationRun::new(device, &config, std::slice::from_ref(lc), &[])
        .expect("memory run")
        .policy(Policy::Tacker)
        .at(SimTime::from_micros(700))
        .arrivals(ArrivalSpec::Replay(vec![arrivals]))
        .latency_exact_limit(0)
        .run()
        .expect("memory run");
    assert_eq!(report.query_count(), n, "replayed queries must complete");
    report.latency.peak_bytes()
}

/// A tiny service for the bounded-memory check: two kernels per query,
/// everything memoized after the first query.
fn tiny_lc() -> LcService {
    let gemm = tacker_workloads::dnn::compile::shared_gemm();
    LcService::new(
        "tiny",
        8,
        vec![
            tacker_workloads::gemm::gemm_workload(
                &gemm,
                tacker_workloads::gemm::GemmShape::new(2048, 1024, 512),
            ),
            tacker_workloads::dnn::elementwise::elementwise_workload(
                &tacker_workloads::dnn::elementwise::relu(),
                4_000_000,
            ),
        ],
    )
}

/// Overhead (per cent) of the in-engine telemetry path — windowed
/// time-series plus sketch-mode latency stats — versus the plain NoopSink
/// run, plus the one-shot cost in milliseconds of rendering both
/// exporters from the final report.
///
/// Measured as a paired-difference test: each iteration times one plain
/// run and one telemetry run back to back (alternating order), and the
/// statistic is the *median of the per-pair deltas* over the median plain
/// time. Pairing matters — the two runs of a pair share the same machine
/// epoch (frequency state, load, allocator layout), so slow drift cancels
/// inside every pair instead of landing on whichever side sampled the bad
/// seconds. Comparing marginal statistics (sums, medians, percentiles, or
/// the summed CPU-tick batches the Criterion trace gate uses for its much
/// larger 2% budget) swings several per cent between invocations at this
/// resolution, which would make a 3% gate flap on noise alone.
///
/// The exporter renders are deliberately outside the gated loop: they run
/// once per serve invocation when `--metrics-out`/`--timeseries-out` is
/// given, not once per query, so amplifying them per run would gate a
/// cost nobody pays on the hot path. Their price is still reported.
fn telemetry_overhead_pct(
    device: &Arc<tacker_sim::Device>,
    lc: &LcService,
    be: &[BeApp],
) -> (f64, f64) {
    let config = tacker_bench::eval_config().with_queries(20).with_seed(7);
    let plain = || {
        ColocationRun::new(device, &config, std::slice::from_ref(lc), be)
            .expect("plain run")
            .policy(Policy::Tacker)
            .run()
            .expect("plain run");
    };
    let telemetry_run = || {
        ColocationRun::new(device, &config, std::slice::from_ref(lc), be)
            .expect("telemetry run")
            .policy(Policy::Tacker)
            .windowed(SimTime::from_millis(1))
            .latency_exact_limit(0)
            .run()
            .expect("telemetry run")
    };
    let telemetry = || {
        std::hint::black_box(telemetry_run().windows.len());
    };
    // Warm the device's memoized simulations so neither path pays them.
    plain();
    let report = telemetry_run();
    let render_start = std::time::Instant::now();
    std::hint::black_box(prometheus_text(&report.metrics));
    std::hint::black_box(timeseries_jsonl(&report.windows));
    let render_ms = render_start.elapsed().as_secs_f64() * 1e3;
    let timed = |f: &dyn Fn()| {
        let start = std::time::Instant::now();
        f();
        start.elapsed().as_secs_f64()
    };
    const PAIRS: usize = 300;
    let mut plain_times = Vec::with_capacity(PAIRS);
    let mut deltas = Vec::with_capacity(PAIRS);
    for i in 0..PAIRS {
        let (p, t) = if i % 2 == 0 {
            let p = timed(&plain);
            let t = timed(&telemetry);
            (p, t)
        } else {
            let t = timed(&telemetry);
            let p = timed(&plain);
            (p, t)
        };
        plain_times.push(p);
        deltas.push(t - p);
    }
    plain_times.sort_by(f64::total_cmp);
    deltas.sort_by(f64::total_cmp);
    let plain_med = plain_times[PAIRS / 2];
    let delta_med = deltas[PAIRS / 2];
    (100.0 * delta_med / plain_med, render_ms)
}

/// Steady-state serve throughput (queries/s): `n` warm queries arriving
/// at a comfortable 700µs spacing — every query alone in flight, the
/// fast path's home turf — with sketch-mode latency stats and no BE.
/// One untimed warm pass, then the best of `reps` timed passes (the
/// minimum-time estimator; host noise only ever inflates a measurement).
fn steady_qps(device: &Arc<tacker_sim::Device>, lc: &LcService, n: usize, reps: usize) -> f64 {
    let config = tacker_bench::eval_config().with_queries(n).with_seed(5);
    let run = || {
        let report = ColocationRun::new(device, &config, std::slice::from_ref(lc), &[])
            .expect("steady run")
            .policy(Policy::Tacker)
            .at(SimTime::from_micros(700))
            .latency_exact_limit(0)
            .run()
            .expect("steady run");
        assert_eq!(report.query_count(), n, "steady queries must complete");
    };
    run();
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = std::time::Instant::now();
        run();
        best = best.min(start.elapsed().as_secs_f64());
    }
    n as f64 / best
}

/// The process's peak resident set (VmHWM) in kB, from /proc. `None` off
/// Linux — the RSS gate is skipped there.
fn vm_hwm_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find(|l| l.starts_with("VmHWM:"))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
}

/// A zero-fault serve must be the batch run, bit for bit.
fn zero_fault_identity(device: &Arc<tacker_sim::Device>, lc: &LcService, be: &[BeApp]) -> bool {
    let config = tacker_bench::eval_config().with_queries(20).with_seed(7);
    let batch = ColocationRun::new(device, &config, std::slice::from_ref(lc), be)
        .expect("batch")
        .policy(Policy::Tacker)
        .run()
        .expect("batch");
    let serve = ColocationRun::new(device, &config, std::slice::from_ref(lc), be)
        .expect("serve")
        .policy(Policy::Tacker)
        .arrivals(ArrivalSpec::Poisson)
        .faults(FaultPlan::none())
        .guarded(GuardConfig::default())
        .run()
        .expect("serve");
    batch.query_latencies() == serve.query_latencies()
        && batch.be_work == serve.be_work
        && batch.wall == serve.wall
        && serve.guard_steps == 0
}

fn main() {
    let mut check = false;
    let mut out = "results/BENCH_serve.json".to_string();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--check" => check = true,
            other => out = other.to_string(),
        }
    }

    let device = rtx2080ti();
    let lc = tacker_workloads::lc_service("Resnet50", &device).expect("LC");
    let be = vec![tacker_workloads::be_app("fft").expect("BE")];

    eprintln!("zero-fault identity ...");
    let identical = zero_fault_identity(&device, &lc, &be);

    let mut off_violations = 0usize;
    let mut on_violations = 0usize;
    let mut queries = 0usize;
    let mut guard_steps = 0u64;
    let mut faults = 0u64;
    let mut guard_step_events = 0usize;
    let mut fault_events = 0usize;
    let mut violation_events = 0usize;
    let mut final_levels = Vec::new();
    let mut attribution: Vec<String> = Vec::new();
    for seed in SEEDS {
        eprintln!("drill seed {seed} (guard off) ...");
        let off = drill(&device, &lc, &be, seed, false);
        eprintln!("drill seed {seed} (guard on) ...");
        let on = drill(&device, &lc, &be, seed, true);
        eprintln!(
            "  seed {seed}: violations {}/{} unguarded vs {}/{} guarded \
             ({} guard steps, final level {})",
            off.violations, off.queries, on.violations, on.queries, on.guard_steps, on.guard_level
        );
        off_violations += off.violations;
        on_violations += on.violations;
        queries += off.queries;
        guard_steps += on.guard_steps;
        faults += off.faults_injected + on.faults_injected;
        guard_step_events += on.guard_step_events;
        fault_events += off.fault_events + on.fault_events;
        violation_events += off.violation_events + on.violation_events;
        final_levels.push(on.guard_level);
        attribution.extend(off.attribution);
        attribution.extend(on.attribution);
    }
    let rate_off = off_violations as f64 / queries as f64;
    let rate_on = on_violations as f64 / queries as f64;
    eprintln!(
        "violation rate: {rate_off:.3} unguarded vs {rate_on:.3} guarded \
         (zero-fault identity: {identical})"
    );

    eprintln!("telemetry gates ...");
    let sketch_rel_err = sketch_p99_rel_error(&device, &lc, &be);
    let tiny = tiny_lc();
    let peak_bytes_base = sketch_peak_bytes(&device, &tiny, 50);
    let peak_bytes_100x = sketch_peak_bytes(&device, &tiny, 5000);
    let memory_growth = peak_bytes_100x as f64 / peak_bytes_base as f64;
    let (overhead_pct, render_ms) = telemetry_overhead_pct(&device, &lc, &be);
    eprintln!(
        "  sketch p99 rel err {sketch_rel_err:.4} (gate < {SKETCH_P99_GATE}) | \
         peak bytes {peak_bytes_base} -> {peak_bytes_100x} at 100x queries \
         ({memory_growth:.3}x, gate 0.9..1.1) | \
         telemetry overhead {overhead_pct:+.2}% (gate < {TELEMETRY_OVERHEAD_GATE_PCT}%) | \
         exporter render {render_ms:.2}ms one-shot"
    );

    eprintln!("steady-state fast path ...");
    let queries_per_sec = steady_qps(&device, &tiny, 20_000, 5);
    let steady_speedup = queries_per_sec / BASELINE_STEADY_QPS;
    // RSS flatness at 100× queries: snapshot the peak RSS after a
    // 1,000-query steady run, grow the query count 100×, and require
    // the peak to stay within 10%. The high-water mark is monotonic, so
    // a pass means the big run allocated (almost) nothing new.
    steady_qps(&device, &tiny, 1_000, 1);
    let rss_base_kb = vm_hwm_kb();
    steady_qps(&device, &tiny, 100_000, 1);
    let rss_100x_kb = vm_hwm_kb();
    let rss_growth = match (rss_base_kb, rss_100x_kb) {
        (Some(b), Some(h)) if b > 0 => Some(h as f64 / b as f64),
        _ => None,
    };
    eprintln!(
        "  steady-state {queries_per_sec:.0} queries/s ({steady_speedup:.2}x pinned baseline \
         {BASELINE_STEADY_QPS:.0}, gate >= {STEADY_SPEEDUP_FLOOR}x) | \
         peak RSS {rss_base_kb:?} -> {rss_100x_kb:?} kB at 100x queries \
         (growth {rss_growth:?}, gate <= 1.1)"
    );

    if check {
        let mut failed = false;
        if rate_on >= rate_off {
            eprintln!(
                "FAIL: guarded violation rate {rate_on:.3} not below unguarded {rate_off:.3}"
            );
            failed = true;
        }
        if guard_steps == 0 || guard_step_events == 0 {
            eprintln!("FAIL: the guard never stepped — drill exercises nothing");
            failed = true;
        }
        if faults == 0 || fault_events == 0 {
            eprintln!("FAIL: no faults injected — drill exercises nothing");
            failed = true;
        }
        if !identical {
            eprintln!("FAIL: zero-fault serve diverged from the batch run");
            failed = true;
        }
        if attribution.len() != off_violations + on_violations {
            eprintln!(
                "FAIL: {} violations but {} attribution records",
                off_violations + on_violations,
                attribution.len()
            );
            failed = true;
        }
        if attribution
            .iter()
            .any(|r| !r.contains("\"service\":") || !r.contains("\"queue_depth\":"))
        {
            eprintln!("FAIL: attribution records are missing fields");
            failed = true;
        }
        if sketch_rel_err >= SKETCH_P99_GATE {
            eprintln!(
                "FAIL: sketch p99 relative error {sketch_rel_err:.4} exceeds {SKETCH_P99_GATE}"
            );
            failed = true;
        }
        if !(0.9..=1.1).contains(&memory_growth) {
            eprintln!(
                "FAIL: sketch-mode peak latency memory grew {memory_growth:.3}x at 100x queries"
            );
            failed = true;
        }
        if overhead_pct >= TELEMETRY_OVERHEAD_GATE_PCT {
            eprintln!(
                "FAIL: telemetry path exceeded the {TELEMETRY_OVERHEAD_GATE_PCT}% CPU overhead \
                 budget: {overhead_pct:+.2}%"
            );
            failed = true;
        }
        if steady_speedup < STEADY_SPEEDUP_FLOOR {
            eprintln!(
                "FAIL: steady-state throughput {queries_per_sec:.0} q/s is only \
                 {steady_speedup:.2}x the pinned baseline (floor {STEADY_SPEEDUP_FLOOR}x)"
            );
            failed = true;
        }
        if let Some(g) = rss_growth {
            if g > 1.1 {
                eprintln!("FAIL: peak RSS grew {g:.3}x at 100x steady-state queries");
                failed = true;
            }
        }
        if failed {
            std::process::exit(1);
        }
        eprintln!("OK");
        return;
    }

    let attribution_json = if attribution.is_empty() {
        "[]".to_string()
    } else {
        format!("[\n    {}\n  ]", attribution.join(",\n    "))
    };
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"serve_fault_drill\",\n",
            "  \"scenario\": {{\"lc\": \"Resnet50\", \"be\": \"fft\", \"policy\": \"Tacker\", ",
            "\"queries\": {queries}, \"seeds\": {seeds:?}, \"load\": {load}}},\n",
            "  \"fault_plan\": {{\"mispredict_multiplier\": {mult}, \"mispredict_fraction\": {frac}}},\n",
            "  \"violation_rate_guard_off\": {off:.4},\n",
            "  \"violation_rate_guard_on\": {on:.4},\n",
            "  \"guard_steps\": {steps},\n",
            "  \"faults_injected\": {faults},\n",
            "  \"guard_final_levels\": {levels:?},\n",
            "  \"trace_events\": {{\"guard_step\": {gse}, \"fault_injected\": {fe}, ",
            "\"qos_violation\": {ve}}},\n",
            "  \"zero_fault_serve_identical_to_batch\": {identical},\n",
            "  \"telemetry\": {{\"overhead_pct\": {overhead:.2}, ",
            "\"export_render_ms\": {render_ms:.3}, ",
            "\"sketch_p99_rel_err\": {rel_err:.5}, ",
            "\"sketch_peak_bytes_base\": {pb_base}, \"sketch_peak_bytes_100x\": {pb_100x}}},\n",
            "  \"steady_state\": {{\"queries_per_sec\": {qps:.0}, ",
            "\"baseline_queries_per_sec\": {qps_base:.0}, ",
            "\"speedup_vs_baseline\": {qps_speedup:.2}, ",
            "\"rss_hwm_base_kb\": {rss_base}, \"rss_hwm_100x_kb\": {rss_100x}}},\n",
            "  \"violations_attributed\": {attributed},\n",
            "  \"attribution\": {attribution}\n",
            "}}\n",
        ),
        queries = QUERIES,
        seeds = SEEDS,
        load = LOAD,
        mult = MISPREDICT_MULTIPLIER,
        frac = MISPREDICT_FRACTION,
        off = rate_off,
        on = rate_on,
        steps = guard_steps,
        faults = faults,
        levels = final_levels,
        gse = guard_step_events,
        fe = fault_events,
        ve = violation_events,
        identical = identical,
        overhead = overhead_pct,
        render_ms = render_ms,
        rel_err = sketch_rel_err,
        pb_base = peak_bytes_base,
        pb_100x = peak_bytes_100x,
        qps = queries_per_sec,
        qps_base = BASELINE_STEADY_QPS,
        qps_speedup = steady_speedup,
        rss_base = rss_base_kb.map_or(-1i64, |v| v as i64),
        rss_100x = rss_100x_kb.map_or(-1i64, |v| v as i64),
        attributed = attribution.len(),
        attribution = attribution_json,
    );
    if let Some(dir) = std::path::Path::new(&out).parent() {
        std::fs::create_dir_all(dir).expect("results dir");
    }
    std::fs::write(&out, &json).expect("write results");
    eprintln!("wrote {out}");
    print!("{json}");
}
