//! Serving-runtime fault drill: the adaptive QoS guard must earn its keep.
//!
//! The drill co-locates Resnet50 with fft at high load and injects a
//! duration-misprediction fault (predictions low by 1.5x on 20% of the LC
//! kernels — the §V-B failure mode Tacker's gate is most sensitive to).
//! Mispredictions make the Equation 8/9 headroom check optimistic, so the
//! unguarded runtime keeps fusing into headroom it does not have and
//! violates QoS. The guard watches the predicted-vs-actual error per
//! kernel, inflates its safety margin, and steps down the degradation
//! ladder (fuse → reorder-only → LC-only) until pressure subsides.
//!
//! ```sh
//! cargo run --release -p tacker-bench --bin serve_bench [out.json] [--check]
//! ```
//!
//! `--check` exits non-zero unless (a) the guarded violation rate is
//! strictly below the unguarded rate under the fault plan, (b) the guard
//! actually stepped and faults were actually injected (the drill is
//! meaningless otherwise), and (c) a zero-fault serve reproduces the
//! batch run bit for bit.

use std::sync::Arc;

use tacker::prelude::*;
use tacker_bench::rtx2080ti;
use tacker_trace::{RingSink, TraceEvent, TraceSink};
use tacker_workloads::{BeApp, LcService};

const QUERIES: usize = 60;
const SEEDS: [u64; 3] = [11, 29, 47];
const MISPREDICT_MULTIPLIER: f64 = 1.5;
const MISPREDICT_FRACTION: f64 = 0.2;
const LOAD: f64 = 0.95;

struct Drill {
    violations: usize,
    queries: usize,
    guard_steps: u64,
    faults_injected: u64,
    guard_level: String,
    guard_step_events: usize,
    fault_events: usize,
    violation_events: usize,
}

fn drill(
    device: &Arc<tacker_sim::Device>,
    lc: &LcService,
    be: &[BeApp],
    seed: u64,
    guarded: bool,
) -> Drill {
    let config = tacker_bench::eval_config()
        .with_queries(QUERIES)
        .with_seed(seed)
        .with_load(LOAD);
    let plan = FaultPlan::mispredicting(MISPREDICT_MULTIPLIER, MISPREDICT_FRACTION).with_seed(seed);
    let ring = Arc::new(RingSink::unbounded());
    let mut run = ColocationRun::new(device, &config, std::slice::from_ref(lc), be)
        .expect("drill")
        .policy(Policy::Tacker)
        .faults(plan)
        .traced(ring.clone() as Arc<dyn TraceSink>);
    if guarded {
        run = run.guarded(GuardConfig::default());
    }
    let report = run.run().expect("drill");
    let events = ring.events();
    let count = |pred: fn(&TraceEvent) -> bool| events.iter().filter(|e| pred(e)).count();
    Drill {
        violations: report.qos_violations(),
        queries: report.query_count(),
        guard_steps: report.guard_steps,
        faults_injected: report.faults_injected,
        guard_level: report
            .guard_level
            .map_or_else(|| "off".to_string(), |l| l.name().to_string()),
        guard_step_events: count(|e| matches!(e, TraceEvent::GuardStep { .. })),
        fault_events: count(|e| matches!(e, TraceEvent::FaultInjected { .. })),
        violation_events: count(|e| matches!(e, TraceEvent::QosViolation { .. })),
    }
}

/// A zero-fault serve must be the batch run, bit for bit.
fn zero_fault_identity(device: &Arc<tacker_sim::Device>, lc: &LcService, be: &[BeApp]) -> bool {
    let config = tacker_bench::eval_config().with_queries(20).with_seed(7);
    let batch = ColocationRun::new(device, &config, std::slice::from_ref(lc), be)
        .expect("batch")
        .policy(Policy::Tacker)
        .run()
        .expect("batch");
    let serve = ColocationRun::new(device, &config, std::slice::from_ref(lc), be)
        .expect("serve")
        .policy(Policy::Tacker)
        .arrivals(ArrivalSpec::Poisson)
        .faults(FaultPlan::none())
        .guarded(GuardConfig::default())
        .run()
        .expect("serve");
    batch.query_latencies() == serve.query_latencies()
        && batch.be_work == serve.be_work
        && batch.wall == serve.wall
        && serve.guard_steps == 0
}

fn main() {
    let mut check = false;
    let mut out = "results/BENCH_serve.json".to_string();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--check" => check = true,
            other => out = other.to_string(),
        }
    }

    let device = rtx2080ti();
    let lc = tacker_workloads::lc_service("Resnet50", &device).expect("LC");
    let be = vec![tacker_workloads::be_app("fft").expect("BE")];

    eprintln!("zero-fault identity ...");
    let identical = zero_fault_identity(&device, &lc, &be);

    let mut off_violations = 0usize;
    let mut on_violations = 0usize;
    let mut queries = 0usize;
    let mut guard_steps = 0u64;
    let mut faults = 0u64;
    let mut guard_step_events = 0usize;
    let mut fault_events = 0usize;
    let mut violation_events = 0usize;
    let mut final_levels = Vec::new();
    for seed in SEEDS {
        eprintln!("drill seed {seed} (guard off) ...");
        let off = drill(&device, &lc, &be, seed, false);
        eprintln!("drill seed {seed} (guard on) ...");
        let on = drill(&device, &lc, &be, seed, true);
        eprintln!(
            "  seed {seed}: violations {}/{} unguarded vs {}/{} guarded \
             ({} guard steps, final level {})",
            off.violations, off.queries, on.violations, on.queries, on.guard_steps, on.guard_level
        );
        off_violations += off.violations;
        on_violations += on.violations;
        queries += off.queries;
        guard_steps += on.guard_steps;
        faults += off.faults_injected + on.faults_injected;
        guard_step_events += on.guard_step_events;
        fault_events += off.fault_events + on.fault_events;
        violation_events += off.violation_events + on.violation_events;
        final_levels.push(on.guard_level);
    }
    let rate_off = off_violations as f64 / queries as f64;
    let rate_on = on_violations as f64 / queries as f64;
    eprintln!(
        "violation rate: {rate_off:.3} unguarded vs {rate_on:.3} guarded \
         (zero-fault identity: {identical})"
    );

    if check {
        let mut failed = false;
        if rate_on >= rate_off {
            eprintln!(
                "FAIL: guarded violation rate {rate_on:.3} not below unguarded {rate_off:.3}"
            );
            failed = true;
        }
        if guard_steps == 0 || guard_step_events == 0 {
            eprintln!("FAIL: the guard never stepped — drill exercises nothing");
            failed = true;
        }
        if faults == 0 || fault_events == 0 {
            eprintln!("FAIL: no faults injected — drill exercises nothing");
            failed = true;
        }
        if !identical {
            eprintln!("FAIL: zero-fault serve diverged from the batch run");
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
        eprintln!("OK");
        return;
    }

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"serve_fault_drill\",\n",
            "  \"scenario\": {{\"lc\": \"Resnet50\", \"be\": \"fft\", \"policy\": \"Tacker\", ",
            "\"queries\": {queries}, \"seeds\": {seeds:?}, \"load\": {load}}},\n",
            "  \"fault_plan\": {{\"mispredict_multiplier\": {mult}, \"mispredict_fraction\": {frac}}},\n",
            "  \"violation_rate_guard_off\": {off:.4},\n",
            "  \"violation_rate_guard_on\": {on:.4},\n",
            "  \"guard_steps\": {steps},\n",
            "  \"faults_injected\": {faults},\n",
            "  \"guard_final_levels\": {levels:?},\n",
            "  \"trace_events\": {{\"guard_step\": {gse}, \"fault_injected\": {fe}, ",
            "\"qos_violation\": {ve}}},\n",
            "  \"zero_fault_serve_identical_to_batch\": {identical}\n",
            "}}\n",
        ),
        queries = QUERIES,
        seeds = SEEDS,
        load = LOAD,
        mult = MISPREDICT_MULTIPLIER,
        frac = MISPREDICT_FRACTION,
        off = rate_off,
        on = rate_on,
        steps = guard_steps,
        faults = faults,
        levels = final_levels,
        gse = guard_step_events,
        fe = fault_events,
        ve = violation_events,
        identical = identical,
    );
    if let Some(dir) = std::path::Path::new(&out).parent() {
        std::fs::create_dir_all(dir).expect("results dir");
    }
    std::fs::write(&out, &json).expect("write results");
    eprintln!("wrote {out}");
    print!("{json}");
}
