//! Figure 19: BE throughput improvement on the V100.
//!
//! Paper: average 23.3% (up to 40.4%) across Resnet50/VGG16/Densenet × 12
//! BE apps; memory-intensive BE applications gain *more* on V100 than on
//! the 2080Ti thanks to the 96 KB shared memory per SM.

use tacker_bench::{eval_config, pair_improvement, rtx2080ti, v100};
use tacker_workloads::Intensity;

fn main() {
    let config = eval_config();
    let be_apps = tacker_workloads::be_apps();
    println!("# Figure 19: improvement over Baymax on V100");
    print!("{:<10}", "LC \\ BE");
    for be in &be_apps {
        print!("{:>9}", be.name());
    }
    println!();
    let mut mem_v100 = Vec::new();
    let mut all = Vec::new();
    let dev = v100();
    for lc_name in ["Resnet50", "VGG16", "Densenet"] {
        let lc = tacker_workloads::lc_service(lc_name, &dev).expect("LC service");
        print!("{lc_name:<10}");
        for be in &be_apps {
            let (imp, _, _) = pair_improvement(&dev, &lc, be, &config);
            print!("{:>8.1}%", imp);
            all.push(imp);
            if be.intensity() == Intensity::Memory {
                mem_v100.push(imp);
            }
        }
        println!();
    }
    // Memory-intensive comparison against the 2080Ti for the same rows.
    let dev_t = rtx2080ti();
    let mut mem_2080 = Vec::new();
    for lc_name in ["Resnet50", "VGG16", "Densenet"] {
        let lc = tacker_workloads::lc_service(lc_name, &dev_t).expect("LC service");
        for be in &be_apps {
            if be.intensity() == Intensity::Memory {
                let (imp, _, _) = pair_improvement(&dev_t, &lc, be, &config);
                mem_2080.push(imp);
            }
        }
    }
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    println!();
    println!(
        "V100 average improvement: {:.1}%  (paper: 23.3%)",
        avg(&all)
    );
    println!(
        "V100 max improvement:     {:.1}%  (paper: 40.4%)",
        all.iter().cloned().fold(f64::MIN, f64::max)
    );
    println!(
        "memory-intensive BE avg: V100 {:.1}% vs 2080Ti {:.1}%  (paper: V100 higher — 96 KB smem)",
        avg(&mem_v100),
        avg(&mem_2080)
    );
    assert!(
        avg(&mem_v100) > avg(&mem_2080),
        "memory-intensive BEs must gain more on V100"
    );
}
