//! §VIII-I: scheduling and compilation overheads (real wall-clock of this
//! implementation; see also `cargo bench -p tacker-bench`).
//!
//! Paper: online fuse decision over 50 candidate pairs ≈ 1.2 ms; static
//! (reorder-only) scheduling ≈ 0.5 ms; offline fusion of one BE task
//! ≈ 0.9 s; duration-model training ≈ 20 ms.

use std::sync::Arc;
use std::time::Instant;

use tacker::library::FusionLibrary;
use tacker::manager::{KernelManager, Policy};
use tacker::profile::KernelProfiler;
use tacker_bench::rtx2080ti;
use tacker_fuser::{enumerate_configs, fuse_flexible, to_ptb, PackPriority};
use tacker_kernel::SimTime;
use tacker_predictor::FusedPairModel;
use tacker_workloads::gemm::{gemm_workload, GemmShape};
use tacker_workloads::parboil::Benchmark;

fn main() {
    let device = rtx2080ti();
    let profiler = Arc::new(KernelProfiler::new(Arc::clone(&device)));
    let library = Arc::new(FusionLibrary::new(Arc::clone(&profiler)));
    let gemm_def = tacker_workloads::dnn::compile::shared_gemm();
    let lc = gemm_workload(&gemm_def, GemmShape::new(4096, 4096, 512));

    // 50 ready BE kernels, as in the paper's 10 LC × 50 BE scenario.
    let be_heads: Vec<Option<tacker_workloads::WorkloadKernel>> = (0..50)
        .map(|i| {
            let b = Benchmark::BE_APPS[i % Benchmark::BE_APPS.len()];
            let mut wk = b.task()[0].clone();
            wk.grid += i as u64; // distinct inputs
            Some(wk)
        })
        .collect();

    // Warm the models and the library (offline phase).
    let manager = KernelManager::new(Arc::clone(&profiler), Arc::clone(&library), Policy::Tacker);
    let headroom = SimTime::from_millis(20);
    manager
        .decide(Some(&lc), headroom, headroom, &be_heads, false)
        .expect("warmup");

    println!("# §VIII-I overheads (wall-clock of this implementation)");
    let time = |label: &str, paper: &str, iters: u32, mut f: Box<dyn FnMut()>| {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        let per = start.elapsed() / iters;
        println!("{label:<42} {per:>12.2?}   (paper: {paper})");
        per
    };

    time(
        "online fuse decision, 50 candidate pairs",
        "1.2 ms",
        20,
        Box::new(|| {
            let _ = manager
                .decide(Some(&lc), headroom, headroom, &be_heads, false)
                .expect("decide");
        }),
    );

    let baymax = KernelManager::new(Arc::clone(&profiler), Arc::clone(&library), Policy::Baymax);
    time(
        "static (reorder-only) scheduling, 50 kernels",
        "0.5 ms",
        20,
        Box::new(|| {
            let _ = baymax
                .decide(Some(&lc), headroom, headroom, &be_heads, false)
                .expect("decide");
        }),
    );

    let cd = Benchmark::Fft.task()[0].clone();
    let spec = device.spec().clone();
    time(
        "offline fusion of one BE task (all ratios + codegen)",
        "0.9 s",
        5,
        Box::new(move || {
            let ptb = to_ptb(&cd.def).expect("ptb");
            let _ = tacker_kernel::source::render(&ptb);
            for cfg in enumerate_configs(&gemm_def, &cd.def, &spec.sm, PackPriority::TensorFirst) {
                let fused = fuse_flexible(&gemm_def, &cd.def, cfg, &spec.sm).expect("fuse");
                let _ = tacker_kernel::source::render(fused.def());
            }
        }),
    );

    let samples: Vec<(f64, f64)> = (1..=40)
        .map(|i| {
            let r = i as f64 * 0.05;
            (
                r,
                if r < 1.0 {
                    1.0 + 0.1 * r
                } else {
                    1.1 + (r - 1.0)
                },
            )
        })
        .collect();
    time(
        "duration-model training (two-stage LR fit)",
        "20 ms",
        50,
        Box::new(move || {
            let _ = FusedPairModel::fit("pair", &samples).expect("fit");
        }),
    );
    println!();
    println!("Same ordering as §VIII-I (decision < model fit < offline fusion); the");
    println!("absolute numbers are smaller because our kernels are ASTs, not nvcc");
    println!("invocations — the paper's 0.9 s is dominated by nvcc compiling CUDA.");
}
