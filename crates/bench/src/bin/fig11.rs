//! Figure 11: fused-kernel duration versus the Tensor part's original time
//! at several fixed load ratios.
//!
//! Paper: at a fixed load ratio the fused duration is linear in the
//! Tensor kernel's original duration.

use std::sync::Arc;
use tacker::library::FusionLibrary;
use tacker::profile::KernelProfiler;
use tacker_bench::rtx2080ti;
use tacker_predictor::LinReg;
use tacker_sim::ExecutablePlan;
use tacker_workloads::gemm::{gemm_workload, GemmShape};
use tacker_workloads::parboil::Benchmark;

fn main() {
    let device = rtx2080ti();
    let profiler = Arc::new(KernelProfiler::new(Arc::clone(&device)));
    let library = FusionLibrary::new(Arc::clone(&profiler));
    let gemm_def = tacker_workloads::dnn::compile::shared_gemm();
    let cd0 = Benchmark::Fft.task()[0].clone();

    println!("# Figure 11: fused duration vs X_tc at fixed load ratios (GEMM + fft)");
    let sizes = [1024u64, 2048, 3072, 4096, 6144, 8192];
    for ratio in [0.4f64, 0.8, 1.2, 1.6] {
        println!("## load ratio {ratio:.1}");
        println!("{:>10} {:>12}", "X_tc(us)", "T_fuse(us)");
        // Each GEMM size is an independent prepare + measurement; fan them
        // out and join in size order.
        let samples: Vec<(f64, f64)> =
            tacker_bench::par_map(tacker_bench::bench_jobs(), &sizes, |_, &m| {
                let tc = gemm_workload(&gemm_def, GemmShape::new(m, 4096, 512));
                let entry = library.prepare(&tc, &cd0).expect("prepare").expect("fuses");
                let x_tc = profiler.measure(&tc).expect("tc");
                let t_cd_unit = profiler.measure(&cd0).expect("cd");
                let cd_grid =
                    ((cd0.grid as f64 * ratio * x_tc.ratio(t_cd_unit)).round() as u64).max(1);
                let launch = {
                    let e = entry.lock().expect("entry");
                    e.fused
                        .launch(tc.grid, cd_grid, &tc.bindings, &cd0.bindings)
                };
                let plan = ExecutablePlan::from_launch(device.spec(), &launch).expect("plan");
                let t = device.run_plan(&plan).expect("fused").duration;
                (x_tc.as_micros_f64(), t.as_micros_f64())
            });
        for (x_tc, t) in &samples {
            println!("{:>10.1} {:>12.1}", x_tc, t);
        }
        let lr = LinReg::fit(&samples).expect("fit");
        let r2 = lr.r2(&samples);
        println!("linear fit r² = {r2:.4} (paper: linear)");
        assert!(
            r2 > 0.98,
            "duration must be linear in X_tc at fixed ratio, r²={r2}"
        );
    }
}
