//! Figure 1: the *false high utilization* problem — Tensor/CUDA core
//! active timelines when Baymax co-locates Resnet50 (LC) with sgemm (BE).
//!
//! Paper: the GPU looks computation-busy, yet at any instant either the
//! Tensor Cores or the CUDA Cores are idle (the two rows never overlap).

use tacker::prelude::*;
use tacker_bench::rtx2080ti;

fn main() {
    let device = rtx2080ti();
    let config = tacker_bench::eval_config().with_queries(12).with_timeline();
    let lc = tacker_workloads::lc_service("Resnet50", &device).expect("LC service");
    let be = vec![tacker_workloads::be_app("sgemm").expect("BE app")];
    let report = ColocationRun::new(&device, &config, std::slice::from_ref(&lc), &be)
        .expect("baymax run")
        .policy(Policy::Baymax)
        .run()
        .expect("baymax run");
    let tl = report.timeline.expect("timeline recorded");

    println!("# Figure 1: active timeline under Baymax (Resnet50 + sgemm)");
    print!("{}", tl.render_ascii(100));
    let tc = tl.tc_active_time();
    let cd = tl.cd_active_time();
    let both = tl.both_active_time();
    println!();
    println!("TC active: {tc}");
    println!("CD active: {cd}");
    println!("both active simultaneously: {both}  (paper: never — false high utilization)");
    assert_eq!(
        both.as_nanos(),
        0,
        "Baymax must never use both core types at once"
    );
}
