//! Table II: the experimental specification, as encoded in this
//! reproduction.

use tacker_bench::{eval_config, rtx2080ti, v100};
use tacker_workloads::dnn::DnnModel;
use tacker_workloads::Intensity;

fn main() {
    let t = rtx2080ti();
    let v = v100();
    let cfg = eval_config();
    println!("# Table II: experimental specification (as reproduced)");
    println!(
        "GPU (main):  {} — {} SMs, {} KiB smem/SM, {:.0} GB/s",
        t.spec().name,
        t.spec().sm_count,
        t.spec().sm.shared_mem_bytes / 1024,
        t.spec().dram_bytes_per_cycle * t.spec().clock_ghz
    );
    println!(
        "GPU (alt):   {} — {} SMs, {} KiB smem/SM",
        v.spec().name,
        v.spec().sm_count,
        v.spec().sm.shared_mem_bytes / 1024
    );
    println!("QoS target:  {}", cfg.qos_target);
    println!(
        "LC load:     {:.0}% of peak supported load, Poisson arrivals",
        cfg.load_factor * 100.0
    );
    println!();
    println!("LC services (batch size):");
    for m in DnnModel::ALL {
        println!("  {:<10} (batch {:>2})", m.name(), m.table_ii_batch());
    }
    println!();
    println!("BE applications:");
    for app in tacker_workloads::be_apps() {
        println!(
            "  {:<8} {}",
            app.name(),
            match app.intensity() {
                Intensity::Compute => "compute-intensive",
                Intensity::Memory => "memory-intensive",
            }
        );
    }
}
