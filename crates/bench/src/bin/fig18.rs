//! Figure 18: prediction error of the two-stage LR model for fused
//! kernels, split by stage (before / after the inflection point).
//!
//! Paper: below 8% in both stages.

use std::sync::Arc;
use tacker::library::FusionLibrary;
use tacker::profile::KernelProfiler;
use tacker_bench::rtx2080ti;
use tacker_sim::ExecutablePlan;
use tacker_workloads::gemm::{gemm_workload, GemmShape};
use tacker_workloads::parboil::Benchmark;

fn main() {
    let device = rtx2080ti();
    let profiler = Arc::new(KernelProfiler::new(Arc::clone(&device)));
    let library = FusionLibrary::new(Arc::clone(&profiler));
    let gemm_def = tacker_workloads::dnn::compile::shared_gemm();

    println!("# Figure 18: two-stage model error on held-out load ratios");
    println!("{:>9} {:>10} {:>10}", "pair", "before", "after");
    let benchmarks = [
        Benchmark::Fft,
        Benchmark::Cutcp,
        Benchmark::Mriq,
        Benchmark::Cp,
        Benchmark::Stencil,
        Benchmark::Sgemm,
    ];
    // One worker per pair: each pair owns its library entry, so the warm-up
    // observations never cross between workers. Rows join in pair order.
    let rows = tacker_bench::par_map(tacker_bench::bench_jobs(), &benchmarks, |_, &b| {
        let tc = gemm_workload(&gemm_def, GemmShape::new(4096, 4096, 512));
        let cd = b.task()[0].clone();
        let entry = library.prepare(&tc, &cd).expect("prepare")?;
        let x_tc = profiler.measure(&tc).expect("tc");
        let t_cd_unit = profiler.measure(&cd).expect("cd");
        // Warm the model with a few online observations first — the paper
        // builds the *initial* model from four ratios and then "uses
        // online co-running data to update the model" (§VI-C).
        for r in [0.45f64, 0.95, 1.35] {
            let cd_grid = ((cd.grid as f64 * r * x_tc.ratio(t_cd_unit)).round() as u64).max(1);
            let (launch, x_cd) = {
                let e = entry.lock().expect("entry");
                let mut cd_scaled = cd.clone();
                cd_scaled.grid = cd_grid;
                (
                    e.fused.launch(tc.grid, cd_grid, &tc.bindings, &cd.bindings),
                    profiler.predict(&cd_scaled).expect("cd pred"),
                )
            };
            let plan = ExecutablePlan::from_launch(device.spec(), &launch).expect("plan");
            let actual = device.run_plan(&plan).expect("fused").duration;
            entry
                .lock()
                .expect("entry")
                .model
                .observe(x_tc, x_cd, actual);
        }
        // Held-out ratios between the training points.
        let mut held = Vec::new();
        for r in [0.35f64, 0.55, 0.75, 1.15, 1.45, 1.65] {
            let cd_grid = ((cd.grid as f64 * r * x_tc.ratio(t_cd_unit)).round() as u64).max(1);
            let (launch, x_cd) = {
                let e = entry.lock().expect("entry");
                let mut cd_scaled = cd.clone();
                cd_scaled.grid = cd_grid;
                (
                    e.fused.launch(tc.grid, cd_grid, &tc.bindings, &cd.bindings),
                    profiler.predict(&cd_scaled).expect("cd pred"),
                )
            };
            let plan = ExecutablePlan::from_launch(device.spec(), &launch).expect("plan");
            let actual = device.run_plan(&plan).expect("fused").duration;
            held.push((x_cd.ratio(x_tc), actual.ratio(x_tc)));
        }
        let e = entry.lock().expect("entry");
        Some(e.model.validation_error_by_stage(&held))
    });
    let mut before_all = Vec::new();
    let mut after_all = Vec::new();
    for (b, row) in benchmarks.iter().zip(rows) {
        let Some((before, after)) = row else {
            println!("{:>9} {:>10} {:>10}", b.name(), "-", "-");
            continue;
        };
        println!(
            "{:>9} {:>9.2}% {:>9.2}%",
            b.name(),
            100.0 * before,
            100.0 * after
        );
        if before > 0.0 {
            before_all.push(before);
        }
        if after > 0.0 {
            after_all.push(after);
        }
    }
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    println!();
    println!(
        "average: before inflection {:.2}%, after inflection {:.2}%  (paper: <8%)",
        100.0 * avg(&before_all),
        100.0 * avg(&after_all)
    );
    assert!(avg(&before_all) < 0.10, "before-inflection error too high");
    assert!(avg(&after_all) < 0.10, "after-inflection error too high");
}
