//! Wall-clock benchmark of the parallel sweep path: a fixed, reduced
//! LC × BE sweep executed at `jobs = 1` and `jobs = N`, with the device
//! cache-hit rate alongside. Seeds the repo's perf trajectory as
//! `results/BENCH_sweep.json` (first `BENCH_*.json` emitter).
//!
//! Methodology:
//!
//! * A warm-up sweep on a throwaway device populates the global peak-load
//!   calibration cache, so both timed modes pay the same (zero)
//!   calibration cost and the comparison isolates sweep execution itself.
//! * Each timed mode gets a *fresh* device: within a mode the runs share
//!   the sharded execution cache (that sharing is part of what is being
//!   measured), but nothing leaks between modes.
//! * The two modes' reports are asserted identical — the speedup number is
//!   only meaningful because the parallel sweep is bit-equal to the serial
//!   one.
//!
//! Usage: `cargo run --release -p tacker-bench --bin sweep_bench
//! [-- <out.json>]` (default `results/BENCH_sweep.json`).

use std::sync::Arc;
use std::time::Instant;

use tacker::prelude::*;
use tacker_sim::{Device, GpuSpec};
use tacker_workloads::{BeApp, LcService};

const LC_NAMES: [&str; 2] = ["Resnet50", "VGG16"];
const BE_NAMES: [&str; 3] = ["fft", "sgemm", "cutcp"];
const QUERIES: usize = 40;

fn grid(device: &Arc<Device>) -> (Vec<LcService>, Vec<BeApp>) {
    let lcs = LC_NAMES
        .iter()
        .map(|n| tacker_workloads::lc_service(n, device).expect("LC service"))
        .collect();
    let bes = BE_NAMES
        .iter()
        .map(|n| tacker_workloads::be_app(n).expect("BE app"))
        .collect();
    (lcs, bes)
}

fn run_sweep(jobs: usize, config: &ExperimentConfig) -> (Vec<SweepCell>, f64, Arc<Device>) {
    let device = Arc::new(Device::new(GpuSpec::rtx2080ti()));
    let (lcs, bes) = grid(&device);
    let start = Instant::now();
    let cells = run_pair_sweep(
        &device,
        &lcs,
        &bes,
        &[Policy::Baymax, Policy::Tacker],
        config,
        jobs,
    )
    .expect("sweep");
    (cells, start.elapsed().as_secs_f64() * 1e3, device)
}

fn main() {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "results/BENCH_sweep.json".to_string());
    let config = ExperimentConfig::default().with_queries(QUERIES);
    let host_cores = tacker_par::available_jobs();
    let jobs_parallel = host_cores.max(4);

    // Warm-up: populate the process-global peak-load calibration cache so
    // neither timed mode pays calibration for the other.
    eprintln!("warm-up (calibration) ...");
    let _ = run_sweep(jobs_parallel, &config);

    eprintln!("timing jobs=1 ...");
    let (serial_cells, serial_ms, _) = run_sweep(1, &config);
    eprintln!("timing jobs={jobs_parallel} ...");
    let (parallel_cells, parallel_ms, device) = run_sweep(jobs_parallel, &config);

    // The headline number is only honest if parallel == serial.
    assert_eq!(serial_cells.len(), parallel_cells.len());
    for (s, p) in serial_cells.iter().zip(&parallel_cells) {
        assert_eq!(
            (s.lc.as_str(), s.be.as_str()),
            (p.lc.as_str(), p.be.as_str())
        );
        assert_eq!(
            s.report.query_latencies(),
            p.report.query_latencies(),
            "{}+{} latencies diverged",
            s.lc,
            s.be
        );
        assert_eq!(s.report.fused_launches, p.report.fused_launches);
        assert_eq!(s.report.be_work, p.report.be_work);
    }

    let (hits, misses) = device.cache_stats();
    let (fused_hits, fused_misses) = device.fused_cache_stats();
    let speedup = serial_ms / parallel_ms.max(1e-9);
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"pair_sweep\",\n",
            "  \"grid\": {{\"lc\": {lc:?}, \"be\": {be:?}, ",
            "\"policies\": [\"Baymax\", \"Tacker\"], \"queries\": {queries}}},\n",
            "  \"host_cores\": {cores},\n",
            "  \"jobs_serial\": 1,\n",
            "  \"jobs_parallel\": {jobs},\n",
            "  \"wall_ms_serial\": {serial:.1},\n",
            "  \"wall_ms_parallel\": {parallel:.1},\n",
            "  \"speedup\": {speedup:.2},\n",
            "  \"results_identical\": true,\n",
            "  \"device_cache\": {{\"hits\": {hits}, \"misses\": {misses}, ",
            "\"hit_rate\": {rate:.4}}},\n",
            "  \"fused_cache\": {{\"hits\": {fused_hits}, \"misses\": {fused_misses}, ",
            "\"hit_rate\": {fused_rate:.4}}}\n",
            "}}\n"
        ),
        lc = LC_NAMES,
        be = BE_NAMES,
        queries = QUERIES,
        cores = host_cores,
        jobs = jobs_parallel,
        serial = serial_ms,
        parallel = parallel_ms,
        speedup = speedup,
        hits = hits,
        misses = misses,
        rate = device.cache_hit_rate(),
        fused_hits = fused_hits,
        fused_misses = fused_misses,
        fused_rate = device.fused_cache_hit_rate(),
    );
    std::fs::write(&out, &json).expect("write BENCH_sweep.json");
    print!("{json}");
    eprintln!(
        "jobs=1: {serial_ms:.0} ms, jobs={jobs_parallel}: {parallel_ms:.0} ms \
         ({speedup:.2}x on {host_cores} core(s)); wrote {out}"
    );
}
