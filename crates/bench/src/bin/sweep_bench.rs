//! Wall-clock benchmark of the parallel sweep path: a fixed, reduced
//! LC × BE sweep executed at `jobs = 1` and `jobs = N`, with the device
//! cache-hit rate alongside. Seeds the repo's perf trajectory as
//! `results/BENCH_sweep.json`.
//!
//! Methodology:
//!
//! * A warm-up sweep on a throwaway device populates the global peak-load
//!   calibration cache, so both timed modes pay the same (zero)
//!   calibration cost and the comparison isolates sweep execution itself.
//! * Each timed mode gets a *fresh* device: within a mode the runs share
//!   the sharded execution cache (that sharing is part of what is being
//!   measured), but nothing leaks between modes.
//! * Each mode is timed twice and the better wall time is kept — the
//!   sweep is deterministic, so the spread between repeats is pure host
//!   noise, and the minimum is the standard noise-robust estimator.
//! * The two modes' reports are asserted identical — the speedup number is
//!   only meaningful because the parallel sweep is bit-equal to the serial
//!   one.
//! * When the adaptive pool resolves the parallel request to one worker
//!   (1-core host or under-threshold batch: `jobs_used = 1`), both timed
//!   modes execute the *identical* serial code path; the speedup is then
//!   reported as `1.0` by construction (`serial_fallback: true` records
//!   that this happened) because a ratio of two timings of the same code
//!   would only measure noise.
//!
//! Provenance: the JSON records the detected `host_cores`, the requested
//! and *actually used* jobs after the adaptive fallback, and every cell's
//! expected-event scheduling weight, so shard-balance skew is auditable
//! from the artifact alone.
//!
//! Usage: `cargo run --release -p tacker-bench --bin sweep_bench
//! [-- <out.json>] [-- --check]` (default `results/BENCH_sweep.json`).
//! `--check` exits non-zero if the speedup floor for the host class is
//! missed (≥ 1.0 below 4 cores, ≥ 2.0 at 4+) or the identity/fused-cache
//! invariants fail — CI runs it to gate sweep-path regressions.

use std::sync::Arc;
use std::time::Instant;

use tacker::prelude::*;
use tacker_sim::{Device, GpuSpec};
use tacker_workloads::{BeApp, LcService};

const LC_NAMES: [&str; 2] = ["Resnet50", "VGG16"];
const BE_NAMES: [&str; 3] = ["fft", "sgemm", "cutcp"];
const QUERIES: usize = 40;

fn grid(device: &Arc<Device>) -> (Vec<LcService>, Vec<BeApp>) {
    let lcs = LC_NAMES
        .iter()
        .map(|n| tacker_workloads::lc_service(n, device).expect("LC service"))
        .collect();
    let bes = BE_NAMES
        .iter()
        .map(|n| tacker_workloads::be_app(n).expect("BE app"))
        .collect();
    (lcs, bes)
}

fn run_sweep(jobs: usize, config: &ExperimentConfig) -> (Vec<SweepCell>, f64, Arc<Device>) {
    let device = Arc::new(Device::new(GpuSpec::rtx2080ti()));
    let (lcs, bes) = grid(&device);
    let start = Instant::now();
    let cells = run_pair_sweep(
        &device,
        &lcs,
        &bes,
        &[Policy::Baymax, Policy::Tacker],
        config,
        jobs,
    )
    .expect("sweep");
    (cells, start.elapsed().as_secs_f64() * 1e3, device)
}

fn main() {
    let mut out = "results/BENCH_sweep.json".to_string();
    let mut check = false;
    for arg in std::env::args().skip(1) {
        if arg == "--check" {
            check = true;
        } else {
            out = arg;
        }
    }
    let config = ExperimentConfig::default().with_queries(QUERIES);
    let host_cores = tacker_par::available_jobs();
    let jobs_requested = host_cores.max(4);

    // Warm-up: populate the process-global peak-load calibration cache so
    // neither timed mode pays calibration for the other.
    eprintln!("warm-up (calibration) ...");
    let _ = run_sweep(jobs_requested, &config);

    // What the adaptive pool will actually use for the parallel mode.
    let jobs_used = {
        let device = Arc::new(Device::new(GpuSpec::rtx2080ti()));
        let (lcs, bes) = grid(&device);
        sweep_jobs_used(
            jobs_requested,
            &lcs,
            &bes,
            &[Policy::Baymax, Policy::Tacker],
            &config,
        )
    };
    let serial_fallback = jobs_used <= 1;

    eprintln!("timing jobs=1 ...");
    let (serial_cells, serial_ms_a, _) = run_sweep(1, &config);
    let (_, serial_ms_b, _) = run_sweep(1, &config);
    let serial_ms = serial_ms_a.min(serial_ms_b);
    eprintln!("timing jobs={jobs_requested} (used: {jobs_used}) ...");
    let (parallel_cells, parallel_ms_a, device) = run_sweep(jobs_requested, &config);
    let (_, parallel_ms_b, _) = run_sweep(jobs_requested, &config);
    let parallel_ms = parallel_ms_a.min(parallel_ms_b);

    // The headline number is only honest if parallel == serial.
    assert_eq!(serial_cells.len(), parallel_cells.len());
    for (s, p) in serial_cells.iter().zip(&parallel_cells) {
        assert_eq!(
            (s.lc.as_str(), s.be.as_str()),
            (p.lc.as_str(), p.be.as_str())
        );
        assert_eq!(
            s.report.query_latencies(),
            p.report.query_latencies(),
            "{}+{} latencies diverged",
            s.lc,
            s.be
        );
        assert_eq!(s.report.fused_launches, p.report.fused_launches);
        assert_eq!(s.report.be_work, p.report.be_work);
        assert_eq!(s.expected_events, p.expected_events);
    }

    let (hits, misses) = device.cache_stats();
    let (fused_hits, fused_misses) = device.fused_cache_stats();
    // With jobs_used == 1 both modes ran the identical serial path; the
    // measured ratio would be pure noise, so it is 1.0 by construction.
    let speedup = if serial_fallback {
        1.0
    } else {
        serial_ms / parallel_ms.max(1e-9)
    };
    let cells_json: Vec<String> = serial_cells
        .iter()
        .map(|c| {
            format!(
                "    {{\"lc\": \"{}\", \"be\": \"{}\", \"policy\": \"{:?}\", \
                 \"expected_events\": {}}}",
                c.lc, c.be, c.policy, c.expected_events
            )
        })
        .collect();
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"pair_sweep\",\n",
            "  \"grid\": {{\"lc\": {lc:?}, \"be\": {be:?}, ",
            "\"policies\": [\"Baymax\", \"Tacker\"], \"queries\": {queries}}},\n",
            "  \"host_cores\": {cores},\n",
            "  \"jobs_serial\": 1,\n",
            "  \"jobs_requested\": {requested},\n",
            "  \"jobs_used\": {used},\n",
            "  \"serial_fallback\": {fallback},\n",
            "  \"wall_ms_serial\": {serial:.1},\n",
            "  \"wall_ms_parallel\": {parallel:.1},\n",
            "  \"speedup\": {speedup:.2},\n",
            "  \"results_identical\": true,\n",
            "  \"cells\": [\n{cells}\n  ],\n",
            "  \"device_cache\": {{\"hits\": {hits}, \"misses\": {misses}, ",
            "\"hit_rate\": {rate:.4}}},\n",
            "  \"fused_cache\": {{\"hits\": {fused_hits}, \"misses\": {fused_misses}, ",
            "\"hit_rate\": {fused_rate:.4}}}\n",
            "}}\n"
        ),
        lc = LC_NAMES,
        be = BE_NAMES,
        queries = QUERIES,
        cores = host_cores,
        requested = jobs_requested,
        used = jobs_used,
        fallback = serial_fallback,
        serial = serial_ms,
        parallel = parallel_ms,
        speedup = speedup,
        cells = cells_json.join(",\n"),
        hits = hits,
        misses = misses,
        rate = device.cache_hit_rate(),
        fused_hits = fused_hits,
        fused_misses = fused_misses,
        fused_rate = device.fused_cache_hit_rate(),
    );
    std::fs::write(&out, &json).expect("write BENCH_sweep.json");
    print!("{json}");
    eprintln!(
        "jobs=1: {serial_ms:.0} ms, jobs={jobs_requested} (used {jobs_used}): \
         {parallel_ms:.0} ms ({speedup:.2}x on {host_cores} core(s)); wrote {out}"
    );

    if check {
        let floor = if host_cores >= 4 { 2.0 } else { 1.0 };
        assert!(
            speedup >= floor,
            "--check: sweep speedup {speedup:.2} is under the {floor:.1}x floor \
             for a {host_cores}-core host"
        );
        assert!(
            device.cache_hit_rate() > 0.5,
            "--check: device cache hit rate collapsed"
        );
        eprintln!("--check passed: speedup {speedup:.2} >= {floor:.1} on {host_cores} core(s)");
    }
}
