//! Figure 16: average and 99%-ile latencies of the LC services across all
//! 72 co-location pairs under Tacker.
//!
//! Paper: QoS (50 ms) is met in every pair; 99%-ile latencies are close to
//! the target (headroom is used up), averages are similar across
//! co-locations.

use tacker::prelude::*;
use tacker_bench::{eval_config, rtx2080ti};

fn main() {
    let device = rtx2080ti();
    let config = eval_config();
    let be_apps = tacker_workloads::be_apps();
    println!(
        "# Figure 16: LC latencies under Tacker (QoS target {})",
        config.qos_target
    );
    println!(
        "{:<10} {:>8} {:>10} {:>10} {:>6}",
        "LC", "BE", "avg(ms)", "p99(ms)", "QoS"
    );
    let mut all_ok = true;
    for lc_name in [
        "Resnet50",
        "ResNext",
        "VGG16",
        "VGG19",
        "Inception",
        "Densenet",
    ] {
        let lc = tacker_workloads::lc_service(lc_name, &device).expect("LC service");
        for be in &be_apps {
            let r = tacker::run_colocation(
                &device,
                &lc,
                std::slice::from_ref(be),
                Policy::Tacker,
                &config,
            )
            .expect("tacker run");
            let ok = r.p99_latency() <= config.qos_target.mul_f64(1.02);
            all_ok &= ok;
            println!(
                "{:<10} {:>8} {:>10.2} {:>10.2} {:>6}",
                lc_name,
                be.name(),
                r.mean_latency().as_millis_f64(),
                r.p99_latency().as_millis_f64(),
                if ok { "met" } else { "MISS" }
            );
        }
    }
    println!();
    assert!(all_ok, "every pair must meet QoS");
    println!("QoS met in all 72 co-locations (paper: same).");
}
