//! Figure 16: average and 99%-ile latencies of the LC services across all
//! 72 co-location pairs under Tacker.
//!
//! Paper: QoS (50 ms) is met in every pair; 99%-ile latencies are close to
//! the target (headroom is used up), averages are similar across
//! co-locations.
//!
//! The 72 runs fan out over the `tacker-par` work pool; rows are joined in
//! grid order so the table is identical at any jobs count.

use tacker::prelude::*;
use tacker_bench::{bench_jobs, eval_config, eval_lc_services, rtx2080ti, try_par_map};

fn main() {
    let device = rtx2080ti();
    let config = eval_config();
    let be_apps = tacker_workloads::be_apps();
    let lcs = eval_lc_services(&device);
    let mut pairs = Vec::new();
    for lc in &lcs {
        for be in &be_apps {
            pairs.push((lc, be));
        }
    }
    let reports: Vec<RunReport> = try_par_map(bench_jobs(), &pairs, |_, &(lc, be)| {
        ColocationRun::new(
            &device,
            &config,
            std::slice::from_ref(lc),
            std::slice::from_ref(be),
        )?
        .policy(Policy::Tacker)
        .run()
    })
    .expect("tacker run");

    println!(
        "# Figure 16: LC latencies under Tacker (QoS target {})",
        config.qos_target
    );
    println!(
        "{:<10} {:>8} {:>10} {:>10} {:>6}",
        "LC", "BE", "avg(ms)", "p99(ms)", "QoS"
    );
    let mut all_ok = true;
    for ((lc, be), r) in pairs.iter().zip(&reports) {
        let p99 = r.p99_latency().expect("queries completed");
        let ok = p99 <= config.qos_target.mul_f64(1.02);
        all_ok &= ok;
        println!(
            "{:<10} {:>8} {:>10.2} {:>10.2} {:>6}",
            lc.name(),
            be.name(),
            r.mean_latency().expect("queries completed").as_millis_f64(),
            p99.as_millis_f64(),
            if ok { "met" } else { "MISS" }
        );
    }
    println!();
    assert!(all_ok, "every pair must meet QoS");
    println!("QoS met in all 72 co-locations (paper: same).");
}
