//! Ablations of DESIGN.md §5: the value of flexible ratios, TC-first
//! packing, measured best-of selection, the two-stage predictor, and the
//! fusion+reorder policy combination.

use std::sync::Arc;
use tacker::prelude::*;
use tacker::profile::KernelProfiler;
use tacker_bench::{eval_config, rtx2080ti};
use tacker_fuser::{enumerate_configs, fuse_flexible, FusionConfig, PackPriority};
use tacker_kernel::SimTime;
use tacker_predictor::{FusedPairModel, LinReg};
use tacker_sim::ExecutablePlan;
use tacker_workloads::gemm::{gemm_workload, GemmShape};
use tacker_workloads::parboil::Benchmark;

fn main() {
    let device = rtx2080ti();
    let profiler = Arc::new(KernelProfiler::new(Arc::clone(&device)));
    let spec = device.spec().clone();
    let gemm_def = tacker_workloads::dnn::compile::shared_gemm();
    let tc = gemm_workload(&gemm_def, GemmShape::new(4096, 4096, 512));

    println!("# Ablation 1: flexible fusion ratio vs naive 1:1 (fused duration, lower is better)");
    println!(
        "{:>9} {:>10} {:>10} {:>10} {:>8}",
        "partner", "1:1(us)", "best(us)", "config", "gain"
    );
    for b in [
        Benchmark::Fft,
        Benchmark::Cutcp,
        Benchmark::Mriq,
        Benchmark::Lbm,
    ] {
        let mut cd = b.task()[0].clone();
        let t_tc = profiler.measure(&tc).expect("tc");
        let t_cd = profiler.measure(&cd).expect("cd");
        cd.grid = ((cd.grid as f64 * t_tc.ratio(t_cd)).round() as u64).max(1);
        let run = |cfg: FusionConfig| -> Option<SimTime> {
            let fused = fuse_flexible(&tc.def, &cd.def, cfg, &spec.sm).ok()?;
            let launch = fused.launch(tc.grid, cd.grid, &tc.bindings, &cd.bindings);
            let plan = ExecutablePlan::from_launch(&spec, &launch).ok()?;
            Some(device.run_plan(&plan).ok()?.duration)
        };
        let naive = run(FusionConfig::ONE_TO_ONE).expect("1:1 runs");
        let (best_cfg, best) =
            enumerate_configs(&tc.def, &cd.def, &spec.sm, PackPriority::TensorFirst)
                .into_iter()
                .filter_map(|c| run(c).map(|d| (c, d)))
                .min_by_key(|(_, d)| *d)
                .expect("some config runs");
        println!(
            "{:>9} {:>10.1} {:>10.1} {:>10} {:>7.1}%",
            b.name(),
            naive.as_micros_f64(),
            best.as_micros_f64(),
            best_cfg.to_string(),
            100.0 * (1.0 - best.ratio(naive))
        );
        assert!(best <= naive);
    }

    println!();
    println!("# Ablation 2: packing priority — duration of the first-enumerated config");
    for b in [Benchmark::Fft, Benchmark::Cutcp] {
        let cd = b.task()[0].clone();
        let first = |p: PackPriority| -> SimTime {
            let cfg = enumerate_configs(&tc.def, &cd.def, &spec.sm, p)[0];
            let fused = fuse_flexible(&tc.def, &cd.def, cfg, &spec.sm).expect("fuse");
            let launch = fused.launch(tc.grid, cd.grid, &tc.bindings, &cd.bindings);
            let plan = ExecutablePlan::from_launch(&spec, &launch).expect("plan");
            device.run_plan(&plan).expect("run").duration
        };
        let tf = first(PackPriority::TensorFirst);
        let cf = first(PackPriority::CudaFirst);
        println!(
            "  {}: tensor-first {} vs cuda-first {} ({})",
            b.name(),
            tf,
            cf,
            if tf <= cf {
                "tensor-first wins"
            } else {
                "cuda-first wins"
            }
        );
    }

    println!();
    println!("# Ablation 3: two-stage vs single-line duration model (validation error)");
    {
        // Ground-truth sweep from the simulator (as in Fig. 10).
        let cd = Benchmark::Fft.task()[0].clone();
        let entry_cfg = enumerate_configs(&tc.def, &cd.def, &spec.sm, PackPriority::TensorFirst)[0];
        let fused = fuse_flexible(&tc.def, &cd.def, entry_cfg, &spec.sm).expect("fuse");
        let x_tc = profiler.measure(&tc).expect("tc");
        let t_cd_unit = profiler.measure(&cd).expect("cd");
        let mut sweep = Vec::new();
        let mut r = 0.1;
        while r <= 2.0 {
            let cd_grid = ((cd.grid as f64 * r * x_tc.ratio(t_cd_unit)).round() as u64).max(1);
            let launch = fused.launch(tc.grid, cd_grid, &tc.bindings, &cd.bindings);
            let plan = ExecutablePlan::from_launch(&spec, &launch).expect("plan");
            let t = device.run_plan(&plan).expect("run").duration;
            sweep.push((r, t.ratio(x_tc)));
            r += 0.1;
        }
        let train: Vec<(f64, f64)> = [0.1, 0.2, 1.8, 1.9]
            .iter()
            .map(|&tr| {
                *sweep
                    .iter()
                    .min_by(|a, b| (a.0 - tr).abs().total_cmp(&(b.0 - tr).abs()))
                    .expect("sweep nonempty")
            })
            .collect();
        let two_stage = FusedPairModel::fit("ab", &train).expect("fit");
        let single = LinReg::fit(&train).expect("fit");
        let err = |pred: &dyn Fn(f64) -> f64| -> f64 {
            sweep
                .iter()
                .map(|(x, y)| ((pred(*x) - y) / y).abs())
                .sum::<f64>()
                / sweep.len() as f64
        };
        let e2 = err(&|x| two_stage.predict_norm(x));
        let e1 = err(&|x| single.predict(x));
        println!(
            "  two-stage: {:.2}%   single LR: {:.2}%",
            100.0 * e2,
            100.0 * e1
        );
        assert!(e2 < e1, "the two-stage model must beat a single line");
    }

    println!();
    println!("# Ablation 5: initial-model profiling ratios (paper's 4 vs our 7)");
    {
        let cd = Benchmark::Cutcp.task()[0].clone();
        let cfg = enumerate_configs(&tc.def, &cd.def, &spec.sm, PackPriority::TensorFirst)[0];
        let fused = fuse_flexible(&tc.def, &cd.def, cfg, &spec.sm).expect("fuse");
        let x_tc = profiler.measure(&tc).expect("tc");
        let t_cd_unit = profiler.measure(&cd).expect("cd");
        let sample_at = |r: f64| -> (f64, f64) {
            let cd_grid = ((cd.grid as f64 * r * x_tc.ratio(t_cd_unit)).round() as u64).max(1);
            let launch = fused.launch(tc.grid, cd_grid, &tc.bindings, &cd.bindings);
            let plan = ExecutablePlan::from_launch(&spec, &launch).expect("plan");
            let t = device.run_plan(&plan).expect("run").duration;
            (r, t.ratio(x_tc))
        };
        let four: Vec<(f64, f64)> = [0.1, 0.2, 1.8, 1.9].iter().map(|&r| sample_at(r)).collect();
        let seven: Vec<(f64, f64)> = [0.1, 0.2, 0.7, 1.0, 1.3, 1.8, 1.9]
            .iter()
            .map(|&r| sample_at(r))
            .collect();
        let held: Vec<(f64, f64)> = [0.45, 0.85, 1.15, 1.55]
            .iter()
            .map(|&r| sample_at(r))
            .collect();
        let err = |m: &FusedPairModel| -> f64 {
            held.iter()
                .map(|(r, y)| ((m.predict_norm(*r) - y) / y).abs())
                .sum::<f64>()
                / held.len() as f64
        };
        let m4 = FusedPairModel::fit("four", &four).expect("fit 4");
        let m7 = FusedPairModel::fit("seven", &seven).expect("fit 7");
        println!(
            "  initial-model error on held-out ratios: 4 points {:.1}%  vs  7 points {:.1}%",
            100.0 * err(&m4),
            100.0 * err(&m7)
        );
        // The mid-curve points can only help; allow fitting noise.
        assert!(err(&m7) <= err(&m4) + 0.02);
    }

    println!();
    println!("# Ablation 6: policy (Resnet50 + fft, BE work rate)");
    {
        let config = eval_config().with_queries(80);
        let lc = tacker_workloads::lc_service("Resnet50", &device).expect("LC");
        let be = vec![tacker_workloads::be_app("fft").expect("BE")];
        for policy in [Policy::Baymax, Policy::FusionOnly, Policy::Tacker] {
            let r = ColocationRun::new(&device, &config, std::slice::from_ref(&lc), &be)
                .expect("run")
                .policy(policy)
                .run()
                .expect("run");
            println!(
                "  {:<12} be-rate {:.3}  fused {}  reordered {}  p99 {:.1} ms",
                format!("{policy:?}"),
                r.be_work_rate(),
                r.fused_launches,
                r.reordered_launches,
                r.p99_latency().expect("queries completed").as_millis_f64()
            );
        }
    }
}
