//! Shared helpers for the figure/table regeneration binaries and the
//! Criterion benches.
//!
//! Each binary in `src/bin/` regenerates one table or figure from the
//! paper; run them all with `cargo run -p tacker-bench --bin <figNN>`.
//! The binaries print machine-readable rows so EXPERIMENTS.md can record
//! paper-vs-measured values.

use std::sync::Arc;

use tacker::prelude::*;
use tacker_sim::{Device, GpuSpec};
use tacker_workloads::{BeApp, LcService};

/// Re-exported so every figure binary fans its grid out the same way.
pub use tacker_par::{available_jobs, par_map, try_par_map};

/// The LC services of the paper's evaluation (Table II).
pub const EVAL_LC_NAMES: [&str; 6] = [
    "Resnet50",
    "ResNext",
    "VGG16",
    "VGG19",
    "Inception",
    "Densenet",
];

/// The standard experiment configuration used by the evaluation figures.
pub fn eval_config() -> ExperimentConfig {
    ExperimentConfig::default().with_queries(150)
}

/// Worker threads for figure regeneration: the shared
/// [`tacker_par::env_jobs`] convention (`TACKER_JOBS`, `0` = every
/// core), with an unparseable value treated as auto. Figure rows are
/// joined in grid order, so the printed output is identical at any jobs
/// count.
pub fn bench_jobs() -> usize {
    tacker_par::env_jobs(None).unwrap_or(0)
}

/// The paper's LC services, instantiated against a device.
///
/// # Panics
///
/// Panics if a Table II service name is unknown (a workloads-crate bug).
pub fn eval_lc_services(device: &Arc<Device>) -> Vec<LcService> {
    EVAL_LC_NAMES
        .iter()
        .map(|name| tacker_workloads::lc_service(name, device).expect("known LC service"))
        .collect()
}

/// A fresh simulated 2080Ti.
pub fn rtx2080ti() -> Arc<Device> {
    Arc::new(Device::new(GpuSpec::rtx2080ti()))
}

/// A fresh simulated V100.
pub fn v100() -> Arc<Device> {
    Arc::new(Device::new(GpuSpec::v100()))
}

/// Throughput improvement of Tacker over Baymax for one (LC, BE) pair, in
/// percent, plus the two run reports.
///
/// # Panics
///
/// Panics on simulation errors (binaries are allowed to crash loudly).
pub fn pair_improvement(
    device: &Arc<Device>,
    lc: &LcService,
    be: &BeApp,
    config: &ExperimentConfig,
) -> (f64, RunReport, RunReport) {
    let be_slice = vec![be.clone()];
    let lc_slice = std::slice::from_ref(lc);
    let baymax = ColocationRun::new(device, config, lc_slice, &be_slice)
        .expect("baymax run")
        .policy(Policy::Baymax)
        .run()
        .expect("baymax run");
    let tacker = ColocationRun::new(device, config, lc_slice, &be_slice)
        .expect("tacker run")
        .policy(Policy::Tacker)
        .run()
        .expect("tacker run");
    let imp = 100.0
        * tacker::metrics::throughput_improvement(baymax.be_work_rate(), tacker.be_work_rate());
    (imp, baymax, tacker)
}

/// Formats a percentage cell.
pub fn pct(v: f64) -> String {
    format!("{v:>6.1}%")
}

/// CPU time (user + system) consumed by this process, in clock ticks.
/// Falls back to wall-clock milliseconds off Linux; only ratios are used.
///
/// Shared by the overhead gates (the Criterion trace-overhead bench and
/// `serve_bench --check`'s telemetry gate): on a shared machine wall-clock
/// carries bursty preemption/steal noise, while CPU time doesn't bill
/// preemption to the process.
///
/// # Panics
///
/// Panics only in the non-Linux fallback if the system clock reads before
/// the Unix epoch.
pub fn cpu_time_ticks() -> u64 {
    if let Ok(stat) = std::fs::read_to_string("/proc/self/stat") {
        // Fields after the parenthesized comm: utime is the 12th, stime
        // the 13th (fields 14 and 15 of the full line).
        if let Some(rest) = stat.rsplit(')').next() {
            let fields: Vec<&str> = rest.split_whitespace().collect();
            if let (Some(ut), Some(st)) = (fields.get(11), fields.get(12)) {
                if let (Ok(ut), Ok(st)) = (ut.parse::<u64>(), st.parse::<u64>()) {
                    return ut + st;
                }
            }
        }
    }
    u64::try_from(
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .expect("clock")
            .as_millis(),
    )
    .expect("fits")
}
