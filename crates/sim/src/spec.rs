//! GPU device specifications.
//!
//! A [`GpuSpec`] bundles SM capacity limits with pipeline throughputs and a
//! memory-system description. Presets are provided for the two devices in
//! the paper's evaluation (Table II and §VIII-F): the NVIDIA RTX 2080Ti
//! (Turing) and the Tesla V100 (Volta). Throughputs are per-SM, per-cycle
//! steady-state numbers derived from the public architecture whitepapers;
//! they set the *relative* speeds the experiments depend on (Tensor Cores
//! roughly an order of magnitude denser than CUDA Cores for GEMM work).

use tacker_kernel::SmCapacity;

/// Throughput and latency description of one GPU generation.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuSpec {
    /// Marketing name, for reports.
    pub name: String,
    /// Number of streaming multiprocessors.
    pub sm_count: u32,
    /// Core clock in GHz (cycles → wall time conversion).
    pub clock_ghz: f64,
    /// Per-SM capacity limits (threads, registers, shared memory, ...).
    pub sm: SmCapacity,
    /// Tensor-pipeline throughput: FMA-equivalent ops per cycle per SM.
    pub tc_ops_per_cycle: f64,
    /// CUDA-core throughput: FP32 FMA ops per cycle per SM.
    pub cd_ops_per_cycle: f64,
    /// Shared-memory bandwidth, bytes per cycle per SM.
    pub shared_bytes_per_cycle: f64,
    /// L1 bandwidth, bytes per cycle per SM.
    pub l1_bytes_per_cycle: f64,
    /// Aggregate DRAM bandwidth, bytes per cycle (whole device).
    pub dram_bytes_per_cycle: f64,
    /// L1 hit latency in cycles.
    pub l1_latency: f64,
    /// DRAM miss latency in cycles.
    pub dram_latency: f64,
    /// Shared-memory access latency in cycles.
    pub shared_latency: f64,
    /// Instruction-issue slots per cycle per SM (warp schedulers).
    pub issue_slots_per_cycle: f64,
    /// Issue/decode occupancy cost per lowered op, in issue-slot cycles.
    /// This models the per-instruction scheduling overhead that makes a
    /// fused kernel a few percent slower than perfect overlap (Table I's
    /// 1.03×).
    pub issue_cost_per_op: f64,
    /// Fixed cost of launching a fresh block onto an SM, cycles.
    pub block_launch_overhead: f64,
    /// Fixed kernel launch latency added to every kernel, cycles.
    pub kernel_launch_overhead: f64,
}

impl GpuSpec {
    /// NVIDIA GeForce RTX 2080Ti (Turing TU102): 68 SMs, 544 Tensor Cores,
    /// 64 KB shared memory per SM, ~616 GB/s GDDR6.
    pub fn rtx2080ti() -> GpuSpec {
        GpuSpec {
            name: "RTX 2080Ti".to_string(),
            sm_count: 68,
            clock_ghz: 1.545,
            sm: SmCapacity::TURING,
            // 8 Tensor Cores/SM × 64 FMA/cycle peak; real mainloops sustain
            // about half of peak, which is what the timing model uses.
            tc_ops_per_cycle: 256.0,
            // 64 FP32 cores/SM peak, ~50% sustained.
            cd_ops_per_cycle: 32.0,
            shared_bytes_per_cycle: 128.0,
            l1_bytes_per_cycle: 64.0,
            // 616 GB/s peak ÷ 1.545 GHz ≈ 399 B/cycle; ~75% achievable on
            // well-coalesced streams.
            dram_bytes_per_cycle: 300.0,
            l1_latency: 32.0,
            dram_latency: 420.0,
            shared_latency: 24.0,
            issue_slots_per_cycle: 4.0,
            issue_cost_per_op: 8.0,
            block_launch_overhead: 300.0,
            kernel_launch_overhead: 3000.0,
        }
    }

    /// NVIDIA Tesla V100 (Volta GV100): 80 SMs, 640 Tensor Cores, 96 KB
    /// shared memory per SM, ~900 GB/s HBM2.
    pub fn v100() -> GpuSpec {
        GpuSpec {
            name: "V100".to_string(),
            sm_count: 80,
            clock_ghz: 1.38,
            sm: SmCapacity::VOLTA,
            tc_ops_per_cycle: 256.0,
            cd_ops_per_cycle: 32.0,
            shared_bytes_per_cycle: 128.0,
            l1_bytes_per_cycle: 64.0,
            // 900 GB/s peak ÷ 1.38 GHz ≈ 652 B/cycle; ~75% achievable.
            dram_bytes_per_cycle: 489.0,
            l1_latency: 28.0,
            dram_latency: 400.0,
            shared_latency: 20.0,
            issue_slots_per_cycle: 4.0,
            issue_cost_per_op: 8.0,
            block_launch_overhead: 300.0,
            kernel_launch_overhead: 3000.0,
        }
    }

    /// DRAM bandwidth share of one SM when `active_sms` SMs stream memory.
    pub fn dram_bytes_per_cycle_per_sm(&self, active_sms: u32) -> f64 {
        self.dram_bytes_per_cycle / active_sms.max(1) as f64
    }

    /// Converts a cycle count to simulated time on this device's clock.
    pub fn cycles_to_time(&self, cycles: tacker_kernel::Cycles) -> tacker_kernel::SimTime {
        cycles.to_sim_time(self.clock_ghz)
    }
}

impl Default for GpuSpec {
    fn default() -> Self {
        GpuSpec::rtx2080ti()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tacker_kernel::Cycles;

    #[test]
    fn presets_match_table_ii() {
        let t = GpuSpec::rtx2080ti();
        assert_eq!(t.sm_count, 68);
        assert_eq!(t.sm.shared_mem_bytes, 64 * 1024);
        let v = GpuSpec::v100();
        assert_eq!(v.sm.shared_mem_bytes, 96 * 1024);
        assert!(v.sm_count > t.sm_count);
    }

    #[test]
    fn tensor_cores_dominate_cuda_cores() {
        let t = GpuSpec::rtx2080ti();
        assert!(t.tc_ops_per_cycle / t.cd_ops_per_cycle >= 4.0);
    }

    #[test]
    fn dram_share_scales_with_active_sms() {
        let t = GpuSpec::rtx2080ti();
        let all = t.dram_bytes_per_cycle_per_sm(68);
        let one = t.dram_bytes_per_cycle_per_sm(1);
        assert!((one / all - 68.0).abs() < 1e-9);
        // Zero active SMs does not divide by zero.
        assert!(t.dram_bytes_per_cycle_per_sm(0).is_finite());
    }

    #[test]
    fn cycles_to_time_uses_clock() {
        let t = GpuSpec::rtx2080ti();
        let time = t.cycles_to_time(Cycles::new(1_545_000));
        assert_eq!(time.as_micros_f64().round() as u64, 1000);
    }
}
