//! Executable plans: a lowered block program plus launch-level context.
//!
//! A plan is what the device actually executes. Plain kernels build a plan
//! straight from a [`KernelLaunch`]; the fuser builds plans for fused
//! kernels by combining the component roles itself.

use std::sync::Arc;

use tacker_kernel::{
    intern_name, lower_block, BlockProgram, KernelKind, KernelLaunch, Name, NameId, ResourceUsage,
};

use crate::compile::{CompiledCell, CompiledProgram};
use crate::error::SimError;
use crate::spec::GpuSpec;

/// A fully lowered, ready-to-simulate kernel execution.
///
/// Built with [`ExecutablePlan::assemble`] (or [`ExecutablePlan::from_launch`]
/// for plain kernels); the constructor interns the name into a dense
/// [`NameId`] and attaches the compiled-program cache the engine reuses
/// across simulations of the same plan.
#[derive(Debug, Clone)]
pub struct ExecutablePlan {
    /// Kernel (or fused kernel) name, for reports and errors. Shared so
    /// per-event trace records clone a pointer, not the string.
    pub name: Name,
    /// Dense interned identity of `name`, for hot-path bookkeeping (the
    /// engine and telemetry compare/index by this, never by string).
    pub name_id: NameId,
    /// Whether this plan executes a fused kernel (drives the device's
    /// fused-vs-plain cache accounting).
    pub fused: bool,
    /// The per-block warp programs.
    pub block: BlockProgram,
    /// Number of blocks actually issued to the device. For PTB kernels this
    /// is the fixed persistent grid; for plain kernels it equals the
    /// original grid.
    pub issued_blocks: u64,
    /// Per-block resource usage (determines occupancy).
    pub resources: ResourceUsage,
    /// Threads per block (determines thread-slot occupancy).
    pub threads_per_block: u32,
    /// A stable fingerprint for memoization, when available.
    pub fingerprint: Option<u64>,
    /// Lazily filled per-spec compiled programs, shared between clones.
    /// Memoization state, not semantics: excluded from equality.
    compiled: CompiledCell,
}

impl PartialEq for ExecutablePlan {
    fn eq(&self, other: &Self) -> bool {
        // `name_id` is determined by `name`; `compiled` is cache state.
        self.name == other.name
            && self.fused == other.fused
            && self.block == other.block
            && self.issued_blocks == other.issued_blocks
            && self.resources == other.resources
            && self.threads_per_block == other.threads_per_block
            && self.fingerprint == other.fingerprint
    }
}

impl ExecutablePlan {
    /// Assembles a plan from already-lowered parts, interning the name
    /// and attaching a fresh compiled-program cache. This is the one
    /// constructor: the cache cell is private, so plans cannot be built
    /// with struct literals.
    pub fn assemble(
        name: impl Into<Name>,
        fused: bool,
        block: BlockProgram,
        issued_blocks: u64,
        resources: ResourceUsage,
        threads_per_block: u32,
        fingerprint: Option<u64>,
    ) -> ExecutablePlan {
        let name = name.into();
        let name_id = intern_name(&name);
        ExecutablePlan {
            name,
            name_id,
            fused,
            block,
            issued_blocks,
            resources,
            threads_per_block,
            fingerprint,
            compiled: CompiledCell::default(),
        }
    }

    /// The block program compiled against `spec`: cached after the first
    /// simulation, re-verified against the current block contents.
    pub(crate) fn compiled_for(&self, spec: &GpuSpec) -> Arc<CompiledProgram> {
        self.compiled.get_or_compile(spec, &self.block)
    }
    /// Builds a plan for a plain (non-fused) kernel launch.
    ///
    /// PTB-transformed kernels are issued with exactly one full wave of
    /// persistent blocks (`occupancy × sm_count`); other kernels issue their
    /// original grid.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Kernel`] if lowering fails and
    /// [`SimError::LaunchFailure`] if a block cannot fit on an SM.
    pub fn from_launch(spec: &GpuSpec, launch: &KernelLaunch) -> Result<ExecutablePlan, SimError> {
        let def = &launch.def;
        let threads = def.block_dim().total() as u32;
        let occupancy = spec.sm.blocks_per_sm(def.resources(), threads);
        if occupancy == 0 {
            return Err(SimError::LaunchFailure {
                kernel: def.name_shared(),
                reason: format!(
                    "block ({} threads, {}) exceeds SM capacity",
                    threads,
                    def.resources()
                ),
            });
        }
        let issued = if def.is_ptb() {
            (occupancy as u64 * spec.sm_count as u64).min(launch.grid_blocks.max(1))
        } else {
            launch.grid_blocks
        };
        if issued == 0 {
            return Err(SimError::LaunchFailure {
                kernel: def.name_shared(),
                reason: "empty grid".to_string(),
            });
        }
        let mut bindings = launch.bindings.clone();
        // PTB kernels receive their original grid as a parameter (Fig. 7).
        if def.is_ptb() {
            bindings
                .entry("original_block_num".to_string())
                .or_insert(launch.grid_blocks);
        }
        let block = lower_block(def, launch.grid_blocks, &bindings)?;
        Ok(ExecutablePlan::assemble(
            def.name_shared(),
            def.kind() == KernelKind::Fused,
            block,
            issued,
            *def.resources(),
            threads,
            Some(launch.fingerprint()),
        ))
    }

    /// Resident blocks per SM for this plan on the given device.
    pub fn occupancy(&self, spec: &GpuSpec) -> u32 {
        spec.sm
            .blocks_per_sm(&self.resources, self.threads_per_block)
    }

    /// Number of issued blocks assigned to the most-loaded SM.
    pub fn blocks_on_busiest_sm(&self, spec: &GpuSpec) -> u64 {
        self.issued_blocks.div_ceil(spec.sm_count as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use tacker_kernel::ast::{Expr, Stmt};
    use tacker_kernel::{Bindings, Dim3, KernelDef, KernelKind};

    fn plain_kernel() -> KernelDef {
        KernelDef::builder("plain", KernelKind::Cuda)
            .block_dim(Dim3::x(256))
            .resources(ResourceUsage::new(32, 8 * 1024))
            .body(vec![Stmt::compute_cd(Expr::lit(100), "fma")])
            .build()
            .unwrap()
    }

    fn ptb_kernel() -> KernelDef {
        KernelDef::builder("ptb", KernelKind::Cuda)
            .block_dim(Dim3::x(256))
            .resources(ResourceUsage::new(32, 8 * 1024))
            .param("original_block_num")
            .body(vec![Stmt::PtbLoop {
                original_blocks: Expr::param("original_block_num"),
                body: vec![Stmt::compute_cd(Expr::lit(100), "fma")],
            }])
            .ptb(true)
            .build()
            .unwrap()
    }

    #[test]
    fn plain_kernel_issues_original_grid() {
        let spec = GpuSpec::rtx2080ti();
        let launch = KernelLaunch::new(Arc::new(plain_kernel()), 500, Bindings::new());
        let plan = ExecutablePlan::from_launch(&spec, &launch).unwrap();
        assert_eq!(plan.issued_blocks, 500);
        assert_eq!(plan.block.roles[0].original_blocks, 500);
    }

    #[test]
    fn ptb_kernel_issues_one_wave() {
        let spec = GpuSpec::rtx2080ti();
        let launch = KernelLaunch::new(Arc::new(ptb_kernel()), 5000, Bindings::new());
        let plan = ExecutablePlan::from_launch(&spec, &launch).unwrap();
        // 8 KB smem → 8 blocks/SM cap, but thread slots cap at 4 (1024/256).
        let occ = plan.occupancy(&spec);
        assert_eq!(occ, 4);
        assert_eq!(plan.issued_blocks, occ as u64 * 68);
        // The persistent blocks still cover the whole original grid.
        assert_eq!(plan.block.roles[0].original_blocks, 5000);
    }

    #[test]
    fn ptb_kernel_small_grid_is_not_overissued() {
        let spec = GpuSpec::rtx2080ti();
        let launch = KernelLaunch::new(Arc::new(ptb_kernel()), 10, Bindings::new());
        let plan = ExecutablePlan::from_launch(&spec, &launch).unwrap();
        assert_eq!(plan.issued_blocks, 10);
    }

    #[test]
    fn oversized_block_rejected() {
        let spec = GpuSpec::rtx2080ti();
        let def = KernelDef::builder("fat", KernelKind::Cuda)
            .block_dim(Dim3::x(256))
            .resources(ResourceUsage::new(32, 128 * 1024))
            .body(vec![Stmt::compute_cd(Expr::lit(1), "fma")])
            .build()
            .unwrap();
        let launch = KernelLaunch::new(Arc::new(def), 10, Bindings::new());
        assert!(matches!(
            ExecutablePlan::from_launch(&spec, &launch),
            Err(SimError::LaunchFailure { .. })
        ));
    }

    #[test]
    fn empty_grid_rejected() {
        let spec = GpuSpec::rtx2080ti();
        let launch = KernelLaunch::new(Arc::new(plain_kernel()), 0, Bindings::new());
        assert!(ExecutablePlan::from_launch(&spec, &launch).is_err());
    }

    #[test]
    fn busiest_sm_share() {
        let spec = GpuSpec::rtx2080ti();
        let launch = KernelLaunch::new(Arc::new(plain_kernel()), 69, Bindings::new());
        let plan = ExecutablePlan::from_launch(&spec, &launch).unwrap();
        assert_eq!(plan.blocks_on_busiest_sm(&spec), 2);
    }
}
