//! A FCFS serial server — the reusable pipeline-stage component.
//!
//! The SM engine instantiates six of these (Tensor, CUDA, issue, L1,
//! shared, DRAM); any component modelling a rate-limited serial resource
//! can reuse it.

use std::collections::VecDeque;

use tacker_kernel::Name;
use tacker_trace::{ServerKind, TraceEvent};

use crate::result::Interval;

/// A FCFS serial server with a service rate: requests occupy it
/// back-to-back, each completing `service` time units after the later of
/// its arrival and the server becoming free.
#[derive(Debug, Clone)]
pub struct FcfsServer {
    next_free: f64,
    busy: f64,
    intervals: Vec<Interval>,
    record: bool,
    /// Queue/wait accounting, maintained only when tracing is enabled
    /// (`track_stats`): op count, total cycles spent waiting for the
    /// server, in-flight completion times, and peak simultaneous depth.
    track_stats: bool,
    acquires: u64,
    wait: f64,
    inflight: VecDeque<f64>,
    max_depth: u32,
}

impl FcfsServer {
    /// A fresh idle server. `record` retains busy intervals (for
    /// activity summaries); `track_stats` maintains queue/wait
    /// statistics (for trace sinks).
    pub fn new(record: bool, track_stats: bool) -> FcfsServer {
        FcfsServer {
            next_free: 0.0,
            busy: 0.0,
            intervals: Vec::new(),
            record,
            track_stats,
            acquires: 0,
            wait: 0.0,
            inflight: VecDeque::new(),
            max_depth: 0,
        }
    }

    /// Occupies the server for `service` cycles starting no earlier than
    /// `now`; returns the completion time. `inline(always)`: the plain
    /// `#[inline]` hint loses to the engine run loop's size and leaves
    /// seven out-of-line calls in the hot path (measured via
    /// disassembly), where inlining also folds the constant
    /// `record`/`track_stats` flags per call site.
    #[inline(always)]
    pub fn acquire(&mut self, now: f64, service: f64) -> f64 {
        let start = now.max(self.next_free);
        let end = start + service;
        self.next_free = end;
        self.busy += service;
        if self.record && service > 0.0 {
            match self.intervals.last_mut() {
                Some(last) if start <= last.end + 1e-9 => last.end = end,
                _ => self.intervals.push(Interval { start, end }),
            }
        }
        if self.track_stats {
            self.acquires += 1;
            self.wait += start - now;
            while self.inflight.front().is_some_and(|&e| e <= now) {
                self.inflight.pop_front();
            }
            self.inflight.push_back(end);
            self.max_depth = self.max_depth.max(self.inflight.len() as u32);
        }
        end
    }

    /// Total busy time accumulated so far.
    pub fn busy(&self) -> f64 {
        self.busy
    }

    /// Takes the recorded busy intervals (empty unless `record`).
    pub fn take_intervals(&mut self) -> Vec<Interval> {
        std::mem::take(&mut self.intervals)
    }

    /// The server's queue/wait statistics as a trace event.
    pub fn stats_event(&self, kernel: &Name, kind: ServerKind) -> TraceEvent {
        TraceEvent::ServerStats {
            kernel: kernel.clone(),
            server: kind,
            acquires: self.acquires,
            busy_cycles: self.busy,
            wait_cycles: self.wait,
            max_queue_depth: self.max_depth,
        }
    }
}
