//! `tacker-sim::core` — the reusable component/event-handler simulation
//! kernel (DSLab-style).
//!
//! Three pieces:
//!
//! * [`Simulation`] owns the event calendar (any [`crate::queue::SimQueue`]
//!   — the reference heap or the u128-packed calendar/bucket queue), the
//!   monotone event sequence that breaks time ties deterministically, the
//!   clock, and a seeded RNG.
//! * [`SimulationContext`] is the handle a component holds during
//!   dispatch: schedule follow-ups, read the clock, draw randomness, and
//!   read the queue's inline-continuation bound (what powers warp
//!   macro-stepping).
//! * [`EventHandler`] is the component trait. It is generic over the
//!   queue, so a single hot component (the SM warp engine) dispatches
//!   monomorphically — zero virtual calls per event — while coarse
//!   actors (arrival processes, fleet dispatchers, devices) register on
//!   a [`Router`] behind `dyn` and pay one virtual call per *query*.
//!
//! Event payloads are compact `u32`s (an index into component state),
//! never boxed values: the calendar packs `(time, seq, payload)` into
//! one `u128`, so scheduling is an integer append. This is the
//! load-bearing difference from a boxed-payload actor kernel — it keeps
//! the engine's tens-of-millions-events-per-second hot path while still
//! giving coarse actors a composable component model.
//!
//! The existing actors run on this kernel: the SM warp scheduler and
//! pipeline servers ([`FcfsServer`]) in [`crate::engine`], the `Device`
//! launch component ([`crate::device::DeviceComponent`]), the serve
//! arrival process, and the fleet dispatcher (both in the `tacker`
//! crate). DESIGN.md §3 has the component diagram and a guide to
//! writing a new component.

mod router;
mod server;
mod simulation;

pub use router::{route_payload, ComponentId, Router, ROUTE_PAYLOAD_BITS, ROUTE_PAYLOAD_MASK};
pub use server::FcfsServer;
pub use simulation::{Event, EventHandler, Schedule, Simulation, SimulationContext};
