//! Multi-component routing over one event calendar.
//!
//! The [`Router`] is itself an [`EventHandler`]: it splits each event's
//! payload into a destination [`ComponentId`] (high 8 bits) and the
//! component's own payload (low 24 bits) and forwards to the registered
//! handler. Delivery order is a property of the calendar alone —
//! ascending `(time, seq)` — so *registration order never changes
//! behaviour*; ids only name destinations (property-tested in
//! `tests/component_core.rs`).

use crate::core::simulation::{Event, EventHandler, SimulationContext};
use crate::queue::SimQueue;

/// Payload bits left to the component after routing.
pub const ROUTE_PAYLOAD_BITS: u32 = 24;
/// Mask of the component-owned payload bits.
pub const ROUTE_PAYLOAD_MASK: u32 = (1 << ROUTE_PAYLOAD_BITS) - 1;

/// A registered component's address on a [`Router`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ComponentId(u32);

impl ComponentId {
    /// The registry slot (also the routing prefix).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Packs a routed payload: `dest` in the high 8 bits, the component
/// payload in the low 24. Panics if the payload needs more than 24 bits
/// — routed components index coarse work lists (queries, launches),
/// never per-warp events.
#[inline]
pub fn route_payload(dest: ComponentId, payload: u32) -> u32 {
    assert!(
        payload <= ROUTE_PAYLOAD_MASK,
        "routed payload {payload:#x} exceeds {ROUTE_PAYLOAD_BITS} bits"
    );
    (dest.0 << ROUTE_PAYLOAD_BITS) | payload
}

/// A registry of named components sharing one calendar. Components are
/// borrowed (`&mut dyn EventHandler<Q>`) so the driver keeps ownership
/// and can inspect their state after the run.
pub struct Router<'h, Q> {
    components: Vec<(String, &'h mut dyn EventHandler<Q>)>,
}

impl<'h, Q: SimQueue> Default for Router<'h, Q> {
    fn default() -> Self {
        Router::new()
    }
}

impl<'h, Q: SimQueue> Router<'h, Q> {
    /// An empty registry.
    pub fn new() -> Router<'h, Q> {
        Router {
            components: Vec::new(),
        }
    }

    /// Registers `handler` under `name`, returning its address. At most
    /// 256 components fit the 8-bit routing prefix.
    pub fn add(&mut self, name: &str, handler: &'h mut dyn EventHandler<Q>) -> ComponentId {
        let id = u32::try_from(self.components.len()).expect("component count fits u32");
        assert!(
            id < (1 << (32 - ROUTE_PAYLOAD_BITS)),
            "router supports at most 256 components"
        );
        self.components.push((name.to_string(), handler));
        ComponentId(id)
    }

    /// The registered name of `id`.
    pub fn name(&self, id: ComponentId) -> &str {
        &self.components[id.index()].0
    }
}

impl<'h, Q: SimQueue> EventHandler<Q> for Router<'h, Q> {
    fn on_event(&mut self, event: Event, ctx: &mut SimulationContext<'_, Q>) {
        let dest = (event.payload >> ROUTE_PAYLOAD_BITS) as usize;
        let payload = event.payload & ROUTE_PAYLOAD_MASK;
        self.components[dest].1.on_event(
            Event {
                time: event.time,
                payload,
            },
            ctx,
        );
    }
}
