//! The simulation kernel: clock, event calendar, seeded RNG, dispatch.

use crate::queue::SimQueue;

/// One dispatched event: the simulated time it fires at and a compact
/// opaque payload. Payloads are deliberately `u32` — the calendar queue
/// packs the whole event (time, sequence, payload) into one `u128` key,
/// so an event is a machine word append, never an allocation. Components
/// that need richer event data keep it in their own state and use the
/// payload as an index (the warp engine indexes its warp table; the
/// serve arrival process indexes its merged arrival list).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Event {
    /// Simulated time (cycles or nanoseconds — the driver picks the unit).
    pub time: f64,
    /// Opaque component-defined payload (routed events reserve the high
    /// bits for the destination component, see [`crate::core::Router`]).
    pub payload: u32,
}

/// A component that consumes events from a [`Simulation`].
///
/// The trait is generic over the queue so dispatch is monomorphized:
/// the warp engine's hot loop pays no virtual call per event. Coarser
/// actors (arrival processes, dispatchers, devices) can be boxed behind
/// `dyn EventHandler<Q>` and routed by a [`crate::core::Router`], where
/// one virtual call per *query* is noise.
pub trait EventHandler<Q: SimQueue> {
    /// Handles one event. New events are scheduled through `ctx`; the
    /// context also exposes the queue's inline-continuation bound for
    /// handlers that coalesce (see [`SimulationContext::inline_bound`]).
    fn on_event(&mut self, event: Event, ctx: &mut SimulationContext<'_, Q>);
}

/// Anything that can accept a scheduled event: the [`Simulation`] itself
/// (outside dispatch, e.g. while seeding the initial wave) or the
/// [`SimulationContext`] handed to a handler (during dispatch).
pub trait Schedule {
    /// Schedules `payload` to fire at absolute time `time`.
    fn schedule(&mut self, time: f64, payload: u32);
}

/// The simulation kernel: owns the event queue, the monotone event
/// sequence (the deterministic tie-breaker for equal times), the clock,
/// and a seeded [SplitMix64] RNG for components that need deterministic
/// randomness.
///
/// `Q` is any [`SimQueue`] — the reference binary heap or the
/// calendar/bucket queue — or a `&mut` borrow of one living in a scratch
/// arena. Both drain the same total `(time, seq)` order, so results are
/// a pure function of the schedule calls, never of the queue choice.
///
/// [SplitMix64]: https://prng.di.unimi.it/splitmix64.c
#[derive(Debug)]
pub struct Simulation<Q> {
    queue: Q,
    seq: u64,
    clock: f64,
    rng: u64,
}

impl<Q: SimQueue> Simulation<Q> {
    /// A kernel over `queue` with RNG seed 0.
    pub fn new(queue: Q) -> Simulation<Q> {
        Simulation::seeded(queue, 0)
    }

    /// A kernel over `queue` with an explicit RNG seed.
    pub fn seeded(queue: Q, seed: u64) -> Simulation<Q> {
        Simulation {
            queue,
            seq: 0,
            clock: 0.0,
            rng: seed,
        }
    }

    /// Current simulated time: the time of the last dispatched event.
    pub fn time(&self) -> f64 {
        self.clock
    }

    /// Total events scheduled so far.
    pub fn scheduled(&self) -> u64 {
        self.seq
    }

    /// Next SplitMix64 draw from the kernel's seeded stream.
    pub fn rand_u64(&mut self) -> u64 {
        self.rng = self.rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn rand_f64(&mut self) -> f64 {
        (self.rand_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Pops the earliest pending event, advancing the clock. `None` when
    /// the calendar is empty.
    #[inline]
    pub fn pop(&mut self) -> Option<Event> {
        let (time, payload, _) = self.queue.pop_with_hint()?;
        self.clock = time;
        Some(Event { time, payload })
    }

    /// Earliest pending event time without popping, if any.
    #[inline]
    pub fn peek_time(&mut self) -> Option<f64> {
        self.queue.peek_time()
    }

    /// Dispatches events to `handler` until the calendar is empty.
    ///
    /// Events drain in ascending `(time, seq)` order — equal times fire
    /// in the order they were scheduled — so a run is bit-reproducible
    /// regardless of queue kind or handler registration order.
    #[inline]
    pub fn run<H: EventHandler<Q>>(&mut self, handler: &mut H) {
        while let Some((time, payload, hint)) = self.queue.pop_with_hint() {
            self.clock = time;
            let mut ctx = SimulationContext {
                inline_bound: hint,
                sim: self,
            };
            handler.on_event(Event { time, payload }, &mut ctx);
        }
    }

    /// Dispatches every event with `time <= bound` to `handler`, leaving
    /// later events pending. Used by drivers that interleave a component
    /// calendar with an outer clock (the serve loop drains its arrival
    /// process up to the engine's current instant).
    pub fn run_until<H: EventHandler<Q>>(&mut self, bound: f64, handler: &mut H) {
        while self.queue.peek_time().is_some_and(|t| t <= bound) {
            let Some((time, payload, hint)) = self.queue.pop_with_hint() else {
                break;
            };
            self.clock = time;
            let mut ctx = SimulationContext {
                inline_bound: hint,
                sim: self,
            };
            handler.on_event(Event { time, payload }, &mut ctx);
        }
    }
}

impl<Q: SimQueue> Schedule for Simulation<Q> {
    #[inline]
    fn schedule(&mut self, time: f64, payload: u32) {
        self.seq += 1;
        self.queue.push(time, self.seq, payload);
    }
}

/// A handler's view of the kernel during dispatch: schedule follow-up
/// events, read the clock, draw randomness, and read the
/// inline-continuation bound.
#[derive(Debug)]
pub struct SimulationContext<'a, Q> {
    sim: &'a mut Simulation<Q>,
    inline_bound: f64,
}

impl<'a, Q: SimQueue> SimulationContext<'a, Q> {
    /// The dispatched event's time (the kernel clock).
    pub fn time(&self) -> f64 {
        self.sim.clock
    }

    /// A conservative lower bound on the earliest *other* pending
    /// event's time, delivered with the pop itself: the exact minimum
    /// when the queue knows it cheaply, `+∞` when the calendar went
    /// empty, `-∞` when an exact answer would cost a scan. A handler may
    /// process any wake-up strictly below this bound *inline* — it would
    /// have been the very next event dispatched anyway — which is what
    /// the warp engine's macro-stepper does. The bound stays valid only
    /// while the handler does not schedule, so coalesce first, push
    /// last.
    pub fn inline_bound(&self) -> f64 {
        self.inline_bound
    }

    /// Next SplitMix64 draw from the kernel's seeded stream.
    pub fn rand_u64(&mut self) -> u64 {
        self.sim.rand_u64()
    }

    /// Uniform draw in `[0, 1)`.
    pub fn rand_f64(&mut self) -> f64 {
        self.sim.rand_f64()
    }
}

impl<'a, Q: SimQueue> Schedule for SimulationContext<'a, Q> {
    #[inline]
    fn schedule(&mut self, time: f64, payload: u32) {
        self.sim.schedule(time, payload);
    }
}
