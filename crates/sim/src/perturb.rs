//! Seeded fault perturbation of completed kernel runs.
//!
//! The serving runtime's fault-injection layer (tacker-core) models
//! duration mispredictions and stragglers by stretching the *realized*
//! timing of a run while the predictor keeps using its unperturbed
//! history. The stretch happens here, on the [`KernelRun`] a device
//! execution returned — never inside the device itself, so the memoized
//! execution caches stay fault-free and shareable across runs with
//! different fault plans.

use tacker_kernel::Cycles;

use crate::result::{Interval, KernelRun};

/// Returns a copy of `run` with every timing stretched by `factor`
/// (≥ 1.0 inflates, < 1.0 would shrink — clamped to ≥ 0.0).
///
/// Scales the makespan (cycles and wall duration), the pipeline
/// busy-time summary, the busy intervals, and the per-role finish
/// cycles, preserving the run's internal proportions: utilizations and
/// the co-run/solo-run phase split are invariant under the stretch.
/// Event counts, occupancy and DRAM bytes describe *what* the engine
/// did, not how long it took, and pass through unchanged. The
/// precomputed [`crate::result::RunSummary`] is rebuilt from the scaled
/// fields. The stretched run is a fresh owned value — the shared cached
/// run behind the device's `Arc` handle is never touched.
pub fn scale_run(run: &KernelRun, factor: f64) -> KernelRun {
    let factor = factor.max(0.0);
    let scale_cycles = |c: Cycles| Cycles::new((c.get() as f64 * factor).round() as u64);
    let scale_intervals = |ivs: &[Interval]| {
        ivs.iter()
            .map(|iv| Interval {
                start: iv.start * factor,
                end: iv.end * factor,
            })
            .collect()
    };
    KernelRun {
        name: run.name.clone(),
        name_id: run.name_id,
        cycles: scale_cycles(run.cycles),
        duration: run.duration.mul_f64(factor),
        activity: crate::result::ActivitySummary {
            tc_busy: scale_cycles(run.activity.tc_busy),
            cd_busy: scale_cycles(run.activity.cd_busy),
        },
        tc_intervals: scale_intervals(&run.tc_intervals),
        cd_intervals: scale_intervals(&run.cd_intervals),
        role_finish: run
            .role_finish
            .iter()
            .map(|(n, c)| (n.clone(), scale_cycles(*c)))
            .collect(),
        occupancy: run.occupancy,
        dram_bytes: run.dram_bytes,
        events: run.events,
        pops: run.pops,
        macro_runs: run.macro_runs,
        summary: crate::result::RunSummary::default(),
    }
    .finalized()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::result::ActivitySummary;
    use tacker_kernel::SimTime;

    fn run() -> KernelRun {
        KernelRun {
            name: "k".into(),
            name_id: tacker_kernel::intern("k"),
            cycles: Cycles::new(1000),
            duration: SimTime::from_nanos(2000),
            activity: ActivitySummary {
                tc_busy: Cycles::new(600),
                cd_busy: Cycles::new(400),
            },
            tc_intervals: vec![Interval {
                start: 0.0,
                end: 600.0,
            }],
            cd_intervals: vec![],
            role_finish: vec![("tc".into(), Cycles::new(600))],
            occupancy: 4,
            dram_bytes: 128.0,
            events: 10,
            pops: 10,
            macro_runs: 0,
            summary: crate::result::RunSummary::default(),
        }
        .finalized()
    }

    #[test]
    fn scale_stretches_timings_uniformly() {
        let s = scale_run(&run(), 1.5);
        assert_eq!(s.cycles, Cycles::new(1500));
        assert_eq!(s.duration, SimTime::from_nanos(3000));
        assert_eq!(s.activity.tc_busy, Cycles::new(900));
        assert_eq!(s.tc_intervals[0].end, 900.0);
        assert_eq!(s.role_finish[0].1, Cycles::new(900));
    }

    #[test]
    fn scale_preserves_utilization_and_structure() {
        let r = run();
        let s = scale_run(&r, 2.0);
        let u0 = r.activity.tc_utilization(r.cycles);
        let u1 = s.activity.tc_utilization(s.cycles);
        assert!((u0 - u1).abs() < 1e-9);
        assert_eq!(s.occupancy, r.occupancy);
        assert_eq!(s.events, r.events);
        assert_eq!(s.dram_bytes, r.dram_bytes);
    }

    #[test]
    fn unit_factor_is_identity() {
        let r = run();
        assert_eq!(scale_run(&r, 1.0), r);
    }

    #[test]
    fn scale_rebuilds_the_summary() {
        let r = run();
        let s = scale_run(&r, 2.0);
        assert_eq!(s.summary, crate::result::RunSummary::of(&s));
        assert_eq!(s.summary.duration, s.duration);
        // Utilizations are scale-invariant; the summary tracks that.
        assert!((s.summary.tc_util - r.summary.tc_util).abs() < 1e-9);
    }
}
