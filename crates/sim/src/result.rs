//! Results of simulated kernel executions.

use std::fmt;

use tacker_kernel::{Cycles, Name, NameId, SimTime};

/// Precomputed aggregates of one [`KernelRun`], built once when the run
/// is constructed (and rebuilt by [`crate::scale_run`] after a stretch).
///
/// Steady-state consumers — the serving loop, telemetry windows, QoS
/// attribution — need the same handful of derived numbers for every
/// launch of a memoized run: wall duration, both pipeline utilizations,
/// and the busy-span shape. Computing them once at insertion keeps the
/// hot path to plain field reads on a shared [`std::sync::Arc`] handle
/// instead of re-deriving (or re-walking interval lists) per query.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RunSummary {
    /// Wall duration of the run (same as [`KernelRun::duration`]).
    pub duration: SimTime,
    /// Makespan in cycles (same as [`KernelRun::cycles`]).
    pub cycles: Cycles,
    /// Tensor-pipeline utilization over the run's own makespan.
    pub tc_util: f64,
    /// CUDA-pipeline utilization over the run's own makespan.
    pub cd_util: f64,
    /// Micro-events the engine processed (same as [`KernelRun::events`]).
    pub events: u64,
    /// Merged Tensor-pipeline busy spans.
    pub tc_spans: u32,
    /// Merged CUDA-pipeline busy spans.
    pub cd_spans: u32,
}

impl RunSummary {
    /// Computes the summary of `run` from its base fields.
    pub fn of(run: &KernelRun) -> RunSummary {
        let (tc_util, cd_util) = if run.cycles == Cycles::ZERO {
            (0.0, 0.0)
        } else {
            let inv = 1.0 / run.cycles.get() as f64;
            (
                run.activity.tc_busy.get() as f64 * inv,
                run.activity.cd_busy.get() as f64 * inv,
            )
        };
        RunSummary {
            duration: run.duration,
            cycles: run.cycles,
            tc_util,
            cd_util,
            events: run.events,
            tc_spans: run.tc_intervals.len() as u32,
            cd_spans: run.cd_intervals.len() as u32,
        }
    }
}

/// A half-open busy interval `[start, end)` in cycles.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    /// Interval start, cycles.
    pub start: f64,
    /// Interval end, cycles.
    pub end: f64,
}

impl Interval {
    /// Interval length in cycles.
    pub fn len(&self) -> f64 {
        (self.end - self.start).max(0.0)
    }

    /// Whether the interval is empty.
    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }
}

/// Merges a sorted-by-start interval list, closing gaps smaller than
/// `gap_tolerance` cycles.
pub fn merge_intervals(mut intervals: Vec<Interval>, gap_tolerance: f64) -> Vec<Interval> {
    intervals.retain(|iv| !iv.is_empty());
    intervals.sort_by(|a, b| a.start.total_cmp(&b.start));
    let mut out: Vec<Interval> = Vec::new();
    for iv in intervals {
        match out.last_mut() {
            Some(last) if iv.start <= last.end + gap_tolerance => {
                last.end = last.end.max(iv.end);
            }
            _ => out.push(iv),
        }
    }
    out
}

/// Busy-time summary for the two compute pipelines over one kernel run.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ActivitySummary {
    /// Cycles the Tensor pipeline was busy on the representative SM.
    pub tc_busy: Cycles,
    /// Cycles the CUDA pipeline was busy on the representative SM.
    pub cd_busy: Cycles,
}

impl ActivitySummary {
    /// Tensor-pipeline utilization over `duration`.
    pub fn tc_utilization(&self, duration: Cycles) -> f64 {
        if duration == Cycles::ZERO {
            0.0
        } else {
            self.tc_busy.get() as f64 / duration.get() as f64
        }
    }

    /// CUDA-pipeline utilization over `duration`.
    pub fn cd_utilization(&self, duration: Cycles) -> f64 {
        if duration == Cycles::ZERO {
            0.0
        } else {
            self.cd_busy.get() as f64 / duration.get() as f64
        }
    }
}

/// The outcome of simulating one kernel (or fused kernel) execution.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelRun {
    /// Kernel name.
    pub name: Name,
    /// Dense interned identity of `name`. Consumers that bucket or
    /// compare runs (telemetry, caches) key on this `u32` instead of
    /// hashing the string.
    pub name_id: NameId,
    /// Makespan on the busiest SM, in cycles (includes launch overheads).
    pub cycles: Cycles,
    /// Makespan converted with the device clock.
    pub duration: SimTime,
    /// Pipeline busy-time summary.
    pub activity: ActivitySummary,
    /// Merged Tensor-pipeline busy intervals (coarsened).
    pub tc_intervals: Vec<Interval>,
    /// Merged CUDA-pipeline busy intervals (coarsened).
    pub cd_intervals: Vec<Interval>,
    /// Completion cycle of each warp role (role name, finish), letting
    /// callers observe the co-run/solo-run phase split of fused kernels.
    pub role_finish: Vec<(Name, Cycles)>,
    /// Resident blocks per SM this run achieved.
    pub occupancy: u32,
    /// DRAM bytes moved by the representative SM (post-locality).
    pub dram_bytes: f64,
    /// Micro-events the engine processed to produce this run (0 for
    /// cache-replayed results): queue pops plus inline macro-step
    /// continuations. Deterministic for a given plan and invariant
    /// across [`crate::engine::QueueKind`] and macro-stepping.
    pub events: u64,
    /// Actual event-queue pops (0 for cache-replayed results). Equals
    /// `events` with macro-stepping off; shrinks as runs coalesce.
    pub pops: u64,
    /// Queue pops that coalesced at least one inline continuation
    /// (0 for cache-replayed results and with macro-stepping off).
    pub macro_runs: u64,
    /// Precomputed aggregates (see [`RunSummary`]); every constructor
    /// goes through [`KernelRun::finalized`] so the summary always
    /// agrees with the base fields.
    pub summary: RunSummary,
}

impl KernelRun {
    /// Fills in the precomputed [`RunSummary`] from the base fields.
    /// Call after constructing (or re-deriving) a run by struct literal.
    #[must_use]
    pub fn finalized(mut self) -> KernelRun {
        self.summary = RunSummary::of(&self);
        self
    }

    /// Finish cycle of the role whose name contains `needle`, if any.
    pub fn role_finish_containing(&self, needle: &str) -> Option<Cycles> {
        self.role_finish
            .iter()
            .find(|(n, _)| n.contains(needle))
            .map(|(_, c)| *c)
    }

    /// The co-run phase length: cycles until the *first* role finished.
    pub fn corun_cycles(&self) -> Cycles {
        self.role_finish
            .iter()
            .map(|(_, c)| *c)
            .min()
            .unwrap_or(Cycles::ZERO)
    }

    /// Tensor-pipeline utilization over this run's own makespan — the
    /// per-launch number the telemetry windows and retirement events use.
    pub fn tc_utilization(&self) -> f64 {
        self.activity.tc_utilization(self.cycles)
    }

    /// CUDA-pipeline utilization over this run's own makespan.
    pub fn cd_utilization(&self) -> f64 {
        self.activity.cd_utilization(self.cycles)
    }

    /// Both pipeline utilizations as `(tensor, cuda)` — precomputed in
    /// the [`RunSummary`] at construction, so the serving engine's
    /// telemetry path is two field reads rather than two divides.
    pub fn pipe_utilizations(&self) -> (f64, f64) {
        (self.summary.tc_util, self.summary.cd_util)
    }
}

impl fmt::Display for KernelRun {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} ({}), TC {:.0}%, CD {:.0}%",
            self.name,
            self.duration,
            self.cycles,
            100.0 * self.activity.tc_utilization(self.cycles),
            100.0 * self.activity.cd_utilization(self.cycles)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_closes_small_gaps() {
        let ivs = vec![
            Interval {
                start: 0.0,
                end: 10.0,
            },
            Interval {
                start: 11.0,
                end: 20.0,
            },
            Interval {
                start: 50.0,
                end: 60.0,
            },
        ];
        let merged = merge_intervals(ivs, 2.0);
        assert_eq!(merged.len(), 2);
        assert_eq!(merged[0].end, 20.0);
    }

    #[test]
    fn merge_drops_empty_and_sorts() {
        let ivs = vec![
            Interval {
                start: 30.0,
                end: 40.0,
            },
            Interval {
                start: 5.0,
                end: 5.0,
            },
            Interval {
                start: 0.0,
                end: 10.0,
            },
        ];
        let merged = merge_intervals(ivs, 0.0);
        assert_eq!(merged.len(), 2);
        assert_eq!(merged[0].start, 0.0);
    }

    #[test]
    fn utilization_handles_zero_duration() {
        let a = ActivitySummary::default();
        assert_eq!(a.tc_utilization(Cycles::ZERO), 0.0);
        assert_eq!(a.cd_utilization(Cycles::ZERO), 0.0);
    }

    #[test]
    fn summary_agrees_with_base_fields() {
        let run = KernelRun {
            name: "s".into(),
            name_id: tacker_kernel::intern("s"),
            cycles: Cycles::new(1000),
            duration: SimTime::from_nanos(2000),
            activity: ActivitySummary {
                tc_busy: Cycles::new(600),
                cd_busy: Cycles::new(250),
            },
            tc_intervals: vec![Interval {
                start: 0.0,
                end: 600.0,
            }],
            cd_intervals: vec![],
            role_finish: vec![],
            occupancy: 1,
            dram_bytes: 0.0,
            events: 42,
            pops: 40,
            macro_runs: 2,
            summary: RunSummary::default(),
        }
        .finalized();
        assert_eq!(run.summary.duration, run.duration);
        assert_eq!(run.summary.cycles, run.cycles);
        assert_eq!(run.summary.events, 42);
        assert_eq!(run.summary.tc_spans, 1);
        assert_eq!(run.summary.cd_spans, 0);
        assert!((run.summary.tc_util - 0.6).abs() < 1e-12);
        assert!((run.summary.cd_util - 0.25).abs() < 1e-12);
        assert_eq!(
            run.pipe_utilizations(),
            (run.summary.tc_util, run.summary.cd_util)
        );
    }

    #[test]
    fn zero_cycle_summary_has_zero_utilization() {
        let run = KernelRun {
            name: "z".into(),
            name_id: tacker_kernel::intern("z"),
            cycles: Cycles::ZERO,
            duration: SimTime::ZERO,
            activity: ActivitySummary::default(),
            tc_intervals: vec![],
            cd_intervals: vec![],
            role_finish: vec![],
            occupancy: 0,
            dram_bytes: 0.0,
            events: 0,
            pops: 0,
            macro_runs: 0,
            summary: RunSummary::default(),
        }
        .finalized();
        assert_eq!(run.summary.tc_util, 0.0);
        assert_eq!(run.summary.cd_util, 0.0);
    }

    #[test]
    fn corun_cycles_is_min_role_finish() {
        let run = KernelRun {
            name: "f".into(),
            name_id: tacker_kernel::intern("f"),
            cycles: Cycles::new(100),
            duration: SimTime::from_nanos(100),
            activity: ActivitySummary::default(),
            tc_intervals: vec![],
            cd_intervals: vec![],
            role_finish: vec![
                ("tc".into(), Cycles::new(60)),
                ("cd".into(), Cycles::new(100)),
            ],
            occupancy: 1,
            dram_bytes: 0.0,
            events: 0,
            pops: 0,
            macro_runs: 0,
            summary: RunSummary::default(),
        }
        .finalized();
        assert_eq!(run.corun_cycles(), Cycles::new(60));
        assert_eq!(run.role_finish_containing("cd"), Some(Cycles::new(100)));
        assert_eq!(run.role_finish_containing("zz"), None);
    }
}
