//! Results of simulated kernel executions.

use std::fmt;

use tacker_kernel::{Cycles, Name, NameId, SimTime};

/// A half-open busy interval `[start, end)` in cycles.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    /// Interval start, cycles.
    pub start: f64,
    /// Interval end, cycles.
    pub end: f64,
}

impl Interval {
    /// Interval length in cycles.
    pub fn len(&self) -> f64 {
        (self.end - self.start).max(0.0)
    }

    /// Whether the interval is empty.
    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }
}

/// Merges a sorted-by-start interval list, closing gaps smaller than
/// `gap_tolerance` cycles.
pub fn merge_intervals(mut intervals: Vec<Interval>, gap_tolerance: f64) -> Vec<Interval> {
    intervals.retain(|iv| !iv.is_empty());
    intervals.sort_by(|a, b| a.start.total_cmp(&b.start));
    let mut out: Vec<Interval> = Vec::new();
    for iv in intervals {
        match out.last_mut() {
            Some(last) if iv.start <= last.end + gap_tolerance => {
                last.end = last.end.max(iv.end);
            }
            _ => out.push(iv),
        }
    }
    out
}

/// Busy-time summary for the two compute pipelines over one kernel run.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ActivitySummary {
    /// Cycles the Tensor pipeline was busy on the representative SM.
    pub tc_busy: Cycles,
    /// Cycles the CUDA pipeline was busy on the representative SM.
    pub cd_busy: Cycles,
}

impl ActivitySummary {
    /// Tensor-pipeline utilization over `duration`.
    pub fn tc_utilization(&self, duration: Cycles) -> f64 {
        if duration == Cycles::ZERO {
            0.0
        } else {
            self.tc_busy.get() as f64 / duration.get() as f64
        }
    }

    /// CUDA-pipeline utilization over `duration`.
    pub fn cd_utilization(&self, duration: Cycles) -> f64 {
        if duration == Cycles::ZERO {
            0.0
        } else {
            self.cd_busy.get() as f64 / duration.get() as f64
        }
    }
}

/// The outcome of simulating one kernel (or fused kernel) execution.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelRun {
    /// Kernel name.
    pub name: Name,
    /// Dense interned identity of `name`. Consumers that bucket or
    /// compare runs (telemetry, caches) key on this `u32` instead of
    /// hashing the string.
    pub name_id: NameId,
    /// Makespan on the busiest SM, in cycles (includes launch overheads).
    pub cycles: Cycles,
    /// Makespan converted with the device clock.
    pub duration: SimTime,
    /// Pipeline busy-time summary.
    pub activity: ActivitySummary,
    /// Merged Tensor-pipeline busy intervals (coarsened).
    pub tc_intervals: Vec<Interval>,
    /// Merged CUDA-pipeline busy intervals (coarsened).
    pub cd_intervals: Vec<Interval>,
    /// Completion cycle of each warp role (role name, finish), letting
    /// callers observe the co-run/solo-run phase split of fused kernels.
    pub role_finish: Vec<(Name, Cycles)>,
    /// Resident blocks per SM this run achieved.
    pub occupancy: u32,
    /// DRAM bytes moved by the representative SM (post-locality).
    pub dram_bytes: f64,
    /// Micro-events the engine processed to produce this run (0 for
    /// cache-replayed results): queue pops plus inline macro-step
    /// continuations. Deterministic for a given plan and invariant
    /// across [`crate::engine::QueueKind`] and macro-stepping.
    pub events: u64,
    /// Actual event-queue pops (0 for cache-replayed results). Equals
    /// `events` with macro-stepping off; shrinks as runs coalesce.
    pub pops: u64,
    /// Queue pops that coalesced at least one inline continuation
    /// (0 for cache-replayed results and with macro-stepping off).
    pub macro_runs: u64,
}

impl KernelRun {
    /// Finish cycle of the role whose name contains `needle`, if any.
    pub fn role_finish_containing(&self, needle: &str) -> Option<Cycles> {
        self.role_finish
            .iter()
            .find(|(n, _)| n.contains(needle))
            .map(|(_, c)| *c)
    }

    /// The co-run phase length: cycles until the *first* role finished.
    pub fn corun_cycles(&self) -> Cycles {
        self.role_finish
            .iter()
            .map(|(_, c)| *c)
            .min()
            .unwrap_or(Cycles::ZERO)
    }

    /// Tensor-pipeline utilization over this run's own makespan — the
    /// per-launch number the telemetry windows and retirement events use.
    pub fn tc_utilization(&self) -> f64 {
        self.activity.tc_utilization(self.cycles)
    }

    /// CUDA-pipeline utilization over this run's own makespan.
    pub fn cd_utilization(&self) -> f64 {
        self.activity.cd_utilization(self.cycles)
    }

    /// Both pipeline utilizations as `(tensor, cuda)` with a single
    /// division — the serving engine calls this once per launch on its
    /// telemetry path, where two independent divides are measurable.
    pub fn pipe_utilizations(&self) -> (f64, f64) {
        if self.cycles == Cycles::ZERO {
            return (0.0, 0.0);
        }
        let inv = 1.0 / self.cycles.get() as f64;
        (
            self.activity.tc_busy.get() as f64 * inv,
            self.activity.cd_busy.get() as f64 * inv,
        )
    }
}

impl fmt::Display for KernelRun {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} ({}), TC {:.0}%, CD {:.0}%",
            self.name,
            self.duration,
            self.cycles,
            100.0 * self.activity.tc_utilization(self.cycles),
            100.0 * self.activity.cd_utilization(self.cycles)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_closes_small_gaps() {
        let ivs = vec![
            Interval {
                start: 0.0,
                end: 10.0,
            },
            Interval {
                start: 11.0,
                end: 20.0,
            },
            Interval {
                start: 50.0,
                end: 60.0,
            },
        ];
        let merged = merge_intervals(ivs, 2.0);
        assert_eq!(merged.len(), 2);
        assert_eq!(merged[0].end, 20.0);
    }

    #[test]
    fn merge_drops_empty_and_sorts() {
        let ivs = vec![
            Interval {
                start: 30.0,
                end: 40.0,
            },
            Interval {
                start: 5.0,
                end: 5.0,
            },
            Interval {
                start: 0.0,
                end: 10.0,
            },
        ];
        let merged = merge_intervals(ivs, 0.0);
        assert_eq!(merged.len(), 2);
        assert_eq!(merged[0].start, 0.0);
    }

    #[test]
    fn utilization_handles_zero_duration() {
        let a = ActivitySummary::default();
        assert_eq!(a.tc_utilization(Cycles::ZERO), 0.0);
        assert_eq!(a.cd_utilization(Cycles::ZERO), 0.0);
    }

    #[test]
    fn corun_cycles_is_min_role_finish() {
        let run = KernelRun {
            name: "f".into(),
            name_id: tacker_kernel::intern("f"),
            cycles: Cycles::new(100),
            duration: SimTime::from_nanos(100),
            activity: ActivitySummary::default(),
            tc_intervals: vec![],
            cd_intervals: vec![],
            role_finish: vec![
                ("tc".into(), Cycles::new(60)),
                ("cd".into(), Cycles::new(100)),
            ],
            occupancy: 1,
            dram_bytes: 0.0,
            events: 0,
            pops: 0,
            macro_runs: 0,
        };
        assert_eq!(run.corun_cycles(), Cycles::new(60));
        assert_eq!(run.role_finish_containing("cd"), Some(Cycles::new(100)));
        assert_eq!(run.role_finish_containing("zz"), None);
    }
}
