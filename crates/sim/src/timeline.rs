//! Device-level activity timelines.
//!
//! The recorder stitches individual [`KernelRun`]s into a wall-clock
//! timeline of which kernel occupied the device when, and how busy each
//! compute pipeline was during it. This regenerates the paper's Figs. 1, 2
//! and 15: under a reorder-only scheduler, Tensor-busy and CUDA-busy
//! intervals never overlap (the *false high utilization* problem); under
//! Tacker, fused-kernel entries are busy on both pipelines at once.

use std::fmt::Write as _;

use tacker_kernel::{Name, SimTime};
use tacker_trace::PIPELINE_ACTIVE_THRESHOLD;

use crate::result::KernelRun;

/// One executed kernel on the device timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct TimelineEntry {
    /// Kernel name.
    pub name: Name,
    /// Free-form label (e.g. "LC", "BE", "FUSED").
    pub label: String,
    /// Start instant.
    pub start: SimTime,
    /// End instant.
    pub end: SimTime,
    /// Tensor-pipeline utilization during the kernel, `[0, 1]`.
    pub tc_util: f64,
    /// CUDA-pipeline utilization during the kernel, `[0, 1]`.
    pub cd_util: f64,
}

impl TimelineEntry {
    /// Entry duration.
    pub fn duration(&self) -> SimTime {
        self.end.saturating_sub(self.start)
    }

    /// Whether the Tensor pipeline was meaningfully active
    /// (above [`PIPELINE_ACTIVE_THRESHOLD`], shared with the Perfetto
    /// exporter in `tacker-trace`).
    pub fn tc_active(&self) -> bool {
        self.tc_util > PIPELINE_ACTIVE_THRESHOLD
    }

    /// Whether the CUDA pipeline was meaningfully active
    /// (above [`PIPELINE_ACTIVE_THRESHOLD`], shared with the Perfetto
    /// exporter in `tacker-trace`).
    pub fn cd_active(&self) -> bool {
        self.cd_util > PIPELINE_ACTIVE_THRESHOLD
    }
}

/// Accumulates kernel executions into a device timeline.
#[derive(Debug, Clone, Default)]
pub struct TimelineRecorder {
    entries: Vec<TimelineEntry>,
    cursor: SimTime,
}

impl TimelineRecorder {
    /// Creates an empty timeline starting at t = 0.
    pub fn new() -> TimelineRecorder {
        TimelineRecorder::default()
    }

    /// Current end-of-timeline instant.
    pub fn now(&self) -> SimTime {
        self.cursor
    }

    /// Recorded entries in execution order.
    pub fn entries(&self) -> &[TimelineEntry] {
        &self.entries
    }

    /// Moves the cursor forward to `instant` (idle gap). Does nothing if
    /// `instant` is in the past.
    pub fn advance_to(&mut self, instant: SimTime) {
        self.cursor = self.cursor.max(instant);
    }

    /// Appends a kernel run at the cursor and advances it. Returns the
    /// entry's (start, end).
    pub fn record(&mut self, run: &KernelRun, label: impl Into<String>) -> (SimTime, SimTime) {
        let start = self.cursor;
        let end = start + run.duration;
        self.entries.push(TimelineEntry {
            name: run.name.clone(),
            label: label.into(),
            start,
            end,
            tc_util: run.summary.tc_util,
            cd_util: run.summary.cd_util,
        });
        self.cursor = end;
        (start, end)
    }

    /// Total time the Tensor pipeline was active.
    pub fn tc_active_time(&self) -> SimTime {
        self.entries
            .iter()
            .filter(|e| e.tc_active())
            .map(TimelineEntry::duration)
            .sum()
    }

    /// Total time the CUDA pipeline was active.
    pub fn cd_active_time(&self) -> SimTime {
        self.entries
            .iter()
            .filter(|e| e.cd_active())
            .map(TimelineEntry::duration)
            .sum()
    }

    /// Total time *both* pipelines were active simultaneously — zero under
    /// reorder-only scheduling, positive under Tacker.
    pub fn both_active_time(&self) -> SimTime {
        self.entries
            .iter()
            .filter(|e| e.tc_active() && e.cd_active())
            .map(TimelineEntry::duration)
            .sum()
    }

    /// Exports the timeline in Chrome trace-event format (load the output
    /// in `chrome://tracing` or Perfetto): one row per pipeline, one
    /// complete event per kernel that kept the pipeline busy.
    pub fn to_chrome_trace(&self) -> String {
        let mut events = Vec::new();
        for e in &self.entries {
            let mut rows: Vec<(&str, u32)> = Vec::new();
            if e.tc_active() {
                rows.push(("Tensor Cores", 1));
            }
            if e.cd_active() {
                rows.push(("CUDA Cores", 2));
            }
            for (row, tid) in rows {
                events.push(format!(
                    concat!(
                        "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",",
                        "\"ts\":{:.3},\"dur\":{:.3},\"pid\":1,\"tid\":{},",
                        "\"args\":{{\"tc_util\":{:.3},\"cd_util\":{:.3}}}}}"
                    ),
                    e.name,
                    e.label,
                    e.start.as_micros_f64(),
                    e.duration().as_micros_f64(),
                    tid,
                    e.tc_util,
                    e.cd_util
                ));
                let _ = row;
            }
        }
        format!("{{\"traceEvents\":[{}]}}", events.join(","))
    }

    /// Renders a two-row ASCII timeline (`width` columns) of Tensor and
    /// CUDA pipeline activity, as in Figs. 1 and 15.
    pub fn render_ascii(&self, width: usize) -> String {
        let total = self.cursor.as_nanos().max(1);
        let mut tc_row = vec![' '; width];
        let mut cd_row = vec![' '; width];
        for e in &self.entries {
            let c0 = (e.start.as_nanos() as u128 * width as u128 / total as u128) as usize;
            let c1 = ((e.end.as_nanos() as u128 * width as u128).div_ceil(total as u128)) as usize;
            for col in c0..c1.min(width) {
                if e.tc_active() {
                    tc_row[col] = '#';
                }
                if e.cd_active() {
                    cd_row[col] = '=';
                }
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "TC |{}|", tc_row.iter().collect::<String>());
        let _ = writeln!(out, "CD |{}|", cd_row.iter().collect::<String>());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tacker_kernel::Cycles;

    fn run(name: &str, dur_us: u64, tc: f64, cd: f64) -> KernelRun {
        let cycles = Cycles::new(dur_us * 1000);
        KernelRun {
            name: name.into(),
            name_id: tacker_kernel::intern(name),
            cycles,
            duration: SimTime::from_micros(dur_us),
            activity: crate::result::ActivitySummary {
                tc_busy: Cycles::new((cycles.get() as f64 * tc) as u64),
                cd_busy: Cycles::new((cycles.get() as f64 * cd) as u64),
            },
            tc_intervals: vec![],
            cd_intervals: vec![],
            role_finish: vec![],
            occupancy: 1,
            dram_bytes: 0.0,
            events: 0,
            pops: 0,
            macro_runs: 0,
            summary: crate::result::RunSummary::default(),
        }
        .finalized()
    }

    #[test]
    fn sequential_kernels_never_overlap_pipelines() {
        let mut tl = TimelineRecorder::new();
        tl.record(&run("tc_k", 10, 0.9, 0.0), "LC");
        tl.record(&run("cd_k", 10, 0.0, 0.8), "BE");
        assert_eq!(tl.tc_active_time(), SimTime::from_micros(10));
        assert_eq!(tl.cd_active_time(), SimTime::from_micros(10));
        assert_eq!(tl.both_active_time(), SimTime::ZERO);
        assert_eq!(tl.now(), SimTime::from_micros(20));
    }

    #[test]
    fn fused_kernels_count_as_both_active() {
        let mut tl = TimelineRecorder::new();
        tl.record(&run("fused", 10, 0.8, 0.7), "FUSED");
        assert_eq!(tl.both_active_time(), SimTime::from_micros(10));
    }

    #[test]
    fn advance_creates_idle_gap() {
        let mut tl = TimelineRecorder::new();
        tl.record(&run("a", 5, 0.5, 0.0), "LC");
        tl.advance_to(SimTime::from_micros(20));
        tl.advance_to(SimTime::from_micros(1)); // no-op, in the past
        assert_eq!(tl.now(), SimTime::from_micros(20));
        let (start, _) = tl.record(&run("b", 5, 0.0, 0.5), "BE");
        assert_eq!(start, SimTime::from_micros(20));
    }

    #[test]
    fn chrome_trace_exports_one_event_per_active_pipeline() {
        let mut tl = TimelineRecorder::new();
        tl.record(&run("tc_k", 10, 0.9, 0.0), "LC");
        tl.record(&run("fused_k", 10, 0.8, 0.7), "FUSED");
        let json = tl.to_chrome_trace();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        // tc_k appears once (TC row); fused_k twice (both rows).
        assert_eq!(json.matches("\"name\":\"tc_k\"").count(), 1);
        assert_eq!(json.matches("\"name\":\"fused_k\"").count(), 2);
        assert!(json.contains("\"cat\":\"FUSED\""));
    }

    #[test]
    fn ascii_render_marks_rows() {
        let mut tl = TimelineRecorder::new();
        tl.record(&run("tc_k", 10, 0.9, 0.0), "LC");
        tl.record(&run("cd_k", 10, 0.0, 0.8), "BE");
        let art = tl.render_ascii(20);
        assert!(art.contains('#'));
        assert!(art.contains('='));
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 2);
    }
}
