//! Simulator error type.

use std::error::Error;
use std::fmt;

use tacker_kernel::{KernelError, Name};

/// Errors surfaced while executing a plan on the simulated device.
///
/// Kernel names are the interned [`Name`] handles the engine already
/// carries (as in [`crate::KernelRun`] and the trace events), so error
/// construction clones an `Arc`, never reallocates the string.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The kernel could not be lowered or its parameters were unbound.
    Kernel(KernelError),
    /// A single block of the plan does not fit on an SM.
    LaunchFailure {
        /// Kernel name.
        kernel: Name,
        /// Reason the launch was rejected.
        reason: String,
    },
    /// Warps blocked at barriers with no runnable warp left — e.g. a fused
    /// kernel that kept a block-wide `__syncthreads()` inside one branch.
    Deadlock {
        /// Kernel name.
        kernel: Name,
        /// Barrier ids that still have waiters.
        pending_barriers: Vec<u16>,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Kernel(e) => write!(f, "kernel error: {e}"),
            SimError::LaunchFailure { kernel, reason } => {
                write!(f, "launch of `{kernel}` failed: {reason}")
            }
            SimError::Deadlock {
                kernel,
                pending_barriers,
            } => write!(
                f,
                "deadlock in `{kernel}`: warps waiting at barriers {pending_barriers:?}"
            ),
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::Kernel(e) => Some(e),
            _ => None,
        }
    }
}

impl From<KernelError> for SimError {
    fn from(e: KernelError) -> Self {
        SimError::Kernel(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = SimError::Deadlock {
            kernel: "fused".into(),
            pending_barriers: vec![0],
        };
        assert!(e.to_string().contains("deadlock"));
        let k = SimError::from(KernelError::EvalOverflow { expr: "x".into() });
        assert!(std::error::Error::source(&k).is_some());
    }
}
